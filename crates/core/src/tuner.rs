//! The one-stop tuning API: characterize once, then profile and recommend
//! per application.

use serde::{Deserialize, Serialize};

use icomm_microbench::{characterize_device, DeviceCharacterization};
use icomm_models::{model_for, CommModelKind, RunReport, Workload};
use icomm_profile::{ProfileReport, Profiler};
use icomm_soc::units::{Bandwidth, Picos};
use icomm_soc::{DeviceProfile, Soc};

use crate::decision::{recommend, Recommendation};

/// Outcome of one tuning pass.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TuningOutcome {
    /// Profile collected with caches enabled (under standard copy) — the
    /// cache-usage measurement of Fig. 2.
    pub profile: ProfileReport,
    /// Profile collected under the application's current model (equal to
    /// `profile` when the application already uses standard copy).
    pub current_profile: ProfileReport,
    /// The framework's verdict.
    pub recommendation: Recommendation,
}

/// Prediction-vs-reality check for one workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Validation {
    /// The verdict that was evaluated.
    pub recommendation: Recommendation,
    /// Measured run under the current model.
    pub current_run: RunReport,
    /// Measured run under the recommended model (same as `current_run`
    /// when no switch was suggested).
    pub recommended_run: RunReport,
    /// Measured speedup of following the recommendation (ratio; > 1 means
    /// the switch paid off).
    pub actual_speedup: f64,
}

impl Validation {
    /// Whether following the recommendation did not hurt (within `tol`
    /// relative slack, e.g. `0.05`).
    pub fn recommendation_sound(&self, tol: f64) -> bool {
        if self.recommendation.suggests_switch() {
            self.actual_speedup >= 1.0 - tol
        } else {
            true
        }
    }
}

/// Estimated per-iteration SC copy time for a workload on a device
/// (setup plus payload over the effective copy bandwidth), used by
/// Eqn. 4 when the application currently runs zero copy.
///
/// Free-function form of [`Tuner::copy_time_estimate`], usable without
/// constructing a tuner.
pub fn copy_time_estimate(device: &DeviceProfile, workload: &Workload) -> Picos {
    let dram_half = device.dram.peak_bandwidth.as_bytes_per_sec() / 2;
    let effective = Bandwidth(
        device
            .copy_engine
            .bandwidth
            .as_bytes_per_sec()
            .min(dram_half),
    );
    let mut t = Picos::ZERO;
    if workload.bytes_to_gpu.as_u64() > 0 {
        t += device.copy_engine.setup + effective.transfer_time(workload.bytes_to_gpu);
    }
    if workload.bytes_from_gpu.as_u64() > 0 {
        t += device.copy_engine.setup + effective.transfer_time(workload.bytes_from_gpu);
    }
    t
}

/// Profiles `workload` on `device` and runs the decision flow for an
/// application currently implemented with `current`, against an
/// already-measured characterization.
///
/// This is the re-entrant core of the framework: it borrows everything
/// it needs, holds no state, and is safe to call concurrently from many
/// threads against one shared [`DeviceCharacterization`] — the serving
/// layer's job engine is built on it. [`Tuner::recommend`] is a thin
/// wrapper over this function, so the two paths cannot diverge.
pub fn recommend_for_device(
    device: &DeviceProfile,
    characterization: &DeviceCharacterization,
    workload: &Workload,
    current: CommModelKind,
) -> TuningOutcome {
    let profiler = Profiler::new(device.clone());
    let profile = profiler.profile(workload, CommModelKind::StandardCopy);
    let current_profile = if current == CommModelKind::StandardCopy {
        profile.clone()
    } else {
        profiler.profile(workload, current)
    };
    let copy_estimate = copy_time_estimate(device, workload);
    let recommendation = recommend(
        &profile,
        &current_profile,
        current,
        characterization,
        copy_estimate,
    );
    TuningOutcome {
        profile,
        current_profile,
        recommendation,
    }
}

/// The tuning framework of Fig. 2, bound to one device.
///
/// # Examples
///
/// ```no_run
/// use icomm_core::Tuner;
/// use icomm_models::{CommModelKind, GpuPhase, Workload};
/// use icomm_soc::cache::AccessKind;
/// use icomm_soc::DeviceProfile;
/// use icomm_trace::Pattern;
///
/// let tuner = Tuner::new(DeviceProfile::jetson_agx_xavier());
/// let w = Workload::builder("stream")
///     .gpu(GpuPhase {
///         compute_work: 1 << 20,
///         shared_accesses: Pattern::Linear {
///             start: 0,
///             bytes: 1 << 20,
///             txn_bytes: 64,
///             kind: AccessKind::Read,
///         },
///         private_accesses: None,
///     })
///     .build();
/// let outcome = tuner.recommend(&w, CommModelKind::StandardCopy);
/// println!("{}", outcome.recommendation.rationale);
/// ```
#[derive(Debug, Clone)]
pub struct Tuner {
    device: DeviceProfile,
    characterization: DeviceCharacterization,
}

impl Tuner {
    /// Creates a tuner, running the full micro-benchmark characterization
    /// (the expensive once-per-board step).
    pub fn new(device: DeviceProfile) -> Self {
        let characterization = characterize_device(&device);
        Tuner {
            device,
            characterization,
        }
    }

    /// Creates a tuner from a cached characterization.
    pub fn with_characterization(
        device: DeviceProfile,
        characterization: DeviceCharacterization,
    ) -> Self {
        Tuner {
            device,
            characterization,
        }
    }

    /// The device this tuner targets.
    pub fn device(&self) -> &DeviceProfile {
        &self.device
    }

    /// The characterization in use.
    pub fn characterization(&self) -> &DeviceCharacterization {
        &self.characterization
    }

    /// Estimated per-iteration SC copy time for a workload (setup plus
    /// payload over the effective copy bandwidth), used by Eqn. 4 when the
    /// application currently runs zero copy.
    pub fn copy_time_estimate(&self, workload: &Workload) -> Picos {
        copy_time_estimate(&self.device, workload)
    }

    /// Profiles `workload` and runs the decision flow for an application
    /// currently implemented with `current`.
    ///
    /// Cache usage is always measured under standard copy (caches must be
    /// enabled to observe them — the "standard profiling tool" step of
    /// Fig. 2); the runtime decomposition for the speedup estimators comes
    /// from a run under `current`.
    pub fn recommend(&self, workload: &Workload, current: CommModelKind) -> TuningOutcome {
        recommend_for_device(&self.device, &self.characterization, workload, current)
    }

    /// Ground truth: runs the workload under every candidate model on
    /// fresh SoCs — the paper's three everywhere, plus coherent UPM on
    /// devices with a coherent fabric.
    pub fn evaluate_all(&self, workload: &Workload) -> Vec<RunReport> {
        icomm_models::candidate_models(&self.device)
            .into_iter()
            .map(|kind| {
                let mut soc = Soc::new(self.device.clone());
                model_for(kind).run(&mut soc, workload)
            })
            .collect()
    }

    /// Recommends, then measures both the current and the recommended
    /// model to validate the prediction.
    pub fn validate(&self, workload: &Workload, current: CommModelKind) -> Validation {
        let outcome = self.recommend(workload, current);
        let run = |kind: CommModelKind| {
            let mut soc = Soc::new(self.device.clone());
            model_for(kind).run(&mut soc, workload)
        };
        let current_run = run(current);
        let recommended_run = if outcome.recommendation.suggests_switch() {
            run(outcome.recommendation.recommended)
        } else {
            current_run.clone()
        };
        let actual_speedup = if recommended_run.total_time.is_zero() {
            1.0
        } else {
            current_run.total_time.as_picos() as f64 / recommended_run.total_time.as_picos() as f64
        };
        Validation {
            recommendation: outcome.recommendation,
            current_run,
            recommended_run,
            actual_speedup,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icomm_models::{CpuPhase, GpuPhase};
    use icomm_soc::cache::AccessKind;
    use icomm_soc::units::ByteSize;
    use icomm_trace::Pattern;

    // Keep tests fast: trimmed micro-benchmark sweep.
    use icomm_microbench::quick_characterize_device as characterization;

    fn streaming_workload() -> Workload {
        // Compute-dominated kernel over a modest linear stream, no reuse:
        // the LL-L1 rate stays low, so the app classifies as not
        // cache-dependent (like the paper's sensor pipelines).
        let bytes = 1u64 << 20;
        Workload::builder("stream")
            .bytes_to_gpu(ByteSize(bytes))
            .bytes_from_gpu(ByteSize(bytes / 16))
            .cpu(CpuPhase {
                ops: vec![],
                shared_accesses: Pattern::Linear {
                    start: 0,
                    bytes: bytes / 4,
                    txn_bytes: 64,
                    kind: AccessKind::Write,
                },
                private_accesses: None,
            })
            .gpu(GpuPhase {
                compute_work: 1 << 26,
                shared_accesses: Pattern::Linear {
                    start: 0,
                    bytes,
                    txn_bytes: 64,
                    kind: AccessKind::Read,
                },
                private_accesses: None,
            })
            .overlappable(true)
            .iterations(2)
            .build()
    }

    fn cache_hungry_workload() -> Workload {
        // Repeated passes over an LLC-resident footprint.
        let bytes = 1u64 << 18;
        Workload::builder("hot")
            .bytes_to_gpu(ByteSize(bytes))
            .gpu(GpuPhase {
                compute_work: 1 << 16,
                shared_accesses: Pattern::Repeat {
                    body: Box::new(Pattern::Linear {
                        start: 0,
                        bytes,
                        txn_bytes: 64,
                        kind: AccessKind::Read,
                    }),
                    times: 16,
                },
                private_accesses: None,
            })
            .iterations(2)
            .build()
    }

    #[test]
    fn xavier_recommends_zc_for_streaming_and_it_pays_off() {
        let device = DeviceProfile::jetson_agx_xavier();
        let tuner = Tuner::with_characterization(device.clone(), characterization(&device));
        let v = tuner.validate(&streaming_workload(), CommModelKind::StandardCopy);
        assert_eq!(v.recommendation.recommended, CommModelKind::ZeroCopy);
        assert!(
            v.actual_speedup > 1.0,
            "switch should pay off, got {:.2}",
            v.actual_speedup
        );
    }

    #[test]
    fn tx2_zc_cache_hungry_app_sent_back_to_sc() {
        let device = DeviceProfile::jetson_tx2();
        let tuner = Tuner::with_characterization(device.clone(), characterization(&device));
        let v = tuner.validate(&cache_hungry_workload(), CommModelKind::ZeroCopy);
        assert_eq!(v.recommendation.recommended, CommModelKind::StandardCopy);
        assert!(
            v.actual_speedup > 2.0,
            "cache recovery should be large, got {:.2}",
            v.actual_speedup
        );
    }

    #[test]
    fn sc_cache_hungry_app_left_alone() {
        let device = DeviceProfile::jetson_tx2();
        let tuner = Tuner::with_characterization(device.clone(), characterization(&device));
        let outcome = tuner.recommend(&cache_hungry_workload(), CommModelKind::StandardCopy);
        assert!(!outcome.recommendation.suggests_switch());
    }

    #[test]
    fn copy_time_estimate_scales_with_payload() {
        let device = DeviceProfile::jetson_tx2();
        let tuner = Tuner::with_characterization(device.clone(), characterization(&device));
        let small = tuner.copy_time_estimate(&cache_hungry_workload());
        let big = tuner.copy_time_estimate(&streaming_workload());
        assert!(big > small);
    }

    #[test]
    fn free_function_matches_tuner_method() {
        let device = DeviceProfile::jetson_tx2();
        let c = characterization(&device);
        let tuner = Tuner::with_characterization(device.clone(), c.clone());
        let workload = cache_hungry_workload();
        let via_method = tuner.recommend(&workload, CommModelKind::ZeroCopy);
        let via_fn = recommend_for_device(&device, &c, &workload, CommModelKind::ZeroCopy);
        assert_eq!(via_method, via_fn);
    }

    #[test]
    fn tuning_types_are_send_sync() {
        // The serving layer shares characterizations and tuners across
        // worker threads; regression-proof that with static asserts.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Tuner>();
        assert_send_sync::<DeviceCharacterization>();
        assert_send_sync::<TuningOutcome>();
        assert_send_sync::<DeviceProfile>();
        assert_send_sync::<Workload>();
    }

    #[test]
    fn evaluate_all_returns_three_reports() {
        let device = DeviceProfile::jetson_nano();
        let tuner = Tuner::with_characterization(device.clone(), characterization(&device));
        let runs = tuner.evaluate_all(&cache_hungry_workload());
        assert_eq!(runs.len(), 3);
        let kinds: Vec<_> = runs.iter().map(|r| r.model).collect();
        assert_eq!(kinds, CommModelKind::ALL.to_vec());
    }

    #[test]
    fn evaluate_all_includes_upm_on_coherent_boards() {
        let device = DeviceProfile::mi300a_like();
        let tuner = Tuner::with_characterization(device.clone(), characterization(&device));
        let runs = tuner.evaluate_all(&cache_hungry_workload());
        assert_eq!(runs.len(), 4);
        assert_eq!(runs[3].model, CommModelKind::CoherentUpm);
    }
}
