//! Potential-speedup estimators — Eqns. 3 and 4 of the paper.
//!
//! Both estimators predict the runtime of the *other* communication model
//! from the current model's timing decomposition, then clamp the resulting
//! speedup by the device's application-independent maxima (measured by the
//! micro-benchmarks):
//!
//! - **Eqn. 3** (SC → ZC, for applications classified *not*
//!   cache-dependent): remove the copy time and credit full CPU/GPU
//!   overlap. The predicted ZC runtime is
//!   `(SC_runtime − copy_time) / (1 + CPU_time/GPU_time)`, i.e. the GPU
//!   task alone when the phases pipeline perfectly.
//! - **Eqn. 4** (ZC → SC, for cache-dependent applications): serialize the
//!   phases and add the copies back:
//!   `SC_pred = ZC_runtime × (1 + CPU_time/GPU_time) + copy_time`. The
//!   expression is the *structural* floor; the cache recovery can push
//!   the real gain up to `ZC/SC_Max_speedup`, which is why every estimate
//!   carries the device bound alongside the point value.

use serde::{Deserialize, Serialize};

use icomm_microbench::DeviceCharacterization;
use icomm_profile::ProfileReport;
use icomm_soc::units::Picos;

/// A predicted speedup with its device bound.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpeedupEstimate {
    /// Predicted speedup ratio (>1 means the switch should pay off),
    /// already clamped to the device bound.
    pub estimated: f64,
    /// The unclamped model prediction.
    pub raw: f64,
    /// Device bound (`SC/ZC_Max_speedup` or `ZC/SC_Max_speedup`).
    pub max_bound: f64,
}

impl SpeedupEstimate {
    /// The predicted improvement in the paper's percent convention
    /// (`38` means 38 % faster; negative means slower).
    pub fn as_percent(&self) -> f64 {
        (self.estimated - 1.0) * 100.0
    }
}

fn time_ratio(cpu: Picos, gpu: Picos) -> f64 {
    if gpu.is_zero() {
        0.0
    } else {
        cpu.as_picos() as f64 / gpu.as_picos() as f64
    }
}

/// Eqn. 3: potential speedup of switching a non-cache-dependent
/// application from standard copy (or unified memory) to zero copy.
///
/// `profile` must come from a run under SC or UM (it needs a measured
/// `copy_time`).
pub fn sc_to_zc(profile: &ProfileReport, device: &DeviceCharacterization) -> SpeedupEstimate {
    let sc_runtime = profile.total_time.as_picos() as f64;
    let compute = profile
        .total_time
        .saturating_sub(profile.copy_time)
        .as_picos() as f64;
    let overlap = 1.0 + time_ratio(profile.cpu_time, profile.kernel_time);
    let predicted_zc = if overlap > 0.0 {
        compute / overlap
    } else {
        compute
    };
    let raw = if predicted_zc > 0.0 {
        sc_runtime / predicted_zc
    } else {
        1.0
    };
    let max_bound = device.sc_zc_max_speedup.max(0.0);
    SpeedupEstimate {
        estimated: raw.min(max_bound),
        raw,
        max_bound,
    }
}

/// Eqn. 4: potential speedup of switching a cache-dependent application
/// from zero copy to standard copy.
///
/// Under ZC no copies exist, so the copy time SC *would* pay must be
/// estimated by the caller (payload bytes over the device's effective copy
/// bandwidth; [`crate::tuner::Tuner`] does this from the workload).
pub fn zc_to_sc(
    profile: &ProfileReport,
    copy_time_estimate: Picos,
    device: &DeviceCharacterization,
) -> SpeedupEstimate {
    let zc_runtime = profile.total_time.as_picos() as f64;
    // Eqn. 4 denominator: `ZC_runtime / [1/(1 + CPU/GPU)] + copy_time` —
    // the overlapped ZC wall time un-overlapped back into serial phases,
    // plus the explicit copies SC would pay. This is the *structural*
    // cost of SC; the cache recovery (kernel and CPU-task speedups of up
    // to `ZC/SC_Max_speedup`) is what actually makes the switch
    // profitable, which is why the estimate is reported together with the
    // device bound.
    let serialization = 1.0 + time_ratio(profile.cpu_time, profile.kernel_time);
    let predicted_sc = zc_runtime * serialization + copy_time_estimate.as_picos() as f64;
    let raw = if predicted_sc > 0.0 {
        zc_runtime / predicted_sc
    } else {
        1.0
    };
    let max_bound = device.zc_sc_max_speedup.max(0.0);
    SpeedupEstimate {
        estimated: raw.min(max_bound),
        raw,
        max_bound,
    }
}

/// UPM extension of the Eqn. 3/4 family: potential speedup of switching a
/// cache-enabled application (SC or UM) to hardware-coherent unified
/// memory.
///
/// UPM removes the copies/migrations entirely but re-prices the kernel by
/// the device's measured TLB-and-placement penalty:
/// `UPM_pred = (runtime − copy_time) + kernel_time × (penalty − 1)`. The
/// estimate is clamped by the probe's end-to-end `UM/UPM_Max_speedup`
/// bound; on devices without a coherent fabric both the penalty and the
/// bound are 1.0, so the estimate can never recommend a switch there.
pub fn to_upm(profile: &ProfileReport, device: &DeviceCharacterization) -> SpeedupEstimate {
    let runtime = profile.total_time.as_picos() as f64;
    let compute = profile
        .total_time
        .saturating_sub(profile.copy_time)
        .as_picos() as f64;
    let kernel = profile.kernel_time.as_picos() as f64;
    let penalty = device.upm_kernel_penalty.max(0.0);
    let predicted_upm = compute + kernel * (penalty - 1.0);
    let raw = if predicted_upm > 0.0 {
        runtime / predicted_upm
    } else {
        1.0
    };
    let max_bound = if device.upm_supported {
        device.um_upm_max_speedup.max(0.0)
    } else {
        1.0
    };
    SpeedupEstimate {
        estimated: raw.min(max_bound),
        raw,
        max_bound,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icomm_models::CommModelKind;

    fn device() -> DeviceCharacterization {
        DeviceCharacterization {
            device: "test".into(),
            gpu_cache_max_throughput: 100e9,
            gpu_zc_throughput: 10e9,
            gpu_um_throughput: 100e9,
            gpu_cache_threshold_pct: 10.0,
            gpu_cache_zone2_pct: Some(50.0),
            cpu_cache_threshold_pct: 15.0,
            sc_zc_max_speedup: 2.5,
            zc_sc_max_speedup: 70.0,
            upm_supported: false,
            gpu_upm_throughput: 0.0,
            upm_kernel_penalty: 1.0,
            um_upm_max_speedup: 1.0,
        }
    }

    fn upm_device(penalty: f64, bound: f64) -> DeviceCharacterization {
        DeviceCharacterization {
            upm_supported: true,
            gpu_upm_throughput: 90e9,
            upm_kernel_penalty: penalty,
            um_upm_max_speedup: bound,
            ..device()
        }
    }

    fn profile(total_us: u64, copy_us: u64, cpu_us: u64, gpu_us: u64) -> ProfileReport {
        ProfileReport {
            workload: "t".into(),
            model: CommModelKind::StandardCopy,
            miss_rate_l1_cpu: 0.2,
            miss_rate_ll_cpu: 0.5,
            hit_rate_l1_gpu: 0.5,
            gpu_transactions: 1000,
            gpu_transaction_bytes: 64.0,
            kernel_time: Picos::from_micros(gpu_us),
            cpu_time: Picos::from_micros(cpu_us),
            copy_time: Picos::from_micros(copy_us),
            total_time: Picos::from_micros(total_us),
        }
    }

    #[test]
    fn eqn3_hand_value() {
        // SC = 100us, copy = 20us, cpu = gpu = 40us.
        // Predicted ZC = 80 / (1 + 1) = 40us -> speedup 2.5.
        let est = sc_to_zc(&profile(100, 20, 40, 40), &device());
        assert!((est.raw - 2.5).abs() < 1e-9, "raw {}", est.raw);
        assert!((est.estimated - 2.5).abs() < 1e-9);
    }

    #[test]
    fn eqn3_clamped_by_device_bound() {
        // Huge copy fraction would predict 5x, but the device caps at 2.5.
        let est = sc_to_zc(&profile(100, 60, 20, 20), &device());
        assert!(est.raw > 2.5);
        assert!((est.estimated - 2.5).abs() < 1e-9);
    }

    #[test]
    fn eqn3_zero_gpu_time_degrades_gracefully() {
        let est = sc_to_zc(&profile(100, 10, 50, 0), &device());
        assert!(est.estimated.is_finite());
        assert!(est.estimated >= 1.0);
    }

    #[test]
    fn eqn4_hand_value() {
        // ZC = 100us overlapped wall, cpu = gpu = 50us. Un-overlapped:
        // 100 * (1 + 1) = 200us, plus copy 10 -> predicted SC floor of
        // 210us, i.e. a structural ratio of 100/210 ~ 0.476 before any
        // cache recovery.
        let mut p = profile(100, 0, 50, 50);
        p.model = CommModelKind::ZeroCopy;
        let est = zc_to_sc(&p, Picos::from_micros(10), &device());
        assert!((est.raw - 100.0 / 210.0).abs() < 1e-9, "raw {}", est.raw);
        assert!(est.estimated <= est.max_bound);
    }

    #[test]
    fn eqn4_capped_at_zc_sc_bound() {
        let mut p = profile(1000, 0, 1, 999);
        p.model = CommModelKind::ZeroCopy;
        let est = zc_to_sc(&p, Picos::ZERO, &device());
        assert!(est.estimated <= 70.0);
    }

    #[test]
    fn upm_hand_value() {
        // runtime 100us, copy 20us, kernel 40us, unit penalty:
        // predicted UPM = 80us -> raw 1.25.
        let est = to_upm(&profile(100, 20, 40, 40), &upm_device(1.0, 3.0));
        assert!((est.raw - 1.25).abs() < 1e-9, "raw {}", est.raw);
        assert!((est.estimated - 1.25).abs() < 1e-9);
    }

    #[test]
    fn upm_penalty_cancels_the_copy_savings() {
        // Same profile, but a 4K-page penalty of 1.5 adds back
        // 40us * 0.5 = 20us: predicted UPM = 100us -> no gain.
        let est = to_upm(&profile(100, 20, 40, 40), &upm_device(1.5, 3.0));
        assert!(est.estimated <= 1.0 + 1e-9, "estimated {}", est.estimated);
    }

    #[test]
    fn upm_clamped_by_probe_bound() {
        let est = to_upm(&profile(100, 80, 10, 10), &upm_device(1.0, 1.8));
        assert!(est.raw > 1.8);
        assert!((est.estimated - 1.8).abs() < 1e-9);
    }

    #[test]
    fn upm_never_recommends_on_unsupported_device() {
        let est = to_upm(&profile(100, 80, 10, 10), &device());
        assert!(est.estimated <= 1.0);
    }

    #[test]
    fn percent_convention() {
        let e = SpeedupEstimate {
            estimated: 1.38,
            raw: 1.38,
            max_bound: 2.0,
        };
        assert!((e.as_percent() - 38.0).abs() < 1e-9);
    }

    proptest::proptest! {
        #[test]
        fn prop_estimates_bounded_and_finite(
            total in 1u64..1_000_000,
            copy in 0u64..500_000,
            cpu in 0u64..500_000,
            gpu in 0u64..500_000,
        ) {
            let copy = copy.min(total);
            let p = profile(total, copy, cpu, gpu);
            let e3 = sc_to_zc(&p, &device());
            proptest::prop_assert!(e3.estimated.is_finite());
            proptest::prop_assert!(e3.estimated <= e3.max_bound + 1e-9);
            let e4 = zc_to_sc(&p, Picos::from_micros(copy), &device());
            proptest::prop_assert!(e4.estimated.is_finite());
            proptest::prop_assert!(e4.estimated <= e4.max_bound + 1e-9);
            // The UPM estimator is inert on non-coherent devices and
            // bounded on coherent ones.
            let e5 = to_upm(&p, &device());
            proptest::prop_assert!(e5.estimated.is_finite() && e5.estimated <= 1.0 + 1e-9);
            let e6 = to_upm(&p, &upm_device(1.3, 2.0));
            proptest::prop_assert!(e6.estimated.is_finite());
            proptest::prop_assert!(e6.estimated <= e6.max_bound + 1e-9);
        }
    }
}
