//! # icomm-core — the CPU-iGPU communication tuning framework
//!
//! The paper's decision framework (Fig. 2) assembled from its parts:
//!
//! - [`usage`] — the cache-usage metrics (Eqns. 1–2) computed from
//!   profiler counters.
//! - [`speedup`] — the potential-speedup estimators (Eqns. 3–4), clamped
//!   by the device maxima the micro-benchmarks measure.
//! - [`decision`] — the classification flow: compare usage against the
//!   device thresholds, pick a zone, recommend SC/UM or ZC with an
//!   estimated speedup and a rationale.
//! - [`tuner`] — the one-stop API: [`Tuner`] characterizes a device once
//!   (or loads a cached [`icomm_microbench::DeviceCharacterization`]),
//!   then profiles applications and validates recommendations against
//!   ground-truth runs.
//! - [`corun`] — the decision flow extended to tenant *sets*: jointly
//!   assign models to co-located applications by scoring every
//!   combination under the cross-tenant interference model, instead of
//!   tuning each app as if it were alone.
//!
//! The crate's headline reproduction: profiled under its original model,
//! each of the paper's applications gets the same verdict the paper
//! reports — SH-WFS switches to ZC on Xavier (+38 % measured there) but
//! stays on SC for Nano/TX2; ORB keeps ZC on Xavier (zone 2) and is sent
//! back to SC on TX2.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod corun;
pub mod decision;
pub mod speedup;
pub mod summary;
pub mod tuner;
pub mod usage;

pub use corun::{
    joint_assignment, joint_assignment_capped, oracle_assignment, oracle_assignment_capped,
    tenant_demand, CorunTenant, JointAssignment, TenantAssignment,
};
pub use decision::{recommend, CacheZone, Recommendation};
pub use speedup::{sc_to_zc, zc_to_sc, SpeedupEstimate};
pub use tuner::{copy_time_estimate, recommend_for_device, Tuner, TuningOutcome, Validation};
