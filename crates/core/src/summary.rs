//! Human-readable rendering of tuning results.

use std::fmt;

use crate::decision::Recommendation;
use crate::tuner::{TuningOutcome, Validation};

impl fmt::Display for Recommendation {
    /// Renders the verdict the way the CLI examples print it: verdict
    /// first, then the usage-vs-threshold classification, then the
    /// rationale.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "verdict: use {} (currently {})",
            self.recommended, self.current
        )?;
        writeln!(
            f,
            "cpu cache usage {:.1}% vs threshold {:.1}% ({})",
            self.cpu_usage_pct,
            self.cpu_threshold_pct,
            if self.cpu_cache_dependent {
                "cache-dependent"
            } else {
                "independent"
            }
        )?;
        writeln!(
            f,
            "gpu cache usage {:.1}% vs threshold {:.1}% ({})",
            self.gpu_usage_pct, self.gpu_threshold_pct, self.zone
        )?;
        if let Some(est) = self.estimated_speedup {
            if self.recommended == icomm_models::CommModelKind::StandardCopy {
                // Eqn. 4 gives a structural floor; the cache recovery is
                // what pays, so lead with the device bound.
                writeln!(
                    f,
                    "estimated speedup: up to {:.1}x (Eqn. 4 structural floor {:+.0}%)",
                    est.max_bound,
                    est.as_percent()
                )?;
            } else {
                writeln!(
                    f,
                    "estimated speedup: {:+.0}% (device bound {:.2}x)",
                    est.as_percent(),
                    est.max_bound
                )?;
            }
        }
        write!(f, "rationale: {}", self.rationale)
    }
}

impl TuningOutcome {
    /// One-line summary: `"shwfs/...: SC -> ZC (+97% est.)"`.
    pub fn summary(&self) -> String {
        let est = self
            .recommendation
            .estimated_speedup
            .map(|e| format!(" ({:+.0}% est.)", e.as_percent()))
            .unwrap_or_default();
        format!(
            "{}: {} -> {}{}",
            self.profile.workload,
            self.recommendation.current.abbrev(),
            self.recommendation.recommended.abbrev(),
            est
        )
    }
}

impl Validation {
    /// One-line summary: `"shwfs/...: SC -> ZC, actual +32% (sound)"`.
    pub fn summary(&self) -> String {
        format!(
            "{}: {} -> {}, actual {:+.0}% ({})",
            self.current_run.workload,
            self.recommendation.current.abbrev(),
            self.recommendation.recommended.abbrev(),
            (self.actual_speedup - 1.0) * 100.0,
            if self.recommendation_sound(0.05) {
                "sound"
            } else {
                "UNSOUND"
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use icomm_models::CommModelKind;

    use crate::decision::{CacheZone, Recommendation};

    fn recommendation() -> Recommendation {
        Recommendation {
            current: CommModelKind::StandardCopy,
            recommended: CommModelKind::ZeroCopy,
            estimated_speedup: Some(crate::speedup::SpeedupEstimate {
                estimated: 1.4,
                raw: 1.6,
                max_bound: 2.0,
            }),
            cpu_usage_pct: 5.0,
            gpu_usage_pct: 3.0,
            cpu_threshold_pct: 100.0,
            gpu_threshold_pct: 7.0,
            zone: CacheZone::Free,
            cpu_cache_dependent: false,
            gpu_cache_dependent: false,
            rationale: "cache usage is low".into(),
        }
    }

    #[test]
    fn display_contains_verdict_and_numbers() {
        let text = recommendation().to_string();
        assert!(text.contains("use zero copy"));
        assert!(text.contains("5.0%"));
        assert!(text.contains("+40%"));
        assert!(text.contains("rationale"));
    }

    #[test]
    fn display_omits_estimate_when_absent() {
        let mut r = recommendation();
        r.estimated_speedup = None;
        assert!(!r.to_string().contains("estimated speedup"));
    }
}
