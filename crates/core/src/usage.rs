//! Cache-usage metrics — Eqns. 1 and 2 of the paper.
//!
//! Both metrics quantify, in percent, how much an application leans on the
//! last-level cache it would lose (or cripple) under zero copy:
//!
//! - **Eqn. 1** (CPU): `miss_rate_L1 × (1 − miss_rate_LL)` — the fraction
//!   of CPU accesses served by the LLC (they escaped L1 but hit the LLC).
//! - **Eqn. 2** (GPU): `t_n × t_size × (1 − hit_rate_L1) / kernel_runtime /
//!   GPU_Cache^max_throughput` — the LL-L1 traffic rate as a fraction of
//!   the device's peak, measured by the first micro-benchmark.

use icomm_microbench::DeviceCharacterization;
use icomm_profile::ProfileReport;

/// CPU LLC usage in percent (Eqn. 1).
///
/// # Examples
///
/// ```
/// # use icomm_core::usage::cpu_cache_usage_pct;
/// // 40% of accesses miss L1; 3/4 of those hit the LLC.
/// assert!((cpu_cache_usage_pct(0.4, 0.25) - 30.0).abs() < 1e-9);
/// ```
pub fn cpu_cache_usage_pct(miss_rate_l1: f64, miss_rate_ll: f64) -> f64 {
    (miss_rate_l1.clamp(0.0, 1.0) * (1.0 - miss_rate_ll.clamp(0.0, 1.0))) * 100.0
}

/// CPU LLC usage of a profiled run, in percent.
pub fn cpu_usage_of(profile: &ProfileReport) -> f64 {
    cpu_cache_usage_pct(profile.miss_rate_l1_cpu, profile.miss_rate_ll_cpu)
}

/// GPU LLC usage in percent (Eqn. 2): observed LL-L1 throughput over the
/// device's peak.
///
/// Returns 0 when the device characterization reports no usable peak.
pub fn gpu_cache_usage_pct(ll_throughput: f64, max_throughput: f64) -> f64 {
    if max_throughput <= 0.0 {
        0.0
    } else {
        (ll_throughput / max_throughput * 100.0).max(0.0)
    }
}

/// GPU LLC usage of a profiled run against a device characterization, in
/// percent.
pub fn gpu_usage_of(profile: &ProfileReport, device: &DeviceCharacterization) -> f64 {
    gpu_cache_usage_pct(profile.gpu_ll_throughput(), device.gpu_cache_max_throughput)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eqn1_hand_values() {
        // All L1 hits: LLC unused.
        assert_eq!(cpu_cache_usage_pct(0.0, 0.0), 0.0);
        // Everything misses L1 and hits LLC: full usage.
        assert_eq!(cpu_cache_usage_pct(1.0, 0.0), 100.0);
        // Everything misses both: DRAM-bound, LLC unused.
        assert_eq!(cpu_cache_usage_pct(1.0, 1.0), 0.0);
        assert!((cpu_cache_usage_pct(0.5, 0.5) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn eqn1_clamps_bad_rates() {
        assert_eq!(cpu_cache_usage_pct(2.0, -1.0), 100.0);
    }

    #[test]
    fn eqn2_hand_values() {
        assert!((gpu_cache_usage_pct(20e9, 100e9) - 20.0).abs() < 1e-12);
        assert_eq!(gpu_cache_usage_pct(20e9, 0.0), 0.0);
    }

    proptest::proptest! {
        #[test]
        fn prop_eqn1_bounded(l1 in 0.0f64..1.0, ll in 0.0f64..1.0) {
            let u = cpu_cache_usage_pct(l1, ll);
            proptest::prop_assert!((0.0..=100.0).contains(&u));
        }

        #[test]
        fn prop_eqn1_monotone_in_l1_miss(l1a in 0.0f64..0.5, delta in 0.0f64..0.5, ll in 0.0f64..1.0) {
            let lo = cpu_cache_usage_pct(l1a, ll);
            let hi = cpu_cache_usage_pct(l1a + delta, ll);
            proptest::prop_assert!(hi >= lo);
        }
    }
}
