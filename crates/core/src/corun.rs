//! Co-run-aware model selection: the Fig. 2 decision flow extended from
//! one application to a *set* of tenants sharing the SoC.
//!
//! The per-app tuner ([`crate::tuner`]) picks each application's model as
//! if it were alone. Under co-location that can be wrong: a zero-copy
//! tenant floods the shared DRAM channel and shrinks its neighbours'
//! effective cache thresholds, so the model that wins solo can lose in
//! company. [`joint_assignment`] therefore scores *combinations*: every
//! tenant is measured solo under each of the paper's three models, the
//! measured demands are fed to the
//! [interference model](icomm_models::interference), and the assignment
//! minimizing the combined co-run wall time wins. The same enumeration
//! scored by the brute-force [`co_run_oracle`] simulation is exposed as
//! [`oracle_assignment`], the ground truth the closed-form choice is
//! validated against in `tests/scheduling.rs`.

use serde::{Deserialize, Serialize};

use icomm_footprint::{human_bytes, model_footprint};
use icomm_microbench::DeviceCharacterization;
use icomm_models::interference::{
    co_run_interference, co_run_oracle, InterferenceConfig, TenantDemand,
};
use icomm_models::{candidate_models, run_model, CommModelKind, Workload};
use icomm_soc::units::{Bandwidth, ByteSize, Picos};
use icomm_soc::DeviceProfile;

use crate::tuner::recommend_for_device;

/// The scheduler enumerates every model combination (`M^N` for `M`
/// candidate models — 3 on the Jetsons, 4 on hardware-coherent parts).
/// The paper's co-location scenarios stop at four tenants; the cap sits
/// at eight so budget studies can over-subscribe a board while the
/// enumeration stays in the tens of thousands of closed-form scores.
pub const MAX_TENANTS: usize = 8;

/// One tenant of a co-run mix.
#[derive(Debug, Clone, PartialEq)]
pub struct CorunTenant {
    /// Tenant name, unique within the mix.
    pub name: String,
    /// The tenant's workload (one job).
    pub workload: Workload,
    /// The model the application currently ships with.
    pub current: CommModelKind,
}

/// Verdict for one tenant of a jointly assigned mix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantAssignment {
    /// Tenant name.
    pub name: String,
    /// Ground-truth best model when the tenant runs alone (measured, the
    /// per-app greedy choice).
    pub solo_best: CommModelKind,
    /// What the single-app Fig. 2 decision flow recommends.
    pub solo_recommended: CommModelKind,
    /// The model the joint assignment picked.
    pub joint: CommModelKind,
    /// Measured solo wall time under the joint model.
    pub wall_solo: Picos,
    /// Predicted co-run wall time under the joint assignment.
    pub wall_co: Picos,
    /// `wall_co / wall_solo` under the joint assignment.
    pub slowdown: f64,
    /// Whether co-location flipped the choice away from the solo best.
    pub flipped: bool,
    /// Peak resident bytes the joint model keeps on the board
    /// (closed-form [`icomm_footprint`] pricing at the device's page
    /// size).
    pub footprint: ByteSize,
}

/// A jointly optimized model assignment for a tenant mix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JointAssignment {
    /// Board name.
    pub device: String,
    /// Per-tenant verdicts, in mix order.
    pub tenants: Vec<TenantAssignment>,
    /// Combined predicted co-run wall under the joint assignment.
    pub joint_total: Picos,
    /// Combined predicted co-run wall when every tenant keeps its solo
    /// best — what per-app greedy tuning would deliver.
    pub greedy_total: Picos,
    /// Whether any tenant's choice flipped relative to its solo best.
    pub any_flip: bool,
    /// Summed footprint of the joint assignment.
    pub footprint: ByteSize,
    /// The memory cap the assignment was solved under, if any.
    pub mem_cap: Option<ByteSize>,
}

impl JointAssignment {
    /// The joint models in mix order.
    pub fn models(&self) -> Vec<CommModelKind> {
        self.tenants.iter().map(|t| t.joint).collect()
    }
}

/// Measures one tenant's demand on the shared memory system under one
/// candidate model: a solo run of its workload plus the derived LLC
/// pressure and spill terms the interference model consumes.
pub fn tenant_demand(
    device: &DeviceProfile,
    name: &str,
    workload: &Workload,
    model: CommModelKind,
) -> TenantDemand {
    let run = run_model(model, device, workload);
    // Exhaustive on purpose: a new model variant must declare here whether
    // it keeps the GPU LLC in the path, or joint assignment misprices it.
    let bypasses = match model {
        CommModelKind::ZeroCopy => true,
        CommModelKind::StandardCopy
        | CommModelKind::UnifiedMemory
        | CommModelKind::StandardCopyAsync
        | CommModelKind::CoherentUpm => false,
    };
    let llc_pressure = if bypasses {
        0.0
    } else {
        let footprint = workload.gpu.shared_accesses.footprint_bytes() as f64;
        let capacity = device.layout.gpu_llc.size.as_u64().max(1) as f64;
        (footprint / capacity).min(1.0)
    };
    let llc_spill_busy = if bypasses {
        Picos::ZERO
    } else {
        let hit_bytes = run.counters.gpu_llc.hits * device.layout.gpu_llc.line_bytes as u64;
        let bw = Bandwidth(device.dram.peak_bandwidth.as_bytes_per_sec().max(1));
        bw.transfer_time(icomm_soc::units::ByteSize(hit_bytes))
    };
    TenantDemand {
        name: name.to_string(),
        model,
        wall_solo: run.total_time,
        dram_busy_solo: run.counters.dram.busy_time,
        llc_pressure,
        llc_spill_busy,
    }
}

/// Solo demand of every tenant under every candidate model:
/// `candidates[i][k]` is tenant `i` under `candidate_models(device)[k]`.
fn candidate_demands(
    device: &DeviceProfile,
    tenants: &[CorunTenant],
) -> Result<Vec<Vec<TenantDemand>>, String> {
    if tenants.is_empty() {
        return Err("co-run mix has no tenants".to_string());
    }
    if tenants.len() > MAX_TENANTS {
        return Err(format!(
            "co-run mix has {} tenants; joint assignment enumerates at most {MAX_TENANTS}",
            tenants.len()
        ));
    }
    let models = candidate_models(device);
    Ok(tenants
        .iter()
        .map(|t| {
            models
                .iter()
                .map(|&kind| tenant_demand(device, &t.name, &t.workload, kind))
                .collect()
        })
        .collect())
}

/// Solo footprint of every tenant under every candidate model, indexed
/// like [`candidate_demands`]: `footprints[i][k]` is tenant `i` priced
/// under `candidate_models(device)[k]` at the device's page size.
fn candidate_footprints(device: &DeviceProfile, tenants: &[CorunTenant]) -> Vec<Vec<u64>> {
    let models = candidate_models(device);
    tenants
        .iter()
        .map(|t| {
            models
                .iter()
                .map(|&kind| model_footprint(kind, &t.workload, device).as_u64())
                .collect()
        })
        .collect()
}

/// Rejects mixes that cannot fit under `cap` no matter which models are
/// picked: a single tenant whose *cheapest* model is over the cap, or a
/// mix whose per-tenant minima already sum past it. After this check the
/// capped enumeration always has at least one feasible combination.
fn check_cap_feasible(
    device: &DeviceProfile,
    tenants: &[CorunTenant],
    footprints: &[Vec<u64>],
    cap: u64,
) -> Result<(), String> {
    let mut min_sum = 0u64;
    for (tenant, fps) in tenants.iter().zip(footprints) {
        let cheapest = fps.iter().copied().min().unwrap_or(0);
        if cheapest > cap {
            return Err(format!(
                "tenant '{}' does not fit the {} memory cap on {} under any model \
                 (cheapest footprint is {})",
                tenant.name,
                human_bytes(cap),
                device.name,
                human_bytes(cheapest)
            ));
        }
        min_sum += cheapest;
    }
    if min_sum > cap {
        return Err(format!(
            "mix does not fit the {} memory cap on {}: the cheapest model combination \
             still needs {}",
            human_bytes(cap),
            device.name,
            human_bytes(min_sum)
        ));
    }
    Ok(())
}

/// Iterates every model combination in lexicographic candidate order,
/// calling `score` with the per-tenant demand slice; returns the first
/// combination attaining the minimum score (deterministic tie-break).
/// With a cap, combinations whose summed footprint exceeds it are
/// skipped — per-tenant infeasible models fall out with them, since a
/// single over-cap footprint already puts every sum containing it over.
fn argmin_combo<F>(
    candidates: &[Vec<TenantDemand>],
    footprints: &[Vec<u64>],
    cap: Option<u64>,
    mut score: F,
) -> Vec<usize>
where
    F: FnMut(&[TenantDemand]) -> u64,
{
    let n = candidates.len();
    let base = candidates.first().map_or(0, Vec::len).max(1);
    let combos = base.pow(n as u32);
    let mut best: Option<(u64, Vec<usize>)> = None;
    for combo in 0..combos {
        let mut picks = Vec::with_capacity(n);
        let mut rest = combo;
        for _ in 0..n {
            picks.push(rest % base);
            rest /= base;
        }
        if let Some(cap) = cap {
            let total: u64 = picks
                .iter()
                .enumerate()
                .map(|(i, &k)| footprints[i][k])
                .sum();
            if total > cap {
                continue;
            }
        }
        let demands: Vec<TenantDemand> = picks
            .iter()
            .enumerate()
            .map(|(i, &k)| candidates[i][k].clone())
            .collect();
        let cost = score(&demands);
        if best.as_ref().is_none_or(|(b, _)| cost < *b) {
            best = Some((cost, picks));
        }
    }
    best.map(|(_, picks)| picks).unwrap_or_default()
}

/// Chooses the joint model assignment for a tenant mix on `device`.
///
/// Every tenant is measured solo under every candidate model (SC, UM and
/// ZC, plus coherent UPM on devices with a coherent fabric); every
/// combination is then scored by the closed-form interference model and the one with
/// the smallest combined co-run wall time wins (first-found on ties, so
/// the result is deterministic). The per-tenant verdicts also carry the
/// solo ground truth and the single-app Fig. 2 recommendation, so a
/// *flip* — the solo winner losing under co-location — is explicit in
/// the output.
///
/// # Errors
///
/// Rejects empty mixes and mixes beyond [`MAX_TENANTS`].
pub fn joint_assignment(
    device: &DeviceProfile,
    characterization: &DeviceCharacterization,
    tenants: &[CorunTenant],
) -> Result<JointAssignment, String> {
    joint_assignment_capped(device, characterization, tenants, None)
}

/// [`joint_assignment`] under a memory budget: minimize the combined
/// co-run wall *subject to* the summed [`icomm_footprint`] residency of
/// the chosen models staying within `mem_cap`. With `None` the solver
/// is exactly the uncapped one. The per-app greedy baseline is also
/// budget-aware per tenant (a greedy tuner would still prune models
/// that don't fit alone) but blind to the shared sum — that gap is the
/// point of solving jointly.
///
/// # Errors
///
/// Rejects empty mixes, mixes beyond [`MAX_TENANTS`], single tenants
/// whose cheapest model exceeds the cap, and mixes whose cheapest
/// combination does.
pub fn joint_assignment_capped(
    device: &DeviceProfile,
    characterization: &DeviceCharacterization,
    tenants: &[CorunTenant],
    mem_cap: Option<ByteSize>,
) -> Result<JointAssignment, String> {
    let candidates = candidate_demands(device, tenants)?;
    let footprints = candidate_footprints(device, tenants);
    let cap = mem_cap.map(|c| c.as_u64());
    if let Some(cap) = cap {
        check_cap_feasible(device, tenants, &footprints, cap)?;
    }
    let models = candidate_models(device);
    let config = InterferenceConfig::for_device(device);
    let total_wall = |demands: &[TenantDemand]| -> u64 {
        co_run_interference(demands, &config)
            .iter()
            .map(|t| t.wall_co.as_picos())
            .sum()
    };
    let joint_picks = argmin_combo(&candidates, &footprints, cap, total_wall);

    // Per-app greedy: each tenant keeps its measured solo best among
    // the models that fit the cap on their own.
    let greedy_picks: Vec<usize> = candidates
        .iter()
        .enumerate()
        .map(|(i, c)| {
            c.iter()
                .enumerate()
                .filter(|&(k, _)| cap.is_none_or(|cap| footprints[i][k] <= cap))
                .min_by_key(|(_, d)| d.wall_solo.as_picos())
                .map(|(k, _)| k)
                .unwrap_or(0)
        })
        .collect();
    let pick = |picks: &[usize]| -> Vec<TenantDemand> {
        picks
            .iter()
            .enumerate()
            .map(|(i, &k)| candidates[i][k].clone())
            .collect()
    };
    let joint_outcome = co_run_interference(&pick(&joint_picks), &config);
    let greedy_total = Picos(total_wall(&pick(&greedy_picks)));
    let joint_total = Picos(
        joint_outcome
            .iter()
            .map(|t| t.wall_co.as_picos())
            .sum::<u64>(),
    );

    let verdicts: Vec<TenantAssignment> = tenants
        .iter()
        .enumerate()
        .map(|(i, tenant)| {
            let joint = models[joint_picks[i]];
            let solo_best = models[greedy_picks[i]];
            let solo_recommended =
                recommend_for_device(device, characterization, &tenant.workload, tenant.current)
                    .recommendation
                    .recommended;
            let wall_solo = candidates[i][joint_picks[i]].wall_solo;
            TenantAssignment {
                name: tenant.name.clone(),
                solo_best,
                solo_recommended,
                joint,
                wall_solo,
                wall_co: joint_outcome[i].wall_co,
                slowdown: joint_outcome[i].slowdown,
                flipped: joint != solo_best,
                footprint: ByteSize(footprints[i][joint_picks[i]]),
            }
        })
        .collect();
    let any_flip = verdicts.iter().any(|v| v.flipped);
    let footprint = ByteSize(verdicts.iter().map(|v| v.footprint.as_u64()).sum());
    Ok(JointAssignment {
        device: device.name.clone(),
        tenants: verdicts,
        joint_total,
        greedy_total,
        any_flip,
        footprint,
        mem_cap,
    })
}

/// The brute-force reference: the same `M^N` enumeration scored by the
/// piecewise [`co_run_oracle`] simulation instead of the closed form.
/// Returns the winning models in mix order.
///
/// # Errors
///
/// Rejects empty mixes and mixes beyond [`MAX_TENANTS`].
pub fn oracle_assignment(
    device: &DeviceProfile,
    tenants: &[CorunTenant],
) -> Result<Vec<CommModelKind>, String> {
    oracle_assignment_capped(device, tenants, None)
}

/// [`oracle_assignment`] under a memory budget: the same brute-force
/// enumeration, restricted to combinations whose summed footprint fits
/// `mem_cap` — the ground truth the capped closed-form choice is
/// validated against in `tests/footprint.rs`.
///
/// # Errors
///
/// Rejects the same mixes as [`joint_assignment_capped`].
pub fn oracle_assignment_capped(
    device: &DeviceProfile,
    tenants: &[CorunTenant],
    mem_cap: Option<ByteSize>,
) -> Result<Vec<CommModelKind>, String> {
    let candidates = candidate_demands(device, tenants)?;
    let footprints = candidate_footprints(device, tenants);
    let cap = mem_cap.map(|c| c.as_u64());
    if let Some(cap) = cap {
        check_cap_feasible(device, tenants, &footprints, cap)?;
    }
    let models = candidate_models(device);
    let config = InterferenceConfig::for_device(device);
    let picks = argmin_combo(&candidates, &footprints, cap, |demands| {
        co_run_oracle(demands, &config)
            .iter()
            .map(|w| w.as_picos())
            .sum()
    });
    Ok(picks.iter().map(|&k| models[k]).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use icomm_microbench::quick_characterize_device;
    use icomm_models::{CpuPhase, GpuPhase};
    use icomm_soc::cache::AccessKind;
    use icomm_soc::units::ByteSize;
    use icomm_trace::Pattern;

    fn streaming(name: &str) -> CorunTenant {
        let bytes = 1u64 << 20;
        CorunTenant {
            name: name.to_string(),
            workload: Workload::builder(name)
                .bytes_to_gpu(ByteSize(bytes))
                .gpu(GpuPhase {
                    compute_work: 1 << 22,
                    shared_accesses: Pattern::Linear {
                        start: 0,
                        bytes,
                        txn_bytes: 64,
                        kind: AccessKind::Read,
                    },
                    private_accesses: None,
                })
                .cpu(CpuPhase::idle())
                .build(),
            current: CommModelKind::StandardCopy,
        }
    }

    fn cache_hungry(name: &str) -> CorunTenant {
        let bytes = 1u64 << 18;
        CorunTenant {
            name: name.to_string(),
            workload: Workload::builder(name)
                .bytes_to_gpu(ByteSize(bytes))
                .gpu(GpuPhase {
                    compute_work: 1 << 16,
                    shared_accesses: Pattern::Repeat {
                        body: Box::new(Pattern::Linear {
                            start: 0,
                            bytes,
                            txn_bytes: 64,
                            kind: AccessKind::Read,
                        }),
                        times: 16,
                    },
                    private_accesses: None,
                })
                .cpu(CpuPhase::idle())
                .build(),
            current: CommModelKind::StandardCopy,
        }
    }

    #[test]
    fn demand_reflects_model_mechanics() {
        let device = DeviceProfile::jetson_tx2();
        let tenant = cache_hungry("hot");
        let sc = tenant_demand(
            &device,
            "hot",
            &tenant.workload,
            CommModelKind::StandardCopy,
        );
        let zc = tenant_demand(&device, "hot", &tenant.workload, CommModelKind::ZeroCopy);
        // Bypassing the GPU LLC turns reuse into channel traffic.
        assert!(zc.dram_busy_solo > sc.dram_busy_solo);
        assert_eq!(zc.llc_pressure, 0.0);
        assert!(sc.llc_pressure > 0.0);
        assert_eq!(zc.llc_spill_busy, Picos::ZERO);
        assert!(!sc.llc_spill_busy.is_zero());
    }

    #[test]
    fn joint_assignment_is_deterministic() {
        let device = DeviceProfile::jetson_tx2();
        let chr = quick_characterize_device(&device);
        let mix = vec![streaming("a"), cache_hungry("b")];
        let first = joint_assignment(&device, &chr, &mix).expect("joint assignment");
        let second = joint_assignment(&device, &chr, &mix).expect("joint assignment");
        assert_eq!(first, second);
    }

    #[test]
    fn joint_never_worse_than_greedy_under_the_model() {
        for device in [
            DeviceProfile::jetson_nano(),
            DeviceProfile::jetson_tx2(),
            DeviceProfile::jetson_agx_xavier(),
        ] {
            let chr = quick_characterize_device(&device);
            let mix = vec![streaming("s1"), cache_hungry("h1"), streaming("s2")];
            let joint = joint_assignment(&device, &chr, &mix).expect("joint assignment");
            assert!(
                joint.joint_total <= joint.greedy_total,
                "{}: joint {} worse than greedy {}",
                device.name,
                joint.joint_total,
                joint.greedy_total
            );
        }
    }

    #[test]
    fn coherent_board_enumerates_upm_candidates() {
        use icomm_soc::PageSize;
        let device = DeviceProfile::mi300a_like().with_page_size(PageSize::Huge2M);
        let chr = quick_characterize_device(&device);
        let mix = vec![streaming("a"), cache_hungry("b")];
        let joint = joint_assignment(&device, &chr, &mix).expect("joint assignment");
        let models = icomm_models::candidate_models(&device);
        assert_eq!(models.len(), 4);
        for t in &joint.tenants {
            assert!(models.contains(&t.joint));
            assert!(models.contains(&t.solo_best));
        }
        // With migrations free of charge under huge pages, at least one
        // tenant's solo best is the coherent path.
        assert!(
            joint
                .tenants
                .iter()
                .any(|t| t.solo_best == CommModelKind::CoherentUpm
                    || t.joint == CommModelKind::CoherentUpm),
            "UPM never chosen: {:?}",
            joint.models()
        );
    }

    #[test]
    fn mix_size_limits_enforced() {
        let device = DeviceProfile::jetson_tx2();
        let chr = quick_characterize_device(&device);
        assert!(joint_assignment(&device, &chr, &[]).is_err());
        let too_many: Vec<CorunTenant> = (0..9).map(|i| streaming(&format!("t{i}"))).collect();
        assert!(joint_assignment(&device, &chr, &too_many).is_err());
        assert!(oracle_assignment(&device, &too_many).is_err());
    }

    #[test]
    fn a_tight_cap_reshapes_the_assignment() {
        let device = DeviceProfile::jetson_tx2();
        let chr = quick_characterize_device(&device);
        let mix = vec![streaming("a"), streaming("b"), cache_hungry("c")];
        let open = joint_assignment(&device, &chr, &mix).expect("uncapped");
        assert!(open.mem_cap.is_none());
        assert!(open.footprint.as_u64() > 0);
        // The cheapest combination (all tenants on their smallest
        // model) always fits one byte under the uncapped choice.
        let cap = ByteSize(open.footprint.as_u64() - 1);
        let capped =
            joint_assignment_capped(&device, &chr, &mix, Some(cap)).expect("capped assignment");
        assert_ne!(capped.models(), open.models(), "cap must force a shift");
        assert!(capped.footprint <= cap, "capped sum respects the budget");
        assert_eq!(capped.mem_cap, Some(cap));
        assert!(
            capped.joint_total >= open.joint_total,
            "a constraint can only cost wall time"
        );
        let replay =
            joint_assignment_capped(&device, &chr, &mix, Some(cap)).expect("capped assignment");
        assert_eq!(capped, replay);
    }

    #[test]
    fn impossible_caps_are_refused_with_names() {
        let device = DeviceProfile::jetson_tx2();
        let chr = quick_characterize_device(&device);
        let mix = vec![streaming("tiny"), cache_hungry("hot")];
        let err = joint_assignment_capped(&device, &chr, &mix, Some(ByteSize(4096))).unwrap_err();
        assert!(err.contains("'tiny'"), "{err}");
        // Big enough for each tenant alone, too small for both.
        let both = ByteSize::mib(1).as_u64() + ByteSize::kib(256).as_u64();
        let err =
            joint_assignment_capped(&device, &chr, &mix, Some(ByteSize(both - 1))).unwrap_err();
        assert!(err.contains("cheapest model combination"), "{err}");
        assert!(
            oracle_assignment_capped(&device, &mix, Some(ByteSize(4096))).is_err(),
            "oracle enforces the same feasibility rules"
        );
    }
}
