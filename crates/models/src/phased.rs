//! Phased workloads and the windowed execution harness.
//!
//! The paper's framework tunes a *stationary* application once, offline.
//! Real pipelines are phased: the same process alternates between
//! cache-light ingest, reuse-heavy matching and balanced phases, and the
//! best communication model changes with it. This module provides the
//! execution substrate the online-adaptation layer (`icomm-adapt`) runs
//! on:
//!
//! - [`PhasedWorkload`]: a sequence of [`WorkloadPhase`]s, each holding a
//!   full [`Workload`] for a number of profiler *windows* (one window =
//!   one execution of the phase workload on a fresh SoC).
//! - [`WindowPolicy`]: the controller interface — after every window the
//!   harness shows the policy that window's [`RunReport`] and asks which
//!   model the *next* window should run under.
//! - [`run_phased`]: drives a policy over a phased workload, charging an
//!   explicit [`switch_cost`] whenever the policy changes model.
//! - [`oracle_phased`]: the clairvoyant per-phase baseline for regret
//!   accounting — it knows every phase boundary in advance and picks the
//!   fastest model per phase (still paying switch costs).
//!
//! Windows run on fresh SoCs (cold caches), matching the fairness rule of
//! [`crate::model::run_model`]. Because the simulator is deterministic,
//! every window of one phase is identical under a given model — which is
//! what lets [`static_phased`] and [`oracle_phased`] memoize one run per
//! (phase, model) pair instead of simulating every window.

use serde::{Deserialize, Serialize};

use icomm_soc::units::{Bandwidth, ByteSize, Picos};
use icomm_soc::{DeviceProfile, Soc};
use icomm_trace::PhaseSchedule;

use crate::model::{model_for, CommModelKind};
use crate::report::RunReport;
use crate::workload::Workload;

/// One phase of a phased workload: a stationary workload held for a
/// number of windows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadPhase {
    /// Phase name (shows up in reports and switch logs).
    pub name: String,
    /// Windows the phase lasts; each window executes `workload` once.
    pub windows: u32,
    /// The stationary workload active during this phase.
    pub workload: Workload,
}

/// A phased application: a schedule of stationary workloads.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhasedWorkload {
    /// Application name.
    pub name: String,
    /// Phases in execution order.
    pub phases: Vec<WorkloadPhase>,
}

impl PhasedWorkload {
    /// Creates a phased workload from explicit phases.
    ///
    /// # Panics
    ///
    /// Panics if `phases` is empty or any phase lasts zero windows — a
    /// schedule that cannot run is a construction bug, not a runtime
    /// condition.
    pub fn new(name: impl Into<String>, phases: Vec<WorkloadPhase>) -> Self {
        assert!(!phases.is_empty(), "a phased workload needs phases");
        assert!(
            phases.iter().all(|p| p.windows > 0),
            "every phase must last at least one window"
        );
        PhasedWorkload {
            name: name.into(),
            phases,
        }
    }

    /// Builds a phased workload by stamping each phase of a trace-level
    /// [`PhaseSchedule`] onto a base workload: the phase's pattern replaces
    /// the GPU shared accesses, everything else is inherited.
    ///
    /// # Errors
    ///
    /// Returns the schedule's validation error when it is not runnable.
    pub fn from_schedule(
        name: impl Into<String>,
        base: &Workload,
        schedule: &PhaseSchedule,
    ) -> Result<Self, String> {
        schedule.validate()?;
        let phases = schedule
            .phases()
            .iter()
            .map(|spec| {
                let mut workload = base.clone();
                workload.name = format!("{}/{}", base.name, spec.name);
                workload.gpu.shared_accesses = spec.pattern.clone();
                WorkloadPhase {
                    name: spec.name.clone(),
                    windows: spec.windows,
                    workload,
                }
            })
            .collect();
        Ok(PhasedWorkload {
            name: name.into(),
            phases,
        })
    }

    /// Total windows across all phases.
    pub fn total_windows(&self) -> u64 {
        self.phases.iter().map(|p| p.windows as u64).sum()
    }

    /// Index of the phase active at `window`, or `None` past the end.
    pub fn phase_index_at(&self, window: u64) -> Option<usize> {
        let mut consumed = 0u64;
        for (index, phase) in self.phases.iter().enumerate() {
            consumed += phase.windows as u64;
            if window < consumed {
                return Some(index);
            }
        }
        None
    }

    /// Window indices where a new phase begins (excluding window 0).
    pub fn boundaries(&self) -> Vec<u64> {
        let mut out = Vec::new();
        let mut consumed = 0u64;
        for phase in &self.phases {
            consumed += phase.windows as u64;
            out.push(consumed);
        }
        out.pop();
        out
    }
}

/// The cost of switching communication models mid-run.
///
/// Switching is not free: moving between a pageable allocation (SC/UM)
/// and a pinned one (ZC) re-allocates the shared buffers and copies the
/// live payload across; every switch also drains in-flight work and
/// flushes dirty lines so the new model starts coherent. The charge is
/// derived from the device's copy engine:
///
/// - *drain/flush*: one copy-engine setup (the `cudaDeviceSynchronize` +
///   cache-maintenance walk every switch pays);
/// - *re-allocation*: for pageable↔pinned moves only, a second setup plus
///   the payload bytes at the effective copy bandwidth (DRAM-to-DRAM, so
///   bounded by half the DRAM peak, as in
///   [`icomm_soc::copy_engine`]).
///
/// SC↔UM switches keep the allocation kind and pay only the drain.
pub fn switch_cost(
    device: &DeviceProfile,
    workload: &Workload,
    from: CommModelKind,
    to: CommModelKind,
) -> Picos {
    switch_cost_for_payload(device, workload.bytes_exchanged(), from, to)
}

/// [`switch_cost`] for an explicit payload size — what an online
/// controller uses to price a prospective switch when it only knows the
/// shared-buffer size, not the full workload.
pub fn switch_cost_for_payload(
    device: &DeviceProfile,
    payload: ByteSize,
    from: CommModelKind,
    to: CommModelKind,
) -> Picos {
    if from == to {
        return Picos::ZERO;
    }
    let drain = device.copy_engine.setup;
    let pinned = |kind: CommModelKind| kind == CommModelKind::ZeroCopy;
    if pinned(from) == pinned(to) {
        return drain;
    }
    let dram_half = device.dram.peak_bandwidth.as_bytes_per_sec() / 2;
    let effective = Bandwidth(
        device
            .copy_engine
            .bandwidth
            .as_bytes_per_sec()
            .min(dram_half)
            .max(1),
    );
    let realloc = if payload == ByteSize::ZERO {
        Picos::ZERO
    } else {
        device.copy_engine.setup + effective.transfer_time(payload)
    };
    drain + realloc
}

/// Controller interface for windowed execution: [`run_phased`] calls
/// [`WindowPolicy::next_model`] after every window.
pub trait WindowPolicy {
    /// Policy name, recorded in the [`PhasedRunReport`].
    fn name(&self) -> String;

    /// Model the first window runs under.
    fn initial_model(&self) -> CommModelKind;

    /// Observes window `window`'s run (executed under `run.model`) and
    /// returns the model for the next window. Returning a different kind
    /// makes the harness charge [`switch_cost`] before that window.
    fn next_model(&mut self, window: u64, run: &RunReport) -> CommModelKind;
}

/// The trivial policy: one model for the whole run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StaticPolicy(pub CommModelKind);

impl WindowPolicy for StaticPolicy {
    fn name(&self) -> String {
        format!("static-{}", self.0.abbrev())
    }

    fn initial_model(&self) -> CommModelKind {
        self.0
    }

    fn next_model(&mut self, _window: u64, _run: &RunReport) -> CommModelKind {
        self.0
    }
}

/// One executed window of a phased run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowOutcome {
    /// Window index (0-based).
    pub window: u64,
    /// Phase index the window belongs to.
    pub phase: usize,
    /// Model the window ran under.
    pub model: CommModelKind,
    /// The window's run report.
    pub run: RunReport,
    /// Switch cost charged *before* this window (zero when the model was
    /// kept).
    pub switch_cost: Picos,
}

/// Result of driving a policy over a phased workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhasedRunReport {
    /// Phased workload name.
    pub workload: String,
    /// Policy name ([`WindowPolicy::name`]).
    pub policy: String,
    /// Every executed window, in order.
    pub windows: Vec<WindowOutcome>,
    /// Number of model switches.
    pub switches: u32,
    /// Total time charged to switching.
    pub switch_time: Picos,
    /// End-to-end time: window runtimes plus switch costs.
    pub total_time: Picos,
}

impl PhasedRunReport {
    /// The model sequence, one entry per window.
    pub fn model_sequence(&self) -> Vec<CommModelKind> {
        self.windows.iter().map(|w| w.model).collect()
    }

    /// The switch sequence: `(window, from, to)` for every model change.
    /// Two runs are replays of each other iff these are equal.
    pub fn switch_sequence(&self) -> Vec<(u64, CommModelKind, CommModelKind)> {
        let mut out = Vec::new();
        for pair in self.windows.windows(2) {
            if pair[1].model != pair[0].model {
                out.push((pair[1].window, pair[0].model, pair[1].model));
            }
        }
        out
    }
}

/// Runs `phased` on `device` under `policy`, one fresh-SoC execution per
/// window, charging [`switch_cost`] at every model change.
pub fn run_phased(
    device: &DeviceProfile,
    phased: &PhasedWorkload,
    policy: &mut dyn WindowPolicy,
) -> PhasedRunReport {
    let total_windows = phased.total_windows();
    let mut windows = Vec::with_capacity(total_windows as usize);
    let mut active = policy.initial_model();
    let mut pending_switch = Picos::ZERO;
    let mut switches = 0u32;
    let mut switch_time = Picos::ZERO;
    let mut total_time = Picos::ZERO;
    let mut window = 0u64;
    for (phase_index, phase) in phased.phases.iter().enumerate() {
        for _ in 0..phase.windows {
            let mut soc = Soc::new(device.clone());
            let run = model_for(active).run(&mut soc, &phase.workload);
            total_time += run.total_time + pending_switch;
            let outcome = WindowOutcome {
                window,
                phase: phase_index,
                model: active,
                run,
                switch_cost: pending_switch,
            };
            pending_switch = Picos::ZERO;
            let next = policy.next_model(window, &outcome.run);
            windows.push(outcome);
            // A switch requested after the final window has nothing left
            // to run under the new model, so it is not charged.
            if next != active && window + 1 < total_windows {
                let cost = switch_cost(device, &phase.workload, active, next);
                pending_switch = cost;
                switch_time += cost;
                switches += 1;
                active = next;
            }
            window += 1;
        }
    }
    PhasedRunReport {
        workload: phased.name.clone(),
        policy: policy.name(),
        windows,
        switches,
        switch_time,
        total_time,
    }
}

/// Measures one window of `workload` under `kind` on a fresh SoC.
fn run_window(device: &DeviceProfile, workload: &Workload, kind: CommModelKind) -> RunReport {
    let mut soc = Soc::new(device.clone());
    model_for(kind).run(&mut soc, workload)
}

/// Synthesizes a [`PhasedRunReport`] from a per-phase model choice,
/// simulating each (phase, model) pair once and replicating the result
/// across the phase's windows — exact because windows are fresh-SoC
/// deterministic replicas.
fn synthesize(
    device: &DeviceProfile,
    phased: &PhasedWorkload,
    policy_name: String,
    choice: &[CommModelKind],
) -> PhasedRunReport {
    assert_eq!(choice.len(), phased.phases.len());
    let mut windows = Vec::with_capacity(phased.total_windows() as usize);
    let mut switches = 0u32;
    let mut switch_time = Picos::ZERO;
    let mut total_time = Picos::ZERO;
    let mut window = 0u64;
    let mut previous: Option<CommModelKind> = None;
    for (phase_index, (phase, &kind)) in phased.phases.iter().zip(choice).enumerate() {
        let run = run_window(device, &phase.workload, kind);
        for offset in 0..phase.windows {
            let cost = match previous {
                Some(prev) if prev != kind && offset == 0 => {
                    switches += 1;
                    switch_cost(device, &phase.workload, prev, kind)
                }
                _ => Picos::ZERO,
            };
            switch_time += cost;
            total_time += run.total_time + cost;
            windows.push(WindowOutcome {
                window,
                phase: phase_index,
                model: kind,
                run: run.clone(),
                switch_cost: cost,
            });
            window += 1;
        }
        previous = Some(kind);
    }
    PhasedRunReport {
        workload: phased.name.clone(),
        policy: policy_name,
        windows,
        switches,
        switch_time,
        total_time,
    }
}

/// The static baseline: every window under `kind`. Equivalent to
/// [`run_phased`] with [`StaticPolicy`] but simulates each phase once.
pub fn static_phased(
    device: &DeviceProfile,
    phased: &PhasedWorkload,
    kind: CommModelKind,
) -> PhasedRunReport {
    let choice = vec![kind; phased.phases.len()];
    synthesize(device, phased, StaticPolicy(kind).name(), &choice)
}

/// The per-phase oracle: for every phase, measures every candidate model
/// for the device (the paper's three, plus coherent unified memory on
/// hardware-coherent boards) and keeps the fastest — clairvoyant about
/// phase boundaries, yet still charged [`switch_cost`] at each boundary
/// where its choice changes. The regret baseline for adaptive controllers.
pub fn oracle_phased(device: &DeviceProfile, phased: &PhasedWorkload) -> PhasedRunReport {
    let candidates = crate::model::candidate_models(device);
    let choice: Vec<CommModelKind> = phased
        .phases
        .iter()
        .map(|phase| {
            candidates
                .iter()
                .copied()
                .min_by_key(|&kind| run_window(device, &phase.workload, kind).total_time)
                // `candidate_models` always returns at least the paper's
                // three models; fall back to SC rather than panic.
                .unwrap_or(CommModelKind::StandardCopy)
        })
        .collect();
    synthesize(device, phased, "oracle".to_string(), &choice)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::GpuPhase;
    use icomm_soc::cache::AccessKind;
    use icomm_trace::{Pattern, PhaseSpec};

    fn workload(bytes: u64, passes: u32) -> Workload {
        let body = Pattern::Linear {
            start: 0,
            bytes,
            txn_bytes: 64,
            kind: AccessKind::Read,
        };
        Workload::builder("t")
            .bytes_to_gpu(ByteSize(bytes))
            .gpu(GpuPhase {
                compute_work: 1 << 14,
                shared_accesses: Pattern::Repeat {
                    body: Box::new(body),
                    times: passes,
                },
                private_accesses: None,
            })
            .build()
    }

    fn phased() -> PhasedWorkload {
        PhasedWorkload::new(
            "phased-t",
            vec![
                WorkloadPhase {
                    name: "light".into(),
                    windows: 3,
                    workload: workload(64 * 1024, 1),
                },
                WorkloadPhase {
                    name: "heavy".into(),
                    windows: 2,
                    workload: workload(128 * 1024, 8),
                },
            ],
        )
    }

    #[test]
    fn window_accounting() {
        let p = phased();
        assert_eq!(p.total_windows(), 5);
        assert_eq!(p.phase_index_at(0), Some(0));
        assert_eq!(p.phase_index_at(3), Some(1));
        assert_eq!(p.phase_index_at(5), None);
        assert_eq!(p.boundaries(), vec![3]);
    }

    #[test]
    #[should_panic(expected = "at least one window")]
    fn zero_window_phase_rejected() {
        let mut phases = phased().phases;
        phases[0].windows = 0;
        let _ = PhasedWorkload::new("bad", phases);
    }

    #[test]
    fn from_schedule_stamps_patterns() {
        let base = workload(64 * 1024, 1);
        let hot = Pattern::Repeat {
            body: Box::new(base.gpu.shared_accesses.clone()),
            times: 4,
        };
        let schedule = PhaseSchedule::new(vec![
            PhaseSpec::new("a", 2, base.gpu.shared_accesses.clone()),
            PhaseSpec::new("b", 2, hot.clone()),
        ]);
        let p = PhasedWorkload::from_schedule("s", &base, &schedule).unwrap();
        assert_eq!(p.phases.len(), 2);
        assert_eq!(p.phases[1].workload.gpu.shared_accesses, hot);
        assert_eq!(p.phases[1].workload.name, "t/b");

        let bad = PhaseSchedule::new(vec![]);
        assert!(PhasedWorkload::from_schedule("s", &base, &bad).is_err());
    }

    #[test]
    fn switch_cost_is_zero_for_no_change_and_charges_realloc_for_pinned_moves() {
        let device = DeviceProfile::jetson_tx2();
        let w = workload(1 << 20, 1);
        let same = switch_cost(
            &device,
            &w,
            CommModelKind::StandardCopy,
            CommModelKind::StandardCopy,
        );
        assert_eq!(same, Picos::ZERO);
        let drain_only = switch_cost(
            &device,
            &w,
            CommModelKind::StandardCopy,
            CommModelKind::UnifiedMemory,
        );
        let realloc = switch_cost(
            &device,
            &w,
            CommModelKind::StandardCopy,
            CommModelKind::ZeroCopy,
        );
        assert_eq!(drain_only, device.copy_engine.setup);
        assert!(realloc > drain_only, "{realloc} vs {drain_only}");
        // Symmetric in the pinnedness change.
        assert_eq!(
            realloc,
            switch_cost(
                &device,
                &w,
                CommModelKind::ZeroCopy,
                CommModelKind::UnifiedMemory
            )
        );
    }

    #[test]
    fn static_policy_never_switches_and_matches_memoized_runner() {
        let device = DeviceProfile::jetson_tx2();
        let p = phased();
        let mut policy = StaticPolicy(CommModelKind::StandardCopy);
        let driven = run_phased(&device, &p, &mut policy);
        assert_eq!(driven.switches, 0);
        assert_eq!(driven.switch_time, Picos::ZERO);
        assert_eq!(driven.windows.len(), 5);
        let memoized = static_phased(&device, &p, CommModelKind::StandardCopy);
        assert_eq!(driven.total_time, memoized.total_time);
        assert_eq!(driven.model_sequence(), memoized.model_sequence());
    }

    #[test]
    fn oracle_never_loses_to_any_static_choice() {
        let device = DeviceProfile::jetson_tx2();
        let p = phased();
        let oracle = oracle_phased(&device, &p);
        for kind in CommModelKind::ALL {
            let fixed = static_phased(&device, &p, kind);
            assert!(
                oracle.total_time <= fixed.total_time,
                "oracle {} vs static-{} {}",
                oracle.total_time,
                kind.abbrev(),
                fixed.total_time
            );
        }
        assert!((oracle.switches as usize) < p.phases.len());
    }

    #[test]
    fn switching_policy_is_charged() {
        // A policy that flips model after every window pays a switch cost
        // per flip, visible in the total.
        struct Flip;
        impl WindowPolicy for Flip {
            fn name(&self) -> String {
                "flip".into()
            }
            fn initial_model(&self) -> CommModelKind {
                CommModelKind::StandardCopy
            }
            fn next_model(&mut self, _w: u64, run: &RunReport) -> CommModelKind {
                match run.model {
                    CommModelKind::StandardCopy => CommModelKind::ZeroCopy,
                    _ => CommModelKind::StandardCopy,
                }
            }
        }
        let device = DeviceProfile::jetson_tx2();
        let p = phased();
        let report = run_phased(&device, &p, &mut Flip);
        assert_eq!(report.switches, 4, "a flip after every non-final window");
        assert!(report.switch_time > Picos::ZERO);
        let sum: Picos = report.windows.iter().map(|w| w.run.total_time).sum();
        assert_eq!(report.total_time, sum + report.switch_time);
        assert_eq!(report.switch_sequence().len(), 4);
    }
}
