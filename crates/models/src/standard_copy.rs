//! The **standard copy (SC)** communication model.
//!
//! The physically shared memory is partitioned into CPU and GPU logical
//! spaces. Every iteration:
//!
//! 1. the CPU task produces into its own partition (fully cached),
//! 2. dirty CPU cache lines are flushed so the DMA engine sees the data,
//! 3. the copy engine moves the payload to the GPU partition,
//! 4. the kernel runs out of the GPU partition (fully cached),
//! 5. GPU caches are flushed/invalidated so the CPU sees the results,
//! 6. the copy engine moves results back.
//!
//! CPU and GPU phases are implicitly synchronized by the copies, so they
//! never overlap. All communication overhead (copies *and* the coherence
//! flushes that guard them) is attributed to `copy_time`, matching the
//! paper's `copy_time` term in Eqn. 3.

use icomm_soc::hierarchy::MemSpace;
use icomm_soc::units::Picos;
use icomm_soc::Soc;

use crate::layout::{
    rebase, CPU_PARTITION_BASE, CPU_PRIVATE_BASE, GPU_PARTITION_BASE, GPU_PRIVATE_BASE,
};
use crate::model::{CommModel, CommModelKind};
use crate::report::RunReport;
use crate::workload::Workload;

/// The standard-copy model.
///
/// # Examples
///
/// ```
/// use icomm_models::model::{CommModel, CommModelKind};
/// use icomm_models::standard_copy::StandardCopy;
///
/// assert_eq!(StandardCopy::new().kind(), CommModelKind::StandardCopy);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StandardCopy;

impl StandardCopy {
    /// Creates the model.
    pub fn new() -> Self {
        StandardCopy
    }
}

impl CommModel for StandardCopy {
    fn kind(&self) -> CommModelKind {
        CommModelKind::StandardCopy
    }

    fn run(&self, soc: &mut Soc, workload: &Workload) -> RunReport {
        let before = soc.snapshot();
        let mut total_time = Picos::ZERO;
        let mut copy_time = Picos::ZERO;
        let mut kernel_time = Picos::ZERO;
        let mut cpu_time = Picos::ZERO;

        for _ in 0..workload.iterations {
            // 1. CPU produces into its partition.
            let cpu_reqs = rebase(
                workload.cpu.shared_accesses.requests(MemSpace::Cached),
                CPU_PARTITION_BASE,
            );
            let cpu_result = if let Some(private) = &workload.cpu.private_accesses {
                let private_reqs = rebase(private.requests(MemSpace::Cached), CPU_PRIVATE_BASE);
                soc.run_cpu_task(&workload.cpu.ops, cpu_reqs.chain(private_reqs))
            } else {
                soc.run_cpu_task(&workload.cpu.ops, cpu_reqs)
            };
            cpu_time += cpu_result.time;

            // 2+3. Flush and copy host -> device.
            if workload.bytes_to_gpu.as_u64() > 0 {
                let flush = soc.flush_cpu_caches();
                copy_time += flush.time;
                let h2d = soc.copy(workload.bytes_to_gpu);
                copy_time += h2d.time;
            }

            // 4. Kernel out of the GPU partition.
            let gpu_reqs = rebase(
                workload.gpu.shared_accesses.requests(MemSpace::Cached),
                GPU_PARTITION_BASE,
            );
            let kernel = if let Some(private) = &workload.gpu.private_accesses {
                let private_reqs = rebase(private.requests(MemSpace::Cached), GPU_PRIVATE_BASE);
                soc.run_kernel(workload.gpu.compute_work, gpu_reqs.chain(private_reqs))
            } else {
                soc.run_kernel(workload.gpu.compute_work, gpu_reqs)
            };
            kernel_time += kernel.time;

            // 5+6. Flush GPU caches and copy device -> host.
            if workload.bytes_from_gpu.as_u64() > 0 {
                let flush = soc.invalidate_gpu_caches();
                copy_time += flush.time;
                let d2h = soc.copy(workload.bytes_from_gpu);
                copy_time += d2h.time;
            }

            total_time += cpu_result.time + kernel.time;
        }
        total_time += copy_time;

        let counters = soc.snapshot().delta(&before);
        RunReport {
            model: self.kind(),
            workload: workload.name.clone(),
            iterations: workload.iterations,
            total_time,
            copy_time,
            kernel_time,
            cpu_time,
            sync_time: Picos::ZERO,
            overlap_saved: Picos::ZERO,
            energy: counters.energy,
            counters,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icomm_soc::cache::AccessKind;
    use icomm_soc::units::ByteSize;
    use icomm_soc::DeviceProfile;
    use icomm_trace::Pattern;

    use crate::workload::{CpuPhase, GpuPhase};

    fn workload(bytes: u64, iterations: u32) -> Workload {
        Workload::builder("sc-test")
            .bytes_to_gpu(ByteSize(bytes))
            .bytes_from_gpu(ByteSize(bytes / 4))
            .cpu(CpuPhase {
                ops: vec![],
                shared_accesses: Pattern::Linear {
                    start: 0,
                    bytes,
                    txn_bytes: 64,
                    kind: AccessKind::Write,
                },
                private_accesses: None,
            })
            .gpu(GpuPhase {
                compute_work: 1 << 16,
                shared_accesses: Pattern::Linear {
                    start: 0,
                    bytes,
                    txn_bytes: 64,
                    kind: AccessKind::Read,
                },
                private_accesses: None,
            })
            .iterations(iterations)
            .build()
    }

    #[test]
    fn decomposition_sums_to_total() {
        let mut soc = Soc::new(DeviceProfile::jetson_tx2());
        let r = StandardCopy::new().run(&mut soc, &workload(1 << 20, 2));
        assert_eq!(r.total_time, r.cpu_time + r.kernel_time + r.copy_time);
        assert_eq!(r.iterations, 2);
    }

    #[test]
    fn copies_present_when_payload_nonzero() {
        let mut soc = Soc::new(DeviceProfile::jetson_tx2());
        let r = StandardCopy::new().run(&mut soc, &workload(1 << 20, 1));
        assert!(r.copy_time > Picos::from_micros(10));
        assert!(r.counters.copy_engine.mem_bytes > 0);
    }

    #[test]
    fn no_payload_no_copy_time() {
        let mut soc = Soc::new(DeviceProfile::jetson_tx2());
        let mut w = workload(1 << 16, 1);
        w.bytes_to_gpu = ByteSize::ZERO;
        w.bytes_from_gpu = ByteSize::ZERO;
        let r = StandardCopy::new().run(&mut soc, &w);
        assert_eq!(r.copy_time, Picos::ZERO);
    }

    #[test]
    fn caches_are_exercised() {
        let mut soc = Soc::new(DeviceProfile::jetson_tx2());
        let r = StandardCopy::new().run(&mut soc, &workload(1 << 18, 3));
        assert!(r.counters.cpu_l1.accesses() > 0);
        assert!(r.counters.gpu_l1.accesses() > 0);
        // CPU caches stay warm across iterations (flushes write back but do
        // not invalidate), so later iterations hit in the CPU LLC. GPU
        // caches are invalidated after every kernel by the coherence
        // protocol, so no cross-iteration reuse is expected there.
        assert!(r.counters.cpu_llc.hits + r.counters.cpu_l1.hits > 0);
    }

    #[test]
    fn flushes_recorded() {
        let mut soc = Soc::new(DeviceProfile::jetson_tx2());
        let r = StandardCopy::new().run(&mut soc, &workload(1 << 18, 1));
        assert!(r.counters.cpu_l1.flushes + r.counters.cpu_llc.flushes >= 1);
        assert!(r.counters.gpu_l1.flushes + r.counters.gpu_llc.flushes >= 1);
    }
}
