//! Phase-by-phase execution of the tiled zero-copy pipeline.
//!
//! The [`crate::overlap`] module computes the pipeline's wall time
//! *analytically* from whole-task measurements. This module actually
//! *executes* the schedule: the shared request streams of both agents are
//! partitioned by tile ownership, each phase runs its CPU and GPU slices
//! against the simulator, and the wall time is the sum of per-phase
//! `max(cpu, gpu)` plus barriers. It is slower but makes no overlap
//! assumptions — the test-suite uses it to validate the analytic model,
//! and callers can select it via
//! [`crate::zero_copy::ZeroCopy::with_simulated_overlap`].

use icomm_soc::request::MemRequest;
use icomm_soc::units::Picos;
use icomm_soc::Soc;

use crate::tiling::{PhaseSchedule, TileOwner, TiledBuffer, TilingConfig};
use crate::workload::Workload;

/// Timing of one pipeline phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseTiming {
    /// CPU slice time.
    pub cpu: Picos,
    /// GPU slice time.
    pub gpu: Picos,
    /// Phase wall time: `max(cpu, gpu) + barrier`.
    pub wall: Picos,
}

/// Result of executing one iteration through the tiled pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TiledRun {
    /// Per-phase timings.
    pub phases: Vec<PhaseTiming>,
    /// Total iteration wall time (sum of phase walls).
    pub wall: Picos,
    /// Sum of standalone CPU slice times (what serial execution would
    /// spend on the CPU side).
    pub cpu_total: Picos,
    /// Sum of standalone GPU slice times.
    pub gpu_total: Picos,
}

impl TiledRun {
    /// Wall time saved versus serializing the executed slices.
    pub fn saved(&self) -> Picos {
        (self.cpu_total + self.gpu_total).saturating_sub(self.wall)
    }
}

fn tile_of(req: &MemRequest, base: u64, tile_bytes: u32) -> u64 {
    req.addr.saturating_sub(base) / tile_bytes as u64
}

/// Executes one iteration of `workload` through the tiled zero-copy
/// pipeline on `soc`.
///
/// The shared streams are already rebased/pinned by the caller (the same
/// closures the zero-copy model uses); `shared_base` is the address the
/// tile index is computed from. Requests on tiles the schedule assigns to
/// the *other* agent in a phase are deferred to the next phase, so both
/// agents touch every one of their tiles exactly once per iteration and
/// never the same tile in the same phase.
pub fn run_tiled_iteration(
    soc: &mut Soc,
    workload: &Workload,
    tiling: TilingConfig,
    shared_base: u64,
    cpu_requests: Vec<MemRequest>,
    gpu_requests: Vec<MemRequest>,
) -> TiledRun {
    let buffer_bytes = workload
        .bytes_exchanged()
        .as_u64()
        .max(tiling.tile_bytes as u64);
    let buffer = TiledBuffer::new(buffer_bytes, tiling.tile_bytes);
    let schedule = PhaseSchedule::new(buffer, tiling.phases);
    let tile_count = buffer.tile_count();

    let phases = tiling.phases;
    let mut timings = Vec::with_capacity(phases as usize);
    let mut cpu_total = Picos::ZERO;
    let mut gpu_total = Picos::ZERO;

    // Split compute evenly across phases (each phase handles its share of
    // tiles and the matching share of arithmetic).
    let cpu_ops_per_phase: Vec<_> = workload
        .cpu
        .ops
        .iter()
        .map(|op| icomm_soc::cpu::OpCount::new(op.class, op.count / phases as u64))
        .collect();
    let gpu_work_per_phase = workload.gpu.compute_work / phases as u64;

    for phase in 0..phases {
        // An agent owns a tile in exactly `phases/2` of the phases; to
        // touch each tile once per iteration, an agent handles tile `t`
        // in the *first* phase that assigns it.
        let first_ownership = |owner: TileOwner, t: u64| -> u32 {
            // The alternating schedule assigns every tile to each agent
            // in some phase; defaulting to phase 0 keeps a hypothetical
            // gap deterministic instead of panicking mid-simulation.
            (0..phases)
                .find(|&p| schedule.owner(p, t) == owner)
                .unwrap_or(0)
        };
        let cpu_slice = cpu_requests.iter().copied().filter(|r| {
            let t = tile_of(r, shared_base, tiling.tile_bytes).min(tile_count - 1);
            first_ownership(TileOwner::Cpu, t) == phase
        });
        let gpu_slice = gpu_requests.iter().copied().filter(|r| {
            let t = tile_of(r, shared_base, tiling.tile_bytes).min(tile_count - 1);
            first_ownership(TileOwner::Gpu, t) == phase
        });
        let cpu_r = soc.run_cpu_task(&cpu_ops_per_phase, cpu_slice);
        let gpu_r = soc.run_kernel(gpu_work_per_phase, gpu_slice);
        let wall = cpu_r.time.max(gpu_r.time) + tiling.barrier_cost;
        timings.push(PhaseTiming {
            cpu: cpu_r.time,
            gpu: gpu_r.time,
            wall,
        });
        cpu_total += cpu_r.time;
        gpu_total += gpu_r.time;
    }

    TiledRun {
        wall: timings.iter().map(|p| p.wall).sum(),
        phases: timings,
        cpu_total,
        gpu_total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icomm_soc::cache::AccessKind;
    use icomm_soc::hierarchy::MemSpace;
    use icomm_soc::units::ByteSize;
    use icomm_soc::DeviceProfile;
    use icomm_trace::Pattern;

    use crate::layout::{rebase, PINNED_BASE};
    use crate::overlap::{overlapped_wall, OverlapInputs};
    use crate::workload::{CpuPhase, GpuPhase};

    fn balanced_workload(bytes: u64) -> Workload {
        Workload::builder("tiled-exec")
            .bytes_to_gpu(ByteSize(bytes))
            .cpu(CpuPhase {
                ops: vec![icomm_soc::cpu::OpCount::new(
                    icomm_soc::cpu::CpuOpClass::FpMulAdd,
                    200_000,
                )],
                shared_accesses: Pattern::Linear {
                    start: 0,
                    bytes,
                    txn_bytes: 64,
                    kind: AccessKind::Write,
                },
                private_accesses: None,
            })
            .gpu(GpuPhase {
                compute_work: 1 << 22,
                shared_accesses: Pattern::Linear {
                    start: 0,
                    bytes,
                    txn_bytes: 64,
                    kind: AccessKind::Read,
                },
                private_accesses: None,
            })
            .overlappable(true)
            .build()
    }

    fn pinned_requests(w: &Workload) -> (Vec<MemRequest>, Vec<MemRequest>) {
        let cpu = rebase(
            w.cpu.shared_accesses.requests(MemSpace::Pinned),
            PINNED_BASE,
        )
        .collect();
        let gpu = rebase(
            w.gpu.shared_accesses.requests(MemSpace::Pinned),
            PINNED_BASE,
        )
        .collect();
        (cpu, gpu)
    }

    #[test]
    fn every_request_is_executed_exactly_once() {
        let w = balanced_workload(1 << 16);
        let (cpu, gpu) = pinned_requests(&w);
        let mut soc = Soc::new(DeviceProfile::jetson_agx_xavier());
        let before = soc.snapshot();
        let run = run_tiled_iteration(
            &mut soc,
            &w,
            TilingConfig::default(),
            PINNED_BASE,
            cpu.clone(),
            gpu.clone(),
        );
        let delta = soc.snapshot().delta(&before);
        assert_eq!(delta.cpu.mem_transactions, cpu.len() as u64);
        assert_eq!(delta.gpu.mem_transactions, gpu.len() as u64);
        assert_eq!(run.phases.len(), 2);
    }

    #[test]
    fn phases_split_work_roughly_evenly() {
        let w = balanced_workload(1 << 18);
        let (cpu, gpu) = pinned_requests(&w);
        let mut soc = Soc::new(DeviceProfile::jetson_agx_xavier());
        let run = run_tiled_iteration(&mut soc, &w, TilingConfig::default(), PINNED_BASE, cpu, gpu);
        let p0 = &run.phases[0];
        let p1 = &run.phases[1];
        let ratio = p0.gpu.as_picos() as f64 / p1.gpu.as_picos().max(1) as f64;
        assert!((0.5..2.0).contains(&ratio), "phase imbalance {ratio:.2}");
    }

    #[test]
    fn executed_wall_close_to_analytic_model() {
        // The analytic overlap model should predict the executed pipeline
        // within a modest tolerance for a balanced workload.
        let w = balanced_workload(1 << 18);
        let (cpu, gpu) = pinned_requests(&w);
        let tiling = TilingConfig::default();
        let device = DeviceProfile::jetson_agx_xavier();

        // Standalone measurements for the analytic model.
        let mut soc_a = Soc::new(device.clone());
        let cpu_alone = soc_a.run_cpu_task(&w.cpu.ops, cpu.iter().copied());
        let gpu_alone = soc_a.run_kernel(w.gpu.compute_work, gpu.iter().copied());
        let analytic = overlapped_wall(OverlapInputs {
            cpu_time: cpu_alone.time,
            gpu_time: gpu_alone.time,
            cpu_dram_occupancy: cpu_alone.dram_occupancy,
            gpu_dram_occupancy: gpu_alone.dram_occupancy,
            phases: tiling.phases,
            barrier_cost: tiling.barrier_cost,
        });

        let mut soc_b = Soc::new(device);
        let executed = run_tiled_iteration(&mut soc_b, &w, tiling, PINNED_BASE, cpu, gpu);

        let rel = (executed.wall.as_picos() as f64 - analytic.wall.as_picos() as f64).abs()
            / analytic.wall.as_picos() as f64;
        assert!(
            rel < 0.25,
            "executed {} vs analytic {} ({:.0}% apart)",
            executed.wall,
            analytic.wall,
            rel * 100.0
        );
    }

    #[test]
    fn more_phases_mean_more_barrier_overhead() {
        let w = balanced_workload(1 << 16);
        let (cpu, gpu) = pinned_requests(&w);
        let wall_at = |phases: u32| {
            let tiling = TilingConfig {
                phases,
                ..TilingConfig::default()
            };
            let mut soc = Soc::new(DeviceProfile::jetson_agx_xavier());
            run_tiled_iteration(&mut soc, &w, tiling, PINNED_BASE, cpu.clone(), gpu.clone()).wall
        };
        // With a fixed per-phase barrier, more phases cost more.
        assert!(wall_at(8) > wall_at(2));
    }
}
