//! The tiled zero-copy communication pattern (Fig. 4 of the paper).
//!
//! Concurrent CPU/GPU access to one pinned buffer needs data consistency
//! without per-access synchronization. The pattern partitions the buffer
//! into tiles whose size is the smaller of the CPU and GPU LLC line sizes
//! (so every tile access is one coalesced transaction) and alternates
//! ownership between the agents in *phases*: at phase `i` the CPU reads and
//! writes the even tiles while the GPU works the odd tiles; at phase `i+1`
//! the sets swap. A tile is therefore never touched by both agents within a
//! phase, and both agents visit every tile across any two consecutive
//! phases — the producer/consumer hand-off happens at phase barriers only.
//!
//! [`PhaseSchedule`] encodes the ownership rule and offers the verification
//! predicates the test-suite (and property tests) use to prove race
//! freedom and coverage.

use serde::{Deserialize, Serialize};

use icomm_soc::units::Picos;
use icomm_soc::DeviceProfile;

/// Which agent owns a tile during a phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TileOwner {
    /// The CPU reads/writes the tile this phase.
    Cpu,
    /// The GPU reads/writes the tile this phase.
    Gpu,
}

/// Configuration of the tiled zero-copy pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TilingConfig {
    /// Tile size in bytes; the paper uses the smaller of the CPU and GPU
    /// LLC line sizes so a tile moves in one coalesced transaction.
    pub tile_bytes: u32,
    /// Number of phases per iteration (must be even so ownership returns
    /// to its starting assignment and both agents touch every tile).
    pub phases: u32,
    /// Cost of one phase barrier (lightweight flag/event synchronization).
    pub barrier_cost: Picos,
}

impl TilingConfig {
    /// Derives the configuration from a device profile: tile size is the
    /// smaller LLC line, two phases, and a barrier cost of two kernel-side
    /// polls.
    pub fn for_device(device: &DeviceProfile) -> Self {
        let tile_bytes = device
            .layout
            .cpu_llc
            .line_bytes
            .min(device.layout.gpu_llc.line_bytes);
        TilingConfig {
            tile_bytes,
            phases: 2,
            barrier_cost: Picos::from_micros(2),
        }
    }
}

impl Default for TilingConfig {
    fn default() -> Self {
        TilingConfig {
            tile_bytes: 64,
            phases: 2,
            barrier_cost: Picos::from_micros(2),
        }
    }
}

/// A buffer partitioned into equal tiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TiledBuffer {
    total_bytes: u64,
    tile_bytes: u32,
}

impl TiledBuffer {
    /// Partitions `total_bytes` into `tile_bytes` tiles.
    ///
    /// # Panics
    ///
    /// Panics if either size is zero.
    pub fn new(total_bytes: u64, tile_bytes: u32) -> Self {
        assert!(total_bytes > 0, "buffer must be non-empty");
        assert!(tile_bytes > 0, "tiles must be non-empty");
        TiledBuffer {
            total_bytes,
            tile_bytes,
        }
    }

    /// Number of tiles (the last one may be partial).
    pub fn tile_count(&self) -> u64 {
        self.total_bytes.div_ceil(self.tile_bytes as u64)
    }

    /// Byte range `[start, end)` of tile `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn tile_range(&self, index: u64) -> (u64, u64) {
        assert!(index < self.tile_count(), "tile index out of range");
        let start = index * self.tile_bytes as u64;
        let end = (start + self.tile_bytes as u64).min(self.total_bytes);
        (start, end)
    }
}

/// The alternating even/odd ownership schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseSchedule {
    buffer: TiledBuffer,
    phases: u32,
}

impl PhaseSchedule {
    /// Creates the schedule for a buffer.
    ///
    /// # Panics
    ///
    /// Panics if `phases` is zero or odd (an odd phase count would leave
    /// tiles visited by only one agent).
    pub fn new(buffer: TiledBuffer, phases: u32) -> Self {
        assert!(
            phases > 0 && phases.is_multiple_of(2),
            "phase count must be even and non-zero"
        );
        PhaseSchedule { buffer, phases }
    }

    /// The underlying tiled buffer.
    pub fn buffer(&self) -> TiledBuffer {
        self.buffer
    }

    /// Number of phases per iteration.
    pub fn phases(&self) -> u32 {
        self.phases
    }

    /// Owner of `tile` during `phase`: CPU takes tiles whose parity matches
    /// the phase parity.
    pub fn owner(&self, phase: u32, tile: u64) -> TileOwner {
        if (tile + phase as u64).is_multiple_of(2) {
            TileOwner::Cpu
        } else {
            TileOwner::Gpu
        }
    }

    /// Tiles owned by `owner` during `phase`.
    pub fn tiles_for(&self, phase: u32, owner: TileOwner) -> impl Iterator<Item = u64> + '_ {
        let count = self.buffer.tile_count();
        (0..count).filter(move |&t| self.owner(phase, t) == owner)
    }

    /// Race-freedom check: no tile is owned by both agents in one phase.
    /// Always true by construction; exposed so tests can assert it against
    /// arbitrary parameters.
    pub fn is_race_free(&self, phase: u32) -> bool {
        let cpu: Vec<u64> = self.tiles_for(phase, TileOwner::Cpu).collect();
        let gpu: Vec<u64> = self.tiles_for(phase, TileOwner::Gpu).collect();
        cpu.iter().all(|t| !gpu.contains(t))
    }

    /// Coverage check: across phases `p` and `p+1`, both agents visit
    /// every tile exactly once each.
    pub fn covers_all_tiles(&self, phase: u32) -> bool {
        let count = self.buffer.tile_count();
        let mut cpu_seen = vec![0u32; count as usize];
        let mut gpu_seen = vec![0u32; count as usize];
        for p in [phase, phase + 1] {
            for t in self.tiles_for(p, TileOwner::Cpu) {
                cpu_seen[t as usize] += 1;
            }
            for t in self.tiles_for(p, TileOwner::Gpu) {
                gpu_seen[t as usize] += 1;
            }
        }
        cpu_seen.iter().all(|&c| c == 1) && gpu_seen.iter().all(|&c| c == 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tile_count_rounds_up() {
        let b = TiledBuffer::new(1000, 64);
        assert_eq!(b.tile_count(), 16);
        assert_eq!(b.tile_range(15), (960, 1000)); // partial last tile
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn tile_range_bounds_checked() {
        let b = TiledBuffer::new(128, 64);
        let _ = b.tile_range(2);
    }

    #[test]
    fn ownership_alternates_within_phase() {
        let s = PhaseSchedule::new(TiledBuffer::new(512, 64), 2);
        assert_eq!(s.owner(0, 0), TileOwner::Cpu);
        assert_eq!(s.owner(0, 1), TileOwner::Gpu);
        assert_eq!(s.owner(1, 0), TileOwner::Gpu);
        assert_eq!(s.owner(1, 1), TileOwner::Cpu);
    }

    #[test]
    fn schedule_is_race_free_and_covering() {
        let s = PhaseSchedule::new(TiledBuffer::new(4096, 64), 4);
        for phase in 0..8 {
            assert!(s.is_race_free(phase));
            assert!(s.covers_all_tiles(phase));
        }
    }

    #[test]
    fn odd_tile_count_still_covers() {
        let s = PhaseSchedule::new(TiledBuffer::new(7 * 64, 64), 2);
        assert!(s.is_race_free(0));
        assert!(s.covers_all_tiles(0));
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_phase_count_rejected() {
        let _ = PhaseSchedule::new(TiledBuffer::new(512, 64), 3);
    }

    #[test]
    fn config_for_device_uses_min_line() {
        let device = DeviceProfile::jetson_tx2();
        let cfg = TilingConfig::for_device(&device);
        assert_eq!(cfg.tile_bytes, 64);
        assert_eq!(cfg.phases % 2, 0);
    }

    proptest::proptest! {
        #[test]
        fn prop_race_free_and_covering(
            total in 64u64..100_000,
            tile_pow in 5u32..10, // 32..512 bytes
            phase in 0u32..16,
            phases in 1u32..8,
        ) {
            let tile = 1u32 << tile_pow;
            let s = PhaseSchedule::new(TiledBuffer::new(total, tile), phases * 2);
            proptest::prop_assert!(s.is_race_free(phase));
            proptest::prop_assert!(s.covers_all_tiles(phase));
        }

        #[test]
        fn prop_tile_ranges_tile_the_buffer(total in 1u64..100_000, tile_pow in 5u32..10) {
            let tile = 1u32 << tile_pow;
            let b = TiledBuffer::new(total, tile);
            let mut expected_start = 0u64;
            for i in 0..b.tile_count() {
                let (s, e) = b.tile_range(i);
                proptest::prop_assert_eq!(s, expected_start);
                proptest::prop_assert!(e > s);
                expected_start = e;
            }
            proptest::prop_assert_eq!(expected_start, total);
        }
    }
}
