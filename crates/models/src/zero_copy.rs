//! The **zero copy (ZC)** communication model.
//!
//! CPU and iGPU access one *pinned* allocation through the same pointers —
//! no copies at all. The price is paid in the caches: the GPU caches never
//! hold pinned lines, and on devices without hardware I/O coherence
//! (Nano/TX2 class) the CPU caches are bypassed too. On I/O-coherent
//! devices (AGX Xavier) the GPU snoops the CPU LLC instead, retaining a
//! useful fraction of cached throughput. All of this behaviour lives in the
//! simulator's pinned-access rules; this model simply routes the shared
//! accesses through [`MemSpace::Pinned`].
//!
//! When the workload is a producer/consumer pipeline
//! ([`Workload::overlappable`]), the model applies the paper's tiled
//! communication pattern ([`crate::tiling`]) and overlaps the CPU and GPU
//! halves, paying only phase-barrier synchronization.

use icomm_soc::hierarchy::MemSpace;
use icomm_soc::units::Picos;
use icomm_soc::Soc;

use crate::layout::{rebase, CPU_PRIVATE_BASE, GPU_PRIVATE_BASE, PINNED_BASE};
use crate::model::{CommModel, CommModelKind};
use crate::overlap::{overlapped_wall, OverlapInputs};
use crate::report::RunReport;
use crate::tiling::TilingConfig;
use crate::workload::Workload;

/// The zero-copy model.
///
/// # Examples
///
/// ```
/// use icomm_models::model::{CommModel, CommModelKind};
/// use icomm_models::zero_copy::ZeroCopy;
///
/// assert_eq!(ZeroCopy::new().kind(), CommModelKind::ZeroCopy);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ZeroCopy {
    tiling: TilingConfig,
    /// Per-iteration synchronization when phases serialize (a stream/event
    /// sync instead of an implicit copy barrier).
    sync_cost: Picos,
    /// Whether overlapping is permitted at all (disabled for the
    /// serialized variant used when characterizing raw path throughput).
    allow_overlap: bool,
    /// Whether to *execute* the tiled pipeline phase by phase
    /// ([`crate::tiled_exec`]) instead of using the analytic overlap
    /// model. Slower but assumption-free.
    simulated_overlap: bool,
}

impl ZeroCopy {
    /// Creates the model with default tiling.
    pub fn new() -> Self {
        ZeroCopy {
            tiling: TilingConfig::default(),
            sync_cost: Picos::from_micros(2),
            allow_overlap: true,
            simulated_overlap: false,
        }
    }

    /// Creates the model with explicit tiling parameters.
    pub fn with_tiling(tiling: TilingConfig) -> Self {
        ZeroCopy {
            tiling,
            ..ZeroCopy::new()
        }
    }

    /// A variant that never overlaps, even for overlappable workloads.
    /// Used to isolate the raw zero-copy path cost.
    pub fn serialized() -> Self {
        ZeroCopy {
            allow_overlap: false,
            ..ZeroCopy::new()
        }
    }

    /// A variant that executes the tiled pipeline phase by phase instead
    /// of applying the analytic overlap model. Materializes the shared
    /// request streams, so prefer the default for very large workloads.
    pub fn with_simulated_overlap(tiling: TilingConfig) -> Self {
        ZeroCopy {
            tiling,
            simulated_overlap: true,
            ..ZeroCopy::new()
        }
    }

    /// The tiling configuration in use.
    pub fn tiling(&self) -> TilingConfig {
        self.tiling
    }
}

impl Default for ZeroCopy {
    fn default() -> Self {
        ZeroCopy::new()
    }
}

impl CommModel for ZeroCopy {
    fn kind(&self) -> CommModelKind {
        CommModelKind::ZeroCopy
    }

    fn run(&self, soc: &mut Soc, workload: &Workload) -> RunReport {
        let before = soc.snapshot();
        let mut total_time = Picos::ZERO;
        let mut kernel_time = Picos::ZERO;
        let mut cpu_time = Picos::ZERO;
        let mut sync_time = Picos::ZERO;
        let mut overlap_saved = Picos::ZERO;

        for _ in 0..workload.iterations {
            if workload.overlappable && self.allow_overlap && self.simulated_overlap {
                // Execute the tiled pipeline for real: partition the
                // shared streams by tile ownership and run per phase.
                let cpu_vec: Vec<_> = rebase(
                    workload.cpu.shared_accesses.requests(MemSpace::Pinned),
                    PINNED_BASE,
                )
                .collect();
                let gpu_vec: Vec<_> = rebase(
                    workload.gpu.shared_accesses.requests(MemSpace::Pinned),
                    PINNED_BASE,
                )
                .collect();
                let run = crate::tiled_exec::run_tiled_iteration(
                    soc,
                    workload,
                    self.tiling,
                    PINNED_BASE,
                    cpu_vec,
                    gpu_vec,
                );
                cpu_time += run.cpu_total;
                kernel_time += run.gpu_total;
                total_time += run.wall;
                sync_time += self.tiling.barrier_cost * self.tiling.phases as u64;
                overlap_saved += run.saved();
                continue;
            }
            // CPU half: shared accesses go to the pinned region.
            let cpu_reqs = rebase(
                workload.cpu.shared_accesses.requests(MemSpace::Pinned),
                PINNED_BASE,
            );
            let cpu_result = if let Some(private) = &workload.cpu.private_accesses {
                let private_reqs = rebase(private.requests(MemSpace::Cached), CPU_PRIVATE_BASE);
                soc.run_cpu_task(&workload.cpu.ops, cpu_reqs.chain(private_reqs))
            } else {
                soc.run_cpu_task(&workload.cpu.ops, cpu_reqs)
            };
            cpu_time += cpu_result.time;

            // GPU half: kernel reads/writes the pinned region directly.
            let gpu_reqs = rebase(
                workload.gpu.shared_accesses.requests(MemSpace::Pinned),
                PINNED_BASE,
            );
            let kernel = if let Some(private) = &workload.gpu.private_accesses {
                let private_reqs = rebase(private.requests(MemSpace::Cached), GPU_PRIVATE_BASE);
                soc.run_kernel(workload.gpu.compute_work, gpu_reqs.chain(private_reqs))
            } else {
                soc.run_kernel(workload.gpu.compute_work, gpu_reqs)
            };
            kernel_time += kernel.time;

            if workload.overlappable && self.allow_overlap {
                let outcome = overlapped_wall(OverlapInputs {
                    cpu_time: cpu_result.time,
                    gpu_time: kernel.time,
                    cpu_dram_occupancy: cpu_result.dram_occupancy,
                    gpu_dram_occupancy: kernel.dram_occupancy,
                    phases: self.tiling.phases,
                    barrier_cost: self.tiling.barrier_cost,
                });
                total_time += outcome.wall;
                sync_time += outcome.barrier_total;
                overlap_saved += outcome.saved;
            } else {
                total_time += cpu_result.time + kernel.time + self.sync_cost;
                sync_time += self.sync_cost;
            }
        }

        let counters = soc.snapshot().delta(&before);
        RunReport {
            model: self.kind(),
            workload: workload.name.clone(),
            iterations: workload.iterations,
            total_time,
            copy_time: Picos::ZERO,
            kernel_time,
            cpu_time,
            sync_time,
            overlap_saved,
            energy: counters.energy,
            counters,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icomm_soc::cache::AccessKind;
    use icomm_soc::units::ByteSize;
    use icomm_soc::DeviceProfile;
    use icomm_trace::Pattern;

    use crate::model::run_model;
    use crate::workload::{CpuPhase, GpuPhase};

    fn workload(bytes: u64, overlappable: bool) -> Workload {
        Workload::builder("zc-test")
            .bytes_to_gpu(ByteSize(bytes))
            .cpu(CpuPhase {
                ops: vec![],
                shared_accesses: Pattern::Linear {
                    start: 0,
                    bytes,
                    txn_bytes: 64,
                    kind: AccessKind::Write,
                },
                private_accesses: None,
            })
            .gpu(GpuPhase {
                compute_work: 1 << 16,
                shared_accesses: Pattern::Linear {
                    start: 0,
                    bytes,
                    txn_bytes: 64,
                    kind: AccessKind::Read,
                },
                private_accesses: None,
            })
            .overlappable(overlappable)
            .iterations(2)
            .build()
    }

    #[test]
    fn zero_copy_time_is_zero() {
        let device = DeviceProfile::jetson_tx2();
        let r = run_model(CommModelKind::ZeroCopy, &device, &workload(1 << 18, false));
        assert_eq!(r.copy_time, Picos::ZERO);
        assert_eq!(r.counters.copy_engine.mem_bytes, 0);
    }

    #[test]
    fn gpu_caches_untouched_on_pinned_path() {
        let device = DeviceProfile::jetson_tx2();
        let r = run_model(CommModelKind::ZeroCopy, &device, &workload(1 << 18, false));
        assert_eq!(r.counters.gpu_l1.accesses(), 0);
        assert_eq!(r.counters.gpu_llc.accesses(), 0);
    }

    #[test]
    fn overlap_reduces_wall_time() {
        let device = DeviceProfile::jetson_agx_xavier();
        let serial = run_model(CommModelKind::ZeroCopy, &device, &workload(1 << 20, false));
        let mut soc = Soc::new(device.clone());
        let overlapped = ZeroCopy::new().run(&mut soc, &workload(1 << 20, true));
        assert!(overlapped.total_time < serial.total_time);
        assert!(overlapped.overlap_saved > Picos::ZERO);
    }

    #[test]
    fn serialized_variant_ignores_overlappable_flag() {
        let device = DeviceProfile::jetson_agx_xavier();
        let mut soc = Soc::new(device.clone());
        let r = ZeroCopy::serialized().run(&mut soc, &workload(1 << 20, true));
        assert_eq!(r.overlap_saved, Picos::ZERO);
        assert_eq!(r.total_time, r.cpu_time + r.kernel_time + r.sync_time);
    }

    #[test]
    fn zc_slower_than_sc_for_cache_heavy_kernel_on_tx2() {
        // Multiple passes over a small footprint: huge cache benefit,
        // which ZC forfeits on TX2.
        let device = DeviceProfile::jetson_tx2();
        let bytes = 1u64 << 18; // 256 KiB, fits the 512 KiB GPU LLC
        let sweep = Pattern::Repeat {
            body: Box::new(Pattern::Linear {
                start: 0,
                bytes,
                txn_bytes: 64,
                kind: AccessKind::Read,
            }),
            times: 8,
        };
        let w = Workload::builder("cache-heavy")
            .bytes_to_gpu(ByteSize(bytes))
            .cpu(CpuPhase::idle())
            .gpu(GpuPhase {
                compute_work: 0,
                shared_accesses: sweep,
                private_accesses: None,
            })
            .build();
        let sc = run_model(CommModelKind::StandardCopy, &device, &w);
        let zc = run_model(CommModelKind::ZeroCopy, &device, &w);
        assert!(
            zc.kernel_time > sc.kernel_time * 5,
            "zc kernel {} vs sc kernel {}",
            zc.kernel_time,
            sc.kernel_time
        );
    }

    #[test]
    fn xavier_zc_penalty_much_smaller_than_tx2() {
        let bytes = 1u64 << 18;
        let sweep = Pattern::Repeat {
            body: Box::new(Pattern::Linear {
                start: 0,
                bytes,
                txn_bytes: 64,
                kind: AccessKind::Read,
            }),
            times: 8,
        };
        let w = Workload::builder("cache-heavy")
            .bytes_to_gpu(ByteSize(bytes))
            .cpu(CpuPhase::idle())
            .gpu(GpuPhase {
                compute_work: 0,
                shared_accesses: sweep,
                private_accesses: None,
            })
            .build();
        let penalty = |device: &DeviceProfile| {
            let sc = run_model(CommModelKind::StandardCopy, device, &w);
            let zc = run_model(CommModelKind::ZeroCopy, device, &w);
            zc.kernel_time.as_picos() as f64 / sc.kernel_time.as_picos() as f64
        };
        let tx2 = penalty(&DeviceProfile::jetson_tx2());
        let xavier = penalty(&DeviceProfile::jetson_agx_xavier());
        assert!(
            tx2 > 4.0 * xavier,
            "tx2 penalty {tx2:.1} should dwarf xavier {xavier:.1}"
        );
    }
}
