//! The [`CommModel`] trait and the model registry.

use std::fmt;

use serde::{Deserialize, Serialize};

use icomm_soc::Soc;

use crate::async_copy::DoubleBufferedCopy;
use crate::coherent_upm::CoherentUpm;
use crate::report::RunReport;
use crate::standard_copy::StandardCopy;
use crate::unified_memory::UnifiedMemory;
use crate::workload::Workload;
use crate::zero_copy::ZeroCopy;

/// The three CPU-iGPU communication models of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CommModelKind {
    /// Explicit copies between CPU and GPU partitions; caches enabled,
    /// coherence by flushing around kernels.
    StandardCopy,
    /// One managed virtual space; the driver migrates pages on demand.
    UnifiedMemory,
    /// Pinned shared buffer accessed concurrently; GPU caches (and, on
    /// non-I/O-coherent devices, CPU caches) are bypassed.
    ZeroCopy,
    /// Extension (not in the paper's evaluation): standard copy with
    /// double buffering and an asynchronous DMA, hiding the copies behind
    /// the kernel.
    StandardCopyAsync,
    /// Extension: hardware-coherent unified memory ("UPM"), the
    /// system-allocated model of APU-class parts (MI300A, Grace Hopper).
    /// No page migration and no maintenance flushes — both agents cache
    /// the shared allocation and the fabric keeps them coherent — but
    /// every LLC-miss fill pays the topology's remote-access hop and the
    /// expected TLB walk past reach. Only meaningful on devices whose
    /// [`icomm_soc::DeviceProfile::supports_coherent_upm`] is true.
    CoherentUpm,
}

impl CommModelKind {
    /// The paper's three models, in its order.
    pub const ALL: [CommModelKind; 3] = [
        CommModelKind::StandardCopy,
        CommModelKind::UnifiedMemory,
        CommModelKind::ZeroCopy,
    ];

    /// The paper's models plus this library's extensions.
    pub const EXTENDED: [CommModelKind; 5] = [
        CommModelKind::StandardCopy,
        CommModelKind::UnifiedMemory,
        CommModelKind::ZeroCopy,
        CommModelKind::StandardCopyAsync,
        CommModelKind::CoherentUpm,
    ];

    /// The paper's abbreviation.
    pub fn abbrev(self) -> &'static str {
        match self {
            CommModelKind::StandardCopy => "SC",
            CommModelKind::UnifiedMemory => "UM",
            CommModelKind::ZeroCopy => "ZC",
            CommModelKind::StandardCopyAsync => "SC+",
            CommModelKind::CoherentUpm => "UPM",
        }
    }
}

impl fmt::Display for CommModelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            CommModelKind::StandardCopy => "standard copy",
            CommModelKind::UnifiedMemory => "unified memory",
            CommModelKind::ZeroCopy => "zero copy",
            CommModelKind::StandardCopyAsync => "double-buffered standard copy",
            CommModelKind::CoherentUpm => "coherent unified memory",
        };
        f.write_str(name)
    }
}

/// A communication model: a strategy for moving data between the CPU task
/// and the GPU kernel of a [`Workload`] and sequencing their execution.
pub trait CommModel {
    /// Which model this is.
    fn kind(&self) -> CommModelKind;

    /// Runs the workload on the SoC under this model and reports the
    /// timing decomposition.
    fn run(&self, soc: &mut Soc, workload: &Workload) -> RunReport;
}

/// Instantiates the default-configured model of a kind.
pub fn model_for(kind: CommModelKind) -> Box<dyn CommModel> {
    match kind {
        CommModelKind::StandardCopy => Box::new(StandardCopy::new()),
        CommModelKind::UnifiedMemory => Box::new(UnifiedMemory::new()),
        CommModelKind::ZeroCopy => Box::new(ZeroCopy::new()),
        CommModelKind::StandardCopyAsync => Box::new(DoubleBufferedCopy::new()),
        CommModelKind::CoherentUpm => Box::new(CoherentUpm::new()),
    }
}

/// The communication models worth scoring on `device`: the paper's three
/// plus [`CommModelKind::CoherentUpm`] on hardware-coherent parts. The
/// decision flow, `joint_assignment` and the co-run oracle all draw their
/// candidate set from here so a coherent board is never silently priced
/// with the Jetson-only trio.
pub fn candidate_models(device: &icomm_soc::DeviceProfile) -> Vec<CommModelKind> {
    let mut models = CommModelKind::ALL.to_vec();
    if device.supports_coherent_upm() {
        models.push(CommModelKind::CoherentUpm);
    }
    models
}

/// Convenience: runs `workload` on a *fresh* SoC for `device` under `kind`.
///
/// Each model run starts from cold caches so model comparisons are fair.
pub fn run_model(
    kind: CommModelKind,
    device: &icomm_soc::DeviceProfile,
    workload: &Workload,
) -> RunReport {
    let mut soc = Soc::new(device.clone());
    model_for(kind).run(&mut soc, workload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abbrevs() {
        assert_eq!(CommModelKind::StandardCopy.abbrev(), "SC");
        assert_eq!(CommModelKind::UnifiedMemory.abbrev(), "UM");
        assert_eq!(CommModelKind::ZeroCopy.abbrev(), "ZC");
    }

    #[test]
    fn display_names() {
        assert_eq!(CommModelKind::ZeroCopy.to_string(), "zero copy");
    }

    #[test]
    fn registry_returns_matching_kind() {
        for kind in CommModelKind::EXTENDED {
            assert_eq!(model_for(kind).kind(), kind);
        }
    }

    #[test]
    fn extended_superset_of_all() {
        for kind in CommModelKind::ALL {
            assert!(CommModelKind::EXTENDED.contains(&kind));
        }
    }

    #[test]
    fn upm_abbrev_and_display() {
        assert_eq!(CommModelKind::CoherentUpm.abbrev(), "UPM");
        assert_eq!(
            CommModelKind::CoherentUpm.to_string(),
            "coherent unified memory"
        );
    }

    #[test]
    fn candidate_models_gated_on_hardware_coherence() {
        use icomm_soc::DeviceProfile;
        // Jetsons keep the paper's exact trio.
        assert_eq!(
            candidate_models(&DeviceProfile::jetson_tx2()),
            CommModelKind::ALL.to_vec()
        );
        // Coherent parts add UPM as a fourth candidate.
        let mi = candidate_models(&DeviceProfile::mi300a_like());
        assert_eq!(mi.len(), 4);
        assert_eq!(mi[3], CommModelKind::CoherentUpm);
        assert!(candidate_models(&DeviceProfile::gh_like()).contains(&CommModelKind::CoherentUpm));
    }
}
