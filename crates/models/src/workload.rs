//! Workload descriptors: what a CPU-iGPU application does, independent of
//! how its data is communicated.
//!
//! A [`Workload`] captures one processing iteration (one camera frame, one
//! sensor batch): a CPU phase, a GPU kernel, the bytes exchanged between
//! them, and whether the phases may overlap when the zero-copy pattern is
//! used. All shared-buffer accesses are expressed as offsets from zero; the
//! communication model rebases them into the partitions it allocates (see
//! [`crate::layout`]).

use serde::{Deserialize, Serialize};

use icomm_soc::cpu::OpCount;
use icomm_soc::units::ByteSize;
use icomm_trace::Pattern;

/// The CPU side of one iteration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CpuPhase {
    /// Arithmetic mix executed by the task.
    pub ops: Vec<OpCount>,
    /// Accesses to the shared (communicated) buffer, offset-based.
    pub shared_accesses: Pattern,
    /// Accesses to CPU-private data (always cacheable).
    pub private_accesses: Option<Pattern>,
}

impl CpuPhase {
    /// A phase that does nothing.
    pub fn idle() -> Self {
        CpuPhase {
            ops: Vec::new(),
            shared_accesses: Pattern::Sequence(Vec::new()),
            private_accesses: None,
        }
    }
}

/// The GPU side of one iteration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuPhase {
    /// Total compute work (dynamic instruction-cycles across all threads).
    pub compute_work: u64,
    /// Coalesced accesses to the shared buffer, offset-based.
    pub shared_accesses: Pattern,
    /// Accesses to GPU-private data (always cacheable).
    pub private_accesses: Option<Pattern>,
}

/// A complete application workload.
///
/// # Examples
///
/// ```
/// use icomm_models::workload::{CpuPhase, GpuPhase, Workload};
/// use icomm_soc::cache::AccessKind;
/// use icomm_soc::units::ByteSize;
/// use icomm_trace::Pattern;
///
/// let w = Workload::builder("stream")
///     .bytes_to_gpu(ByteSize::mib(1))
///     .gpu(GpuPhase {
///         compute_work: 1 << 20,
///         shared_accesses: Pattern::Linear {
///             start: 0,
///             bytes: 1 << 20,
///             txn_bytes: 64,
///             kind: AccessKind::Read,
///         },
///         private_accesses: None,
///     })
///     .build();
/// assert_eq!(w.iterations, 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    /// Human-readable name.
    pub name: String,
    /// Bytes the CPU produces for the GPU each iteration (the H2D payload
    /// under standard copy).
    pub bytes_to_gpu: ByteSize,
    /// Bytes the GPU produces for the CPU each iteration (the D2H payload).
    pub bytes_from_gpu: ByteSize,
    /// CPU phase.
    pub cpu: CpuPhase,
    /// GPU kernel.
    pub gpu: GpuPhase,
    /// Whether the CPU and GPU phases form a producer/consumer pipeline
    /// that the tiled zero-copy pattern may overlap.
    pub overlappable: bool,
    /// Iterations (frames) to simulate.
    pub iterations: u32,
}

impl Workload {
    /// Starts building a workload.
    pub fn builder(name: impl Into<String>) -> WorkloadBuilder {
        WorkloadBuilder::new(name)
    }

    /// Total bytes communicated per iteration in both directions.
    pub fn bytes_exchanged(&self) -> ByteSize {
        self.bytes_to_gpu + self.bytes_from_gpu
    }
}

/// Builder for [`Workload`].
#[derive(Debug, Clone)]
pub struct WorkloadBuilder {
    name: String,
    bytes_to_gpu: ByteSize,
    bytes_from_gpu: ByteSize,
    cpu: CpuPhase,
    gpu: Option<GpuPhase>,
    overlappable: bool,
    iterations: u32,
}

impl WorkloadBuilder {
    fn new(name: impl Into<String>) -> Self {
        WorkloadBuilder {
            name: name.into(),
            bytes_to_gpu: ByteSize::ZERO,
            bytes_from_gpu: ByteSize::ZERO,
            cpu: CpuPhase::idle(),
            gpu: None,
            overlappable: false,
            iterations: 1,
        }
    }

    /// Sets the H2D payload.
    pub fn bytes_to_gpu(mut self, bytes: ByteSize) -> Self {
        self.bytes_to_gpu = bytes;
        self
    }

    /// Sets the D2H payload.
    pub fn bytes_from_gpu(mut self, bytes: ByteSize) -> Self {
        self.bytes_from_gpu = bytes;
        self
    }

    /// Sets the CPU phase.
    pub fn cpu(mut self, cpu: CpuPhase) -> Self {
        self.cpu = cpu;
        self
    }

    /// Sets the GPU kernel.
    pub fn gpu(mut self, gpu: GpuPhase) -> Self {
        self.gpu = Some(gpu);
        self
    }

    /// Marks the workload as overlappable under the zero-copy pattern.
    pub fn overlappable(mut self, overlappable: bool) -> Self {
        self.overlappable = overlappable;
        self
    }

    /// Sets the number of iterations to simulate.
    ///
    /// # Panics
    ///
    /// Panics if `iterations` is zero.
    pub fn iterations(mut self, iterations: u32) -> Self {
        assert!(iterations > 0, "a workload needs at least one iteration");
        self.iterations = iterations;
        self
    }

    /// Finalizes the workload.
    ///
    /// # Panics
    ///
    /// Panics if no GPU phase was provided (a CPU-only program has no
    /// CPU-iGPU communication to tune). Use [`Self::try_build`] to get
    /// the error instead.
    pub fn build(self) -> Workload {
        self.try_build().unwrap_or_else(|err| panic!("{err}"))
    }

    /// Finalizes the workload, returning an error instead of panicking
    /// when the builder is incomplete.
    ///
    /// # Errors
    ///
    /// Returns a descriptive message when no GPU phase was provided.
    pub fn try_build(self) -> Result<Workload, String> {
        let gpu = self.gpu.ok_or_else(|| {
            format!(
                "workload '{}' has no GPU phase — a CPU-only program has \
                 no CPU-iGPU communication to tune",
                self.name
            )
        })?;
        Ok(Workload {
            name: self.name,
            bytes_to_gpu: self.bytes_to_gpu,
            bytes_from_gpu: self.bytes_from_gpu,
            cpu: self.cpu,
            gpu,
            overlappable: self.overlappable,
            iterations: self.iterations,
        })
    }
}

/// Shared-buffer cycle: CPU arithmetic mix for a given op profile.
pub fn ops(profile: &[(icomm_soc::cpu::CpuOpClass, u64)]) -> Vec<OpCount> {
    profile
        .iter()
        .map(|&(class, count)| OpCount::new(class, count))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use icomm_soc::cache::AccessKind;
    use icomm_soc::cpu::CpuOpClass;

    fn gpu_phase() -> GpuPhase {
        GpuPhase {
            compute_work: 1000,
            shared_accesses: Pattern::Linear {
                start: 0,
                bytes: 4096,
                txn_bytes: 64,
                kind: AccessKind::Read,
            },
            private_accesses: None,
        }
    }

    #[test]
    fn builder_defaults() {
        let w = Workload::builder("t").gpu(gpu_phase()).build();
        assert_eq!(w.iterations, 1);
        assert!(!w.overlappable);
        assert_eq!(w.bytes_exchanged(), ByteSize::ZERO);
    }

    #[test]
    fn builder_sets_fields() {
        let w = Workload::builder("t")
            .bytes_to_gpu(ByteSize::kib(4))
            .bytes_from_gpu(ByteSize::kib(2))
            .overlappable(true)
            .iterations(5)
            .gpu(gpu_phase())
            .build();
        assert_eq!(w.bytes_exchanged(), ByteSize::kib(6));
        assert!(w.overlappable);
        assert_eq!(w.iterations, 5);
    }

    #[test]
    #[should_panic(expected = "GPU phase")]
    fn builder_requires_gpu() {
        let _ = Workload::builder("t").build();
    }

    #[test]
    #[should_panic(expected = "at least one iteration")]
    fn builder_rejects_zero_iterations() {
        let _ = Workload::builder("t").iterations(0);
    }

    #[test]
    fn try_build_names_the_incomplete_workload() {
        let err = Workload::builder("headless").try_build().unwrap_err();
        assert!(err.contains("'headless'"), "{err}");
        assert!(err.contains("GPU phase"), "{err}");
        assert!(Workload::builder("ok").gpu(gpu_phase()).try_build().is_ok());
    }

    #[test]
    fn ops_helper_maps_profile() {
        let v = ops(&[(CpuOpClass::FpSqrt, 10), (CpuOpClass::FpDiv, 5)]);
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].count, 10);
    }

    #[test]
    fn idle_cpu_phase_is_empty() {
        let idle = CpuPhase::idle();
        assert!(idle.ops.is_empty());
        assert!(idle.shared_accesses.is_empty());
    }
}
