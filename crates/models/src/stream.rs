//! Real-time stream execution: frame deadlines, latency and sustained
//! rate.
//!
//! The paper's applications are camera pipelines ("with a 30 Hz camera as
//! input sensor…"), and its Nano results are omitted for ORB-SLAM because
//! the board "does not allow satisfying the real time constraints". This
//! module makes that notion first-class: frames arrive at a fixed
//! interval, each frame is simulated under the chosen communication
//! model, and the report says whether the device sustains the rate, the
//! latency distribution, and the energy per second of operation — the
//! quantity the paper's joule measurements are expressed in.

use serde::{Deserialize, Serialize};

use icomm_soc::units::{Energy, Picos};
use icomm_soc::{DeviceProfile, Soc};

use crate::model::{model_for, CommModelKind};
use crate::workload::Workload;

/// Frame-stream parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StreamConfig {
    /// Inter-arrival time of frames (33.3 ms for a 30 Hz camera).
    pub frame_interval: Picos,
    /// Number of frames to stream.
    pub frames: u32,
}

impl StreamConfig {
    /// A camera stream at `fps` frames per second for `frames` frames.
    ///
    /// # Panics
    ///
    /// Panics if `fps` or `frames` is zero.
    pub fn camera(fps: u32, frames: u32) -> Self {
        assert!(fps > 0, "frame rate must be non-zero");
        assert!(frames > 0, "stream needs at least one frame");
        StreamConfig {
            frame_interval: Picos(1_000_000_000_000 / fps as u64),
            frames,
        }
    }
}

/// Outcome of streaming frames through one communication model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamReport {
    /// The model used.
    pub model: CommModelKind,
    /// Frames processed.
    pub frames: u32,
    /// Frames whose completion exceeded their deadline (arrival +
    /// interval).
    pub deadline_misses: u32,
    /// Mean frame latency (arrival to completion).
    pub mean_latency: Picos,
    /// Worst-case frame latency.
    pub max_latency: Picos,
    /// Achieved throughput in frames per second.
    pub achieved_fps: f64,
    /// Energy drawn over the stream.
    pub energy: Energy,
    /// Mean power over the stream's wall time, in watts.
    pub mean_power_watts: f64,
}

impl StreamReport {
    /// Whether every frame met its deadline.
    pub fn sustained(&self) -> bool {
        self.deadline_misses == 0
    }
}

/// Streams `config.frames` frames of `workload` through `kind` on a fresh
/// SoC for `device`.
///
/// Frames arrive every `frame_interval`; a frame starts at
/// `max(arrival, previous completion)` and its latency is measured from
/// arrival. The workload's own `iterations` field is ignored — each frame
/// is one iteration.
pub fn run_stream(
    kind: CommModelKind,
    device: &DeviceProfile,
    workload: &Workload,
    config: StreamConfig,
) -> StreamReport {
    let mut soc = Soc::new(device.clone());
    let model = model_for(kind);
    let mut frame = workload.clone();
    frame.iterations = 1;

    let mut completion = Picos::ZERO;
    let mut latency_sum = Picos::ZERO;
    let mut max_latency = Picos::ZERO;
    let mut misses = 0u32;
    for i in 0..config.frames {
        let arrival = config.frame_interval * i as u64;
        let service = model.run(&mut soc, &frame).total_time;
        let start = completion.max(arrival);
        completion = start + service;
        let latency = completion - arrival;
        latency_sum += latency;
        max_latency = max_latency.max(latency);
        if latency > config.frame_interval {
            misses += 1;
        }
    }
    let energy = soc.snapshot().energy;
    // The stream occupies at least its nominal duration (frames x
    // interval); a backlogged pipeline runs past it.
    let wall = completion.max(config.frame_interval * config.frames as u64);
    let wall_secs = wall.as_secs_f64().max(f64::MIN_POSITIVE);
    StreamReport {
        model: kind,
        frames: config.frames,
        deadline_misses: misses,
        mean_latency: latency_sum / config.frames as u64,
        max_latency,
        achieved_fps: config.frames as f64 / wall_secs,
        energy,
        mean_power_watts: energy.as_joules() / wall_secs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icomm_soc::cache::AccessKind;
    use icomm_soc::units::ByteSize;
    use icomm_trace::Pattern;

    use crate::workload::{CpuPhase, GpuPhase};

    fn frame_workload(bytes: u64) -> Workload {
        Workload::builder("stream-frame")
            .bytes_to_gpu(ByteSize(bytes))
            .cpu(CpuPhase {
                ops: vec![icomm_soc::cpu::OpCount::new(
                    icomm_soc::cpu::CpuOpClass::FpMulAdd,
                    50_000,
                )],
                shared_accesses: Pattern::Linear {
                    start: 0,
                    bytes: bytes / 2,
                    txn_bytes: 64,
                    kind: AccessKind::Write,
                },
                private_accesses: None,
            })
            .gpu(GpuPhase {
                compute_work: 1 << 22,
                shared_accesses: Pattern::Linear {
                    start: 0,
                    bytes,
                    txn_bytes: 64,
                    kind: AccessKind::Read,
                },
                private_accesses: None,
            })
            .build()
    }

    #[test]
    fn fast_pipeline_sustains_30hz() {
        // A ~200 us frame easily meets a 33 ms deadline.
        let report = run_stream(
            CommModelKind::StandardCopy,
            &DeviceProfile::jetson_agx_xavier(),
            &frame_workload(1 << 20),
            StreamConfig::camera(30, 10),
        );
        assert!(report.sustained(), "misses: {}", report.deadline_misses);
        assert!((report.achieved_fps - 30.0).abs() < 1.0);
        assert!(report.mean_latency < Picos::from_millis(2));
    }

    #[test]
    fn overloaded_pipeline_misses_deadlines() {
        // Demand a rate far beyond the frame's service time.
        let report = run_stream(
            CommModelKind::StandardCopy,
            &DeviceProfile::jetson_nano(),
            &frame_workload(1 << 22),
            StreamConfig::camera(2000, 10),
        );
        assert!(!report.sustained());
        assert!(report.max_latency > report.mean_latency / 2);
        // Backlogged: later frames wait for earlier ones, so the worst
        // latency exceeds one service time.
        assert!(report.achieved_fps < 2000.0);
    }

    #[test]
    fn latency_monotone_under_backlog() {
        // When overloaded, mean latency grows with the stream length.
        let short = run_stream(
            CommModelKind::StandardCopy,
            &DeviceProfile::jetson_nano(),
            &frame_workload(1 << 22),
            StreamConfig::camera(2000, 5),
        );
        let long = run_stream(
            CommModelKind::StandardCopy,
            &DeviceProfile::jetson_nano(),
            &frame_workload(1 << 22),
            StreamConfig::camera(2000, 20),
        );
        assert!(long.mean_latency > short.mean_latency);
    }

    #[test]
    fn zc_saves_power_on_xavier_at_fixed_rate() {
        // The paper's energy claim: at a fixed camera rate, zero copy
        // draws less power than standard copy on the Xavier.
        let device = DeviceProfile::jetson_agx_xavier();
        let w = frame_workload(1 << 20);
        let cfg = StreamConfig::camera(30, 10);
        let sc = run_stream(CommModelKind::StandardCopy, &device, &w, cfg);
        let zc = run_stream(CommModelKind::ZeroCopy, &device, &w, cfg);
        assert!(sc.sustained() && zc.sustained());
        assert!(
            zc.mean_power_watts < sc.mean_power_watts,
            "zc {:.3} W vs sc {:.3} W",
            zc.mean_power_watts,
            sc.mean_power_watts
        );
    }

    #[test]
    #[should_panic(expected = "frame rate")]
    fn zero_fps_rejected() {
        let _ = StreamConfig::camera(0, 10);
    }
}
