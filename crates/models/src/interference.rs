//! Cross-tenant interference on the shared memory system.
//!
//! [`overlap`](crate::overlap) bounds one app's wall time by its *own*
//! DRAM-channel occupancy. Under co-location that is no longer the whole
//! story: every tenant of the SoC shares one DRAM channel and the two
//! LLCs, so a co-runner's traffic stretches the memory-bound part of a
//! tenant's timeline and its cache footprint steals LLC ways. The paper's
//! mechanics add a third, model-specific coupling: a zero-copy tenant
//! bypasses the GPU LLC (and, on non-I/O-coherent boards, the CPU LLC),
//! turning every one of its shared accesses into channel traffic that
//! shrinks the co-runners' effective `GPU_Cache_Threshold`.
//!
//! Two estimators live here:
//!
//! - [`co_run_interference`] — the closed-form model: per-tenant slowdown
//!   from combined channel occupancy, an LLC way grant from combined cache
//!   pressure, and a threshold scale from bypassing neighbours. It treats
//!   the co-run set as fixed for the whole run, which makes it a
//!   *conservative upper bound* on the wall time.
//! - [`co_run_oracle`] — the brute-force reference: a piecewise event
//!   simulation where tenants that finish leave the channel, lowering the
//!   contention the survivors see. The closed form is validated against it
//!   (`oracle ≤ model`, with equality when the channel never saturates).

use icomm_soc::units::Picos;
use icomm_soc::DeviceProfile;

use crate::model::CommModelKind;

/// What one tenant asks of the shared memory system, measured from a
/// *solo* run of its workload under a candidate communication model.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantDemand {
    /// Tenant name (for reports; not used by the math).
    pub name: String,
    /// The communication model the tenant runs under. Zero-copy tenants
    /// bypass the GPU LLC and pressure co-runners' thresholds.
    pub model: CommModelKind,
    /// Solo wall time of one job.
    pub wall_solo: Picos,
    /// DRAM channel busy time accumulated during that solo job.
    pub dram_busy_solo: Picos,
    /// Fraction of the GPU LLC the tenant's shared footprint wants,
    /// clamped to `[0, 1]`. Zero for models that bypass the cache.
    pub llc_pressure: f64,
    /// Extra channel busy time this tenant would add if *all* of its LLC
    /// hits spilled to DRAM (hit bytes over peak bandwidth). The model
    /// charges the fraction `1 - threshold_scale` of it back to the
    /// channel — the mechanism by which a bypassing neighbour's pressure
    /// becomes measurable slowdown. Zero for bypassing tenants.
    pub llc_spill_busy: Picos,
}

impl TenantDemand {
    /// Channel utilization of the solo run: busy time over wall time,
    /// clamped to `[0, 1]`. Zero-wall jobs demand nothing.
    pub fn channel_util(&self) -> f64 {
        self.util_with_extra(Picos::ZERO)
    }

    /// Channel utilization with `extra` busy time (spilled LLC hits)
    /// charged on top of the measured solo busy time.
    fn util_with_extra(&self, extra: Picos) -> f64 {
        if self.wall_solo.is_zero() {
            return 0.0;
        }
        let u = (self.dram_busy_solo + extra).as_secs_f64() / self.wall_solo.as_secs_f64();
        u.clamp(0.0, 1.0)
    }

    /// Whether this tenant's model turns shared-buffer accesses into
    /// uncached channel traffic (zero copy bypasses the GPU LLC on every
    /// board the paper measures). Exhaustive on purpose: a new model
    /// variant must declare its cache behaviour here or fail to compile.
    pub fn bypasses_gpu_llc(&self) -> bool {
        match self.model {
            CommModelKind::ZeroCopy => true,
            // The copy-based models and both unified flavours keep the
            // GPU LLC in the path — coherent UPM is fully cached, its
            // fills just cost more when the home node is remote.
            CommModelKind::StandardCopy
            | CommModelKind::UnifiedMemory
            | CommModelKind::StandardCopyAsync
            | CommModelKind::CoherentUpm => false,
        }
    }
}

/// Knobs of the interference model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InterferenceConfig {
    /// How strongly a bypassing neighbour's channel demand shrinks a
    /// cache-enabled co-runner's effective `GPU_Cache_Threshold`. The
    /// scale divides by `1 + penalty * zc_neighbour_util`.
    pub zc_threshold_penalty: f64,
    /// Floor for the threshold scale: even a hostile neighbour cannot
    /// erase the LLC entirely.
    pub min_threshold_scale: f64,
}

impl InterferenceConfig {
    /// Device-appropriate defaults. Non-I/O-coherent boards (Nano, TX2)
    /// also lose the CPU LLC under a zero-copy neighbour, so the bypass
    /// penalty is harsher there.
    pub fn for_device(device: &DeviceProfile) -> Self {
        InterferenceConfig {
            zc_threshold_penalty: if device.is_io_coherent() { 0.8 } else { 1.4 },
            min_threshold_scale: 0.25,
        }
    }
}

impl Default for InterferenceConfig {
    fn default() -> Self {
        InterferenceConfig {
            zc_threshold_penalty: 1.0,
            min_threshold_scale: 0.25,
        }
    }
}

/// Per-tenant outcome of the closed-form interference model.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantInterference {
    /// The tenant's own channel utilization, `[0, 1]`.
    pub channel_util: f64,
    /// Predicted co-run wall time of one job.
    pub wall_co: Picos,
    /// `wall_co / wall_solo`, `>= 1`.
    pub slowdown: f64,
    /// Fraction of the tenant's wanted LLC ways it is granted, `(0, 1]`.
    /// `1.0` when the combined pressure fits (or the tenant bypasses).
    pub llc_grant: f64,
    /// Multiplier on the tenant's effective `GPU_Cache_Threshold` under
    /// this co-run set, `[min_threshold_scale, 1]`. `1.0` for bypassing
    /// tenants, whose hit rate is already zero by construction.
    pub threshold_scale: f64,
}

/// The closed-form N-tenant interference model.
///
/// The memory-bound fraction `u_i` of tenant *i*'s timeline is stretched
/// by the combined channel demand `f = max(1, Σ u_j)`; the compute-bound
/// remainder is unaffected:
///
/// ```text
/// wall_co_i = wall_solo_i * ((1 - u_i) + u_i * f)
/// ```
///
/// Cache-enabled tenants additionally split the GPU LLC: if the combined
/// wanted pressure `W = Σ llc_pressure_j` exceeds the cache, every
/// claimant is granted a `1/W` share of what it wanted. Bypassing
/// neighbours shrink the survivors' effective cache threshold by
/// `1 / (1 + penalty * Σ u_zc)`. A shrunk threshold feeds back into the
/// channel: the lost fraction of the tenant's LLC hits
/// (`llc_spill_busy * (1 - threshold_scale)`) is charged as extra busy
/// time before the stretch factor is computed.
///
/// A single tenant (or an unsaturated channel) is returned untouched:
/// slowdown 1, full grant, unit threshold scale.
pub fn co_run_interference(
    tenants: &[TenantDemand],
    config: &InterferenceConfig,
) -> Vec<TenantInterference> {
    let (grants, scales) = cache_coupling(tenants, config);
    let utils = effective_utils(tenants, &scales);
    let total_util: f64 = utils.iter().sum();
    let stretch = total_util.max(1.0);
    tenants
        .iter()
        .enumerate()
        .map(|(i, tenant)| {
            let util = utils[i];
            let slowdown = 1.0 + util * (stretch - 1.0);
            let wall_co = tenant.wall_solo.scale(slowdown).max(tenant.wall_solo);
            TenantInterference {
                channel_util: util,
                wall_co,
                slowdown,
                llc_grant: grants[i],
                threshold_scale: scales[i],
            }
        })
        .collect()
}

/// First pass of the model: the LLC way grant and effective-threshold
/// scale of every tenant, computed from the *base* (unspilled) channel
/// demands.
fn cache_coupling(tenants: &[TenantDemand], config: &InterferenceConfig) -> (Vec<f64>, Vec<f64>) {
    let base_utils: Vec<f64> = tenants.iter().map(TenantDemand::channel_util).collect();
    let wanted: f64 = tenants
        .iter()
        .filter(|t| !t.bypasses_gpu_llc())
        .map(|t| t.llc_pressure.clamp(0.0, 1.0))
        .sum();
    let mut grants = Vec::with_capacity(tenants.len());
    let mut scales = Vec::with_capacity(tenants.len());
    for (i, tenant) in tenants.iter().enumerate() {
        let grant = if tenant.bypasses_gpu_llc() || wanted <= 1.0 {
            1.0
        } else {
            1.0 / wanted
        };
        let scale = if tenant.bypasses_gpu_llc() {
            1.0
        } else {
            let zc_util: f64 = tenants
                .iter()
                .enumerate()
                .filter(|(j, other)| *j != i && other.bypasses_gpu_llc())
                .map(|(j, _)| base_utils[j])
                .sum();
            (grant / (1.0 + config.zc_threshold_penalty * zc_util))
                .clamp(config.min_threshold_scale, 1.0)
        };
        grants.push(grant);
        scales.push(scale);
    }
    (grants, scales)
}

/// Second pass: channel utilizations with the spilled fraction of every
/// tenant's LLC hits charged back to the channel.
fn effective_utils(tenants: &[TenantDemand], scales: &[f64]) -> Vec<f64> {
    tenants
        .iter()
        .zip(scales)
        .map(|(tenant, &scale)| {
            let spilled = if tenant.bypasses_gpu_llc() {
                Picos::ZERO
            } else {
                tenant.llc_spill_busy.scale(1.0 - scale)
            };
            tenant.util_with_extra(spilled)
        })
        .collect()
}

/// Brute-force co-run oracle: exact piecewise simulation of the shared
/// channel.
///
/// Between completions the active set is fixed, so each active tenant
/// progresses through its own solo timeline at the constant rate
/// `1 / ((1 - u_i) + u_i * f_A)` where `f_A = max(1, Σ_{j active} u_j)`.
/// When a tenant finishes it leaves the channel and the survivors'
/// rates are recomputed. Returns each tenant's completion time (its
/// co-run wall, all tenants released together at t = 0).
///
/// Because contention only ever *drops* as tenants finish, the oracle
/// wall is never above the closed-form prediction and never below the
/// solo wall.
pub fn co_run_oracle(tenants: &[TenantDemand], config: &InterferenceConfig) -> Vec<Picos> {
    let (_, scales) = cache_coupling(tenants, config);
    let utils = effective_utils(tenants, &scales);
    let mut remaining: Vec<f64> = tenants.iter().map(|t| t.wall_solo.as_secs_f64()).collect();
    let mut finish = vec![Picos::ZERO; tenants.len()];
    let mut active: Vec<bool> = remaining.iter().map(|&r| r > 0.0).collect();
    let mut now = 0.0f64;
    while active.iter().any(|&a| a) {
        let total_util: f64 = utils
            .iter()
            .zip(&active)
            .filter(|(_, &a)| a)
            .map(|(&u, _)| u)
            .sum();
        let stretch = total_util.max(1.0);
        // Constant per-tenant progress rates until the next completion.
        let rates: Vec<f64> = utils
            .iter()
            .map(|&u| 1.0 / ((1.0 - u) + u * stretch))
            .collect();
        let mut step = f64::INFINITY;
        for i in 0..remaining.len() {
            if active[i] {
                step = step.min(remaining[i] / rates[i]);
            }
        }
        now += step;
        for i in 0..remaining.len() {
            if !active[i] {
                continue;
            }
            remaining[i] -= step * rates[i];
            // The minimum above guarantees at least one tenant hits zero;
            // the epsilon absorbs f64 rounding in the subtraction.
            if remaining[i] <= step * rates[i] * 1e-12 + f64::MIN_POSITIVE {
                active[i] = false;
                finish[i] = Picos::from_secs_f64(now).max(tenants[i].wall_solo);
            }
        }
    }
    finish
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demand(
        name: &str,
        model: CommModelKind,
        wall_us: u64,
        busy_us: u64,
        llc: f64,
    ) -> TenantDemand {
        TenantDemand {
            name: name.to_string(),
            model,
            wall_solo: Picos::from_micros(wall_us),
            dram_busy_solo: Picos::from_micros(busy_us),
            llc_pressure: llc,
            llc_spill_busy: Picos::ZERO,
        }
    }

    #[test]
    fn spilled_hits_raise_the_stretch() {
        let cfg = InterferenceConfig::default();
        let mut cache_user = demand("sc", CommModelKind::StandardCopy, 100, 40, 0.5);
        cache_user.llc_spill_busy = Picos::from_micros(40);
        let hog = demand("zc", CommModelKind::ZeroCopy, 100, 90, 0.0);
        let without_spill = co_run_interference(
            &[
                demand("sc", CommModelKind::StandardCopy, 100, 40, 0.5),
                hog.clone(),
            ],
            &cfg,
        );
        let with_spill = co_run_interference(&[cache_user, hog], &cfg);
        // The ZC neighbour shrinks the threshold, the lost hits hit DRAM,
        // and both tenants see a larger stretch for it.
        assert!(with_spill[0].wall_co > without_spill[0].wall_co);
        assert!(with_spill[1].wall_co > without_spill[1].wall_co);
        assert!(with_spill[0].threshold_scale < 1.0);
    }

    #[test]
    fn single_tenant_is_untouched() {
        let t = vec![demand("a", CommModelKind::StandardCopy, 100, 60, 0.4)];
        let out = co_run_interference(&t, &InterferenceConfig::default());
        assert_eq!(out[0].slowdown, 1.0);
        assert_eq!(out[0].wall_co, t[0].wall_solo);
        assert_eq!(out[0].llc_grant, 1.0);
        assert_eq!(out[0].threshold_scale, 1.0);
    }

    #[test]
    fn unsaturated_channel_keeps_solo_walls() {
        let t = vec![
            demand("a", CommModelKind::StandardCopy, 100, 30, 0.2),
            demand("b", CommModelKind::StandardCopy, 100, 40, 0.2),
        ];
        let out = co_run_interference(&t, &InterferenceConfig::default());
        for (o, d) in out.iter().zip(&t) {
            assert_eq!(o.slowdown, 1.0);
            assert_eq!(o.wall_co, d.wall_solo);
        }
        let oracle = co_run_oracle(&t, &InterferenceConfig::default());
        assert_eq!(oracle[0], t[0].wall_solo);
        assert_eq!(oracle[1], t[1].wall_solo);
    }

    #[test]
    fn saturated_channel_stretches_memory_fraction() {
        let t = vec![
            demand("a", CommModelKind::StandardCopy, 100, 80, 0.0),
            demand("b", CommModelKind::StandardCopy, 100, 80, 0.0),
        ];
        let out = co_run_interference(&t, &InterferenceConfig::default());
        // f = 1.6; slowdown = 1 + 0.8 * 0.6 = 1.48.
        assert!((out[0].slowdown - 1.48).abs() < 1e-12);
        assert_eq!(out[0].wall_co, Picos::from_micros(148));
    }

    #[test]
    fn oracle_below_model_above_solo() {
        let t = vec![
            demand("a", CommModelKind::StandardCopy, 50, 45, 0.3),
            demand("b", CommModelKind::ZeroCopy, 200, 120, 0.0),
            demand("c", CommModelKind::UnifiedMemory, 120, 70, 0.5),
        ];
        let cfg = InterferenceConfig::default();
        let model = co_run_interference(&t, &cfg);
        let oracle = co_run_oracle(&t, &cfg);
        for i in 0..t.len() {
            assert!(oracle[i] >= t[i].wall_solo, "tenant {i} beat solo");
            // One picosecond of slack for the f64 round-trip.
            assert!(
                oracle[i].as_picos() <= model[i].wall_co.as_picos() + 1,
                "oracle {} above model {} for tenant {i}",
                oracle[i],
                model[i].wall_co
            );
        }
        // The short memory-heavy tenant finishes first; survivors then
        // see less contention, so at least one oracle wall is strictly
        // below the closed form.
        assert!(oracle.iter().zip(&model).any(|(o, m)| *o < m.wall_co));
    }

    #[test]
    fn zc_neighbour_shrinks_threshold() {
        let cfg = InterferenceConfig::default();
        let quiet = vec![
            demand("a", CommModelKind::StandardCopy, 100, 50, 0.3),
            demand("b", CommModelKind::StandardCopy, 100, 50, 0.3),
        ];
        let hostile = vec![
            demand("a", CommModelKind::StandardCopy, 100, 50, 0.3),
            demand("b", CommModelKind::ZeroCopy, 100, 50, 0.0),
        ];
        let quiet_out = co_run_interference(&quiet, &cfg);
        let hostile_out = co_run_interference(&hostile, &cfg);
        assert!(hostile_out[0].threshold_scale < quiet_out[0].threshold_scale);
        // The bypassing tenant itself keeps a unit scale.
        assert_eq!(hostile_out[1].threshold_scale, 1.0);
    }

    #[test]
    fn llc_overcommit_splits_ways() {
        let t = vec![
            demand("a", CommModelKind::StandardCopy, 100, 10, 0.8),
            demand("b", CommModelKind::StandardCopy, 100, 10, 0.8),
        ];
        let out = co_run_interference(&t, &InterferenceConfig::default());
        // Wanted 1.6 > 1, so each is granted 1/1.6 of its ask.
        assert!((out[0].llc_grant - 0.625).abs() < 1e-12);
        assert!(out[0].threshold_scale < 1.0);
    }

    #[test]
    fn device_config_is_harsher_without_io_coherence() {
        let tx2 = InterferenceConfig::for_device(&DeviceProfile::jetson_tx2());
        let xavier = InterferenceConfig::for_device(&DeviceProfile::jetson_agx_xavier());
        assert!(tx2.zc_threshold_penalty > xavier.zc_threshold_penalty);
    }

    #[test]
    fn zero_wall_tenant_is_inert() {
        let t = vec![
            demand("empty", CommModelKind::StandardCopy, 0, 0, 0.0),
            demand("busy", CommModelKind::StandardCopy, 100, 90, 0.0),
        ];
        let cfg = InterferenceConfig::default();
        let out = co_run_interference(&t, &cfg);
        assert_eq!(out[0].wall_co, Picos::ZERO);
        assert_eq!(out[1].slowdown, 1.0);
        let oracle = co_run_oracle(&t, &cfg);
        assert_eq!(oracle[0], Picos::ZERO);
        assert_eq!(oracle[1], t[1].wall_solo);
    }

    proptest::proptest! {
        #[test]
        fn prop_model_bounds(
            walls in proptest::collection::vec(1u64..1_000_000, 1..5),
            busy_fracs in proptest::collection::vec(0.0f64..1.0, 4..5),
            llcs in proptest::collection::vec(0.0f64..1.5, 4..5),
            zc_mask in proptest::collection::vec(proptest::bool::ANY, 4..5),
        ) {
            let cfg = InterferenceConfig::default();
            let tenants: Vec<TenantDemand> = walls
                .iter()
                .enumerate()
                .map(|(i, &w)| TenantDemand {
                    name: format!("t{i}"),
                    model: if zc_mask[i % 4] {
                        CommModelKind::ZeroCopy
                    } else {
                        CommModelKind::StandardCopy
                    },
                    wall_solo: Picos::from_micros(w),
                    dram_busy_solo: Picos::from_micros(w).scale(busy_fracs[i % 4]),
                    llc_pressure: llcs[i % 4],
                    llc_spill_busy: Picos::from_micros(w).scale(llcs[i % 4] * 0.25),
                })
                .collect();
            let model = co_run_interference(&tenants, &cfg);
            let oracle = co_run_oracle(&tenants, &cfg);
            for (i, t) in tenants.iter().enumerate() {
                // Slowdown at least one, wall never below solo.
                proptest::prop_assert!(model[i].slowdown >= 1.0);
                proptest::prop_assert!(model[i].wall_co >= t.wall_solo);
                // Oracle bracketed by solo and the closed form (1 ps slack
                // for the f64 round-trip per completion event).
                proptest::prop_assert!(oracle[i] >= t.wall_solo);
                proptest::prop_assert!(
                    oracle[i].as_picos() <= model[i].wall_co.as_picos() + tenants.len() as u64
                );
                // Scales live in their documented ranges.
                proptest::prop_assert!(model[i].llc_grant > 0.0 && model[i].llc_grant <= 1.0);
                proptest::prop_assert!(
                    model[i].threshold_scale >= cfg.min_threshold_scale - 1e-12
                        && model[i].threshold_scale <= 1.0
                );
            }
        }

        #[test]
        fn prop_adding_a_tenant_never_helps(
            wall_a in 1u64..1_000_000,
            busy_a in 0.0f64..1.0,
            wall_b in 1u64..1_000_000,
            busy_b in 0.0f64..1.0,
        ) {
            let cfg = InterferenceConfig::default();
            let a = TenantDemand {
                name: "a".to_string(),
                model: CommModelKind::StandardCopy,
                wall_solo: Picos::from_micros(wall_a),
                dram_busy_solo: Picos::from_micros(wall_a).scale(busy_a),
                llc_pressure: 0.5,
                llc_spill_busy: Picos::from_micros(wall_a).scale(0.1),
            };
            let b = TenantDemand {
                name: "b".to_string(),
                model: CommModelKind::ZeroCopy,
                wall_solo: Picos::from_micros(wall_b),
                dram_busy_solo: Picos::from_micros(wall_b).scale(busy_b),
                llc_pressure: 0.0,
                llc_spill_busy: Picos::ZERO,
            };
            let alone = co_run_interference(std::slice::from_ref(&a), &cfg);
            let together = co_run_interference(&[a.clone(), b], &cfg);
            proptest::prop_assert!(together[0].wall_co >= alone[0].wall_co);
            proptest::prop_assert!(together[0].threshold_scale <= alone[0].threshold_scale);
        }
    }
}
