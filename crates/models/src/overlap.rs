//! Overlapped-execution timing for the tiled zero-copy pipeline.
//!
//! Given the standalone times of the CPU and GPU halves of an iteration,
//! the pipeline's wall time is bounded below by three quantities:
//!
//! 1. the slower agent (perfect overlap cannot beat `max(t_cpu, t_gpu)`),
//! 2. the phase barriers (each hand-off costs a synchronization),
//! 3. DRAM contention: the agents share one memory channel, so the wall
//!    time can never be shorter than their combined channel occupancy.
//!
//! The model takes the maximum of the three, which matches the behaviour
//! the paper exploits in its third micro-benchmark: balanced CPU/GPU tasks
//! overlap almost perfectly until the DRAM channel saturates.

use icomm_soc::units::Picos;

/// Inputs to the overlap computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OverlapInputs {
    /// Standalone CPU-half time.
    pub cpu_time: Picos,
    /// Standalone GPU-half time.
    pub gpu_time: Picos,
    /// DRAM channel occupancy of the CPU half.
    pub cpu_dram_occupancy: Picos,
    /// DRAM channel occupancy of the GPU half.
    pub gpu_dram_occupancy: Picos,
    /// Phases per iteration.
    pub phases: u32,
    /// Cost per phase barrier.
    pub barrier_cost: Picos,
}

/// Result of the overlap computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OverlapOutcome {
    /// Pipelined wall time of the iteration.
    pub wall: Picos,
    /// Wall time saved versus serial execution.
    pub saved: Picos,
    /// Total barrier cost included in `wall`.
    pub barrier_total: Picos,
    /// Whether DRAM contention (rather than the slower agent) set the wall
    /// time.
    pub contention_bound: bool,
}

/// Computes the pipelined wall time of one iteration.
///
/// # Examples
///
/// ```
/// use icomm_models::overlap::{overlapped_wall, OverlapInputs};
/// use icomm_soc::units::Picos;
///
/// let out = overlapped_wall(OverlapInputs {
///     cpu_time: Picos::from_micros(100),
///     gpu_time: Picos::from_micros(100),
///     cpu_dram_occupancy: Picos::from_micros(10),
///     gpu_dram_occupancy: Picos::from_micros(10),
///     phases: 2,
///     barrier_cost: Picos::from_micros(1),
/// });
/// // Balanced halves overlap almost perfectly.
/// assert_eq!(out.wall, Picos::from_micros(102));
/// assert_eq!(out.saved, Picos::from_micros(98));
/// ```
pub fn overlapped_wall(inputs: OverlapInputs) -> OverlapOutcome {
    let serial = inputs.cpu_time + inputs.gpu_time;
    let barrier_total = inputs.barrier_cost * inputs.phases as u64;
    let ideal = inputs.cpu_time.max(inputs.gpu_time) + barrier_total;
    let contention_floor = inputs.cpu_dram_occupancy + inputs.gpu_dram_occupancy;
    let wall = ideal.max(contention_floor);
    // Overlapping never takes longer than running serially with barriers.
    let wall = wall.min(serial + barrier_total);
    OverlapOutcome {
        wall,
        saved: serial.saturating_sub(wall),
        barrier_total,
        contention_bound: contention_floor > ideal,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(n: u64) -> Picos {
        Picos::from_micros(n)
    }

    fn inputs(cpu: u64, gpu: u64) -> OverlapInputs {
        OverlapInputs {
            cpu_time: us(cpu),
            gpu_time: us(gpu),
            cpu_dram_occupancy: Picos::ZERO,
            gpu_dram_occupancy: Picos::ZERO,
            phases: 2,
            barrier_cost: us(1),
        }
    }

    #[test]
    fn balanced_halves_overlap_fully() {
        let out = overlapped_wall(inputs(50, 50));
        assert_eq!(out.wall, us(52));
        assert_eq!(out.saved, us(48));
        assert!(!out.contention_bound);
    }

    #[test]
    fn imbalanced_halves_bound_by_slower() {
        let out = overlapped_wall(inputs(10, 90));
        assert_eq!(out.wall, us(92));
        assert_eq!(out.saved, us(8));
    }

    #[test]
    fn contention_floor_applies() {
        let mut i = inputs(50, 50);
        i.cpu_dram_occupancy = us(80);
        i.gpu_dram_occupancy = us(80);
        let out = overlapped_wall(i);
        // Contention floor (160) exceeds serial + barriers (102), so the
        // cap applies.
        assert_eq!(out.wall, us(102));
        assert!(out.contention_bound);
    }

    #[test]
    fn contention_never_exceeds_serial() {
        let mut i = inputs(10, 10);
        i.cpu_dram_occupancy = us(500);
        i.gpu_dram_occupancy = us(500);
        let out = overlapped_wall(i);
        // Serial execution already paid the occupancy inside cpu/gpu times;
        // the pipeline cannot be slower than serial + barriers.
        assert_eq!(out.wall, us(22));
    }

    #[test]
    fn zero_work_costs_barriers_only() {
        let out = overlapped_wall(inputs(0, 0));
        assert_eq!(out.wall, us(2));
        assert_eq!(out.saved, Picos::ZERO);
    }

    proptest::proptest! {
        #[test]
        fn prop_wall_bounds(
            cpu in 0u64..1_000_000,
            gpu in 0u64..1_000_000,
            occ_c in 0u64..1_000_000,
            occ_g in 0u64..1_000_000,
        ) {
            let i = OverlapInputs {
                cpu_time: Picos(cpu),
                gpu_time: Picos(gpu),
                cpu_dram_occupancy: Picos(occ_c),
                gpu_dram_occupancy: Picos(occ_g),
                phases: 2,
                barrier_cost: Picos(100),
            };
            let out = overlapped_wall(i);
            let serial = Picos(cpu + gpu);
            // Never faster than the slower agent, never slower than serial
            // plus barriers.
            proptest::prop_assert!(out.wall >= Picos(cpu.max(gpu)));
            proptest::prop_assert!(out.wall <= serial + out.barrier_total);
            proptest::prop_assert_eq!(out.saved, serial.saturating_sub(out.wall));
        }

        #[test]
        fn prop_contention_floor_respected(
            cpu in 0u64..1_000_000,
            gpu in 0u64..1_000_000,
            occ_c in 0u64..1_000_000,
            occ_g in 0u64..1_000_000,
            phases in 0u32..8,
            barrier in 0u64..10_000,
        ) {
            let i = OverlapInputs {
                cpu_time: Picos(cpu),
                gpu_time: Picos(gpu),
                cpu_dram_occupancy: Picos(occ_c),
                gpu_dram_occupancy: Picos(occ_g),
                phases,
                barrier_cost: Picos(barrier),
            };
            let out = overlapped_wall(i);
            let serial = Picos(cpu + gpu);
            let floor = Picos(occ_c + occ_g);
            // The wall respects the contention floor except where the
            // serial cap applies: serial execution already paid the
            // occupancy inside the agent times.
            proptest::prop_assert!(out.wall >= floor.min(serial + out.barrier_total));
            // Accounting identity: saved + wall = serial whenever overlap
            // wins anything; otherwise saved saturates at zero.
            if out.wall <= serial {
                proptest::prop_assert_eq!(out.saved + out.wall, serial);
            } else {
                proptest::prop_assert_eq!(out.saved, Picos::ZERO);
            }
            // contention_bound is consistent with the floor comparison.
            let ideal = Picos(cpu.max(gpu)) + out.barrier_total;
            proptest::prop_assert_eq!(out.contention_bound, floor > ideal);
            if out.contention_bound {
                proptest::prop_assert_eq!(out.wall, floor.min(serial + out.barrier_total));
            }
        }

        #[test]
        fn prop_wall_monotone_in_phases_and_barriers(
            cpu in 0u64..1_000_000,
            gpu in 0u64..1_000_000,
            occ_c in 0u64..500_000,
            occ_g in 0u64..500_000,
            phases in 0u32..8,
            barrier in 0u64..10_000,
        ) {
            let base = OverlapInputs {
                cpu_time: Picos(cpu),
                gpu_time: Picos(gpu),
                cpu_dram_occupancy: Picos(occ_c),
                gpu_dram_occupancy: Picos(occ_g),
                phases,
                barrier_cost: Picos(barrier),
            };
            let out = overlapped_wall(base);
            let mut more_phases = base;
            more_phases.phases += 1;
            proptest::prop_assert!(overlapped_wall(more_phases).wall >= out.wall);
            let mut pricier_barrier = base;
            pricier_barrier.barrier_cost = Picos(barrier + 1);
            proptest::prop_assert!(overlapped_wall(pricier_barrier).wall >= out.wall);
        }
    }
}
