//! Address-space layout used by the communication models.
//!
//! Workload patterns address the shared buffer by offset. Each model maps
//! those offsets into the physical regions it allocates:
//!
//! - **Standard copy** keeps two partitions (CPU-side and GPU-side) and
//!   copies between them, so producer and consumer touch *different*
//!   addresses.
//! - **Unified memory** exposes one region to both agents; the driver
//!   migrates pages between the logical halves, which the simulator models
//!   as cost rather than address changes.
//! - **Zero copy** exposes one *pinned* region to both agents.
//!
//! The bases are spaced far apart so partitions never alias in the caches.

use icomm_soc::request::MemRequest;

/// Base address of the CPU-side partition (standard copy).
pub const CPU_PARTITION_BASE: u64 = 0x1000_0000;
/// Base address of the GPU-side partition (standard copy).
pub const GPU_PARTITION_BASE: u64 = 0x5000_0000;
/// Base address of the unified (managed) region.
pub const UNIFIED_BASE: u64 = 0x9000_0000;
/// Base address of the pinned zero-copy region.
pub const PINNED_BASE: u64 = 0xD000_0000;
/// Base address of CPU-private scratch data.
pub const CPU_PRIVATE_BASE: u64 = 0x2_0000_0000;
/// Base address of GPU-private scratch data.
pub const GPU_PRIVATE_BASE: u64 = 0x3_0000_0000;

/// Rebases a request stream by adding `base` to every address.
pub fn rebase(
    iter: impl Iterator<Item = MemRequest>,
    base: u64,
) -> impl Iterator<Item = MemRequest> {
    iter.map(move |mut r| {
        r.addr += base;
        r
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use icomm_soc::hierarchy::MemSpace;

    #[test]
    fn rebase_shifts_addresses() {
        let reqs = vec![
            MemRequest::read(0, 64, MemSpace::Cached),
            MemRequest::write(128, 64, MemSpace::Cached),
        ];
        let shifted: Vec<_> = rebase(reqs.into_iter(), 0x1000).collect();
        assert_eq!(shifted[0].addr, 0x1000);
        assert_eq!(shifted[1].addr, 0x1080);
    }

    #[test]
    fn bases_are_disjoint() {
        let bases = [
            CPU_PARTITION_BASE,
            GPU_PARTITION_BASE,
            UNIFIED_BASE,
            PINNED_BASE,
        ];
        for w in bases.windows(2) {
            // At least 1 GiB of room for each region.
            assert!(w[1] - w[0] >= 0x4000_0000);
        }
    }
}
