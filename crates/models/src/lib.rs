//! # icomm-models — CPU-iGPU communication models
//!
//! Executable models of the three communication schemes the paper compares,
//! driven against the `icomm-soc` simulator:
//!
//! - [`standard_copy::StandardCopy`] (SC): explicit copies between CPU and
//!   GPU partitions, caches fully enabled, coherence by flushing.
//! - [`unified_memory::UnifiedMemory`] (UM): one managed space with
//!   on-demand page migration; performs within a few percent of SC.
//! - [`zero_copy::ZeroCopy`] (ZC): one pinned allocation accessed
//!   concurrently, no copies, caches bypassed per the device's zero-copy
//!   rules; optionally overlapped with the paper's tiled communication
//!   pattern ([`tiling`]).
//!
//! A [`workload::Workload`] describes *what* an application does; a
//! [`model::CommModel`] decides *how* its data moves, and returns a
//! [`report::RunReport`] with the timing decomposition the performance
//! model consumes.
//!
//! Extensions beyond the paper: [`async_copy::DoubleBufferedCopy`] (SC
//! with double buffering), [`coherent_upm::CoherentUpm`] (UPM:
//! hardware-coherent system allocation on APU-class parts — no
//! migration, placement- and page-size-dependent fill costs),
//! [`tiled_exec`] (phase-by-phase execution of
//! the Fig. 4 pattern), [`stream`] (real-time frame streams with deadline
//! accounting), [`phased`] (phased workloads plus the windowed
//! execution harness the `icomm-adapt` online controller runs on), and
//! [`interference`] (N-tenant co-run slowdown and cache-threshold
//! coupling on the shared DRAM channel, the base of `icomm-sched`).
//!
//! # Example
//!
//! ```
//! use icomm_models::model::{run_model, CommModelKind};
//! use icomm_models::workload::{CpuPhase, GpuPhase, Workload};
//! use icomm_soc::cache::AccessKind;
//! use icomm_soc::units::ByteSize;
//! use icomm_soc::DeviceProfile;
//! use icomm_trace::Pattern;
//!
//! let w = Workload::builder("stream")
//!     .bytes_to_gpu(ByteSize::kib(256))
//!     .gpu(GpuPhase {
//!         compute_work: 1 << 16,
//!         shared_accesses: Pattern::Linear {
//!             start: 0,
//!             bytes: 256 * 1024,
//!             txn_bytes: 64,
//!             kind: AccessKind::Read,
//!         },
//!         private_accesses: None,
//!     })
//!     .build();
//! let device = DeviceProfile::jetson_tx2();
//! let sc = run_model(CommModelKind::StandardCopy, &device, &w);
//! let zc = run_model(CommModelKind::ZeroCopy, &device, &w);
//! assert!(zc.copy_time < sc.copy_time);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod async_copy;
pub mod coherent_upm;
pub mod interference;
pub mod layout;
pub mod model;
pub mod overlap;
pub mod phased;
pub mod report;
pub mod standard_copy;
pub mod stream;
pub mod tiled_exec;
pub mod tiling;
pub mod unified_memory;
pub mod workload;
pub mod zero_copy;

pub use interference::{
    co_run_interference, co_run_oracle, InterferenceConfig, TenantDemand, TenantInterference,
};
pub use model::{candidate_models, model_for, run_model, CommModel, CommModelKind};
pub use phased::{
    oracle_phased, run_phased, static_phased, switch_cost, switch_cost_for_payload,
    PhasedRunReport, PhasedWorkload, StaticPolicy, WindowOutcome, WindowPolicy, WorkloadPhase,
};
pub use report::RunReport;
pub use workload::{CpuPhase, GpuPhase, Workload};
