//! The **unified memory (UM)** communication model.
//!
//! CPU and GPU address one managed allocation through the same pointers.
//! The runtime driver keeps the illusion coherent with on-demand page
//! migration: when the kernel first touches a page that is CPU-resident the
//! driver flushes it out of the CPU caches and migrates it (physically a
//! DRAM-to-DRAM move on these SoCs), and symmetrically on CPU read-back.
//!
//! The driver escalates migration granularity with speculative prefetching
//! ([`icomm_soc::device::UmConfig::migration_chunk_bytes`]), which keeps UM
//! within a few percent of SC across payload sizes — the paper measures the
//! difference at ±8 % and treats the two models as equivalent for tuning
//! purposes.

use icomm_soc::hierarchy::MemSpace;
use icomm_soc::units::{Bandwidth, ByteSize, Picos};
use icomm_soc::Soc;

use crate::layout::{rebase, CPU_PRIVATE_BASE, GPU_PRIVATE_BASE, UNIFIED_BASE};
use crate::model::{CommModel, CommModelKind};
use crate::report::RunReport;
use crate::workload::Workload;

/// The unified-memory model.
///
/// # Examples
///
/// ```
/// use icomm_models::model::{CommModel, CommModelKind};
/// use icomm_models::unified_memory::UnifiedMemory;
///
/// assert_eq!(UnifiedMemory::new().kind(), CommModelKind::UnifiedMemory);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UnifiedMemory;

impl UnifiedMemory {
    /// Creates the model.
    pub fn new() -> Self {
        UnifiedMemory
    }

    /// Cost of migrating `bytes` between the logical halves: fault-group
    /// servicing plus a DRAM-to-DRAM move. Traffic is charged to DRAM and
    /// the busy time to the copy engine.
    fn migrate(&self, soc: &mut Soc, bytes: ByteSize) -> Picos {
        if bytes.as_u64() == 0 {
            return Picos::ZERO;
        }
        let um = soc.profile().um;
        let dram_peak = soc.profile().dram.peak_bandwidth;
        let engine_bw = soc.profile().copy_engine.bandwidth;
        let effective = Bandwidth(
            engine_bw
                .as_bytes_per_sec()
                .min(dram_peak.as_bytes_per_sec() / 2),
        );
        let chunks = bytes.as_u64().div_ceil(um.migration_chunk_bytes.max(1));
        let fault_time = um.fault_cost * chunks;
        let transfer = effective.transfer_time(bytes);
        // Page moves read the source and write the destination.
        let _ = soc.mem_mut().dram_mut().read(bytes);
        let _ = soc.mem_mut().dram_mut().write(bytes);
        soc.charge_cpu_overhead(fault_time); // faults are serviced by the CPU
        soc.charge_copy_overhead(transfer);
        fault_time + transfer
    }
}

impl CommModel for UnifiedMemory {
    fn kind(&self) -> CommModelKind {
        CommModelKind::UnifiedMemory
    }

    fn run(&self, soc: &mut Soc, workload: &Workload) -> RunReport {
        let before = soc.snapshot();
        let um = soc.profile().um;
        let mut total_time = Picos::ZERO;
        let mut copy_time = Picos::ZERO;
        let mut kernel_time = Picos::ZERO;
        let mut cpu_time = Picos::ZERO;

        for _ in 0..workload.iterations {
            // 1. CPU works on the managed allocation through its caches.
            let cpu_reqs = rebase(
                workload.cpu.shared_accesses.requests(MemSpace::Cached),
                UNIFIED_BASE,
            );
            let cpu_result = if let Some(private) = &workload.cpu.private_accesses {
                let private_reqs = rebase(private.requests(MemSpace::Cached), CPU_PRIVATE_BASE);
                soc.run_cpu_task(&workload.cpu.ops, cpu_reqs.chain(private_reqs))
            } else {
                soc.run_cpu_task(&workload.cpu.ops, cpu_reqs)
            };
            cpu_time += cpu_result.time;

            // 2. Driver migrates CPU-resident pages to the GPU half.
            if workload.bytes_to_gpu.as_u64() > 0 {
                let flush = soc.flush_cpu_caches();
                copy_time += flush.time;
                copy_time += self.migrate(soc, workload.bytes_to_gpu);
            }
            copy_time += um.kernel_overhead;
            soc.charge_cpu_overhead(um.kernel_overhead);

            // 3. Kernel works on the managed allocation through GPU caches.
            let gpu_reqs = rebase(
                workload.gpu.shared_accesses.requests(MemSpace::Cached),
                UNIFIED_BASE,
            );
            let kernel = if let Some(private) = &workload.gpu.private_accesses {
                let private_reqs = rebase(private.requests(MemSpace::Cached), GPU_PRIVATE_BASE);
                soc.run_kernel(workload.gpu.compute_work, gpu_reqs.chain(private_reqs))
            } else {
                soc.run_kernel(workload.gpu.compute_work, gpu_reqs)
            };
            kernel_time += kernel.time;

            // 4. Results fault back to the CPU on first touch.
            if workload.bytes_from_gpu.as_u64() > 0 {
                let flush = soc.invalidate_gpu_caches();
                copy_time += flush.time;
                copy_time += self.migrate(soc, workload.bytes_from_gpu);
            }

            total_time += cpu_result.time + kernel.time;
        }
        total_time += copy_time;

        let counters = soc.snapshot().delta(&before);
        RunReport {
            model: self.kind(),
            workload: workload.name.clone(),
            iterations: workload.iterations,
            total_time,
            copy_time,
            kernel_time,
            cpu_time,
            sync_time: Picos::ZERO,
            overlap_saved: Picos::ZERO,
            energy: counters.energy,
            counters,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icomm_soc::cache::AccessKind;
    use icomm_soc::DeviceProfile;
    use icomm_trace::Pattern;

    use crate::model::run_model;
    use crate::workload::{CpuPhase, GpuPhase};

    fn workload(bytes: u64) -> Workload {
        Workload::builder("um-test")
            .bytes_to_gpu(ByteSize(bytes))
            .bytes_from_gpu(ByteSize(bytes))
            .cpu(CpuPhase {
                ops: vec![],
                shared_accesses: Pattern::Linear {
                    start: 0,
                    bytes,
                    txn_bytes: 64,
                    kind: AccessKind::Write,
                },
                private_accesses: None,
            })
            .gpu(GpuPhase {
                compute_work: 1 << 16,
                shared_accesses: Pattern::Linear {
                    start: 0,
                    bytes,
                    txn_bytes: 64,
                    kind: AccessKind::Read,
                },
                private_accesses: None,
            })
            .iterations(2)
            .build()
    }

    #[test]
    fn um_close_to_sc_small_payload() {
        let device = DeviceProfile::jetson_tx2();
        let w = workload(1 << 20);
        let sc = run_model(CommModelKind::StandardCopy, &device, &w);
        let um = run_model(CommModelKind::UnifiedMemory, &device, &w);
        let rel = (um.total_time.as_picos() as f64 - sc.total_time.as_picos() as f64).abs()
            / sc.total_time.as_picos() as f64;
        assert!(rel < 0.08, "UM deviates from SC by {:.1}%", rel * 100.0);
    }

    #[test]
    fn um_close_to_sc_large_payload() {
        let device = DeviceProfile::jetson_agx_xavier();
        // 32 MiB payload with a light kernel: transfer dominated.
        let mut w = workload(1 << 25);
        w.iterations = 1;
        let sc = run_model(CommModelKind::StandardCopy, &device, &w);
        let um = run_model(CommModelKind::UnifiedMemory, &device, &w);
        let rel = (um.total_time.as_picos() as f64 - sc.total_time.as_picos() as f64).abs()
            / sc.total_time.as_picos() as f64;
        assert!(rel < 0.08, "UM deviates from SC by {:.1}%", rel * 100.0);
    }

    #[test]
    fn migration_charges_dram_traffic() {
        let device = DeviceProfile::jetson_tx2();
        let um = run_model(CommModelKind::UnifiedMemory, &device, &workload(1 << 20));
        // Each direction moves the payload once per iteration: read+write.
        assert!(um.counters.dram.bytes_read >= 2 * (1 << 20));
        assert!(um.counters.dram.bytes_written >= 2 * (1 << 20));
    }

    #[test]
    fn kernel_uses_gpu_caches() {
        let device = DeviceProfile::jetson_tx2();
        let um = run_model(CommModelKind::UnifiedMemory, &device, &workload(1 << 18));
        assert!(um.counters.gpu_l1.accesses() > 0);
    }
}
