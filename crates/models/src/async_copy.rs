//! Extension: **double-buffered standard copy (SC-async)**.
//!
//! The paper's SC model serializes produce → copy → kernel → copy-back.
//! A common mitigation on real pipelines is double buffering with an
//! asynchronous DMA: while the kernel crunches frame *i*, the CPU produces
//! frame *i+1* into the second buffer and the copy engine streams it over.
//! In steady state the iteration wall time becomes
//!
//! ```text
//! t_iter = max(t_cpu + t_copies, t_kernel) + t_sync
//! ```
//!
//! floored by the combined DRAM occupancy (copy traffic and kernel traffic
//! share one memory controller).
//!
//! This model is not part of the paper's evaluation; it exists to answer a
//! question the paper raises implicitly: *how much of zero copy's win is
//! overlap, and how much is copy elimination?* On the AGX Xavier the
//! answer (see the `ablation_async_copy` bench) is that double buffering
//! recovers most of the overlap benefit but none of the copy-energy
//! savings, and it costs a second buffer plus pipeline latency.

use icomm_soc::hierarchy::MemSpace;
use icomm_soc::units::Picos;
use icomm_soc::Soc;

use crate::layout::{
    rebase, CPU_PARTITION_BASE, CPU_PRIVATE_BASE, GPU_PARTITION_BASE, GPU_PRIVATE_BASE,
};
use crate::model::{CommModel, CommModelKind};
use crate::report::RunReport;
use crate::workload::Workload;

/// The double-buffered asynchronous-copy model.
///
/// # Examples
///
/// ```
/// use icomm_models::async_copy::DoubleBufferedCopy;
/// use icomm_models::model::{CommModel, CommModelKind};
///
/// assert_eq!(
///     DoubleBufferedCopy::new().kind(),
///     CommModelKind::StandardCopyAsync
/// );
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DoubleBufferedCopy {
    /// Per-iteration event synchronization (stream record/wait).
    sync_cost: Picos,
}

impl DoubleBufferedCopy {
    /// Creates the model.
    pub fn new() -> Self {
        DoubleBufferedCopy {
            sync_cost: Picos::from_micros(3),
        }
    }
}

impl Default for DoubleBufferedCopy {
    fn default() -> Self {
        DoubleBufferedCopy::new()
    }
}

impl CommModel for DoubleBufferedCopy {
    fn kind(&self) -> CommModelKind {
        CommModelKind::StandardCopyAsync
    }

    fn run(&self, soc: &mut Soc, workload: &Workload) -> RunReport {
        let before = soc.snapshot();
        let mut total_time = Picos::ZERO;
        let mut copy_time = Picos::ZERO;
        let mut kernel_time = Picos::ZERO;
        let mut cpu_time = Picos::ZERO;
        let mut sync_time = Picos::ZERO;
        let mut overlap_saved = Picos::ZERO;

        for _ in 0..workload.iterations {
            // Measure the same components as synchronous SC.
            let cpu_reqs = rebase(
                workload.cpu.shared_accesses.requests(MemSpace::Cached),
                CPU_PARTITION_BASE,
            );
            let cpu_result = if let Some(private) = &workload.cpu.private_accesses {
                let private_reqs = rebase(private.requests(MemSpace::Cached), CPU_PRIVATE_BASE);
                soc.run_cpu_task(&workload.cpu.ops, cpu_reqs.chain(private_reqs))
            } else {
                soc.run_cpu_task(&workload.cpu.ops, cpu_reqs)
            };
            cpu_time += cpu_result.time;

            let mut iter_copy = Picos::ZERO;
            let mut copy_occupancy = Picos::ZERO;
            if workload.bytes_to_gpu.as_u64() > 0 {
                let flush = soc.flush_cpu_caches();
                iter_copy += flush.time;
                let h2d = soc.copy(workload.bytes_to_gpu);
                iter_copy += h2d.time;
                copy_occupancy += h2d.dram_occupancy;
            }

            let gpu_reqs = rebase(
                workload.gpu.shared_accesses.requests(MemSpace::Cached),
                GPU_PARTITION_BASE,
            );
            let kernel = if let Some(private) = &workload.gpu.private_accesses {
                let private_reqs = rebase(private.requests(MemSpace::Cached), GPU_PRIVATE_BASE);
                soc.run_kernel(workload.gpu.compute_work, gpu_reqs.chain(private_reqs))
            } else {
                soc.run_kernel(workload.gpu.compute_work, gpu_reqs)
            };
            kernel_time += kernel.time;

            if workload.bytes_from_gpu.as_u64() > 0 {
                let flush = soc.invalidate_gpu_caches();
                iter_copy += flush.time;
                let d2h = soc.copy(workload.bytes_from_gpu);
                iter_copy += d2h.time;
                copy_occupancy += d2h.dram_occupancy;
            }
            copy_time += iter_copy;

            // Steady-state pipelining: the CPU production and the copies
            // of the next frame hide behind the current kernel (or vice
            // versa), bounded below by DRAM contention.
            let producer_side = cpu_result.time + iter_copy;
            let serial = producer_side + kernel.time;
            let pipelined = producer_side
                .max(kernel.time)
                .max(copy_occupancy + kernel.dram_occupancy + cpu_result.dram_occupancy)
                + self.sync_cost;
            let wall = pipelined.min(serial + self.sync_cost);
            total_time += wall;
            sync_time += self.sync_cost;
            overlap_saved += serial.saturating_sub(wall);
        }

        let counters = soc.snapshot().delta(&before);
        RunReport {
            model: self.kind(),
            workload: workload.name.clone(),
            iterations: workload.iterations,
            total_time,
            copy_time,
            kernel_time,
            cpu_time,
            sync_time,
            overlap_saved,
            energy: counters.energy,
            counters,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icomm_soc::cache::AccessKind;
    use icomm_soc::units::ByteSize;
    use icomm_soc::DeviceProfile;
    use icomm_trace::Pattern;

    use crate::model::run_model;
    use crate::workload::{CpuPhase, GpuPhase};

    fn workload(bytes: u64) -> Workload {
        Workload::builder("async-test")
            .bytes_to_gpu(ByteSize(bytes))
            .bytes_from_gpu(ByteSize(bytes / 8))
            .cpu(CpuPhase {
                ops: vec![],
                shared_accesses: Pattern::Linear {
                    start: 0,
                    bytes,
                    txn_bytes: 64,
                    kind: AccessKind::Write,
                },
                private_accesses: None,
            })
            .gpu(GpuPhase {
                compute_work: 1 << 24,
                shared_accesses: Pattern::Linear {
                    start: 0,
                    bytes,
                    txn_bytes: 64,
                    kind: AccessKind::Read,
                },
                private_accesses: None,
            })
            .iterations(3)
            .build()
    }

    #[test]
    fn async_copy_beats_synchronous_sc() {
        let device = DeviceProfile::jetson_tx2();
        let w = workload(1 << 21);
        let sc = run_model(CommModelKind::StandardCopy, &device, &w);
        let sc_async = run_model(CommModelKind::StandardCopyAsync, &device, &w);
        assert!(
            sc_async.total_time < sc.total_time,
            "double buffering should hide copies: {} vs {}",
            sc_async.total_time,
            sc.total_time
        );
        assert!(sc_async.overlap_saved > Picos::ZERO);
    }

    #[test]
    fn async_copy_still_pays_copy_energy() {
        let device = DeviceProfile::jetson_agx_xavier();
        let w = workload(1 << 21);
        let sc_async = run_model(CommModelKind::StandardCopyAsync, &device, &w);
        let zc = run_model(CommModelKind::ZeroCopy, &device, &w);
        // The copies still exist (and still burn DRAM energy).
        assert!(sc_async.copy_time > Picos::ZERO);
        assert!(zc.counters.dram.bytes_total() < sc_async.counters.dram.bytes_total());
    }

    #[test]
    fn wall_time_bounded_by_components() {
        let device = DeviceProfile::jetson_nano();
        let w = workload(1 << 20);
        let r = run_model(CommModelKind::StandardCopyAsync, &device, &w);
        // Never faster than the kernel alone, never slower than serial SC.
        let sc = run_model(CommModelKind::StandardCopy, &device, &w);
        assert!(r.total_time >= r.kernel_time);
        assert!(r.total_time <= sc.total_time + r.sync_time);
    }
}
