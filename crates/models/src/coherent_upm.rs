//! The **hardware-coherent unified memory (UPM)** communication model.
//!
//! APU-class parts (MI300A, Grace Hopper) back `malloc`'d system memory
//! with a coherent fabric: CPU and GPU cache the same allocation and the
//! hardware keeps the caches coherent, so there is no page migration, no
//! driver fault servicing, and no maintenance flush around kernels. What
//! remains is the *topology*: an LLC miss fills from wherever the page
//! physically lives, paying the interconnect hop when that node is remote
//! to the accessor, plus the expected TLB walk when the shared footprint
//! exceeds TLB reach at the device's page size. Both costs come from
//! [`icomm_soc::DeviceProfile::topology`] via [`Soc::configure_upm`],
//! which is why huge pages move the UM-vs-UPM crossover: at 2 MiB pages
//! the reach covers working sets that thrash a 4 KiB-page TLB.
//!
//! On devices without hardware coherence (`supports_coherent_upm()` is
//! false — all the Jetson boards) a UPM request degrades to the driver's
//! software path: this model delegates to [`UnifiedMemory`] and re-stamps
//! the report, mirroring how `cudaMallocManaged` semantics are what you
//! actually get when you ask for system-allocated sharing there.

use icomm_soc::hierarchy::MemSpace;
use icomm_soc::units::{ByteSize, Picos};
use icomm_soc::Soc;

use crate::layout::{rebase, CPU_PRIVATE_BASE, GPU_PRIVATE_BASE, UNIFIED_BASE};
use crate::model::{CommModel, CommModelKind};
use crate::report::RunReport;
use crate::unified_memory::UnifiedMemory;
use crate::workload::Workload;

/// The hardware-coherent unified-memory model.
///
/// # Examples
///
/// ```
/// use icomm_models::coherent_upm::CoherentUpm;
/// use icomm_models::model::{CommModel, CommModelKind};
///
/// assert_eq!(CoherentUpm::new().kind(), CommModelKind::CoherentUpm);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoherentUpm;

impl CoherentUpm {
    /// Creates the model.
    pub fn new() -> Self {
        CoherentUpm
    }

    /// The shared working set the TLB and placement model should see:
    /// the larger of the declared exchange payload and the actual shared
    /// access footprints of the two phases.
    fn shared_footprint(workload: &Workload) -> ByteSize {
        let exchanged = workload.bytes_exchanged().as_u64();
        let cpu = workload.cpu.shared_accesses.footprint_bytes();
        let gpu = workload.gpu.shared_accesses.footprint_bytes();
        ByteSize(exchanged.max(cpu).max(gpu))
    }
}

impl CommModel for CoherentUpm {
    fn kind(&self) -> CommModelKind {
        CommModelKind::CoherentUpm
    }

    fn run(&self, soc: &mut Soc, workload: &Workload) -> RunReport {
        if !soc.profile().supports_coherent_upm() {
            // No coherent fabric: system-allocated sharing falls back to
            // the driver's migrating path. Keep the UPM stamp so callers
            // see which model they asked for.
            let mut report = UnifiedMemory::new().run(soc, workload);
            report.model = self.kind();
            return report;
        }

        let before = soc.snapshot();
        soc.configure_upm(Self::shared_footprint(workload));
        let mut total_time = Picos::ZERO;
        let mut kernel_time = Picos::ZERO;
        let mut cpu_time = Picos::ZERO;

        for _ in 0..workload.iterations {
            // 1. CPU works on the shared allocation through its caches;
            //    the fabric keeps the GPU's view coherent, so no flush.
            let cpu_reqs = rebase(
                workload.cpu.shared_accesses.requests(MemSpace::Upm),
                UNIFIED_BASE,
            );
            let cpu_result = if let Some(private) = &workload.cpu.private_accesses {
                let private_reqs = rebase(private.requests(MemSpace::Cached), CPU_PRIVATE_BASE);
                soc.run_cpu_task(&workload.cpu.ops, cpu_reqs.chain(private_reqs))
            } else {
                soc.run_cpu_task(&workload.cpu.ops, cpu_reqs)
            };
            cpu_time += cpu_result.time;

            // 2. Kernel reads the same physical pages; misses fill over
            //    the coherent fabric (remote hop + TLB walk are folded
            //    into the per-fill extra installed by configure_upm).
            let gpu_reqs = rebase(
                workload.gpu.shared_accesses.requests(MemSpace::Upm),
                UNIFIED_BASE,
            );
            let kernel = if let Some(private) = &workload.gpu.private_accesses {
                let private_reqs = rebase(private.requests(MemSpace::Cached), GPU_PRIVATE_BASE);
                soc.run_kernel(workload.gpu.compute_work, gpu_reqs.chain(private_reqs))
            } else {
                soc.run_kernel(workload.gpu.compute_work, gpu_reqs)
            };
            kernel_time += kernel.time;

            total_time += cpu_result.time + kernel.time;
        }
        soc.clear_upm();

        let counters = soc.snapshot().delta(&before);
        RunReport {
            model: self.kind(),
            workload: workload.name.clone(),
            iterations: workload.iterations,
            total_time,
            copy_time: Picos::ZERO,
            kernel_time,
            cpu_time,
            sync_time: Picos::ZERO,
            overlap_saved: Picos::ZERO,
            energy: counters.energy,
            counters,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icomm_soc::cache::AccessKind;
    use icomm_soc::{DeviceProfile, PageSize};
    use icomm_trace::Pattern;

    use crate::model::run_model;
    use crate::workload::{CpuPhase, GpuPhase};

    fn workload(bytes: u64) -> Workload {
        Workload::builder("upm-test")
            .bytes_to_gpu(ByteSize(bytes))
            .bytes_from_gpu(ByteSize(bytes))
            .cpu(CpuPhase {
                ops: vec![],
                shared_accesses: Pattern::Linear {
                    start: 0,
                    bytes,
                    txn_bytes: 64,
                    kind: AccessKind::Write,
                },
                private_accesses: None,
            })
            .gpu(GpuPhase {
                compute_work: 1 << 16,
                shared_accesses: Pattern::Linear {
                    start: 0,
                    bytes,
                    txn_bytes: 64,
                    kind: AccessKind::Read,
                },
                private_accesses: None,
            })
            .iterations(2)
            .build()
    }

    #[test]
    fn upm_never_copies_or_migrates() {
        let device = DeviceProfile::mi300a_like();
        let upm = run_model(CommModelKind::CoherentUpm, &device, &workload(1 << 23));
        assert_eq!(upm.copy_time, Picos::ZERO);
        assert_eq!(upm.counters.copy_engine.busy_time, Picos::ZERO);
    }

    #[test]
    fn upm_beats_um_under_huge_pages() {
        // With 2 MiB pages the 8 MiB working set is inside TLB reach, so
        // UPM pays nothing extra while UM still migrates both directions
        // every iteration.
        let device = DeviceProfile::mi300a_like().with_page_size(PageSize::Huge2M);
        let w = workload(1 << 23);
        let um = run_model(CommModelKind::UnifiedMemory, &device, &w);
        let upm = run_model(CommModelKind::CoherentUpm, &device, &w);
        assert!(
            upm.total_time < um.total_time,
            "UPM {} not below UM {}",
            upm.total_time,
            um.total_time
        );
    }

    #[test]
    fn small_pages_inflate_upm_kernel_time() {
        let w = workload(1 << 23);
        let small = run_model(
            CommModelKind::CoherentUpm,
            &DeviceProfile::mi300a_like().with_page_size(PageSize::Small4K),
            &w,
        );
        let huge = run_model(
            CommModelKind::CoherentUpm,
            &DeviceProfile::mi300a_like().with_page_size(PageSize::Huge2M),
            &w,
        );
        assert!(
            small.kernel_time > huge.kernel_time,
            "4K kernel {} not above 2M kernel {}",
            small.kernel_time,
            huge.kernel_time
        );
    }

    #[test]
    fn gh_like_gpu_pays_the_remote_hop() {
        // First-touch-CPU on the superchip homes the shared set in the
        // CPU's DDR node, so the GPU's fills cross the interconnect even
        // when the TLB reaches; the unified node on the APU pays nothing.
        let w = workload(1 << 21);
        let gh = run_model(
            CommModelKind::CoherentUpm,
            &DeviceProfile::gh_like().with_page_size(PageSize::Huge2M),
            &w,
        );
        assert!(gh.total_time > Picos::ZERO);
        let (_, gpu_extra) = {
            let mut soc = Soc::new(DeviceProfile::gh_like().with_page_size(PageSize::Huge2M));
            soc.configure_upm(ByteSize(1 << 21));
            soc.mem().upm_fill_extra()
        };
        assert!(gpu_extra > Picos::ZERO);
    }

    #[test]
    fn non_coherent_device_falls_back_to_um_timing() {
        let device = DeviceProfile::jetson_tx2();
        let w = workload(1 << 20);
        let um = run_model(CommModelKind::UnifiedMemory, &device, &w);
        let upm = run_model(CommModelKind::CoherentUpm, &device, &w);
        assert_eq!(upm.model, CommModelKind::CoherentUpm);
        assert_eq!(upm.total_time, um.total_time);
        assert_eq!(upm.copy_time, um.copy_time);
    }

    #[test]
    fn upm_extras_cleared_after_run() {
        let mut soc = Soc::new(DeviceProfile::mi300a_like());
        let _ = CoherentUpm::new().run(&mut soc, &workload(1 << 23));
        assert_eq!(soc.mem().upm_fill_extra(), (Picos::ZERO, Picos::ZERO));
    }
}
