//! Run reports: the timing decomposition a communication-model run
//! produces.

use serde::{Deserialize, Serialize};

use icomm_soc::stats::SocSnapshot;
use icomm_soc::units::{Energy, Picos};

use crate::model::CommModelKind;

/// Timing and counter summary of running a workload under one
/// communication model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Which model produced this report.
    pub model: CommModelKind,
    /// Workload name.
    pub workload: String,
    /// Iterations executed.
    pub iterations: u32,
    /// End-to-end wall time over all iterations.
    pub total_time: Picos,
    /// Time spent in CPU-iGPU data movement (copies, page migrations, and
    /// the cache flushes that make them coherent). Zero for zero-copy.
    pub copy_time: Picos,
    /// Total GPU kernel time.
    pub kernel_time: Picos,
    /// Total CPU task time.
    pub cpu_time: Picos,
    /// Synchronization / phase-barrier overhead.
    pub sync_time: Picos,
    /// Wall time hidden by CPU/GPU overlap (zero when phases serialize).
    pub overlap_saved: Picos,
    /// Energy consumed over all iterations.
    pub energy: Energy,
    /// Counter delta for the whole run.
    pub counters: SocSnapshot,
}

impl RunReport {
    /// Average wall time per iteration.
    pub fn time_per_iteration(&self) -> Picos {
        self.total_time / self.iterations.max(1) as u64
    }

    /// Average kernel time per iteration.
    pub fn kernel_time_per_iteration(&self) -> Picos {
        self.kernel_time / self.iterations.max(1) as u64
    }

    /// Average CPU task time per iteration.
    pub fn cpu_time_per_iteration(&self) -> Picos {
        self.cpu_time / self.iterations.max(1) as u64
    }

    /// Average communication time per iteration.
    pub fn copy_time_per_iteration(&self) -> Picos {
        self.copy_time / self.iterations.max(1) as u64
    }

    /// Average energy per second of simulated execution, in joules.
    pub fn power_watts(&self) -> f64 {
        let secs = self.total_time.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.energy.as_joules() / secs
        }
    }

    /// Speedup of `self` relative to `other` as a percentage, following the
    /// paper's convention: positive means `self` is faster
    /// (`(t_other / t_self - 1) * 100`).
    pub fn speedup_vs_percent(&self, other: &RunReport) -> f64 {
        let own = self.time_per_iteration().as_picos() as f64;
        let theirs = other.time_per_iteration().as_picos() as f64;
        if own == 0.0 {
            0.0
        } else {
            (theirs / own - 1.0) * 100.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(model: CommModelKind, total_us: u64, iterations: u32) -> RunReport {
        RunReport {
            model,
            workload: "t".into(),
            iterations,
            total_time: Picos::from_micros(total_us),
            copy_time: Picos::ZERO,
            kernel_time: Picos::from_micros(total_us / 2),
            cpu_time: Picos::from_micros(total_us / 4),
            sync_time: Picos::ZERO,
            overlap_saved: Picos::ZERO,
            energy: Energy::from_joules(0.001),
            counters: SocSnapshot::default(),
        }
    }

    #[test]
    fn per_iteration_averages() {
        let r = report(CommModelKind::StandardCopy, 1000, 10);
        assert_eq!(r.time_per_iteration(), Picos::from_micros(100));
        assert_eq!(r.kernel_time_per_iteration(), Picos::from_micros(50));
    }

    #[test]
    fn speedup_sign_convention() {
        let fast = report(CommModelKind::ZeroCopy, 500, 10);
        let slow = report(CommModelKind::StandardCopy, 1000, 10);
        assert!((fast.speedup_vs_percent(&slow) - 100.0).abs() < 1e-9);
        assert!((slow.speedup_vs_percent(&fast) + 50.0).abs() < 1e-9);
    }

    #[test]
    fn power_is_energy_over_time() {
        let r = report(CommModelKind::UnifiedMemory, 1_000_000, 1); // 1 s
        assert!((r.power_watts() - 0.001).abs() < 1e-9);
    }
}
