//! Strongly-typed physical quantities used throughout the simulator.
//!
//! The simulator keeps global time in integer **picoseconds** so that runs
//! are bit-exact reproducible regardless of the mix of clock domains (CPU,
//! GPU and memory controller all run at different frequencies on a Jetson
//! class device). Converting a cycle count of one domain into wall time is a
//! single integer multiplication, and accumulated time never suffers from
//! floating-point drift.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A duration in integer picoseconds.
///
/// `u64` picoseconds cover ~213 days, far beyond any simulated experiment.
///
/// # Examples
///
/// ```
/// use icomm_mem::units::Picos;
///
/// let t = Picos::from_micros(2) + Picos::from_nanos(500);
/// assert_eq!(t.as_nanos_f64(), 2500.0);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Picos(pub u64);

impl Picos {
    /// Zero duration.
    pub const ZERO: Picos = Picos(0);

    /// Creates a duration from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        Picos(ns * 1_000)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Picos(us * 1_000_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Picos(ms * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds, rounding to the nearest
    /// picosecond. Negative or non-finite inputs saturate to zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        if !secs.is_finite() || secs <= 0.0 {
            return Picos::ZERO;
        }
        Picos((secs * 1e12).round() as u64)
    }

    /// Returns the raw picosecond count.
    pub const fn as_picos(self) -> u64 {
        self.0
    }

    /// Converts to fractional nanoseconds.
    pub fn as_nanos_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Converts to fractional microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Converts to fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Converts to fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// Returns the larger of two durations.
    pub fn max(self, other: Picos) -> Picos {
        Picos(self.0.max(other.0))
    }

    /// Returns the smaller of two durations.
    pub fn min(self, other: Picos) -> Picos {
        Picos(self.0.min(other.0))
    }

    /// Saturating subtraction; clamps at zero instead of underflowing.
    pub fn saturating_sub(self, other: Picos) -> Picos {
        Picos(self.0.saturating_sub(other.0))
    }

    /// Whether the duration is exactly zero.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Scales the duration by a non-negative factor, rounding to the nearest
    /// picosecond. Non-finite or negative factors are treated as zero.
    pub fn scale(self, factor: f64) -> Picos {
        if !factor.is_finite() || factor <= 0.0 {
            return Picos::ZERO;
        }
        Picos((self.0 as f64 * factor).round() as u64)
    }
}

impl Add for Picos {
    type Output = Picos;
    fn add(self, rhs: Picos) -> Picos {
        Picos(self.0 + rhs.0)
    }
}

impl AddAssign for Picos {
    fn add_assign(&mut self, rhs: Picos) {
        self.0 += rhs.0;
    }
}

impl Sub for Picos {
    type Output = Picos;
    fn sub(self, rhs: Picos) -> Picos {
        Picos(self.0 - rhs.0)
    }
}

impl SubAssign for Picos {
    fn sub_assign(&mut self, rhs: Picos) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Picos {
    type Output = Picos;
    fn mul(self, rhs: u64) -> Picos {
        Picos(self.0 * rhs)
    }
}

impl Div<u64> for Picos {
    type Output = Picos;
    fn div(self, rhs: u64) -> Picos {
        Picos(self.0 / rhs)
    }
}

impl Sum for Picos {
    fn sum<I: Iterator<Item = Picos>>(iter: I) -> Picos {
        iter.fold(Picos::ZERO, Add::add)
    }
}

impl fmt::Display for Picos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3} ms", self.as_millis_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3} us", self.as_micros_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3} ns", self.as_nanos_f64())
        } else {
            write!(f, "{} ps", self.0)
        }
    }
}

/// A clock frequency in hertz.
///
/// # Examples
///
/// ```
/// use icomm_mem::units::Freq;
///
/// let f = Freq::mhz(1000);
/// assert_eq!(f.cycles_to_time(1000).as_nanos_f64(), 1000.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Freq(pub u64);

impl Freq {
    /// Creates a frequency from megahertz.
    pub const fn mhz(mhz: u64) -> Self {
        Freq(mhz * 1_000_000)
    }

    /// Creates a frequency from gigahertz (integer).
    pub const fn ghz(ghz: u64) -> Self {
        Freq(ghz * 1_000_000_000)
    }

    /// Returns the frequency in hertz.
    pub const fn as_hz(self) -> u64 {
        self.0
    }

    /// The period of one cycle.
    ///
    /// # Panics
    ///
    /// Panics if the frequency is zero.
    pub fn period(self) -> Picos {
        assert!(self.0 > 0, "zero frequency has no period");
        Picos(1_000_000_000_000 / self.0)
    }

    /// Converts a cycle count in this clock domain to wall time.
    pub fn cycles_to_time(self, cycles: u64) -> Picos {
        // Split to avoid overflow for large cycle counts: cycles * 1e12 / hz.
        let period_ps = 1_000_000_000_000u128;
        let t = (cycles as u128 * period_ps) / self.0 as u128;
        Picos(t as u64)
    }

    /// Converts a wall-time duration to (rounded-up) cycles of this domain.
    pub fn time_to_cycles(self, t: Picos) -> u64 {
        let num = t.0 as u128 * self.0 as u128;
        num.div_ceil(1_000_000_000_000) as u64
    }
}

impl Default for Freq {
    fn default() -> Self {
        Freq::ghz(1)
    }
}

impl fmt::Display for Freq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_multiple_of(1_000_000_000) {
            write!(f, "{} GHz", self.0 / 1_000_000_000)
        } else {
            write!(f, "{} MHz", self.0 / 1_000_000)
        }
    }
}

/// A byte count.
///
/// # Examples
///
/// ```
/// use icomm_mem::units::ByteSize;
///
/// assert_eq!(ByteSize::mib(2).as_u64(), 2 * 1024 * 1024);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ByteSize(pub u64);

impl ByteSize {
    /// Zero bytes.
    pub const ZERO: ByteSize = ByteSize(0);

    /// Creates a size in kibibytes.
    pub const fn kib(k: u64) -> Self {
        ByteSize(k * 1024)
    }

    /// Creates a size in mebibytes.
    pub const fn mib(m: u64) -> Self {
        ByteSize(m * 1024 * 1024)
    }

    /// Creates a size in gibibytes.
    pub const fn gib(g: u64) -> Self {
        ByteSize(g * 1024 * 1024 * 1024)
    }

    /// Returns the raw byte count.
    pub const fn as_u64(self) -> u64 {
        self.0
    }
}

impl Add for ByteSize {
    type Output = ByteSize;
    fn add(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0 + rhs.0)
    }
}

impl AddAssign for ByteSize {
    fn add_assign(&mut self, rhs: ByteSize) {
        self.0 += rhs.0;
    }
}

impl Sum for ByteSize {
    fn sum<I: Iterator<Item = ByteSize>>(iter: I) -> ByteSize {
        iter.fold(ByteSize::ZERO, Add::add)
    }
}

impl fmt::Display for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const KIB: u64 = 1024;
        const MIB: u64 = 1024 * KIB;
        const GIB: u64 = 1024 * MIB;
        if self.0 >= GIB && self.0.is_multiple_of(GIB) {
            write!(f, "{} GiB", self.0 / GIB)
        } else if self.0 >= MIB && self.0.is_multiple_of(MIB) {
            write!(f, "{} MiB", self.0 / MIB)
        } else if self.0 >= KIB && self.0.is_multiple_of(KIB) {
            write!(f, "{} KiB", self.0 / KIB)
        } else {
            write!(f, "{} B", self.0)
        }
    }
}

/// A memory bandwidth.
///
/// Stored as bytes per second so that `time = bytes / bandwidth` is a single
/// integer division.
///
/// # Examples
///
/// ```
/// use icomm_mem::units::{Bandwidth, ByteSize};
///
/// let bw = Bandwidth::gib_per_sec(1);
/// let t = bw.transfer_time(ByteSize::gib(1));
/// assert!((t.as_secs_f64() - 1.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Bandwidth(pub u64);

impl Bandwidth {
    /// Creates a bandwidth from gibibytes per second.
    pub const fn gib_per_sec(g: u64) -> Self {
        Bandwidth(g * 1024 * 1024 * 1024)
    }

    /// Creates a bandwidth from mebibytes per second.
    pub const fn mib_per_sec(m: u64) -> Self {
        Bandwidth(m * 1024 * 1024)
    }

    /// Creates a bandwidth from raw bytes per second.
    pub const fn bytes_per_sec(b: u64) -> Self {
        Bandwidth(b)
    }

    /// Returns the bandwidth in bytes per second.
    pub const fn as_bytes_per_sec(self) -> u64 {
        self.0
    }

    /// Returns the bandwidth in decimal gigabytes per second (the unit used
    /// by the paper's tables).
    pub fn as_gb_per_sec(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time to move `bytes` at this bandwidth (rounded up to a picosecond).
    ///
    /// # Panics
    ///
    /// Panics if the bandwidth is zero.
    pub fn transfer_time(self, bytes: ByteSize) -> Picos {
        assert!(self.0 > 0, "zero bandwidth cannot transfer data");
        let num = bytes.0 as u128 * 1_000_000_000_000u128;
        Picos(num.div_ceil(self.0 as u128) as u64)
    }

    /// Observed throughput for `bytes` moved in `time`; zero time yields
    /// zero throughput (rather than infinity) so reports stay finite.
    pub fn observed(bytes: ByteSize, time: Picos) -> Bandwidth {
        if time.is_zero() {
            return Bandwidth(0);
        }
        let bps = bytes.0 as u128 * 1_000_000_000_000u128 / time.0 as u128;
        Bandwidth(bps as u64)
    }
}

impl Default for Bandwidth {
    fn default() -> Self {
        Bandwidth::gib_per_sec(1)
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} GB/s", self.as_gb_per_sec())
    }
}

/// An energy amount in nanojoules.
///
/// # Examples
///
/// ```
/// use icomm_mem::units::Energy;
///
/// let e = Energy::from_nanojoules(1_500_000_000);
/// assert!((e.as_joules() - 1.5).abs() < 1e-12);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Energy(pub u64);

impl Energy {
    /// Zero energy.
    pub const ZERO: Energy = Energy(0);

    /// Creates an energy from nanojoules.
    pub const fn from_nanojoules(nj: u64) -> Self {
        Energy(nj)
    }

    /// Creates an energy from fractional joules; negative or non-finite
    /// inputs saturate to zero.
    pub fn from_joules(j: f64) -> Self {
        if !j.is_finite() || j <= 0.0 {
            return Energy::ZERO;
        }
        Energy((j * 1e9).round() as u64)
    }

    /// Returns the energy in nanojoules.
    pub const fn as_nanojoules(self) -> u64 {
        self.0
    }

    /// Returns the energy in joules.
    pub fn as_joules(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction; clamps at zero.
    pub fn saturating_sub(self, other: Energy) -> Energy {
        Energy(self.0.saturating_sub(other.0))
    }
}

impl Add for Energy {
    type Output = Energy;
    fn add(self, rhs: Energy) -> Energy {
        Energy(self.0 + rhs.0)
    }
}

impl AddAssign for Energy {
    fn add_assign(&mut self, rhs: Energy) {
        self.0 += rhs.0;
    }
}

impl Sum for Energy {
    fn sum<I: Iterator<Item = Energy>>(iter: I) -> Energy {
        iter.fold(Energy::ZERO, Add::add)
    }
}

impl fmt::Display for Energy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3} J", self.as_joules())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3} mJ", self.0 as f64 / 1e6)
        } else {
            write!(f, "{} nJ", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picos_constructors_agree() {
        assert_eq!(Picos::from_nanos(1), Picos(1_000));
        assert_eq!(Picos::from_micros(1), Picos(1_000_000));
        assert_eq!(Picos::from_millis(1), Picos(1_000_000_000));
        assert_eq!(Picos::from_secs_f64(1e-6), Picos::from_micros(1));
    }

    #[test]
    fn picos_from_secs_saturates_bad_input() {
        assert_eq!(Picos::from_secs_f64(-1.0), Picos::ZERO);
        assert_eq!(Picos::from_secs_f64(f64::NAN), Picos::ZERO);
        assert_eq!(Picos::from_secs_f64(f64::INFINITY), Picos::ZERO);
    }

    #[test]
    fn picos_arithmetic() {
        let a = Picos(100);
        let b = Picos(40);
        assert_eq!(a + b, Picos(140));
        assert_eq!(a - b, Picos(60));
        assert_eq!(a * 3, Picos(300));
        assert_eq!(a / 4, Picos(25));
        assert_eq!(b.saturating_sub(a), Picos::ZERO);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    fn picos_scale_rounds() {
        assert_eq!(Picos(100).scale(1.5), Picos(150));
        assert_eq!(Picos(100).scale(0.0), Picos::ZERO);
        assert_eq!(Picos(100).scale(f64::NAN), Picos::ZERO);
    }

    #[test]
    fn picos_sum() {
        let total: Picos = [Picos(1), Picos(2), Picos(3)].into_iter().sum();
        assert_eq!(total, Picos(6));
    }

    #[test]
    fn picos_display_picks_unit() {
        assert_eq!(Picos(500).to_string(), "500 ps");
        assert_eq!(Picos::from_nanos(2).to_string(), "2.000 ns");
        assert_eq!(Picos::from_micros(3).to_string(), "3.000 us");
        assert_eq!(Picos::from_millis(4).to_string(), "4.000 ms");
    }

    #[test]
    fn freq_cycle_conversions_round_trip() {
        let f = Freq::mhz(1500);
        let t = f.cycles_to_time(1500);
        assert_eq!(t, Picos::from_micros(1));
        assert_eq!(f.time_to_cycles(t), 1500);
    }

    #[test]
    fn freq_time_to_cycles_rounds_up() {
        let f = Freq::ghz(1); // 1 cycle = 1000 ps
        assert_eq!(f.time_to_cycles(Picos(1)), 1);
        assert_eq!(f.time_to_cycles(Picos(1000)), 1);
        assert_eq!(f.time_to_cycles(Picos(1001)), 2);
    }

    #[test]
    #[should_panic(expected = "zero frequency")]
    fn freq_zero_period_panics() {
        let _ = Freq(0).period();
    }

    #[test]
    fn freq_large_cycle_count_no_overflow() {
        let f = Freq::ghz(2);
        // 10^12 cycles at 2 GHz = 500 seconds.
        let t = f.cycles_to_time(1_000_000_000_000);
        assert!((t.as_secs_f64() - 500.0).abs() < 1e-6);
    }

    #[test]
    fn bytesize_constructors() {
        assert_eq!(ByteSize::kib(1).as_u64(), 1024);
        assert_eq!(ByteSize::mib(1).as_u64(), 1024 * 1024);
        assert_eq!(ByteSize::gib(1).as_u64(), 1024 * 1024 * 1024);
    }

    #[test]
    fn bytesize_display() {
        assert_eq!(ByteSize(512).to_string(), "512 B");
        assert_eq!(ByteSize::kib(4).to_string(), "4 KiB");
        assert_eq!(ByteSize::mib(8).to_string(), "8 MiB");
        assert_eq!(ByteSize::gib(2).to_string(), "2 GiB");
    }

    #[test]
    fn bandwidth_transfer_time() {
        let bw = Bandwidth::gib_per_sec(4);
        let t = bw.transfer_time(ByteSize::gib(1));
        assert!((t.as_secs_f64() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn bandwidth_transfer_time_rounds_up() {
        let bw = Bandwidth::bytes_per_sec(3_000_000_000_000); // 3 B/ps
                                                              // 10 bytes at 3 B/ps = 3.33 ps, rounds up to 4.
        assert_eq!(bw.transfer_time(ByteSize(10)), Picos(4));
    }

    #[test]
    fn bandwidth_observed_inverse_of_transfer() {
        let bw = Bandwidth::gib_per_sec(25);
        let bytes = ByteSize::mib(64);
        let t = bw.transfer_time(bytes);
        let seen = Bandwidth::observed(bytes, t);
        let rel = (seen.0 as f64 - bw.0 as f64).abs() / bw.0 as f64;
        assert!(rel < 1e-6, "relative error {rel}");
    }

    #[test]
    fn bandwidth_observed_zero_time_is_zero() {
        assert_eq!(
            Bandwidth::observed(ByteSize(100), Picos::ZERO),
            Bandwidth(0)
        );
    }

    #[test]
    fn energy_conversions() {
        let e = Energy::from_joules(0.12);
        assert_eq!(e.as_nanojoules(), 120_000_000);
        assert!((e.as_joules() - 0.12).abs() < 1e-12);
        assert_eq!(Energy::from_joules(-1.0), Energy::ZERO);
    }
}
