//! NUMA-aware memory topology: nodes, placement, page sizes, and TLB
//! pressure.
//!
//! A [`MemTopology`] answers the questions the SoC layer needs when it
//! models a hardware-coherent unified-memory access path:
//!
//! - What does an LLC miss cost *beyond* the local fill latency? That is
//!   [`MemTopology::upm_fill_extra`]: the expected TLB-walk cost for the
//!   working-set footprint at the configured page size, plus the
//!   expected remote-node hop given the placement policy and the
//!   requesting agent's affinity.
//! - What do the flat DRAM constants look like for this device? The SoC
//!   layer derives its single-channel DRAM model from
//!   [`MemTopology::aggregate_bandwidth`] and
//!   [`MemTopology::base_latency`], so single-node ("flat") topologies
//!   reproduce the original Jetson numbers exactly.

use serde::{Deserialize, Serialize};

use crate::units::{Bandwidth, ByteSize, Picos};

/// The agent performing a memory access, as far as topology affinity is
/// concerned. (The SoC layer has its own richer `Agent` enum; copy
/// engines inherit the CPU's affinity.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemAgent {
    /// The CPU cluster.
    Cpu,
    /// The integrated GPU.
    Gpu,
}

/// Page-size classes the allocator can map a region with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PageSize {
    /// Base 4 KiB pages.
    Small4K,
    /// 64 KiB pages (the ARM granule / CUDA allocation granularity).
    Medium64K,
    /// 2 MiB huge pages.
    Huge2M,
}

impl PageSize {
    /// Every class, smallest first.
    pub const ALL: [PageSize; 3] = [PageSize::Small4K, PageSize::Medium64K, PageSize::Huge2M];

    /// Bytes per page.
    pub const fn bytes(self) -> u64 {
        match self {
            PageSize::Small4K => 4 << 10,
            PageSize::Medium64K => 64 << 10,
            PageSize::Huge2M => 2 << 20,
        }
    }

    /// Short human-readable name (`4K` / `64K` / `2M`).
    pub const fn name(self) -> &'static str {
        match self {
            PageSize::Small4K => "4K",
            PageSize::Medium64K => "64K",
            PageSize::Huge2M => "2M",
        }
    }

    /// Parses a page-size name as the CLI accepts it.
    pub fn parse(s: &str) -> Option<PageSize> {
        match s.to_ascii_lowercase().as_str() {
            "4k" | "4kib" | "small" => Some(PageSize::Small4K),
            "64k" | "64kib" => Some(PageSize::Medium64K),
            "2m" | "2mib" | "huge" => Some(PageSize::Huge2M),
            _ => None,
        }
    }
}

impl std::fmt::Display for PageSize {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Where first-class allocations land.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PlacementPolicy {
    /// Pages are homed on the first CPU-local node (the CPU faults them
    /// in), so GPU accesses from a node without GPU affinity go remote.
    FirstTouchCpu,
    /// Pages are striped round-robin across every node; each agent sees
    /// the node-count-weighted fraction of remote accesses.
    Interleave,
}

/// TLB-pressure model: a reach (entries × page size) and a per-fill
/// walk cost once the footprint spills past it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TlbConfig {
    /// Entries in the unified last-level TLB.
    pub entries: u64,
    /// Cost of one table walk charged per LLC-line fill that misses the
    /// TLB.
    pub miss_cost: Picos,
}

impl TlbConfig {
    /// Bytes the TLB can map without walking, at `page` granularity.
    pub const fn reach(&self, page: PageSize) -> u64 {
        self.entries * page.bytes()
    }

    /// Expected TLB miss rate for a uniformly-touched footprint.
    ///
    /// Zero while the footprint fits in reach; beyond it the resident
    /// fraction `reach / footprint` still hits and the rest walks.
    /// Larger pages grow reach, so the rate is non-increasing in page
    /// size for any fixed footprint.
    pub fn miss_rate(&self, page: PageSize, footprint_bytes: u64) -> f64 {
        let reach = self.reach(page);
        if footprint_bytes <= reach || footprint_bytes == 0 {
            0.0
        } else {
            1.0 - reach as f64 / footprint_bytes as f64
        }
    }
}

impl Default for TlbConfig {
    fn default() -> Self {
        // 512-entry unified L2 TLB: 2 MiB of reach with 4K pages, 1 GiB
        // with 2M pages.
        TlbConfig {
            entries: 512,
            miss_cost: Picos::from_nanos(250),
        }
    }
}

/// The fabric between NUMA nodes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Interconnect {
    /// Extra latency a remote (non-affine) access pays on top of the
    /// node's own access latency.
    pub extra_latency: Picos,
    /// Peak bandwidth of the inter-node link.
    pub bandwidth: Bandwidth,
}

impl Default for Interconnect {
    fn default() -> Self {
        Interconnect {
            extra_latency: Picos::ZERO,
            bandwidth: Bandwidth::gib_per_sec(64),
        }
    }
}

/// One NUMA memory node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NumaNode {
    /// Human-readable name (`lpddr`, `hbm`, `cpu-ddr`, ...).
    pub name: String,
    /// Peak bandwidth out of this node.
    pub bandwidth: Bandwidth,
    /// Idle access latency into this node.
    pub latency: Picos,
    /// Capacity of the node.
    pub capacity: ByteSize,
    /// The CPU cluster sits on this node (no fabric hop).
    pub cpu_local: bool,
    /// The GPU sits on this node (no fabric hop).
    pub gpu_local: bool,
}

impl NumaNode {
    /// True when `agent` reaches this node without a fabric hop.
    pub fn local_to(&self, agent: MemAgent) -> bool {
        match agent {
            MemAgent::Cpu => self.cpu_local,
            MemAgent::Gpu => self.gpu_local,
        }
    }
}

/// A complete memory-topology description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemTopology {
    /// The memory nodes; never empty.
    pub nodes: Vec<NumaNode>,
    /// Page size the system allocator maps shared regions with.
    pub page_size: PageSize,
    /// Where shared allocations are homed.
    pub placement: PlacementPolicy,
    /// TLB-pressure model.
    pub tlb: TlbConfig,
    /// Inter-node fabric.
    pub interconnect: Interconnect,
    /// The CPU and GPU caches stay coherent for system allocations
    /// without flushes or page migration (MI300A / Grace-Hopper class).
    pub hardware_coherent: bool,
}

impl MemTopology {
    /// A flat single-node topology reproducing the legacy DRAM
    /// constants: one node local to both agents, no fabric hop, not
    /// hardware-coherent. The Jetson presets use this, so their
    /// behavior is bit-identical to the pre-topology simulator.
    pub fn flat(bandwidth: Bandwidth, latency: Picos) -> Self {
        MemTopology {
            nodes: vec![NumaNode {
                name: "dram".to_string(),
                bandwidth,
                latency,
                capacity: ByteSize::gib(8),
                cpu_local: true,
                gpu_local: true,
            }],
            page_size: PageSize::Small4K,
            placement: PlacementPolicy::FirstTouchCpu,
            tlb: TlbConfig::default(),
            interconnect: Interconnect::default(),
            hardware_coherent: false,
        }
    }

    /// Total bandwidth across every node (the flat-DRAM equivalent).
    pub fn aggregate_bandwidth(&self) -> Bandwidth {
        Bandwidth::bytes_per_sec(
            self.nodes
                .iter()
                .map(|n| n.bandwidth.as_bytes_per_sec())
                .sum(),
        )
    }

    /// The latency of the home node: the first CPU-local node, falling
    /// back to the first node. This is what the flat DRAM model uses as
    /// its access latency.
    pub fn base_latency(&self) -> Picos {
        self.home_node().latency
    }

    /// Total capacity across every node.
    pub fn total_capacity(&self) -> ByteSize {
        self.nodes.iter().map(|n| n.capacity).sum()
    }

    /// The node first-touch allocations land on.
    pub fn home_node(&self) -> &NumaNode {
        self.nodes
            .iter()
            .find(|n| n.cpu_local)
            .unwrap_or_else(|| &self.nodes[0])
    }

    /// Expected fraction of `agent`'s accesses that cross the fabric,
    /// given the placement policy.
    pub fn remote_fraction(&self, agent: MemAgent) -> f64 {
        match self.placement {
            PlacementPolicy::FirstTouchCpu => {
                if self.home_node().local_to(agent) {
                    0.0
                } else {
                    1.0
                }
            }
            PlacementPolicy::Interleave => {
                let total = self.nodes.len();
                if total == 0 {
                    return 0.0;
                }
                let remote = self.nodes.iter().filter(|n| !n.local_to(agent)).count();
                remote as f64 / total as f64
            }
        }
    }

    /// Latency `agent` sees into node `idx`: the node's own latency
    /// plus a fabric hop when the node is not local to the agent.
    pub fn node_access_latency(&self, agent: MemAgent, idx: usize) -> Picos {
        let node = &self.nodes[idx];
        if node.local_to(agent) {
            node.latency
        } else {
            node.latency + self.interconnect.extra_latency
        }
    }

    /// Expected *extra* cost of one LLC-line fill on the
    /// hardware-coherent unified path, beyond the flat-DRAM fill the
    /// cache hierarchy already charges: the TLB-walk expectation for
    /// `footprint_bytes` at the configured page size, plus the expected
    /// remote hop for `agent` under the placement policy.
    pub fn upm_fill_extra(&self, agent: MemAgent, footprint_bytes: u64) -> Picos {
        let walk = self
            .tlb
            .miss_cost
            .scale(self.tlb.miss_rate(self.page_size, footprint_bytes));
        let hop = self
            .interconnect
            .extra_latency
            .scale(self.remote_fraction(agent));
        walk + hop
    }

    /// Returns the topology with every bandwidth (nodes and fabric)
    /// scaled by `factor`, mirroring DVFS on the memory controller.
    pub fn with_bandwidth_scale(mut self, factor: f64) -> Self {
        for node in &mut self.nodes {
            node.bandwidth = Bandwidth::bytes_per_sec(
                ((node.bandwidth.as_bytes_per_sec() as f64) * factor).max(1.0) as u64,
            );
        }
        self.interconnect.bandwidth = Bandwidth::bytes_per_sec(
            ((self.interconnect.bandwidth.as_bytes_per_sec() as f64) * factor).max(1.0) as u64,
        );
        self
    }

    /// Returns the topology remapped to `page` (what `--pages` and the
    /// huge-page experiments toggle).
    pub fn with_page_size(mut self, page: PageSize) -> Self {
        self.page_size = page;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_node() -> MemTopology {
        MemTopology {
            nodes: vec![
                NumaNode {
                    name: "cpu-ddr".into(),
                    bandwidth: Bandwidth::gib_per_sec(120),
                    latency: Picos::from_nanos(110),
                    capacity: ByteSize::gib(64),
                    cpu_local: true,
                    gpu_local: false,
                },
                NumaNode {
                    name: "hbm".into(),
                    bandwidth: Bandwidth::gib_per_sec(400),
                    latency: Picos::from_nanos(90),
                    capacity: ByteSize::gib(96),
                    cpu_local: false,
                    gpu_local: true,
                },
            ],
            page_size: PageSize::Small4K,
            placement: PlacementPolicy::FirstTouchCpu,
            tlb: TlbConfig {
                entries: 512,
                miss_cost: Picos::from_nanos(400),
            },
            interconnect: Interconnect {
                extra_latency: Picos::from_nanos(100),
                bandwidth: Bandwidth::gib_per_sec(450),
            },
            hardware_coherent: true,
        }
    }

    #[test]
    fn flat_topology_reproduces_constants() {
        let t = MemTopology::flat(Bandwidth::gib_per_sec(25), Picos::from_nanos(130));
        assert_eq!(t.aggregate_bandwidth(), Bandwidth::gib_per_sec(25));
        assert_eq!(t.base_latency(), Picos::from_nanos(130));
        assert!(!t.hardware_coherent);
        assert_eq!(t.remote_fraction(MemAgent::Cpu), 0.0);
        assert_eq!(t.remote_fraction(MemAgent::Gpu), 0.0);
        // No remote fraction and a footprint within reach: no extra.
        assert_eq!(t.upm_fill_extra(MemAgent::Gpu, 1 << 20), Picos::ZERO);
    }

    #[test]
    fn first_touch_homes_on_cpu_node() {
        let t = two_node();
        assert_eq!(t.home_node().name, "cpu-ddr");
        assert_eq!(t.remote_fraction(MemAgent::Cpu), 0.0);
        assert_eq!(t.remote_fraction(MemAgent::Gpu), 1.0);
    }

    #[test]
    fn interleave_splits_remote_fraction() {
        let mut t = two_node();
        t.placement = PlacementPolicy::Interleave;
        assert_eq!(t.remote_fraction(MemAgent::Cpu), 0.5);
        assert_eq!(t.remote_fraction(MemAgent::Gpu), 0.5);
    }

    #[test]
    fn tlb_reach_scales_with_page_size() {
        let tlb = TlbConfig {
            entries: 512,
            miss_cost: Picos::from_nanos(250),
        };
        assert_eq!(tlb.reach(PageSize::Small4K), 2 << 20);
        assert_eq!(tlb.reach(PageSize::Huge2M), 1 << 30);
        // 8 MiB footprint: 4K pages walk 75 % of fills, 2M pages never.
        let fp = 8 << 20;
        assert!((tlb.miss_rate(PageSize::Small4K, fp) - 0.75).abs() < 1e-9);
        assert_eq!(tlb.miss_rate(PageSize::Huge2M, fp), 0.0);
    }

    #[test]
    fn huge_pages_remove_fill_extra_on_big_footprints() {
        let t = two_node();
        let fp = 8 << 20;
        let small = t.upm_fill_extra(MemAgent::Gpu, fp);
        let huge = t
            .clone()
            .with_page_size(PageSize::Huge2M)
            .upm_fill_extra(MemAgent::Gpu, fp);
        assert!(small > huge, "4K {small} should exceed 2M {huge}");
        // The 2M extra is the pure remote hop.
        assert_eq!(huge, Picos::from_nanos(100));
    }

    #[test]
    fn bandwidth_scale_applies_to_all_nodes() {
        let t = two_node().with_bandwidth_scale(0.5);
        assert_eq!(t.nodes[0].bandwidth, Bandwidth::gib_per_sec(60));
        assert_eq!(t.nodes[1].bandwidth, Bandwidth::gib_per_sec(200));
        assert_eq!(t.interconnect.bandwidth, Bandwidth::gib_per_sec(225));
    }

    #[test]
    fn page_size_parse_accepts_cli_spellings() {
        assert_eq!(PageSize::parse("4k"), Some(PageSize::Small4K));
        assert_eq!(PageSize::parse("64K"), Some(PageSize::Medium64K));
        assert_eq!(PageSize::parse("2m"), Some(PageSize::Huge2M));
        assert_eq!(PageSize::parse("huge"), Some(PageSize::Huge2M));
        assert_eq!(PageSize::parse("1g"), None);
    }

    proptest::proptest! {
        /// Remote access to any node is never cheaper than a local
        /// agent's access to the same node, for every generated
        /// topology.
        #[test]
        fn prop_remote_latency_at_least_local(
            lats in proptest::collection::vec(1u64..1_000, 1..5),
            cpu_mask in proptest::collection::vec(proptest::bool::ANY, 4..5),
            gpu_mask in proptest::collection::vec(proptest::bool::ANY, 4..5),
            hop in 0u64..1_000,
        ) {
            let nodes: Vec<NumaNode> = lats
                .iter()
                .enumerate()
                .map(|(i, &l)| NumaNode {
                    name: format!("n{i}"),
                    bandwidth: Bandwidth::gib_per_sec(100),
                    latency: Picos::from_nanos(l),
                    capacity: ByteSize::gib(8),
                    cpu_local: cpu_mask[i],
                    gpu_local: gpu_mask[i],
                })
                .collect();
            let t = MemTopology {
                nodes,
                interconnect: Interconnect {
                    extra_latency: Picos::from_nanos(hop),
                    bandwidth: Bandwidth::gib_per_sec(64),
                },
                ..MemTopology::flat(Bandwidth::gib_per_sec(100), Picos::from_nanos(100))
            };
            for idx in 0..t.nodes.len() {
                for agent in [MemAgent::Cpu, MemAgent::Gpu] {
                    let seen = t.node_access_latency(agent, idx);
                    // Never below the node's own latency...
                    proptest::prop_assert!(seen >= t.nodes[idx].latency);
                    // ...and a remote agent never beats a local one.
                    if !t.nodes[idx].local_to(agent) {
                        proptest::prop_assert_eq!(
                            seen,
                            t.nodes[idx].latency + t.interconnect.extra_latency
                        );
                    }
                }
            }
        }

        /// Growing the page size never increases the TLB miss rate, for
        /// any footprint and TLB shape.
        #[test]
        fn prop_larger_pages_never_miss_more(
            entries in 1u64..10_000,
            fp in 0u64..(1u64 << 40),
        ) {
            let tlb = TlbConfig {
                entries,
                miss_cost: Picos::from_nanos(250),
            };
            let r4 = tlb.miss_rate(PageSize::Small4K, fp);
            let r64 = tlb.miss_rate(PageSize::Medium64K, fp);
            let r2m = tlb.miss_rate(PageSize::Huge2M, fp);
            proptest::prop_assert!(r4 >= r64, "4K {r4} < 64K {r64}");
            proptest::prop_assert!(r64 >= r2m, "64K {r64} < 2M {r2m}");
            proptest::prop_assert!((0.0..=1.0).contains(&r4));
            proptest::prop_assert!((0.0..=1.0).contains(&r2m));
        }

        /// On a single-node topology the placement policy is
        /// irrelevant: remote fractions and fill extras are identical
        /// under first-touch and interleave.
        #[test]
        fn prop_single_node_placement_invariance(
            lat in 1u64..1_000,
            bw in 1u64..1_000,
            hop in 0u64..1_000,
            fp in 0u64..(1u64 << 32),
        ) {
            let mut t = MemTopology::flat(Bandwidth::gib_per_sec(bw), Picos::from_nanos(lat));
            t.interconnect.extra_latency = Picos::from_nanos(hop);
            for agent in [MemAgent::Cpu, MemAgent::Gpu] {
                t.placement = PlacementPolicy::FirstTouchCpu;
                let ft = (t.remote_fraction(agent), t.upm_fill_extra(agent, fp));
                t.placement = PlacementPolicy::Interleave;
                let il = (t.remote_fraction(agent), t.upm_fill_extra(agent, fp));
                proptest::prop_assert_eq!(ft, il);
            }
        }
    }
}
