//! Memory-topology subsystem for the icomm SoC simulator.
//!
//! The paper's three Jetson boards share one flat LPDDR channel, so the
//! original simulator hard-coded DRAM as a single bandwidth/latency pair.
//! Newer hardware-coherent integrated platforms — MI300A-class APUs and
//! Grace-Hopper-class superchips — expose *memory topology*: multiple
//! NUMA nodes with per-node bandwidth and latency, CPU/GPU affinity,
//! an inter-node fabric, page-size classes, and TLB reach limits that
//! all shift where the communication-model crossovers land.
//!
//! This crate models that topology explicitly:
//!
//! - [`MemTopology`] — the top-level description: NUMA nodes, placement
//!   policy, page size, TLB configuration, and inter-node interconnect.
//! - [`NumaNode`] — one memory node with bandwidth, latency, capacity,
//!   and CPU/GPU locality flags.
//! - [`PageSize`] / [`TlbConfig`] — page-size classes (4K/64K/2M) and
//!   the TLB-pressure model (reach = entries × page size; footprints
//!   beyond reach pay a per-fill walk cost).
//! - [`PlacementPolicy`] — first-touch (CPU homes the allocation) or
//!   interleave (pages striped across nodes).
//!
//! The crate also owns the simulator's strongly-typed physical
//! quantities ([`units`]) so the SoC layer can consume topologies
//! without a dependency cycle.

pub mod topology;
pub mod units;

pub use topology::{
    Interconnect, MemAgent, MemTopology, NumaNode, PageSize, PlacementPolicy, TlbConfig,
};
pub use units::{Bandwidth, ByteSize, Energy, Freq, Picos};
