//! Admission control and backpressure for the tuning service.
//!
//! Under fleet-scale load the failure mode to avoid is the *implicit*
//! one: requests sitting in an unbounded queue until the client times
//! out, which wastes the work and tells the fleet nothing. This module
//! makes overload explicit instead — a token-bucket rate limiter plus a
//! bounded-queue check decide **before** any work is queued whether a
//! request is admitted, and rejected requests get an immediate
//! `overloaded` response the client can back off on.
//!
//! Two request classes give a crude but effective priority scheme:
//! [`RequestClass::Bulk`] traffic (batch re-characterization, crawlers)
//! is shed at a fraction of the queue bound, reserving the remaining
//! headroom for [`RequestClass::Interactive`] traffic, so latency-
//! sensitive requests keep flowing while background load is trimmed
//! first.
//!
//! Time enters only as an explicit microsecond timestamp, so the same
//! controller serves both the live TCP server (timestamps from
//! [`std::time::Instant`]) and the deterministic fleet simulator
//! (virtual timestamps), and unit tests never sleep.

/// Priority class of a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestClass {
    /// Latency-sensitive foreground traffic (the default).
    Interactive,
    /// Throughput-oriented background traffic; first to be shed.
    Bulk,
}

impl RequestClass {
    /// Parses the wire form (`"interactive"` / `"bulk"`, case-insensitive).
    /// Unknown strings map to `Interactive` so older clients keep working.
    pub fn parse(s: &str) -> Self {
        if s.eq_ignore_ascii_case("bulk") {
            RequestClass::Bulk
        } else {
            RequestClass::Interactive
        }
    }

    /// Wire form of the class.
    pub fn as_str(self) -> &'static str {
        match self {
            RequestClass::Interactive => "interactive",
            RequestClass::Bulk => "bulk",
        }
    }
}

/// Why a request was not admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The token bucket was empty: arrival rate exceeds the configured
    /// sustained rate.
    Rate,
    /// The queue was at (or, for bulk, near) its bound.
    Queue,
}

impl ShedReason {
    /// Short label used in responses and reports.
    pub fn as_str(self) -> &'static str {
        match self {
            ShedReason::Rate => "rate",
            ShedReason::Queue => "queue",
        }
    }
}

/// Outcome of an admission check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionDecision {
    /// The request may be queued.
    Admit,
    /// The request must be rejected with an explicit overload response.
    Shed(ShedReason),
}

/// Static admission-control configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct AdmissionConfig {
    /// Sustained admitted-request rate, requests per second.
    pub rate_per_sec: f64,
    /// Burst allowance: how many requests above the sustained rate may
    /// be admitted back-to-back after an idle period.
    pub burst: f64,
    /// Maximum queued-but-unserved requests before interactive traffic
    /// is shed.
    pub queue_bound: usize,
    /// Fraction of `queue_bound` at which bulk traffic is already shed,
    /// reserving the rest of the queue for interactive requests.
    pub bulk_queue_fraction: f64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            rate_per_sec: 2_000.0,
            burst: 256.0,
            queue_bound: 512,
            bulk_queue_fraction: 0.5,
        }
    }
}

impl AdmissionConfig {
    /// A configuration that never sheds — used where admission control
    /// is wired through but intentionally disabled (e.g. deterministic
    /// live-fire validation).
    pub fn unlimited() -> Self {
        AdmissionConfig {
            rate_per_sec: 1e12,
            burst: 1e12,
            queue_bound: usize::MAX / 2,
            bulk_queue_fraction: 1.0,
        }
    }
}

/// Classic token bucket over explicit microsecond timestamps.
///
/// Tokens accrue at `rate_per_sec / 1e6` per microsecond up to `burst`;
/// each admitted request consumes one. Passing time explicitly keeps the
/// bucket deterministic under simulation and trivially testable.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    rate_per_us: f64,
    burst: f64,
    tokens: f64,
    last_us: u64,
}

impl TokenBucket {
    /// A bucket that starts full.
    pub fn new(rate_per_sec: f64, burst: f64) -> Self {
        let burst = burst.max(1.0);
        TokenBucket {
            rate_per_us: rate_per_sec.max(0.0) / 1e6,
            burst,
            tokens: burst,
            last_us: 0,
        }
    }

    /// Takes one token at time `now_us` if available. Timestamps must be
    /// non-decreasing; an earlier timestamp simply accrues nothing.
    pub fn try_acquire(&mut self, now_us: u64) -> bool {
        let elapsed = now_us.saturating_sub(self.last_us);
        self.last_us = self.last_us.max(now_us);
        self.tokens = (self.tokens + elapsed as f64 * self.rate_per_us).min(self.burst);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

/// Thread-safe admission controller combining the token bucket with the
/// bounded-queue, per-class shedding policy.
#[derive(Debug)]
pub struct AdmissionController {
    config: AdmissionConfig,
    bucket: parking_lot::Mutex<TokenBucket>,
}

impl AdmissionController {
    /// Builds a controller from a configuration.
    pub fn new(config: AdmissionConfig) -> Self {
        let bucket = TokenBucket::new(config.rate_per_sec, config.burst);
        AdmissionController {
            config,
            bucket: parking_lot::Mutex::new(bucket),
        }
    }

    /// The configuration the controller was built with.
    pub fn config(&self) -> &AdmissionConfig {
        &self.config
    }

    /// Decides whether a request of `class` arriving at `now_us` with
    /// `queue_depth` requests already waiting may be admitted.
    ///
    /// Queue pressure is checked first (it is the cheaper signal and the
    /// one the client can act on by retrying later); the token bucket is
    /// only charged for requests that pass the queue check, so shed
    /// requests do not consume rate budget.
    pub fn admit(&self, class: RequestClass, queue_depth: usize, now_us: u64) -> AdmissionDecision {
        let bulk_bound =
            (self.config.queue_bound as f64 * self.config.bulk_queue_fraction) as usize;
        let bound = match class {
            RequestClass::Interactive => self.config.queue_bound,
            RequestClass::Bulk => bulk_bound.min(self.config.queue_bound),
        };
        if queue_depth >= bound {
            return AdmissionDecision::Shed(ShedReason::Queue);
        }
        if self.bucket.lock().try_acquire(now_us) {
            AdmissionDecision::Admit
        } else {
            AdmissionDecision::Shed(ShedReason::Rate)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_enforces_sustained_rate() {
        // 10 req/s, burst 2: after draining the burst, one token every
        // 100 ms.
        let mut bucket = TokenBucket::new(10.0, 2.0);
        assert!(bucket.try_acquire(0));
        assert!(bucket.try_acquire(0));
        assert!(!bucket.try_acquire(0), "burst exhausted");
        assert!(!bucket.try_acquire(50_000), "half a token accrued");
        assert!(bucket.try_acquire(100_000));
        assert!(!bucket.try_acquire(100_000));
    }

    #[test]
    fn bucket_caps_accrual_at_burst() {
        let mut bucket = TokenBucket::new(1000.0, 3.0);
        // A long idle period must not bank more than `burst` tokens.
        for _ in 0..3 {
            assert!(bucket.try_acquire(10_000_000));
        }
        assert!(!bucket.try_acquire(10_000_000));
    }

    #[test]
    fn bucket_tolerates_time_going_backwards() {
        let mut bucket = TokenBucket::new(1000.0, 1.0);
        assert!(bucket.try_acquire(5_000));
        // An out-of-order timestamp accrues nothing and does not panic.
        assert!(!bucket.try_acquire(1_000));
    }

    #[test]
    fn bulk_sheds_before_interactive() {
        let controller = AdmissionController::new(AdmissionConfig {
            rate_per_sec: 1e9,
            burst: 1e9,
            queue_bound: 10,
            bulk_queue_fraction: 0.5,
        });
        // Depth 5: at the bulk bound, below the interactive bound.
        assert_eq!(
            controller.admit(RequestClass::Bulk, 5, 0),
            AdmissionDecision::Shed(ShedReason::Queue)
        );
        assert_eq!(
            controller.admit(RequestClass::Interactive, 5, 0),
            AdmissionDecision::Admit
        );
        // Depth 10: everyone sheds.
        assert_eq!(
            controller.admit(RequestClass::Interactive, 10, 0),
            AdmissionDecision::Shed(ShedReason::Queue)
        );
    }

    #[test]
    fn rate_shedding_reports_rate_reason() {
        let controller = AdmissionController::new(AdmissionConfig {
            rate_per_sec: 0.0,
            burst: 1.0,
            queue_bound: 100,
            bulk_queue_fraction: 0.5,
        });
        assert_eq!(
            controller.admit(RequestClass::Interactive, 0, 0),
            AdmissionDecision::Admit
        );
        assert_eq!(
            controller.admit(RequestClass::Interactive, 0, 0),
            AdmissionDecision::Shed(ShedReason::Rate)
        );
    }

    #[test]
    fn unlimited_config_never_sheds() {
        let controller = AdmissionController::new(AdmissionConfig::unlimited());
        for i in 0..10_000 {
            assert_eq!(
                controller.admit(RequestClass::Bulk, 1_000, i),
                AdmissionDecision::Admit
            );
        }
    }

    #[test]
    fn class_parsing_defaults_to_interactive() {
        assert_eq!(RequestClass::parse("bulk"), RequestClass::Bulk);
        assert_eq!(RequestClass::parse("BULK"), RequestClass::Bulk);
        assert_eq!(
            RequestClass::parse("interactive"),
            RequestClass::Interactive
        );
        assert_eq!(RequestClass::parse("???"), RequestClass::Interactive);
    }
}
