//! Line-delimited JSON over TCP.
//!
//! One [`TuneRequest`] per line in, one [`TuneResponse`] per line out, in
//! request order per connection. The accept loop runs on its own thread
//! and each connection gets a handler thread; all of them ride the shared
//! [`TuningService`] worker pool, so concurrent connections coalesce onto
//! the same single-flight characterizations.
//!
//! The transport defends itself against misbehaving clients
//! ([`ServerConfig`]): a per-connection read deadline drops clients that
//! stall mid-line, a maximum line length bounds memory per connection,
//! and a connection cap bounds the thread count. Every defensive action
//! increments a fault counter in the service [`Metrics`](crate::Metrics).
//!
//! Try it with `nc` while `icomm serve` runs:
//!
//! ```text
//! $ echo '{"id": 1, "board": "xavier", "app": "shwfs"}' | nc 127.0.0.1 7311
//! {"id": 1, "ok": true, ..., "recommended": "ZC", ...}
//! ```

use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;

use crate::protocol::{StatsQuery, StatsReport, TuneRequest, TuneResponse};
use crate::service::TuningService;

/// Open connections: a writable clone of each stream (so `stop` can
/// unblock the reader) paired with its handler thread.
type ConnectionList = Arc<Mutex<Vec<(TcpStream, JoinHandle<()>)>>>;

/// Transport hardening knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Maximum simultaneous connections; further clients are turned away
    /// with an error line (and counted in `conn_rejected`).
    pub max_connections: usize,
    /// Per-read deadline. A client that stalls mid-line longer than this
    /// is disconnected (counted in `read_timeouts`). `None` waits
    /// forever, as a plain blocking read would.
    pub read_timeout: Option<Duration>,
    /// Maximum request-line length in bytes. Longer lines get a failure
    /// response and the connection is closed (counted in
    /// `oversized_lines`).
    pub max_line_bytes: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_connections: 64,
            read_timeout: Some(Duration::from_secs(30)),
            max_line_bytes: 64 * 1024,
        }
    }
}

/// Running TCP front end over a [`TuningService`].
pub struct Server {
    local_addr: SocketAddr,
    service: Arc<TuningService>,
    shutdown: Arc<AtomicBool>,
    accept_handle: Option<JoinHandle<()>>,
    connections: ConnectionList,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("local_addr", &self.local_addr)
            .finish()
    }
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:7311`, or port `0` for an ephemeral
    /// port) and starts accepting connections with default transport
    /// limits.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn start(service: Arc<TuningService>, addr: &str) -> std::io::Result<Server> {
        Server::start_with(service, addr, ServerConfig::default())
    }

    /// [`Server::start`] with explicit transport limits.
    ///
    /// # Errors
    ///
    /// Propagates bind or accept-thread-spawn failure.
    pub fn start_with(
        service: Arc<TuningService>,
        addr: &str,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let connections: ConnectionList = Arc::new(Mutex::new(Vec::new()));

        let accept_handle = {
            let service = service.clone();
            let shutdown = shutdown.clone();
            let connections = connections.clone();
            std::thread::Builder::new()
                .name("icomm-serve-accept".to_string())
                .spawn(move || {
                    for incoming in listener.incoming() {
                        if shutdown.load(Ordering::SeqCst) {
                            break;
                        }
                        let Ok(stream) = incoming else { continue };
                        accept_one(stream, &service, &config, &connections);
                    }
                })?
        };

        Ok(Server {
            local_addr,
            service,
            shutdown,
            accept_handle: Some(accept_handle),
            connections,
        })
    }

    /// Address the server is listening on (useful with port `0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The service behind the server.
    pub fn service(&self) -> &Arc<TuningService> {
        &self.service
    }

    /// Stops accepting, closes every open connection, joins the handler
    /// threads, and hands the service back (e.g. to drain and persist it
    /// via [`TuningService::shutdown`]).
    pub fn stop(mut self) -> Arc<TuningService> {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
        let mut connections = self.connections.lock();
        for (stream, _) in connections.iter() {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
        for (_, handle) in connections.drain(..) {
            let _ = handle.join();
        }
        drop(connections);
        self.service.clone()
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.accept_handle.is_some() {
            self.shutdown.store(true, Ordering::SeqCst);
            let _ = TcpStream::connect(self.local_addr);
            if let Some(handle) = self.accept_handle.take() {
                let _ = handle.join();
            }
        }
    }
}

/// Admits or rejects one accepted connection: prunes finished handler
/// threads, enforces the connection cap, and spawns the handler.
fn accept_one(
    stream: TcpStream,
    service: &Arc<TuningService>,
    config: &ServerConfig,
    connections: &ConnectionList,
) {
    let metrics = service.metrics_handle().clone();
    let mut open = connections.lock();
    open.retain(|(_, handle)| !handle.is_finished());
    if open.len() >= config.max_connections {
        metrics.conn_rejected.fetch_add(1, Ordering::Relaxed);
        let mut stream = stream;
        let refusal = TuneResponse::failure(0, "server at connection capacity".to_string());
        if let Ok(json) = icomm_persist::to_string(&refusal) {
            let _ = writeln!(stream, "{json}");
        }
        return;
    }
    let Ok(peer) = stream.try_clone() else {
        // Cannot keep a stop-handle for this connection: drop it rather
        // than leak an uncloseable handler thread.
        metrics.conn_errors.fetch_add(1, Ordering::Relaxed);
        return;
    };
    let service = service.clone();
    let config = config.clone();
    let spawned = std::thread::Builder::new()
        .name("icomm-serve-conn".to_string())
        .spawn(move || handle_connection(stream, &service, &config));
    match spawned {
        Ok(handle) => {
            metrics.conn_accepted.fetch_add(1, Ordering::Relaxed);
            open.push((peer, handle));
        }
        // Thread exhaustion: drop the connection, keep serving others.
        Err(_) => {
            metrics.conn_errors.fetch_add(1, Ordering::Relaxed);
            drop(peer);
        }
    }
}

/// One request line, read under the transport limits.
enum LineRead {
    /// A complete line (without the newline), lossily decoded.
    Line(String),
    /// Clean end of stream.
    Eof,
    /// The line exceeded `max_line_bytes` before a newline arrived.
    Oversized,
    /// The read deadline expired mid-line.
    TimedOut,
    /// Any other I/O failure.
    Err,
}

/// Reads one `\n`-terminated line without ever buffering more than
/// `max_bytes` of it.
fn read_bounded_line(reader: &mut BufReader<TcpStream>, max_bytes: usize) -> LineRead {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let chunk = match reader.fill_buf() {
            Ok([]) => {
                return if line.is_empty() {
                    LineRead::Eof
                } else {
                    // Final unterminated line: serve it anyway.
                    LineRead::Line(String::from_utf8_lossy(&line).into_owned())
                };
            }
            Ok(chunk) => chunk,
            Err(err) if matches!(err.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                return LineRead::TimedOut;
            }
            Err(err) if err.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return LineRead::Err,
        };
        match chunk.iter().position(|&b| b == b'\n') {
            Some(newline) => {
                if line.len() + newline > max_bytes {
                    reader.consume(newline + 1);
                    return LineRead::Oversized;
                }
                line.extend_from_slice(&chunk[..newline]);
                reader.consume(newline + 1);
                return LineRead::Line(String::from_utf8_lossy(&line).into_owned());
            }
            None => {
                let taken = chunk.len();
                if line.len() + taken > max_bytes {
                    reader.consume(taken);
                    return LineRead::Oversized;
                }
                line.extend_from_slice(chunk);
                reader.consume(taken);
            }
        }
    }
}

/// Reads requests line by line and answers each on the same connection,
/// enforcing the transport limits.
fn handle_connection(stream: TcpStream, service: &TuningService, config: &ServerConfig) {
    let metrics = service.metrics_handle().clone();
    if stream.set_read_timeout(config.read_timeout).is_err() {
        metrics.conn_errors.fetch_add(1, Ordering::Relaxed);
        return;
    }
    let Ok(read_half) = stream.try_clone() else {
        metrics.conn_errors.fetch_add(1, Ordering::Relaxed);
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    let respond = |writer: &mut TcpStream, response: &TuneResponse| -> bool {
        let Ok(json) = icomm_persist::to_string(response) else {
            return false;
        };
        writeln!(writer, "{json}")
            .and_then(|()| writer.flush())
            .is_ok()
    };
    loop {
        let line = match read_bounded_line(&mut reader, config.max_line_bytes) {
            LineRead::Line(line) => line,
            LineRead::Eof | LineRead::Err => break,
            LineRead::TimedOut => {
                metrics.read_timeouts.fetch_add(1, Ordering::Relaxed);
                break;
            }
            LineRead::Oversized => {
                metrics.oversized_lines.fetch_add(1, Ordering::Relaxed);
                let response = TuneResponse::failure(
                    0,
                    format!("request line exceeds {} bytes", config.max_line_bytes),
                );
                respond(&mut writer, &response);
                break;
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        let response = match icomm_persist::from_str::<TuneRequest>(&line) {
            Ok(request) => service.handle(request),
            // Not a tune request: try the stats verb before calling the
            // line malformed.
            Err(_) if icomm_persist::from_str::<StatsQuery>(&line).is_ok() => {
                let report = StatsReport::from_snapshot(&service.metrics());
                let ok = icomm_persist::to_string(&report)
                    .map(|json| {
                        writeln!(writer, "{json}")
                            .and_then(|()| writer.flush())
                            .is_ok()
                    })
                    .unwrap_or(false);
                if !ok {
                    break;
                }
                continue;
            }
            Err(err) => {
                metrics.malformed_requests.fetch_add(1, Ordering::Relaxed);
                TuneResponse::failure(0, format!("malformed request: {err:?}"))
            }
        };
        if !respond(&mut writer, &response) {
            break;
        }
    }
    // Actively close: the accept loop holds a clone of this stream in the
    // connection list, so a plain drop would leave the socket open (and a
    // timed-out client would never see EOF) until `stop`.
    let _ = writer.shutdown(std::net::Shutdown::Both);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceConfig;

    fn start_quick_server() -> Server {
        let service = Arc::new(TuningService::start(ServiceConfig::quick().with_workers(2)));
        Server::start(service, "127.0.0.1:0").expect("bind ephemeral port")
    }

    fn round_trip(addr: SocketAddr, lines: &[String]) -> Vec<TuneResponse> {
        let mut stream = TcpStream::connect(addr).expect("connect");
        for line in lines {
            writeln!(stream, "{line}").unwrap();
        }
        stream.flush().unwrap();
        let reader = BufReader::new(stream);
        reader
            .lines()
            .take(lines.len())
            .map(|l| icomm_persist::from_str(&l.unwrap()).unwrap())
            .collect()
    }

    #[test]
    fn tcp_request_round_trips() {
        let server = start_quick_server();
        let request = icomm_persist::to_string(&TuneRequest::new(5, "xavier", "shwfs")).unwrap();
        let responses = round_trip(server.local_addr(), &[request]);
        assert_eq!(responses.len(), 1);
        assert!(responses[0].ok);
        assert_eq!(responses[0].id, 5);
        assert_eq!(responses[0].recommended.as_deref(), Some("ZC"));
        assert_eq!(server.service().metrics().conn_accepted, 1);
        let service = server.stop();
        Arc::try_unwrap(service).unwrap().shutdown().unwrap();
    }

    #[test]
    fn malformed_line_gets_an_error_response() {
        let server = start_quick_server();
        let responses = round_trip(server.local_addr(), &["{not json".to_string()]);
        assert!(!responses[0].ok);
        assert!(responses[0]
            .error
            .as_deref()
            .unwrap()
            .contains("malformed request"));
        assert_eq!(server.service().metrics().malformed_requests, 1);
        server.stop();
    }

    #[test]
    fn multiple_requests_on_one_connection_answer_in_order() {
        let server = start_quick_server();
        let lines: Vec<String> = (0..4)
            .map(|i| icomm_persist::to_string(&TuneRequest::new(i, "nano", "lane")).unwrap())
            .collect();
        let responses = round_trip(server.local_addr(), &lines);
        let ids: Vec<u64> = responses.iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
        assert!(responses.iter().all(|r| r.ok));
        // One characterization served all four.
        assert_eq!(server.service().metrics().characterizations, 1);
        server.stop();
    }

    #[test]
    fn stats_verb_reports_counters_on_the_wire() {
        let server = start_quick_server();
        let addr = server.local_addr();
        let request = icomm_persist::to_string(&TuneRequest::new(1, "tx2", "orb")).unwrap();
        round_trip(addr, &[request]);

        let mut stream = TcpStream::connect(addr).expect("connect");
        writeln!(stream, "{{\"stats\": true}}").unwrap();
        stream.flush().unwrap();
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let report: StatsReport = icomm_persist::from_str(&line).expect("stats report JSON");
        assert_eq!(report.requests, 1);
        assert_eq!(report.completed, 1);
        assert_eq!(report.characterizations, 1);
        assert!(report.latency_p99_us > 0);
        // The stats line is not counted as malformed.
        assert_eq!(server.service().metrics().malformed_requests, 0);
        server.stop();
    }

    #[test]
    fn oversized_line_is_rejected_and_counted() {
        let service = Arc::new(TuningService::start(ServiceConfig::quick().with_workers(2)));
        let server = Server::start_with(
            service,
            "127.0.0.1:0",
            ServerConfig {
                max_line_bytes: 256,
                ..ServerConfig::default()
            },
        )
        .expect("bind");
        let garbage = "x".repeat(4096);
        let responses = round_trip(server.local_addr(), &[garbage]);
        assert!(!responses[0].ok);
        assert!(responses[0].error.as_deref().unwrap().contains("exceeds"));
        assert_eq!(server.service().metrics().oversized_lines, 1);
        server.stop();
    }

    #[test]
    fn stalled_client_hits_the_read_deadline() {
        let service = Arc::new(TuningService::start(ServiceConfig::quick().with_workers(2)));
        let server = Server::start_with(
            service,
            "127.0.0.1:0",
            ServerConfig {
                read_timeout: Some(Duration::from_millis(80)),
                ..ServerConfig::default()
            },
        )
        .expect("bind");
        let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
        // Half a line, then stall past the deadline.
        stream.write_all(b"{\"id\": 1,").unwrap();
        stream.flush().unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while server.service().metrics().read_timeouts == 0 {
            assert!(std::time::Instant::now() < deadline, "deadline never fired");
            std::thread::sleep(Duration::from_millis(10));
        }
        server.stop();
    }

    #[test]
    fn connections_beyond_the_cap_are_turned_away() {
        let service = Arc::new(TuningService::start(ServiceConfig::quick().with_workers(2)));
        let server = Server::start_with(
            service,
            "127.0.0.1:0",
            ServerConfig {
                max_connections: 1,
                ..ServerConfig::default()
            },
        )
        .expect("bind");
        // First connection holds its slot open.
        let held = TcpStream::connect(server.local_addr()).expect("connect");
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while server.service().metrics().conn_accepted == 0 {
            assert!(std::time::Instant::now() < deadline, "never accepted");
            std::thread::sleep(Duration::from_millis(5));
        }
        // Second is refused with an error line.
        let refused = TcpStream::connect(server.local_addr()).expect("connect");
        let mut reader = BufReader::new(refused);
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let response: TuneResponse = icomm_persist::from_str(&line).unwrap();
        assert!(!response.ok);
        assert!(response.error.as_deref().unwrap().contains("capacity"));
        assert_eq!(server.service().metrics().conn_rejected, 1);
        drop(held);
        server.stop();
    }
}
