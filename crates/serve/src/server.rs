//! Line-delimited JSON over TCP.
//!
//! One [`TuneRequest`] per line in, one [`TuneResponse`] per line out, in
//! request order per connection. The accept loop runs on its own thread
//! and each connection gets a handler thread; all of them ride the shared
//! [`TuningService`] worker pool, so concurrent connections coalesce onto
//! the same single-flight characterizations.
//!
//! Try it with `nc` while `icomm serve` runs:
//!
//! ```text
//! $ echo '{"id": 1, "board": "xavier", "app": "shwfs"}' | nc 127.0.0.1 7311
//! {"id": 1, "ok": true, ..., "recommended": "ZC", ...}
//! ```

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::Mutex;

use crate::protocol::{TuneRequest, TuneResponse};
use crate::service::TuningService;

/// Open connections: a writable clone of each stream (so `stop` can
/// unblock the reader) paired with its handler thread.
type ConnectionList = Arc<Mutex<Vec<(TcpStream, JoinHandle<()>)>>>;

/// Running TCP front end over a [`TuningService`].
pub struct Server {
    local_addr: SocketAddr,
    service: Arc<TuningService>,
    shutdown: Arc<AtomicBool>,
    accept_handle: Option<JoinHandle<()>>,
    connections: ConnectionList,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("local_addr", &self.local_addr)
            .finish()
    }
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:7311`, or port `0` for an ephemeral
    /// port) and starts accepting connections.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn start(service: Arc<TuningService>, addr: &str) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let connections: ConnectionList = Arc::new(Mutex::new(Vec::new()));

        let accept_handle = {
            let service = service.clone();
            let shutdown = shutdown.clone();
            let connections = connections.clone();
            std::thread::Builder::new()
                .name("icomm-serve-accept".to_string())
                .spawn(move || {
                    for incoming in listener.incoming() {
                        if shutdown.load(Ordering::SeqCst) {
                            break;
                        }
                        let Ok(stream) = incoming else { continue };
                        let Ok(peer) = stream.try_clone() else {
                            continue;
                        };
                        let service = service.clone();
                        let handle = std::thread::Builder::new()
                            .name("icomm-serve-conn".to_string())
                            .spawn(move || handle_connection(stream, &service))
                            .expect("spawn connection thread");
                        connections.lock().push((peer, handle));
                    }
                })
                .expect("spawn accept thread")
        };

        Ok(Server {
            local_addr,
            service,
            shutdown,
            accept_handle: Some(accept_handle),
            connections,
        })
    }

    /// Address the server is listening on (useful with port `0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The service behind the server.
    pub fn service(&self) -> &Arc<TuningService> {
        &self.service
    }

    /// Stops accepting, closes every open connection, joins the handler
    /// threads, and hands the service back (e.g. to drain and persist it
    /// via [`TuningService::shutdown`]).
    pub fn stop(mut self) -> Arc<TuningService> {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
        let mut connections = self.connections.lock();
        for (stream, _) in connections.iter() {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
        for (_, handle) in connections.drain(..) {
            let _ = handle.join();
        }
        drop(connections);
        self.service.clone()
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.accept_handle.is_some() {
            self.shutdown.store(true, Ordering::SeqCst);
            let _ = TcpStream::connect(self.local_addr);
            if let Some(handle) = self.accept_handle.take() {
                let _ = handle.join();
            }
        }
    }
}

/// Reads requests line by line and answers each on the same connection.
fn handle_connection(stream: TcpStream, service: &TuningService) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let reader = BufReader::new(read_half);
    let mut writer = stream;
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let response = match icomm_persist::from_str::<TuneRequest>(&line) {
            Ok(request) => service.handle(request),
            Err(err) => TuneResponse::failure(0, format!("malformed request: {err:?}")),
        };
        let Ok(json) = icomm_persist::to_string(&response) else {
            break;
        };
        if writeln!(writer, "{json}")
            .and_then(|()| writer.flush())
            .is_err()
        {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceConfig;

    fn start_quick_server() -> Server {
        let service = Arc::new(TuningService::start(ServiceConfig::quick().with_workers(2)));
        Server::start(service, "127.0.0.1:0").expect("bind ephemeral port")
    }

    fn round_trip(addr: SocketAddr, lines: &[String]) -> Vec<TuneResponse> {
        let mut stream = TcpStream::connect(addr).expect("connect");
        for line in lines {
            writeln!(stream, "{line}").unwrap();
        }
        stream.flush().unwrap();
        let reader = BufReader::new(stream);
        reader
            .lines()
            .take(lines.len())
            .map(|l| icomm_persist::from_str(&l.unwrap()).unwrap())
            .collect()
    }

    #[test]
    fn tcp_request_round_trips() {
        let server = start_quick_server();
        let request = icomm_persist::to_string(&TuneRequest::new(5, "xavier", "shwfs")).unwrap();
        let responses = round_trip(server.local_addr(), &[request]);
        assert_eq!(responses.len(), 1);
        assert!(responses[0].ok);
        assert_eq!(responses[0].id, 5);
        assert_eq!(responses[0].recommended.as_deref(), Some("ZC"));
        let service = server.stop();
        Arc::try_unwrap(service).unwrap().shutdown().unwrap();
    }

    #[test]
    fn malformed_line_gets_an_error_response() {
        let server = start_quick_server();
        let responses = round_trip(server.local_addr(), &["{not json".to_string()]);
        assert!(!responses[0].ok);
        assert!(responses[0]
            .error
            .as_deref()
            .unwrap()
            .contains("malformed request"));
        server.stop();
    }

    #[test]
    fn multiple_requests_on_one_connection_answer_in_order() {
        let server = start_quick_server();
        let lines: Vec<String> = (0..4)
            .map(|i| icomm_persist::to_string(&TuneRequest::new(i, "nano", "lane")).unwrap())
            .collect();
        let responses = round_trip(server.local_addr(), &lines);
        let ids: Vec<u64> = responses.iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
        assert!(responses.iter().all(|r| r.ok));
        // One characterization served all four.
        assert_eq!(server.service().metrics().characterizations, 1);
        server.stop();
    }
}
