//! # icomm-serve — concurrent tuning as a service
//!
//! The framework's decision flow is cheap; the per-device
//! characterization is not. This crate turns the tuner into a service
//! that amortizes the expensive part across every caller:
//!
//! - [`registry`] — a sharded, single-flight cache of
//!   [`icomm_microbench::DeviceCharacterization`]s keyed by the device
//!   fingerprint, with JSON persistence for warm starts.
//! - [`engine`] — a work-stealing worker pool with per-job deadlines,
//!   bounded retry, and panic isolation.
//! - [`service`] — the in-process API: submit [`TuneRequest`] batches,
//!   get [`TuneResponse`]s, read [`metrics`].
//! - [`server`] — line-delimited JSON over TCP for out-of-process
//!   clients (`icomm serve`).
//!
//! A batch of a hundred requests spanning the four built-in boards costs
//! four characterization sweeps — every other request is a registry hit
//! or coalesces onto an in-flight sweep.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod admission;
pub mod catalog;
pub mod engine;
pub mod metrics;
pub mod protocol;
pub mod registry;
pub mod server;
pub mod service;

pub use admission::{
    AdmissionConfig, AdmissionController, AdmissionDecision, RequestClass, ShedReason, TokenBucket,
};
pub use engine::{BatchHandle, Engine, EngineConfig, JobError, JobOutcome};
pub use metrics::{Metrics, MetricsSnapshot};
pub use protocol::{StatsQuery, StatsReport, TuneRequest, TuneResponse};
pub use registry::{EntryMeta, LookupOutcome, Registry, RegistrySnapshot};
pub use server::{Server, ServerConfig};
pub use service::{CharacterizerFn, ServiceBatch, ServiceConfig, TuningService};
