//! Sharded, concurrent characterization registry.
//!
//! Characterizing a device is the expensive step of the framework — three
//! micro-benchmark sweeps — so the serving layer must run it **at most once
//! per device** no matter how many requests arrive concurrently. The
//! registry delivers that with two mechanisms:
//!
//! - **Sharding**: entries are spread over independent shards keyed by the
//!   [`DeviceKey`] fingerprint, so readers for different devices never
//!   contend on one lock.
//! - **Single-flight**: the first thread to miss on a key claims an
//!   in-flight slot and runs the characterization; every other thread that
//!   misses the same key blocks on the shard condvar and is handed the
//!   finished `Arc` instead of duplicating the work.
//!
//! The whole registry serializes to a [`RegistrySnapshot`] (via
//! `icomm-persist`) so a service restart warm-starts from disk instead of
//! re-running the sweeps.

use std::collections::{HashMap, HashSet};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex, RwLock};
use serde::{Deserialize, Serialize};

use icomm_microbench::{fingerprint, DeviceCharacterization, DeviceKey, NeighborSample};
use icomm_soc::DeviceProfile;

/// Default number of shards.
pub const DEFAULT_SHARDS: usize = 8;

/// Provenance attached to a registry entry: where it sits in
/// fingerprint-feature space and how much it is trusted.
///
/// Entries produced by actually running the micro-benchmarks carry
/// confidence `1.0`; entries produced by federated transfer carry the
/// transfer confidence (strictly below 1). Only fully-measured entries
/// are offered as interpolation sources by [`Registry::measured_neighbors`],
/// so transferred values never chain — each transfer is anchored to real
/// measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct EntryMeta {
    /// Fingerprint feature vector of the device
    /// ([`icomm_microbench::fingerprint_features`]).
    pub features: Vec<f64>,
    /// Trust in the entry: `1.0` for measured, the transfer confidence
    /// (< 1) for interpolated entries.
    pub confidence: f64,
}

impl EntryMeta {
    /// Meta for an entry backed by real micro-benchmark runs.
    pub fn measured(features: Vec<f64>) -> Self {
        EntryMeta {
            features,
            confidence: 1.0,
        }
    }

    /// Meta for an entry backed by a synthesized rule set rather than
    /// measurements. Confidence is clamped strictly below `1.0` so
    /// rules-backed entries are never offered as measured interpolation
    /// sources by [`Registry::measured_neighbors`].
    pub fn rules(features: Vec<f64>, confidence: f64) -> Self {
        EntryMeta {
            features,
            confidence: confidence.min(0.999),
        }
    }
}

/// How a [`Registry::get_or_characterize`] call was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LookupOutcome {
    /// The characterization was already cached.
    Hit,
    /// This call ran the characterization.
    Computed,
    /// Another thread was already characterizing this device; this call
    /// blocked and received its result.
    Coalesced,
}

impl LookupOutcome {
    /// Whether the call was served without running a characterization of
    /// its own (cache hit or coalesced onto another thread's run).
    pub fn served_from_cache(self) -> bool {
        self != LookupOutcome::Computed
    }
}

struct Shard {
    cache: RwLock<HashMap<u64, Arc<DeviceCharacterization>>>,
    meta: RwLock<HashMap<u64, EntryMeta>>,
    inflight: Mutex<HashSet<u64>>,
    cond: Condvar,
}

impl Shard {
    fn new() -> Self {
        Shard {
            cache: RwLock::new(HashMap::new()),
            meta: RwLock::new(HashMap::new()),
            inflight: Mutex::new(HashSet::new()),
            cond: Condvar::new(),
        }
    }
}

/// Removes the in-flight claim when the owning computation finishes — or
/// panics — so waiters are never stranded.
struct InflightClaim<'a> {
    shard: &'a Shard,
    key: u64,
}

impl Drop for InflightClaim<'_> {
    fn drop(&mut self) {
        self.shard.inflight.lock().remove(&self.key);
        self.shard.cond.notify_all();
    }
}

/// Sharded single-flight cache of [`DeviceCharacterization`]s.
pub struct Registry {
    shards: Vec<Shard>,
    runs: AtomicU64,
    /// Device keys whose characterizations failed the board-physics
    /// plausibility screen during a robust transfer. Quarantined
    /// entries stay cached (they may still serve their own device) but
    /// are never offered as transfer neighbors again.
    quarantined: RwLock<HashSet<u64>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("shards", &self.shards.len())
            .field("entries", &self.len())
            .field("runs", &self.characterization_runs())
            .finish()
    }
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new(DEFAULT_SHARDS)
    }
}

impl Registry {
    /// Creates an empty registry with `shards` independent shards (at
    /// least one).
    pub fn new(shards: usize) -> Self {
        Registry {
            shards: (0..shards.max(1)).map(|_| Shard::new()).collect(),
            runs: AtomicU64::new(0),
            quarantined: RwLock::new(HashSet::new()),
        }
    }

    /// Marks a characterization source as poisoned: it is dropped from
    /// [`Registry::measured_neighbors`] from now on (its cache entry
    /// survives — the device can still serve itself). Returns `true`
    /// the first time the key is quarantined.
    pub fn quarantine_source(&self, key: u64) -> bool {
        self.quarantined.write().insert(key)
    }

    /// Whether `key` is on the quarantine list.
    pub fn is_quarantined(&self, key: u64) -> bool {
        self.quarantined.read().contains(&key)
    }

    /// The quarantine list, sorted for deterministic reporting.
    pub fn quarantined_sources(&self) -> Vec<u64> {
        let mut keys: Vec<u64> = self.quarantined.read().iter().copied().collect();
        keys.sort_unstable();
        keys
    }

    /// Evicts `device`'s entry (cache, meta, quarantine) — the churn
    /// path: a device that crashed and lost local state re-joins the
    /// fleet as a stranger. Returns whether an entry existed.
    pub fn remove(&self, device: &DeviceProfile) -> bool {
        let key = fingerprint(device);
        let shard = self.shard_for(key);
        shard.meta.write().remove(&key.0);
        self.quarantined.write().remove(&key.0);
        shard.cache.write().remove(&key.0).is_some()
    }

    fn shard_for(&self, key: DeviceKey) -> &Shard {
        &self.shards[(key.0 as usize) % self.shards.len()]
    }

    /// Number of cached characterizations.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.cache.read().len()).sum()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// How many characterizations this registry has executed (not counting
    /// entries inserted directly or loaded from a snapshot).
    pub fn characterization_runs(&self) -> u64 {
        self.runs.load(Ordering::Relaxed)
    }

    /// Cached characterization for `device`, if present.
    pub fn get(&self, device: &DeviceProfile) -> Option<Arc<DeviceCharacterization>> {
        let key = fingerprint(device);
        self.shard_for(key).cache.read().get(&key.0).cloned()
    }

    /// Inserts a characterization directly (used by warm starts and
    /// tests). Returns the previous entry, if any.
    ///
    /// Entries inserted this way carry no [`EntryMeta`] and are therefore
    /// never offered as transfer neighbors; use [`Registry::insert_with_meta`]
    /// when the entry should participate in federated transfer.
    pub fn insert(
        &self,
        device: &DeviceProfile,
        characterization: DeviceCharacterization,
    ) -> Option<Arc<DeviceCharacterization>> {
        let key = fingerprint(device);
        self.shard_for(key)
            .cache
            .write()
            .insert(key.0, Arc::new(characterization))
    }

    /// Inserts a characterization together with its provenance meta.
    /// Returns the previous entry, if any.
    pub fn insert_with_meta(
        &self,
        device: &DeviceProfile,
        characterization: DeviceCharacterization,
        meta: EntryMeta,
    ) -> Option<Arc<DeviceCharacterization>> {
        let key = fingerprint(device);
        let shard = self.shard_for(key);
        shard.meta.write().insert(key.0, meta);
        shard
            .cache
            .write()
            .insert(key.0, Arc::new(characterization))
    }

    /// Provenance meta for `device`'s entry, if the entry has any.
    pub fn meta(&self, device: &DeviceProfile) -> Option<EntryMeta> {
        let key = fingerprint(device);
        self.shard_for(key).meta.read().get(&key.0).cloned()
    }

    /// All fully-measured entries (confidence `1.0`, see [`EntryMeta`])
    /// as interpolation sources, sorted by device key so the result is
    /// deterministic regardless of hash-map iteration order.
    ///
    /// Transferred entries (confidence < 1) and entries inserted without
    /// meta are excluded, so transfer is always anchored to real
    /// micro-benchmark runs and never chains.
    pub fn measured_neighbors(&self) -> Vec<NeighborSample> {
        let mut keyed: Vec<(u64, NeighborSample)> = Vec::new();
        for shard in &self.shards {
            let meta = shard.meta.read();
            let cache = shard.cache.read();
            let quarantined = self.quarantined.read();
            for (key, m) in meta.iter() {
                if m.confidence >= 1.0 && !quarantined.contains(key) {
                    if let Some(c) = cache.get(key) {
                        keyed.push((
                            *key,
                            NeighborSample {
                                source: *key,
                                features: m.features.clone(),
                                characterization: (**c).clone(),
                            },
                        ));
                    }
                }
            }
        }
        keyed.sort_by_key(|(k, _)| *k);
        keyed.into_iter().map(|(_, s)| s).collect()
    }

    /// Returns the characterization for `device`, running `characterize`
    /// at most once per device across all threads.
    ///
    /// Concurrent callers for the same device coalesce: one runs the
    /// closure, the rest block on the shard condvar and share the result.
    /// If the running closure panics, the claim is released and a waiter
    /// takes over, so a poisoned attempt never wedges the key.
    pub fn get_or_characterize<F>(
        &self,
        device: &DeviceProfile,
        characterize: F,
    ) -> (Arc<DeviceCharacterization>, LookupOutcome)
    where
        F: FnOnce(&DeviceProfile) -> DeviceCharacterization,
    {
        self.get_or_characterize_with(device, |d| (characterize(d), None))
    }

    /// Like [`Registry::get_or_characterize`], but the closure also
    /// returns optional provenance [`EntryMeta`] to store alongside the
    /// entry (feature vector + confidence, consumed by
    /// [`Registry::measured_neighbors`] and the fleet transfer path).
    ///
    /// The closure runs without any shard lock held, so it may itself
    /// query the registry — e.g. [`Registry::measured_neighbors`] for
    /// transfer interpolation — without deadlocking.
    pub fn get_or_characterize_with<F>(
        &self,
        device: &DeviceProfile,
        characterize: F,
    ) -> (Arc<DeviceCharacterization>, LookupOutcome)
    where
        F: FnOnce(&DeviceProfile) -> (DeviceCharacterization, Option<EntryMeta>),
    {
        let key = fingerprint(device);
        let shard = self.shard_for(key);

        if let Some(hit) = shard.cache.read().get(&key.0) {
            return (hit.clone(), LookupOutcome::Hit);
        }

        let mut waited = false;
        loop {
            let mut inflight = shard.inflight.lock();
            if let Some(hit) = shard.cache.read().get(&key.0) {
                let outcome = if waited {
                    LookupOutcome::Coalesced
                } else {
                    LookupOutcome::Hit
                };
                return (hit.clone(), outcome);
            }
            if inflight.insert(key.0) {
                drop(inflight);
                let claim = InflightClaim { shard, key: key.0 };
                let (characterization, meta) = characterize(device);
                let characterization = Arc::new(characterization);
                self.runs.fetch_add(1, Ordering::Relaxed);
                // Meta is published before the cache entry so any reader
                // that can see the entry can also see its provenance.
                if let Some(meta) = meta {
                    shard.meta.write().insert(key.0, meta);
                }
                shard.cache.write().insert(key.0, characterization.clone());
                drop(claim);
                return (characterization, LookupOutcome::Computed);
            }
            // Someone else is characterizing this device: wait for them to
            // either publish the result or abandon the claim.
            shard.cond.wait(&mut inflight);
            waited = true;
        }
    }

    /// Serializable copy of every cached entry (with provenance meta
    /// where the entry has any).
    pub fn snapshot(&self) -> RegistrySnapshot {
        let mut entries: Vec<RegistryEntry> = self
            .shards
            .iter()
            .flat_map(|s| {
                let meta = s.meta.read();
                s.cache
                    .read()
                    .iter()
                    .map(|(k, v)| {
                        let m = meta.get(k);
                        RegistryEntry {
                            key: DeviceKey(*k),
                            characterization: (**v).clone(),
                            features: m.map(|m| m.features.clone()),
                            confidence: m.map(|m| m.confidence),
                        }
                    })
                    .collect::<Vec<_>>()
            })
            .collect();
        entries.sort_by_key(|e| e.key);
        let quarantined = {
            let mut keys: Vec<DeviceKey> = self
                .quarantined
                .read()
                .iter()
                .map(|k| DeviceKey(*k))
                .collect();
            keys.sort();
            // `None` when unused keeps the snapshot bytes identical to
            // the pre-quarantine format.
            if keys.is_empty() {
                None
            } else {
                Some(keys)
            }
        };
        RegistrySnapshot {
            entries,
            quarantined,
        }
    }

    /// Merges a snapshot into the registry (existing entries win; the
    /// quarantine lists union).
    pub fn load_snapshot(&self, snapshot: RegistrySnapshot) {
        if let Some(quarantined) = snapshot.quarantined {
            let mut set = self.quarantined.write();
            set.extend(quarantined.into_iter().map(|k| k.0));
        }
        for entry in snapshot.entries {
            let shard = self.shard_for(entry.key);
            let mut cache = shard.cache.write();
            if cache.contains_key(&entry.key.0) {
                continue;
            }
            if let (Some(features), Some(confidence)) = (entry.features, entry.confidence) {
                shard.meta.write().insert(
                    entry.key.0,
                    EntryMeta {
                        features,
                        confidence,
                    },
                );
            }
            cache.insert(entry.key.0, Arc::new(entry.characterization));
        }
    }

    /// Persists the registry to `path` as a checksummed, versioned
    /// snapshot ([`icomm_persist::snapshot`]), written atomically: a
    /// crash mid-save leaves the previous snapshot intact, never a torn
    /// file.
    ///
    /// # Errors
    ///
    /// Returns a message on serialization or I/O failure.
    pub fn save(&self, path: &Path) -> Result<(), String> {
        let json = icomm_persist::to_string(&self.snapshot())
            .map_err(|e| format!("serializing registry: {e:?}"))?;
        icomm_persist::write_atomic(path, &json)
            .map_err(|e| format!("writing {}: {e}", path.display()))
    }

    /// Loads a registry snapshot from `path` and merges it in. Returns the
    /// number of entries in the snapshot.
    ///
    /// Framed snapshots are verified (length, checksum, version) before
    /// parsing; legacy bare-JSON files from before the framing are still
    /// accepted.
    ///
    /// # Errors
    ///
    /// Returns a message on I/O failure, framing violation (truncation,
    /// bit corruption, trailing garbage), or parse failure.
    pub fn load(&self, path: &Path) -> Result<usize, String> {
        let bytes = std::fs::read(path).map_err(|e| format!("reading {}: {e}", path.display()))?;
        let json = if icomm_persist::snapshot::is_snapshot(&bytes) {
            icomm_persist::snapshot::decode(&bytes)
                .map_err(|e| format!("verifying {}: {e}", path.display()))?
                .to_owned()
        } else {
            String::from_utf8(bytes).map_err(|_| format!("{} is not UTF-8", path.display()))?
        };
        let snapshot: RegistrySnapshot = icomm_persist::from_str(&json)
            .map_err(|e| format!("parsing {}: {e:?}", path.display()))?;
        let n = snapshot.entries.len();
        self.load_snapshot(snapshot);
        Ok(n)
    }
}

/// One persisted registry entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegistryEntry {
    /// Device fingerprint the entry is keyed by.
    pub key: DeviceKey,
    /// The cached characterization.
    pub characterization: DeviceCharacterization,
    /// Fingerprint feature vector, when the entry carries provenance
    /// meta. `None` on entries from snapshots predating federated
    /// transfer — they stay usable as cache entries but are not offered
    /// as transfer neighbors.
    pub features: Option<Vec<f64>>,
    /// Entry confidence (`1.0` measured, `< 1` transferred), when the
    /// entry carries provenance meta.
    pub confidence: Option<f64>,
}

/// Serializable point-in-time copy of a [`Registry`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegistrySnapshot {
    /// All cached entries, sorted by key.
    pub entries: Vec<RegistryEntry>,
    /// Quarantined source keys, sorted; `None` (and absent from older
    /// snapshots, which still load) when nothing is quarantined.
    pub quarantined: Option<Vec<DeviceKey>>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use icomm_microbench::quick_characterize_device;

    fn sample(device: &DeviceProfile) -> DeviceCharacterization {
        DeviceCharacterization {
            device: device.name.clone(),
            gpu_cache_max_throughput: 1.0,
            gpu_zc_throughput: 1.0,
            gpu_um_throughput: 1.0,
            gpu_cache_threshold_pct: 5.0,
            gpu_cache_zone2_pct: None,
            cpu_cache_threshold_pct: 100.0,
            sc_zc_max_speedup: 1.0,
            zc_sc_max_speedup: 1.0,
            upm_supported: false,
            gpu_upm_throughput: 0.0,
            upm_kernel_penalty: 1.0,
            um_upm_max_speedup: 1.0,
        }
    }

    #[test]
    fn first_lookup_computes_second_hits() {
        let registry = Registry::default();
        let tx2 = DeviceProfile::jetson_tx2();
        let (_, outcome) = registry.get_or_characterize(&tx2, sample);
        assert_eq!(outcome, LookupOutcome::Computed);
        let (_, outcome) = registry.get_or_characterize(&tx2, sample);
        assert_eq!(outcome, LookupOutcome::Hit);
        assert_eq!(registry.characterization_runs(), 1);
        assert_eq!(registry.len(), 1);
    }

    #[test]
    fn distinct_devices_get_distinct_entries() {
        let registry = Registry::new(2);
        for device in [
            DeviceProfile::jetson_nano(),
            DeviceProfile::jetson_tx2(),
            DeviceProfile::jetson_agx_xavier(),
            DeviceProfile::orin_like(),
        ] {
            registry.get_or_characterize(&device, sample);
        }
        assert_eq!(registry.len(), 4);
        assert_eq!(registry.characterization_runs(), 4);
    }

    #[test]
    fn panicking_characterization_releases_the_claim() {
        let registry = Registry::default();
        let nano = DeviceProfile::jetson_nano();
        let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            registry.get_or_characterize(&nano, |_| panic!("sweep exploded"));
        }));
        assert!(attempt.is_err());
        // The key is not wedged: a retry succeeds.
        let (_, outcome) = registry.get_or_characterize(&nano, sample);
        assert_eq!(outcome, LookupOutcome::Computed);
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let registry = Registry::default();
        let tx2 = DeviceProfile::jetson_tx2();
        registry.insert(&tx2, quick_characterize_device(&tx2));
        let json = icomm_persist::to_string(&registry.snapshot()).unwrap();
        let back: RegistrySnapshot = icomm_persist::from_str(&json).unwrap();
        let restored = Registry::default();
        restored.load_snapshot(back);
        assert_eq!(
            registry.get(&tx2).unwrap().as_ref(),
            restored.get(&tx2).unwrap().as_ref()
        );
        // Loaded entries do not count as runs.
        assert_eq!(restored.characterization_runs(), 0);
    }

    #[test]
    fn save_load_round_trips_with_verification() {
        let dir = std::env::temp_dir().join(format!("icomm-reg-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("registry.snap");
        let registry = Registry::default();
        let tx2 = DeviceProfile::jetson_tx2();
        registry.insert(&tx2, sample(&tx2));
        registry.save(&path).unwrap();

        let restored = Registry::default();
        assert_eq!(restored.load(&path).unwrap(), 1);
        assert_eq!(
            restored.get(&tx2).unwrap().as_ref(),
            registry.get(&tx2).unwrap().as_ref()
        );

        // A flipped byte in the payload fails verification loudly.
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        let err = Registry::default().load(&path).unwrap_err();
        assert!(err.contains("checksum"), "unexpected error: {err}");

        // A truncated snapshot likewise.
        let bytes = std::fs::read(&path).map(|mut b| {
            b[last] ^= 0x10; // restore
            b.truncate(b.len() - 5);
            b
        });
        std::fs::write(&path, bytes.unwrap()).unwrap();
        let err = Registry::default().load(&path).unwrap_err();
        assert!(err.contains("truncated"), "unexpected error: {err}");

        // Legacy bare-JSON files still load.
        let json = icomm_persist::to_string(&registry.snapshot()).unwrap();
        std::fs::write(&path, json).unwrap();
        assert_eq!(Registry::default().load(&path).unwrap(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn meta_round_trips_and_gates_neighbors() {
        let registry = Registry::default();
        let tx2 = DeviceProfile::jetson_tx2();
        let nano = DeviceProfile::jetson_nano();
        let xavier = DeviceProfile::jetson_agx_xavier();
        registry.insert_with_meta(&tx2, sample(&tx2), EntryMeta::measured(vec![1.0, 2.0]));
        registry.insert_with_meta(
            &nano,
            sample(&nano),
            EntryMeta {
                features: vec![3.0, 4.0],
                confidence: 0.8,
            },
        );
        registry.insert(&xavier, sample(&xavier));

        // Only the measured entry is offered as a neighbor: the
        // transferred one (confidence < 1) and the meta-less one are out.
        let neighbors = registry.measured_neighbors();
        assert_eq!(neighbors.len(), 1);
        assert_eq!(neighbors[0].features, vec![1.0, 2.0]);

        // Meta survives a snapshot round trip.
        let restored = Registry::default();
        restored.load_snapshot(registry.snapshot());
        assert_eq!(restored.meta(&tx2).unwrap().confidence, 1.0);
        assert_eq!(restored.meta(&nano).unwrap().confidence, 0.8);
        assert!(restored.meta(&xavier).is_none());
        assert_eq!(restored.measured_neighbors().len(), 1);
    }

    #[test]
    fn characterize_with_publishes_meta() {
        let registry = Registry::default();
        let tx2 = DeviceProfile::jetson_tx2();
        let (_, outcome) = registry
            .get_or_characterize_with(&tx2, |d| (sample(d), Some(EntryMeta::measured(vec![7.0]))));
        assert_eq!(outcome, LookupOutcome::Computed);
        assert_eq!(registry.meta(&tx2).unwrap().features, vec![7.0]);
        assert_eq!(registry.measured_neighbors().len(), 1);
    }

    #[test]
    fn load_snapshot_keeps_existing_entries() {
        let registry = Registry::default();
        let tx2 = DeviceProfile::jetson_tx2();
        let mut ours = sample(&tx2);
        ours.gpu_cache_max_throughput = 42.0;
        registry.insert(&tx2, ours.clone());
        let other = Registry::default();
        other.insert(&tx2, sample(&tx2));
        registry.load_snapshot(other.snapshot());
        assert_eq!(registry.get(&tx2).unwrap().gpu_cache_max_throughput, 42.0);
    }
}
