//! The in-process tuning service: registry + engine + metrics behind one
//! handle.
//!
//! [`TuningService`] is what both the TCP server and embedded callers use.
//! Submitting a request resolves its names, obtains the device
//! characterization through the single-flight [`Registry`], runs the
//! recommendation flow, and returns a [`TuneResponse`] — all on the worker
//! pool, so a hundred requests for four boards cost four characterization
//! sweeps, not a hundred.

use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

use icomm_core::recommend_for_device;
use icomm_microbench::{
    characterize_device, fingerprint_features, quick_characterize_device,
    robust_transfer_characterization, DeviceCharacterization, TransferPolicy,
};
use icomm_models::CommModelKind;
use icomm_soc::DeviceProfile;

use crate::admission::{
    AdmissionConfig, AdmissionController, AdmissionDecision, RequestClass, ShedReason,
};
use crate::catalog;
use crate::engine::{BatchHandle, Engine, EngineConfig};
use crate::metrics::{Metrics, MetricsSnapshot};
use crate::protocol::{TuneRequest, TuneResponse};
use crate::registry::{EntryMeta, Registry};

/// The characterization strategy the service runs on a registry miss.
pub type CharacterizerFn = Arc<dyn Fn(&DeviceProfile) -> DeviceCharacterization + Send + Sync>;

/// Service construction options.
#[derive(Clone)]
pub struct ServiceConfig {
    /// Worker-pool sizing and per-job policy.
    pub engine: EngineConfig,
    /// Registry shard count.
    pub shards: usize,
    /// Characterization to run on a registry miss. Defaults to the full
    /// micro-benchmark sweep ([`characterize_device`]).
    pub characterizer: CharacterizerFn,
    /// When set, the registry warm-starts from this file (if it exists)
    /// and is persisted back on [`TuningService::shutdown`].
    pub registry_path: Option<PathBuf>,
    /// When set, requests pass admission control before queuing: shed
    /// requests get an immediate explicit `overloaded` response instead
    /// of waiting out a timeout. `None` (the default) admits everything.
    pub admission: Option<AdmissionConfig>,
    /// When set, registry misses first try federated transfer —
    /// interpolating from measured neighbors already in the registry —
    /// and only run the micro-benchmarks when transfer confidence lands
    /// below the policy floor. `None` (the default) always measures.
    pub transfer: Option<TransferPolicy>,
}

impl fmt::Debug for ServiceConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ServiceConfig")
            .field("engine", &self.engine)
            .field("shards", &self.shards)
            .field("registry_path", &self.registry_path)
            .field("admission", &self.admission)
            .field("transfer", &self.transfer)
            .finish()
    }
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            engine: EngineConfig::default(),
            shards: crate::registry::DEFAULT_SHARDS,
            characterizer: Arc::new(characterize_device),
            registry_path: None,
            admission: None,
            transfer: None,
        }
    }
}

impl ServiceConfig {
    /// Config using the trimmed characterization sweep
    /// ([`quick_characterize_device`]) — a few percent of accuracy for a
    /// fraction of the latency. The right default for interactive serving.
    pub fn quick() -> Self {
        ServiceConfig {
            characterizer: Arc::new(quick_characterize_device),
            ..ServiceConfig::default()
        }
    }

    /// Sets the worker count.
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.engine.workers = workers;
        self
    }

    /// Sets the registry persistence path.
    #[must_use]
    pub fn with_registry_path(mut self, path: PathBuf) -> Self {
        self.registry_path = Some(path);
        self
    }

    /// Enables admission control with the given configuration.
    #[must_use]
    pub fn with_admission(mut self, admission: AdmissionConfig) -> Self {
        self.admission = Some(admission);
        self
    }

    /// Enables federated characterization transfer with the given policy.
    #[must_use]
    pub fn with_transfer(mut self, transfer: TransferPolicy) -> Self {
        self.transfer = Some(transfer);
        self
    }
}

/// Awaitable handle to a batch submitted to the service.
#[derive(Debug)]
pub struct ServiceBatch {
    inner: BatchHandle<TuneRequest, TuneResponse>,
    /// Responses produced before queuing (admission rejections): already
    /// final, merged into the result at [`ServiceBatch::wait`].
    shed: Vec<TuneResponse>,
}

impl ServiceBatch {
    /// Number of responses this handle will deliver.
    pub fn expected(&self) -> usize {
        self.inner.expected() + self.shed.len()
    }

    /// Blocks until every request resolves; responses are sorted by
    /// request id. Engine-level failures (timeout, panic) surface as
    /// failure responses; admission rejections surface as `overloaded`
    /// responses.
    pub fn wait(self) -> Vec<TuneResponse> {
        let mut responses: Vec<TuneResponse> = self
            .inner
            .wait()
            .into_iter()
            .map(|outcome| match outcome.result {
                Ok(response) => response,
                Err(err) => TuneResponse::failure(outcome.job.id, err.to_string()),
            })
            .collect();
        responses.extend(self.shed);
        responses.sort_by_key(|r| r.id);
        responses
    }
}

/// Concurrent tuning service: accepts [`TuneRequest`] batches, memoizes
/// device characterizations, and answers with [`TuneResponse`]s.
pub struct TuningService {
    engine: Engine<TuneRequest, TuneResponse>,
    registry: Arc<Registry>,
    metrics: Arc<Metrics>,
    registry_path: Option<PathBuf>,
    admission: Option<AdmissionController>,
    /// Epoch for admission-control timestamps: the token bucket sees
    /// microseconds since service start.
    started: Instant,
    /// The miss-path characterizer, kept so out-of-band callers (the
    /// binary `characterize` opcode) resolve through the same strategy
    /// and single-flight registry as tune requests.
    characterizer: CharacterizerFn,
    /// Federated-transfer policy for those same out-of-band lookups.
    transfer: Option<TransferPolicy>,
}

impl fmt::Debug for TuningService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TuningService")
            .field("registry", &self.registry)
            .field("registry_path", &self.registry_path)
            .finish()
    }
}

impl TuningService {
    /// Starts the worker pool; warm-starts the registry when the config
    /// names an existing snapshot file.
    pub fn start(config: ServiceConfig) -> Self {
        let metrics = Arc::new(Metrics::new());
        let registry = Arc::new(Registry::new(config.shards));
        if let Some(path) = &config.registry_path {
            if path.exists() {
                // A corrupt snapshot only costs the warm start: count it
                // and rebuild characterizations from scratch.
                if registry.load(path).is_err() {
                    metrics.snapshot_corruptions.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        let handler = {
            let registry = registry.clone();
            let metrics = metrics.clone();
            let characterizer = config.characterizer.clone();
            let transfer = config.transfer.clone();
            Arc::new(move |request: &TuneRequest| {
                handle_request(
                    request,
                    &registry,
                    &metrics,
                    &characterizer,
                    transfer.as_ref(),
                )
            }) as Arc<dyn Fn(&TuneRequest) -> TuneResponse + Send + Sync>
        };
        let engine = Engine::new(config.engine.clone(), metrics.clone(), handler);
        TuningService {
            engine,
            registry,
            metrics,
            registry_path: config.registry_path,
            admission: config.admission.map(AdmissionController::new),
            started: Instant::now(),
            characterizer: config.characterizer,
            transfer: config.transfer,
        }
    }

    /// Starts a service with default (full-sweep) configuration.
    pub fn start_default() -> Self {
        TuningService::start(ServiceConfig::default())
    }

    /// The shared characterization registry.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Point-in-time copy of the service counters.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// The live counters, for components (like the TCP server or a load
    /// harness) that record events on behalf of the service.
    pub fn metrics_handle(&self) -> &Arc<Metrics> {
        &self.metrics
    }

    /// Resolves the characterization for a board name through the same
    /// registry / transfer / characterizer path a tune request takes,
    /// with the same metric accounting. Backs the binary `characterize`
    /// opcode; embedded callers can use it to inspect what the service
    /// would decide from.
    ///
    /// # Errors
    ///
    /// Returns a message for an unknown board name.
    pub fn characterize_board(
        &self,
        board: &str,
    ) -> Result<Arc<icomm_microbench::DeviceCharacterization>, String> {
        let device = catalog::board_by_name(board)?;
        let (characterization, lookup) =
            self.registry
                .get_or_characterize_with(&device, |device| match &self.transfer {
                    Some(policy) => characterize_or_transfer(
                        device,
                        &self.registry,
                        &self.metrics,
                        &self.characterizer,
                        policy,
                    ),
                    None => {
                        self.metrics
                            .characterizations
                            .fetch_add(1, Ordering::Relaxed);
                        ((self.characterizer)(device), None)
                    }
                });
        if lookup.served_from_cache() {
            self.metrics.cache_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.metrics.cache_misses.fetch_add(1, Ordering::Relaxed);
        }
        Ok(characterization)
    }

    /// Serves one request synchronously (through the worker pool).
    pub fn handle(&self, request: TuneRequest) -> TuneResponse {
        let id = request.id;
        self.submit_batch(vec![request])
            .wait()
            .pop()
            .unwrap_or_else(|| TuneResponse::failure(id, "engine returned no response".to_string()))
    }

    /// Enqueues a batch of requests on the worker pool.
    ///
    /// With admission control configured, each request is checked before
    /// queuing; shed requests get an immediate `overloaded` response in
    /// the batch result and never touch the worker pool.
    pub fn submit_batch(&self, requests: Vec<TuneRequest>) -> ServiceBatch {
        self.metrics
            .requests
            .fetch_add(requests.len() as u64, Ordering::Relaxed);
        let mut shed = Vec::new();
        let admitted: Vec<TuneRequest> = match &self.admission {
            None => requests,
            Some(controller) => requests
                .into_iter()
                .filter_map(|request| {
                    let class = request
                        .class
                        .as_deref()
                        .map(RequestClass::parse)
                        .unwrap_or(RequestClass::Interactive);
                    let depth = self.metrics.queue_depth.load(Ordering::Relaxed) as usize;
                    let now_us = self.started.elapsed().as_micros() as u64;
                    match controller.admit(class, depth, now_us) {
                        AdmissionDecision::Admit => Some(request),
                        AdmissionDecision::Shed(reason) => {
                            match reason {
                                ShedReason::Queue => {
                                    self.metrics.shed_queue.fetch_add(1, Ordering::Relaxed)
                                }
                                ShedReason::Rate => {
                                    self.metrics.shed_rate.fetch_add(1, Ordering::Relaxed)
                                }
                            };
                            shed.push(TuneResponse::overloaded(request.id, reason.as_str()));
                            None
                        }
                    }
                })
                .collect(),
        };
        ServiceBatch {
            inner: self.engine.submit_batch(admitted),
            shed,
        }
    }

    /// Persists the registry to `path` now.
    ///
    /// # Errors
    ///
    /// Returns a message on serialization or I/O failure.
    pub fn save_registry(&self, path: &std::path::Path) -> Result<(), String> {
        self.registry.save(path)
    }

    /// Drains every queued request, stops the workers, and — when the
    /// config named a registry path — persists the registry for the next
    /// start.
    ///
    /// # Errors
    ///
    /// Returns a message if the registry snapshot cannot be written.
    pub fn shutdown(self) -> Result<(), String> {
        let TuningService {
            engine,
            registry,
            metrics: _,
            registry_path,
            admission: _,
            started: _,
            characterizer: _,
            transfer: _,
        } = self;
        engine.shutdown();
        if let Some(path) = registry_path {
            registry.save(&path)?;
        }
        Ok(())
    }
}

/// On a registry miss with transfer enabled: interpolate from measured
/// neighbors when confident, otherwise run the real characterizer. The
/// returned meta carries the transfer confidence (`< 1`) or marks the
/// entry as measured (`1.0`), which controls whether it may serve as a
/// future neighbor.
///
/// Interpolation runs through the Byzantine-robust path
/// ([`robust_transfer_characterization`]): sources whose values violate
/// board physics are quarantined at the registry on the spot, and up to
/// f of 2f + 1 plausible-but-lying neighbors cannot move any
/// transferred field outside the honest range.
fn characterize_or_transfer(
    device: &DeviceProfile,
    registry: &Registry,
    metrics: &Metrics,
    characterizer: &CharacterizerFn,
    policy: &TransferPolicy,
) -> (DeviceCharacterization, Option<EntryMeta>) {
    let features = fingerprint_features(device);
    let neighbors = registry.measured_neighbors();
    let had_neighbors = !neighbors.is_empty();
    let outcome = robust_transfer_characterization(&device.name, &features, &neighbors, policy);
    for source in &outcome.rejected_sources {
        if registry.quarantine_source(*source) {
            metrics.transfer_quarantined.fetch_add(1, Ordering::Relaxed);
        }
    }
    if let Some(transferred) = outcome.transferred {
        metrics.transfer_hits.fetch_add(1, Ordering::Relaxed);
        let meta = EntryMeta {
            features,
            confidence: transferred.confidence,
        };
        return (transferred.characterization, Some(meta));
    }
    if had_neighbors {
        metrics.transfer_fallbacks.fetch_add(1, Ordering::Relaxed);
    }
    metrics.characterizations.fetch_add(1, Ordering::Relaxed);
    (characterizer(device), Some(EntryMeta::measured(features)))
}

/// The per-request pipeline every worker runs: resolve names, fetch or
/// compute the characterization, recommend.
fn handle_request(
    request: &TuneRequest,
    registry: &Registry,
    metrics: &Metrics,
    characterizer: &CharacterizerFn,
    transfer: Option<&TransferPolicy>,
) -> TuneResponse {
    let started = Instant::now();
    let fail = |message: String| {
        metrics.failed.fetch_add(1, Ordering::Relaxed);
        TuneResponse::failure(request.id, message)
    };

    let device = match catalog::board_by_name(&request.board) {
        Ok(device) => device,
        Err(message) => return fail(message),
    };
    let workload = match catalog::workload_by_name(&request.app) {
        Ok(workload) => workload,
        Err(message) => return fail(message),
    };
    let current = match &request.current {
        Some(name) => match catalog::model_by_name(name) {
            Ok(model) => model,
            Err(message) => return fail(message),
        },
        None => CommModelKind::StandardCopy,
    };

    let characterize_started = Instant::now();
    let (characterization, lookup) =
        registry.get_or_characterize_with(&device, |device| match transfer {
            Some(policy) => {
                characterize_or_transfer(device, registry, metrics, characterizer, policy)
            }
            None => {
                metrics.characterizations.fetch_add(1, Ordering::Relaxed);
                (characterizer(device), None)
            }
        });
    metrics
        .characterize_latency
        .record(characterize_started.elapsed().as_micros() as u64);
    if lookup.served_from_cache() {
        metrics.cache_hits.fetch_add(1, Ordering::Relaxed);
    } else {
        metrics.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    let recommend_started = Instant::now();
    let outcome = recommend_for_device(&device, &characterization, &workload, current);
    metrics
        .recommend_latency
        .record(recommend_started.elapsed().as_micros() as u64);

    // Price the recommended model's memory footprint so operators can
    // see what a tuning decision costs in resident bytes, not just time.
    let footprint =
        icomm_footprint::model_footprint(outcome.recommendation.recommended, &workload, &device);
    metrics
        .footprint_evaluations
        .fetch_add(1, Ordering::Relaxed);
    metrics
        .footprint_bytes_total
        .fetch_add(footprint.as_u64(), Ordering::Relaxed);

    metrics.completed.fetch_add(1, Ordering::Relaxed);
    let latency_us = started.elapsed().as_micros() as u64;
    metrics.total_latency.record(latency_us);
    TuneResponse::success(
        request.id,
        &request.board,
        &request.app,
        &outcome,
        lookup.served_from_cache(),
        latency_us,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_service() -> TuningService {
        TuningService::start(ServiceConfig::quick().with_workers(2))
    }

    #[test]
    fn serves_a_single_request() {
        let service = quick_service();
        let response = service.handle(TuneRequest::new(1, "xavier", "shwfs"));
        assert!(response.ok, "{:?}", response.error);
        assert_eq!(response.id, 1);
        assert_eq!(response.current.as_deref(), Some("SC"));
        assert_eq!(response.recommended.as_deref(), Some("ZC"));
        assert_eq!(response.switch_suggested, Some(true));
        assert_eq!(response.cache_hit, Some(false));
        service.shutdown().unwrap();
    }

    #[test]
    fn second_request_for_same_board_hits_the_registry() {
        let service = quick_service();
        service.handle(TuneRequest::new(1, "tx2", "orb"));
        let response = service.handle(TuneRequest::new(2, "tx2", "lane"));
        assert_eq!(response.cache_hit, Some(true));
        let snapshot = service.metrics();
        assert_eq!(snapshot.characterizations, 1);
        assert_eq!(snapshot.cache_hits, 1);
        assert_eq!(snapshot.cache_misses, 1);
        service.shutdown().unwrap();
    }

    #[test]
    fn bad_names_fail_without_characterizing() {
        let service = quick_service();
        let response = service.handle(TuneRequest::new(1, "pi5", "shwfs"));
        assert!(!response.ok);
        assert!(response.error.as_deref().unwrap().contains("unknown board"));
        let response = service.handle(TuneRequest::new(2, "nano", "quake"));
        assert!(!response.ok);
        assert!(response.error.as_deref().unwrap().contains("unknown app"));
        let response = service.handle(TuneRequest::new(3, "nano", "orb").with_current("warp"));
        assert!(!response.ok);
        assert!(response.error.as_deref().unwrap().contains("unknown model"));
        let snapshot = service.metrics();
        assert_eq!(snapshot.characterizations, 0);
        assert_eq!(snapshot.failed, 3);
        service.shutdown().unwrap();
    }

    #[test]
    fn batch_responses_come_back_sorted_by_id() {
        let service = quick_service();
        let requests: Vec<TuneRequest> = (0..16)
            .map(|i| TuneRequest::new(i, "nano", "shwfs"))
            .collect();
        let responses = service.submit_batch(requests).wait();
        assert_eq!(responses.len(), 16);
        for (i, response) in responses.iter().enumerate() {
            assert_eq!(response.id, i as u64);
            assert!(response.ok);
        }
        assert_eq!(service.metrics().characterizations, 1);
        service.shutdown().unwrap();
    }

    #[test]
    fn admission_sheds_with_explicit_overloaded_responses() {
        let service = TuningService::start(ServiceConfig::quick().with_workers(2).with_admission(
            AdmissionConfig {
                rate_per_sec: 0.0,
                burst: 2.0,
                queue_bound: 1_000,
                bulk_queue_fraction: 0.5,
            },
        ));
        let requests: Vec<TuneRequest> = (0..6)
            .map(|i| TuneRequest::new(i, "nano", "lane"))
            .collect();
        let responses = service.submit_batch(requests).wait();
        assert_eq!(responses.len(), 6, "shed requests still answer");
        let served = responses.iter().filter(|r| r.ok).count();
        let shed: Vec<&TuneResponse> = responses.iter().filter(|r| r.is_overloaded()).collect();
        assert_eq!(served, 2, "burst of 2 admitted");
        assert_eq!(shed.len(), 4);
        assert!(shed.iter().all(|r| r.overloaded.as_deref() == Some("rate")));
        // Responses stay sorted by id even with the shed merge.
        let ids: Vec<u64> = responses.iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4, 5]);
        let snapshot = service.metrics();
        assert_eq!(snapshot.shed_rate, 4);
        assert_eq!(snapshot.shed_total(), 4);
        service.shutdown().unwrap();
    }

    #[test]
    fn bulk_class_sheds_on_queue_pressure_first() {
        let service = TuningService::start(ServiceConfig::quick().with_workers(1).with_admission(
            AdmissionConfig {
                rate_per_sec: 1e9,
                burst: 1e9,
                queue_bound: 1_000,
                // Bulk bound of zero: any queued work sheds bulk.
                bulk_queue_fraction: 0.0,
            },
        ));
        let response = service.handle(TuneRequest::new(1, "nano", "shwfs").with_class("bulk"));
        assert!(response.is_overloaded());
        assert_eq!(response.overloaded.as_deref(), Some("queue"));
        assert_eq!(service.metrics().shed_queue, 1);
        // Interactive traffic still flows.
        let response = service.handle(TuneRequest::new(2, "nano", "shwfs"));
        assert!(response.ok, "{:?}", response.error);
        service.shutdown().unwrap();
    }

    #[test]
    fn transfer_serves_drifted_variants_without_remeasuring() {
        use icomm_microbench::fingerprint;
        let service = TuningService::start(
            ServiceConfig::quick()
                .with_workers(2)
                .with_transfer(TransferPolicy::default()),
        );
        let tx2 = catalog::board_by_name("tx2").unwrap();
        // Seed one measured entry through the normal path.
        let seeded = service.handle(TuneRequest::new(1, "tx2", "orb"));
        assert!(seeded.ok, "{:?}", seeded.error);

        // A 2% clock-drifted variant transfers instead of re-running.
        let drifted = tx2.with_power_scale(0.98, 0.98, 0.98);
        let registry = service.registry().clone();
        assert_ne!(fingerprint(&tx2), fingerprint(&drifted));
        let metrics = service.metrics_handle().clone();
        let characterizer: CharacterizerFn = Arc::new(quick_characterize_device);
        let (c, lookup) = registry.get_or_characterize_with(&drifted, |d| {
            characterize_or_transfer(
                d,
                &registry,
                &metrics,
                &characterizer,
                &TransferPolicy::default(),
            )
        });
        assert_eq!(lookup, crate::registry::LookupOutcome::Computed);
        assert_eq!(c.device, drifted.name);
        let snapshot = service.metrics();
        assert_eq!(snapshot.transfer_hits, 1);
        assert_eq!(snapshot.characterizations, 1, "only the seed measured");
        // The transferred entry must not become a neighbor itself.
        let meta = registry.meta(&drifted).expect("transferred entry has meta");
        assert!(meta.confidence < 1.0);
        assert_eq!(registry.measured_neighbors().len(), 1);
        service.shutdown().unwrap();
    }

    #[test]
    fn transfer_falls_back_to_measurement_across_boards() {
        let service = TuningService::start(
            ServiceConfig::quick()
                .with_workers(2)
                .with_transfer(TransferPolicy::default()),
        );
        service.handle(TuneRequest::new(1, "tx2", "orb"));
        // Xavier is far from TX2 in feature space: transfer must decline
        // and a real run must happen.
        let response = service.handle(TuneRequest::new(2, "xavier", "shwfs"));
        assert!(response.ok, "{:?}", response.error);
        assert_eq!(response.recommended.as_deref(), Some("ZC"));
        let snapshot = service.metrics();
        assert_eq!(snapshot.characterizations, 2);
        assert_eq!(snapshot.transfer_hits, 0);
        assert_eq!(snapshot.transfer_fallbacks, 1);
        service.shutdown().unwrap();
    }

    #[test]
    fn characterize_board_shares_the_registry() {
        let service = quick_service();
        let c = service.characterize_board("tx2").expect("characterize");
        assert_eq!(c.device, "Jetson TX2");
        // A tune request for the same board is a registry hit.
        let response = service.handle(TuneRequest::new(1, "tx2", "orb"));
        assert_eq!(response.cache_hit, Some(true));
        let snapshot = service.metrics();
        assert_eq!(snapshot.characterizations, 1);
        assert!(service.characterize_board("pi5").is_err());
        service.shutdown().unwrap();
    }

    #[test]
    fn matches_the_sequential_tuner() {
        use icomm_core::Tuner;
        let service = quick_service();
        let response = service.handle(TuneRequest::new(1, "tx2", "orb").with_current("zc"));
        let device = catalog::board_by_name("tx2").unwrap();
        let tuner =
            Tuner::with_characterization(device.clone(), quick_characterize_device(&device));
        let workload = catalog::workload_by_name("orb").unwrap();
        let outcome = tuner.recommend(&workload, CommModelKind::ZeroCopy);
        assert_eq!(
            response.recommended.as_deref(),
            Some(outcome.recommendation.recommended.abbrev())
        );
        assert_eq!(
            response.rationale.as_deref(),
            Some(outcome.recommendation.rationale.as_str())
        );
        service.shutdown().unwrap();
    }
}
