//! Service counters and latency histograms.
//!
//! Everything is lock-free (`AtomicU64`) so the hot path never contends on
//! the metrics. Latencies land in log2 buckets — the resolution a serving
//! dashboard needs, at the cost of one `fetch_add`.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of log2 latency buckets: bucket `i` covers `[2^i, 2^(i+1))` µs,
/// with the last bucket catching everything slower.
pub const LATENCY_BUCKETS: usize = 24;

/// Log2-bucketed latency histogram (microsecond samples).
#[derive(Debug, Default)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; LATENCY_BUCKETS],
    total_us: AtomicU64,
    count: AtomicU64,
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub const fn new() -> Self {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        LatencyHistogram {
            buckets: [ZERO; LATENCY_BUCKETS],
            total_us: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// Records one sample.
    pub fn record(&self, us: u64) {
        let idx = (64 - us.max(1).leading_zeros() as usize - 1).min(LATENCY_BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.total_us.fetch_add(us, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot of the bucket counts.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; LATENCY_BUCKETS];
        for (slot, bucket) in buckets.iter_mut().zip(&self.buckets) {
            *slot = bucket.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            total_us: self.total_us.load(Ordering::Relaxed),
            count: self.count.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time copy of a [`LatencyHistogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Sample count per log2 bucket.
    pub buckets: [u64; LATENCY_BUCKETS],
    /// Sum of all samples, microseconds.
    pub total_us: u64,
    /// Number of samples.
    pub count: u64,
}

impl HistogramSnapshot {
    /// Mean latency in microseconds (0 when empty).
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_us as f64 / self.count as f64
        }
    }

    /// Approximate quantile (0.0–1.0) from the bucket layout: returns the
    /// upper bound of the bucket containing the q-th sample.
    pub fn quantile_us(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return 1u64 << (i + 1);
            }
        }
        1u64 << LATENCY_BUCKETS
    }
}

/// Aggregate counters for the service.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Requests accepted (enqueued).
    pub requests: AtomicU64,
    /// Requests completed successfully.
    pub completed: AtomicU64,
    /// Requests that failed (bad names, timeouts, panics).
    pub failed: AtomicU64,
    /// Characterization lookups answered from the registry.
    pub cache_hits: AtomicU64,
    /// Characterization lookups that had to run the micro-benchmarks.
    pub cache_misses: AtomicU64,
    /// Characterization runs actually executed (single-flight means this
    /// can be below `cache_misses` under contention).
    pub characterizations: AtomicU64,
    /// Jobs re-enqueued after a failure.
    pub retries: AtomicU64,
    /// Jobs abandoned past their deadline.
    pub timeouts: AtomicU64,
    /// Jobs currently queued or running.
    pub queue_depth: AtomicU64,
    /// Latency of the characterization stage, µs.
    pub characterize_latency: LatencyHistogram,
    /// Latency of the profile+recommend stage, µs.
    pub recommend_latency: LatencyHistogram,
    /// End-to-end request latency, µs.
    pub total_latency: LatencyHistogram,
    /// Adaptation evaluations recorded (`icomm adapt` runs).
    pub adapt_runs: AtomicU64,
    /// Windows observed across adaptation runs.
    pub adapt_windows: AtomicU64,
    /// Model switches across adaptation runs.
    pub adapt_switches: AtomicU64,
    /// Drift verdicts across adaptation runs.
    pub adapt_drifts: AtomicU64,
    /// Sum of per-run regret vs the oracle, milli-percent (fixed point:
    /// 1000 = 1 %), for a mean over `adapt_runs`.
    pub adapt_regret_milli_pct: AtomicU64,
    /// TCP connections accepted by the server.
    pub conn_accepted: AtomicU64,
    /// TCP connections refused because the server was at its connection
    /// cap.
    pub conn_rejected: AtomicU64,
    /// Connections closed because a read exceeded the per-connection
    /// deadline.
    pub read_timeouts: AtomicU64,
    /// Request lines discarded for exceeding the line-length bound.
    pub oversized_lines: AtomicU64,
    /// Request lines that were not valid request JSON.
    pub malformed_requests: AtomicU64,
    /// Registry snapshots that failed verification on load and were
    /// discarded (the registry rebuilds from scratch).
    pub snapshot_corruptions: AtomicU64,
    /// Characterizations answered by federated transfer (interpolated
    /// from measured neighbors instead of running the micro-benchmarks).
    pub transfer_hits: AtomicU64,
    /// Transfer attempts that fell below the confidence floor and fell
    /// back to a full micro-benchmark run.
    pub transfer_fallbacks: AtomicU64,
    /// Requests shed with an explicit overload response because the
    /// queue was at (or, for bulk traffic, near) its bound.
    pub shed_queue: AtomicU64,
    /// Requests shed with an explicit overload response because the
    /// token bucket was empty.
    pub shed_rate: AtomicU64,
    /// Binary frames rejected for a CRC32 trailer mismatch.
    pub frame_crc_errors: AtomicU64,
    /// Binary frames rejected for a length field beyond the frame bound.
    pub frame_oversized: AtomicU64,
    /// Binary frames rejected for a bad version, unknown opcode, or an
    /// undecodable body.
    pub frame_malformed: AtomicU64,
    /// Connections closed with a partial frame still buffered (client
    /// hung up or stalled mid-frame past the read deadline).
    pub frame_truncated: AtomicU64,
    /// Requests answered from a shard-local decision cache without
    /// touching the job engine.
    pub decision_cache_hits: AtomicU64,
    /// Request batches the event-driven shards submitted to the engine
    /// (each batch is one worker-pool hop for many requests).
    pub batches_submitted: AtomicU64,
    /// Requests carried by those batches.
    pub batched_requests: AtomicU64,
    /// Connections dropped on a transport-setup error (stream clone,
    /// nonblocking/timeout configuration, handler spawn).
    pub conn_errors: AtomicU64,
    /// Shard event loops resurrected by the supervisor after a panic.
    pub shard_restarts: AtomicU64,
    /// Shard event-loop panics caught by the supervisor (restarted or
    /// not — a panic past the restart budget still counts here).
    pub shard_panics: AtomicU64,
    /// Connections that died with a shard: their sockets closed with a
    /// clean EOF when the event loop panicked, before any goodbye frame
    /// could be written.
    pub conns_orphaned: AtomicU64,
    /// Characterization sources quarantined by the Byzantine-robust
    /// transfer path after failing the board-physics plausibility
    /// screen.
    pub transfer_quarantined: AtomicU64,
    /// Recommendations whose memory footprint was priced by the
    /// closed-form `icomm-footprint` model.
    pub footprint_evaluations: AtomicU64,
    /// Summed footprint bytes of the recommended models, over all
    /// priced recommendations.
    pub footprint_bytes_total: AtomicU64,
}

impl Metrics {
    /// Creates zeroed metrics.
    pub const fn new() -> Self {
        Metrics {
            requests: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            characterizations: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            queue_depth: AtomicU64::new(0),
            characterize_latency: LatencyHistogram::new(),
            recommend_latency: LatencyHistogram::new(),
            total_latency: LatencyHistogram::new(),
            adapt_runs: AtomicU64::new(0),
            adapt_windows: AtomicU64::new(0),
            adapt_switches: AtomicU64::new(0),
            adapt_drifts: AtomicU64::new(0),
            adapt_regret_milli_pct: AtomicU64::new(0),
            conn_accepted: AtomicU64::new(0),
            conn_rejected: AtomicU64::new(0),
            read_timeouts: AtomicU64::new(0),
            oversized_lines: AtomicU64::new(0),
            malformed_requests: AtomicU64::new(0),
            snapshot_corruptions: AtomicU64::new(0),
            transfer_hits: AtomicU64::new(0),
            transfer_fallbacks: AtomicU64::new(0),
            shed_queue: AtomicU64::new(0),
            shed_rate: AtomicU64::new(0),
            frame_crc_errors: AtomicU64::new(0),
            frame_oversized: AtomicU64::new(0),
            frame_malformed: AtomicU64::new(0),
            frame_truncated: AtomicU64::new(0),
            decision_cache_hits: AtomicU64::new(0),
            batches_submitted: AtomicU64::new(0),
            batched_requests: AtomicU64::new(0),
            conn_errors: AtomicU64::new(0),
            shard_restarts: AtomicU64::new(0),
            shard_panics: AtomicU64::new(0),
            conns_orphaned: AtomicU64::new(0),
            transfer_quarantined: AtomicU64::new(0),
            footprint_evaluations: AtomicU64::new(0),
            footprint_bytes_total: AtomicU64::new(0),
        }
    }

    /// Records the outcome of one online-adaptation run. `regret_pct`
    /// clamps at zero: the service tracks the cost of adapting, and an
    /// adaptive run beating the oracle rounding-wise carries no regret.
    pub fn record_adaptation(&self, windows: u64, switches: u64, drifts: u64, regret_pct: f64) {
        self.adapt_runs.fetch_add(1, Ordering::Relaxed);
        self.adapt_windows.fetch_add(windows, Ordering::Relaxed);
        self.adapt_switches.fetch_add(switches, Ordering::Relaxed);
        self.adapt_drifts.fetch_add(drifts, Ordering::Relaxed);
        let milli = (regret_pct.max(0.0) * 1000.0).round() as u64;
        self.adapt_regret_milli_pct
            .fetch_add(milli, Ordering::Relaxed);
    }

    /// Point-in-time copy of every counter.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            characterizations: self.characterizations.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            characterize_latency: self.characterize_latency.snapshot(),
            recommend_latency: self.recommend_latency.snapshot(),
            total_latency: self.total_latency.snapshot(),
            adapt_runs: self.adapt_runs.load(Ordering::Relaxed),
            adapt_windows: self.adapt_windows.load(Ordering::Relaxed),
            adapt_switches: self.adapt_switches.load(Ordering::Relaxed),
            adapt_drifts: self.adapt_drifts.load(Ordering::Relaxed),
            adapt_regret_milli_pct: self.adapt_regret_milli_pct.load(Ordering::Relaxed),
            conn_accepted: self.conn_accepted.load(Ordering::Relaxed),
            conn_rejected: self.conn_rejected.load(Ordering::Relaxed),
            read_timeouts: self.read_timeouts.load(Ordering::Relaxed),
            oversized_lines: self.oversized_lines.load(Ordering::Relaxed),
            malformed_requests: self.malformed_requests.load(Ordering::Relaxed),
            snapshot_corruptions: self.snapshot_corruptions.load(Ordering::Relaxed),
            transfer_hits: self.transfer_hits.load(Ordering::Relaxed),
            transfer_fallbacks: self.transfer_fallbacks.load(Ordering::Relaxed),
            shed_queue: self.shed_queue.load(Ordering::Relaxed),
            shed_rate: self.shed_rate.load(Ordering::Relaxed),
            frame_crc_errors: self.frame_crc_errors.load(Ordering::Relaxed),
            frame_oversized: self.frame_oversized.load(Ordering::Relaxed),
            frame_malformed: self.frame_malformed.load(Ordering::Relaxed),
            frame_truncated: self.frame_truncated.load(Ordering::Relaxed),
            decision_cache_hits: self.decision_cache_hits.load(Ordering::Relaxed),
            batches_submitted: self.batches_submitted.load(Ordering::Relaxed),
            batched_requests: self.batched_requests.load(Ordering::Relaxed),
            conn_errors: self.conn_errors.load(Ordering::Relaxed),
            shard_restarts: self.shard_restarts.load(Ordering::Relaxed),
            shard_panics: self.shard_panics.load(Ordering::Relaxed),
            conns_orphaned: self.conns_orphaned.load(Ordering::Relaxed),
            transfer_quarantined: self.transfer_quarantined.load(Ordering::Relaxed),
            footprint_evaluations: self.footprint_evaluations.load(Ordering::Relaxed),
            footprint_bytes_total: self.footprint_bytes_total.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time copy of [`Metrics`].
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Requests accepted.
    pub requests: u64,
    /// Requests completed successfully.
    pub completed: u64,
    /// Requests failed.
    pub failed: u64,
    /// Registry cache hits.
    pub cache_hits: u64,
    /// Registry cache misses.
    pub cache_misses: u64,
    /// Characterization runs executed.
    pub characterizations: u64,
    /// Jobs retried.
    pub retries: u64,
    /// Jobs timed out.
    pub timeouts: u64,
    /// Jobs queued or running at snapshot time.
    pub queue_depth: u64,
    /// Characterization-stage latency.
    pub characterize_latency: HistogramSnapshot,
    /// Recommendation-stage latency.
    pub recommend_latency: HistogramSnapshot,
    /// End-to-end latency.
    pub total_latency: HistogramSnapshot,
    /// Adaptation runs recorded.
    pub adapt_runs: u64,
    /// Windows observed across adaptation runs.
    pub adapt_windows: u64,
    /// Model switches across adaptation runs.
    pub adapt_switches: u64,
    /// Drift verdicts across adaptation runs.
    pub adapt_drifts: u64,
    /// Summed regret, milli-percent.
    pub adapt_regret_milli_pct: u64,
    /// Connections accepted.
    pub conn_accepted: u64,
    /// Connections refused at the cap.
    pub conn_rejected: u64,
    /// Connections closed on a read deadline.
    pub read_timeouts: u64,
    /// Oversized request lines discarded.
    pub oversized_lines: u64,
    /// Malformed request lines answered with an error.
    pub malformed_requests: u64,
    /// Corrupt registry snapshots discarded on load.
    pub snapshot_corruptions: u64,
    /// Characterizations answered by federated transfer.
    pub transfer_hits: u64,
    /// Transfer attempts that fell back to a full run.
    pub transfer_fallbacks: u64,
    /// Requests shed on queue pressure.
    pub shed_queue: u64,
    /// Requests shed on rate-limit pressure.
    pub shed_rate: u64,
    /// Binary frames rejected on a CRC32 mismatch.
    pub frame_crc_errors: u64,
    /// Binary frames rejected on an oversized length field.
    pub frame_oversized: u64,
    /// Binary frames rejected as malformed (version/opcode/body).
    pub frame_malformed: u64,
    /// Connections closed mid-frame (truncation or stall).
    pub frame_truncated: u64,
    /// Requests answered from a shard-local decision cache.
    pub decision_cache_hits: u64,
    /// Request batches submitted by the event-driven shards.
    pub batches_submitted: u64,
    /// Requests carried by those batches.
    pub batched_requests: u64,
    /// Connections dropped on transport-setup errors.
    pub conn_errors: u64,
    /// Shard event loops restarted by the supervisor.
    pub shard_restarts: u64,
    /// Shard event-loop panics caught by the supervisor.
    pub shard_panics: u64,
    /// Connections orphaned by a shard panic (clean EOF, no reply).
    pub conns_orphaned: u64,
    /// Characterization sources quarantined as implausible.
    pub transfer_quarantined: u64,
    /// Recommendations priced by the closed-form footprint model.
    pub footprint_evaluations: u64,
    /// Summed footprint bytes over those recommendations.
    pub footprint_bytes_total: u64,
}

impl MetricsSnapshot {
    /// Registry hit rate in [0, 1]; 0 when no lookups happened.
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.cache_hits + self.cache_misses;
        if lookups == 0 {
            0.0
        } else {
            self.cache_hits as f64 / lookups as f64
        }
    }

    /// Sum of the transport/persistence fault counters — nonzero means
    /// the server saw degraded input.
    pub fn fault_total(&self) -> u64 {
        self.conn_rejected
            + self.read_timeouts
            + self.oversized_lines
            + self.malformed_requests
            + self.snapshot_corruptions
            + self.frame_faults()
            + self.conn_errors
    }

    /// Sum of the binary-wire fault counters: frames rejected for CRC,
    /// length, or format violations, plus mid-frame truncations.
    pub fn frame_faults(&self) -> u64 {
        self.frame_crc_errors + self.frame_oversized + self.frame_malformed + self.frame_truncated
    }

    /// Mean regret vs the oracle across adaptation runs, percent.
    pub fn mean_adapt_regret_pct(&self) -> f64 {
        if self.adapt_runs == 0 {
            0.0
        } else {
            self.adapt_regret_milli_pct as f64 / 1000.0 / self.adapt_runs as f64
        }
    }

    /// Fraction of characterization misses answered by federated
    /// transfer rather than a micro-benchmark run, in [0, 1]; 0 when no
    /// transfer was attempted.
    pub fn transfer_hit_rate(&self) -> f64 {
        let attempts = self.transfer_hits + self.transfer_fallbacks;
        if attempts == 0 {
            0.0
        } else {
            self.transfer_hits as f64 / attempts as f64
        }
    }

    /// Fraction of characterization lookups served without a full
    /// micro-benchmark run — cache hits plus transfer hits — in [0, 1].
    /// The fleet warm-start metric.
    pub fn warm_start_rate(&self) -> f64 {
        let lookups = self.cache_hits + self.cache_misses;
        if lookups == 0 {
            0.0
        } else {
            (self.cache_hits + self.transfer_hits) as f64 / lookups as f64
        }
    }

    /// Total requests shed by admission control.
    pub fn shed_total(&self) -> u64 {
        self.shed_queue + self.shed_rate
    }

    /// Mean footprint of a recommended model, bytes; 0 before any
    /// recommendation was priced.
    pub fn mean_footprint_bytes(&self) -> u64 {
        self.footprint_bytes_total
            .checked_div(self.footprint_evaluations)
            .unwrap_or(0)
    }
}

impl fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "requests          {:>8}  (completed {}, failed {})",
            self.requests, self.completed, self.failed
        )?;
        writeln!(
            f,
            "registry          {:>7.1}% hit rate  ({} hits / {} misses, {} characterization runs)",
            self.hit_rate() * 100.0,
            self.cache_hits,
            self.cache_misses,
            self.characterizations
        )?;
        writeln!(
            f,
            "queue             {:>8} in flight  ({} retries, {} timeouts)",
            self.queue_depth, self.retries, self.timeouts
        )?;
        for (name, h) in [
            ("characterize", &self.characterize_latency),
            ("recommend", &self.recommend_latency),
            ("total", &self.total_latency),
        ] {
            writeln!(
                f,
                "latency/{name:<12} mean {:>9.0} us   p50 {:>8} us   p99 {:>8} us   ({} samples)",
                h.mean_us(),
                h.quantile_us(0.50),
                h.quantile_us(0.99),
                h.count
            )?;
        }
        if self.adapt_runs > 0 {
            writeln!(
                f,
                "adaptation        {:>8} runs  ({} windows, {} switches, {} drifts, mean regret {:.2}%)",
                self.adapt_runs,
                self.adapt_windows,
                self.adapt_switches,
                self.adapt_drifts,
                self.mean_adapt_regret_pct()
            )?;
        }
        if self.transfer_hits + self.transfer_fallbacks > 0 {
            writeln!(
                f,
                "transfer          {:>7.1}% hit rate  ({} transferred, {} fell back to full runs, warm start {:.1}%)",
                self.transfer_hit_rate() * 100.0,
                self.transfer_hits,
                self.transfer_fallbacks,
                self.warm_start_rate() * 100.0
            )?;
        }
        if self.shed_total() > 0 {
            writeln!(
                f,
                "admission         {:>8} shed  ({} on queue pressure, {} on rate limit)",
                self.shed_total(),
                self.shed_queue,
                self.shed_rate
            )?;
        }
        if self.conn_accepted > 0 || self.fault_total() > 0 {
            writeln!(
                f,
                "transport         {:>8} conns  ({} rejected, {} read timeouts, {} oversized, {} malformed, {} corrupt snapshots, {} conn errors)",
                self.conn_accepted,
                self.conn_rejected,
                self.read_timeouts,
                self.oversized_lines,
                self.malformed_requests,
                self.snapshot_corruptions,
                self.conn_errors
            )?;
        }
        if self.batches_submitted > 0 || self.decision_cache_hits > 0 || self.frame_faults() > 0 {
            writeln!(
                f,
                "wire              {:>8} batches  ({} batched requests, {} decision-cache hits, {} crc, {} oversized, {} malformed, {} truncated frames)",
                self.batches_submitted,
                self.batched_requests,
                self.decision_cache_hits,
                self.frame_crc_errors,
                self.frame_oversized,
                self.frame_malformed,
                self.frame_truncated
            )?;
        }
        if self.footprint_evaluations > 0 {
            writeln!(
                f,
                "footprint         {:>8} priced  (mean {} per recommendation)",
                self.footprint_evaluations,
                icomm_footprint::human_bytes(self.mean_footprint_bytes())
            )?;
        }
        if self.shard_panics > 0 || self.conns_orphaned > 0 || self.transfer_quarantined > 0 {
            writeln!(
                f,
                "resilience        {:>8} shard panics  ({} restarts, {} conns orphaned, {} sources quarantined)",
                self.shard_panics,
                self.shard_restarts,
                self.conns_orphaned,
                self.transfer_quarantined
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_log2() {
        let h = LatencyHistogram::new();
        h.record(1); // bucket 0
        h.record(3); // bucket 1
        h.record(1024); // bucket 10
        let s = h.snapshot();
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[1], 1);
        assert_eq!(s.buckets[10], 1);
        assert_eq!(s.count, 3);
        assert_eq!(s.total_us, 1028);
    }

    #[test]
    fn zero_sample_lands_in_first_bucket() {
        let h = LatencyHistogram::new();
        h.record(0);
        assert_eq!(h.snapshot().buckets[0], 1);
    }

    #[test]
    fn quantiles_are_bucket_upper_bounds() {
        let h = LatencyHistogram::new();
        for _ in 0..99 {
            h.record(10); // bucket 3: [8, 16)
        }
        h.record(100_000); // bucket 16
        let s = h.snapshot();
        assert_eq!(s.quantile_us(0.5), 16);
        assert_eq!(s.quantile_us(1.0), 1 << 17);
    }

    #[test]
    fn adaptation_counters_accumulate_and_render() {
        let m = Metrics::new();
        assert!(!m.snapshot().to_string().contains("adaptation"));
        m.record_adaptation(24, 3, 2, 4.5);
        m.record_adaptation(24, 2, 2, 1.5);
        let s = m.snapshot();
        assert_eq!(s.adapt_runs, 2);
        assert_eq!(s.adapt_windows, 48);
        assert_eq!(s.adapt_switches, 5);
        assert_eq!(s.adapt_drifts, 4);
        assert!((s.mean_adapt_regret_pct() - 3.0).abs() < 1e-9);
        assert!(s.to_string().contains("mean regret 3.00%"));
    }

    #[test]
    fn negative_regret_clamps_to_zero() {
        let m = Metrics::new();
        m.record_adaptation(10, 1, 1, -2.0);
        assert_eq!(m.snapshot().adapt_regret_milli_pct, 0);
    }

    #[test]
    fn fault_counters_accumulate_and_render() {
        let m = Metrics::new();
        assert!(!m.snapshot().to_string().contains("transport"));
        m.conn_accepted.fetch_add(3, Ordering::Relaxed);
        m.read_timeouts.fetch_add(1, Ordering::Relaxed);
        m.oversized_lines.fetch_add(2, Ordering::Relaxed);
        m.snapshot_corruptions.fetch_add(1, Ordering::Relaxed);
        let s = m.snapshot();
        assert_eq!(s.fault_total(), 4);
        let text = s.to_string();
        assert!(text.contains("transport"));
        assert!(text.contains("1 read timeouts"));
        assert!(text.contains("2 oversized"));
        assert!(text.contains("1 corrupt snapshots"));
    }

    #[test]
    fn transfer_and_admission_counters_render() {
        let m = Metrics::new();
        let quiet = m.snapshot().to_string();
        assert!(!quiet.contains("transfer"));
        assert!(!quiet.contains("admission"));
        m.cache_hits.store(80, Ordering::Relaxed);
        m.cache_misses.store(20, Ordering::Relaxed);
        m.transfer_hits.store(15, Ordering::Relaxed);
        m.transfer_fallbacks.store(5, Ordering::Relaxed);
        m.shed_queue.store(3, Ordering::Relaxed);
        m.shed_rate.store(1, Ordering::Relaxed);
        let s = m.snapshot();
        assert!((s.transfer_hit_rate() - 0.75).abs() < 1e-12);
        assert!((s.warm_start_rate() - 0.95).abs() < 1e-12);
        assert_eq!(s.shed_total(), 4);
        let text = s.to_string();
        assert!(text.contains("transfer"));
        assert!(text.contains("warm start 95.0%"));
        assert!(text.contains("3 on queue pressure, 1 on rate limit"));
    }

    #[test]
    fn wire_counters_accumulate_and_render() {
        let m = Metrics::new();
        assert!(!m.snapshot().to_string().contains("wire"));
        m.batches_submitted.fetch_add(2, Ordering::Relaxed);
        m.batched_requests.fetch_add(96, Ordering::Relaxed);
        m.decision_cache_hits.fetch_add(80, Ordering::Relaxed);
        m.frame_crc_errors.fetch_add(1, Ordering::Relaxed);
        m.frame_oversized.fetch_add(2, Ordering::Relaxed);
        m.frame_malformed.fetch_add(3, Ordering::Relaxed);
        m.frame_truncated.fetch_add(4, Ordering::Relaxed);
        m.conn_errors.fetch_add(1, Ordering::Relaxed);
        let s = m.snapshot();
        assert_eq!(s.frame_faults(), 10);
        assert_eq!(s.fault_total(), 11);
        let text = s.to_string();
        assert!(text.contains("wire"));
        assert!(text.contains("96 batched requests"));
        assert!(text.contains("80 decision-cache hits"));
        assert!(text.contains("1 crc"));
        assert!(text.contains("4 truncated frames"));
    }

    #[test]
    fn resilience_counters_accumulate_and_render() {
        let m = Metrics::new();
        assert!(!m.snapshot().to_string().contains("resilience"));
        m.shard_panics.fetch_add(2, Ordering::Relaxed);
        m.shard_restarts.fetch_add(2, Ordering::Relaxed);
        m.conns_orphaned.fetch_add(3, Ordering::Relaxed);
        m.transfer_quarantined.fetch_add(1, Ordering::Relaxed);
        let s = m.snapshot();
        assert_eq!(s.shard_panics, 2);
        assert_eq!(s.shard_restarts, 2);
        assert_eq!(s.conns_orphaned, 3);
        assert_eq!(s.transfer_quarantined, 1);
        let text = s.to_string();
        assert!(text.contains("resilience"));
        assert!(text.contains("2 restarts"));
        assert!(text.contains("3 conns orphaned"));
        assert!(text.contains("1 sources quarantined"));
    }

    #[test]
    fn hit_rate_counts_only_lookups() {
        let m = Metrics::new();
        m.cache_hits.store(96, Ordering::Relaxed);
        m.cache_misses.store(4, Ordering::Relaxed);
        let s = m.snapshot();
        assert!((s.hit_rate() - 0.96).abs() < 1e-12);
        assert!(s.to_string().contains("96.0% hit rate"));
    }
}
