//! Worker-pool job engine.
//!
//! A fixed pool of worker threads pulls jobs from a shared injector
//! channel. Each worker also keeps a local deque: retries land there, and
//! idle workers steal from siblings' deques before blocking on the
//! injector, so a slow job on one worker never strands its retries.
//!
//! Per-job policy:
//! - **Timeout** — every job carries a deadline. A job popped past its
//!   deadline is re-enqueued with a fresh deadline while it has retry
//!   budget, then fails with [`JobError::TimedOut`].
//! - **Panic isolation** — the job handler runs under `catch_unwind`; a
//!   panicking job consumes one retry instead of killing the worker, then
//!   fails with [`JobError::Panicked`].
//!
//! Shutdown is a graceful drain: dropping the injector lets every worker
//! finish the queued work (including its own retries) before exiting.

use std::collections::VecDeque;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{self, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;

use crate::metrics::Metrics;

/// Pool sizing and per-job policy.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads (at least one).
    pub workers: usize,
    /// Budget per job attempt; a job popped past its deadline is retried
    /// or failed.
    pub job_timeout: Duration,
    /// How many times a job may be re-enqueued after a timeout or panic.
    pub max_retries: u32,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: 4,
            job_timeout: Duration::from_secs(60),
            max_retries: 2,
        }
    }
}

/// Why a job failed terminally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobError {
    /// The job sat past its deadline on every attempt.
    TimedOut {
        /// Attempts consumed (initial try plus retries).
        attempts: u32,
    },
    /// The handler panicked on every attempt.
    Panicked {
        /// Attempts consumed.
        attempts: u32,
        /// Panic payload, when it was a string.
        message: String,
    },
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobError::TimedOut { attempts } => {
                write!(f, "timed out after {attempts} attempt(s)")
            }
            JobError::Panicked { attempts, message } => {
                write!(f, "job panicked after {attempts} attempt(s): {message}")
            }
        }
    }
}

/// Terminal result of one job: the job itself plus its handler output or
/// the engine-level failure.
#[derive(Debug)]
pub struct JobOutcome<J, R> {
    /// The submitted job.
    pub job: J,
    /// Handler output, or why the engine gave up.
    pub result: Result<R, JobError>,
}

/// Awaitable handle to a submitted batch.
pub struct BatchHandle<J, R> {
    receiver: Receiver<JobOutcome<J, R>>,
    expected: usize,
}

impl<J, R> fmt::Debug for BatchHandle<J, R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BatchHandle")
            .field("expected", &self.expected)
            .finish()
    }
}

impl<J, R> BatchHandle<J, R> {
    /// Number of outcomes this handle will deliver.
    pub fn expected(&self) -> usize {
        self.expected
    }

    /// Blocks until every job in the batch reaches a terminal outcome.
    pub fn wait(self) -> Vec<JobOutcome<J, R>> {
        (0..self.expected)
            .map_while(|_| self.receiver.recv().ok())
            .collect()
    }
}

type Handler<J, R> = Arc<dyn Fn(&J) -> R + Send + Sync>;
type LocalQueue<J, R> = Arc<Mutex<VecDeque<Task<J, R>>>>;

struct Task<J, R> {
    job: J,
    attempts: u32,
    deadline: Instant,
    respond: Sender<JobOutcome<J, R>>,
}

/// Fixed worker pool with work stealing, per-job deadlines, and bounded
/// retry.
pub struct Engine<J, R> {
    injector: Option<Sender<Task<J, R>>>,
    handles: Vec<JoinHandle<()>>,
    metrics: Arc<Metrics>,
    config: EngineConfig,
}

impl<J, R> fmt::Debug for Engine<J, R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Engine")
            .field("workers", &self.handles.len())
            .field("config", &self.config)
            .finish()
    }
}

impl<J: Send + 'static, R: Send + 'static> Engine<J, R> {
    /// Spawns the worker pool. `handler` executes each job; it may panic —
    /// the engine absorbs it as a retryable failure.
    pub fn new(config: EngineConfig, metrics: Arc<Metrics>, handler: Handler<J, R>) -> Self {
        let workers = config.workers.max(1);
        let (injector_tx, injector_rx) = channel::unbounded::<Task<J, R>>();
        let locals: Vec<LocalQueue<J, R>> = (0..workers)
            .map(|_| Arc::new(Mutex::new(VecDeque::new())))
            .collect();
        let handles = (0..workers)
            .map(|index| {
                let ctx = WorkerContext {
                    index,
                    injector: injector_rx.clone(),
                    locals: locals.clone(),
                    handler: handler.clone(),
                    metrics: metrics.clone(),
                    config: config.clone(),
                };
                std::thread::Builder::new()
                    .name(format!("icomm-serve-worker-{index}"))
                    .spawn(move || ctx.run())
                    .expect("spawn worker thread")
            })
            .collect();
        drop(injector_rx);
        Engine {
            injector: Some(injector_tx),
            handles,
            metrics,
            config,
        }
    }

    /// Enqueues a batch of jobs. The returned handle delivers exactly one
    /// outcome per job (in completion order).
    pub fn submit_batch(&self, jobs: Vec<J>) -> BatchHandle<J, R> {
        let injector = self
            .injector
            .as_ref()
            .expect("engine injector alive until shutdown");
        let (tx, rx) = channel::unbounded();
        let expected = jobs.len();
        let deadline = Instant::now() + self.config.job_timeout;
        for job in jobs {
            self.metrics.queue_depth.fetch_add(1, Ordering::Relaxed);
            let sent = injector.send(Task {
                job,
                attempts: 0,
                deadline,
                respond: tx.clone(),
            });
            assert!(sent.is_ok(), "workers alive until shutdown");
        }
        BatchHandle {
            receiver: rx,
            expected,
        }
    }

    /// Drains the queue and joins every worker. All jobs already submitted
    /// (including retries they spawn) complete before this returns.
    pub fn shutdown(mut self) {
        self.injector.take();
        for handle in self.handles.drain(..) {
            handle.join().expect("worker thread exits cleanly");
        }
    }
}

impl<J, R> Drop for Engine<J, R> {
    fn drop(&mut self) {
        self.injector.take();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

struct WorkerContext<J, R> {
    index: usize,
    injector: Receiver<Task<J, R>>,
    locals: Vec<LocalQueue<J, R>>,
    handler: Handler<J, R>,
    metrics: Arc<Metrics>,
    config: EngineConfig,
}

impl<J: Send + 'static, R: Send + 'static> WorkerContext<J, R> {
    fn run(self) {
        loop {
            if let Some(task) = self.next_task() {
                self.execute(task);
                continue;
            }
            match self.injector.recv_timeout(Duration::from_millis(20)) {
                Ok(task) => self.execute(task),
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => {
                    // Drain: finish local work (and any retries it spawns)
                    // before exiting. A task only ever sits in its owner's
                    // deque, so every queue is drained by someone.
                    while let Some(task) = self.next_task() {
                        self.execute(task);
                    }
                    return;
                }
            }
        }
    }

    /// Local work first, then the injector, then a steal sweep.
    fn next_task(&self) -> Option<Task<J, R>> {
        if let Some(task) = self.locals[self.index].lock().pop_front() {
            return Some(task);
        }
        if let Ok(task) = self.injector.try_recv() {
            return Some(task);
        }
        let n = self.locals.len();
        for offset in 1..n {
            let victim = (self.index + offset) % n;
            if let Some(task) = self.locals[victim].lock().pop_back() {
                return Some(task);
            }
        }
        None
    }

    fn requeue(&self, mut task: Task<J, R>) {
        task.attempts += 1;
        task.deadline = Instant::now() + self.config.job_timeout;
        self.metrics.retries.fetch_add(1, Ordering::Relaxed);
        self.locals[self.index].lock().push_back(task);
    }

    fn finish(&self, task: Task<J, R>, result: Result<R, JobError>) {
        self.metrics.queue_depth.fetch_sub(1, Ordering::Relaxed);
        if result.is_err() {
            self.metrics.failed.fetch_add(1, Ordering::Relaxed);
        }
        let _ = task.respond.send(JobOutcome {
            job: task.job,
            result,
        });
    }

    fn execute(&self, task: Task<J, R>) {
        if Instant::now() > task.deadline {
            if task.attempts < self.config.max_retries {
                self.requeue(task);
            } else {
                self.metrics.timeouts.fetch_add(1, Ordering::Relaxed);
                let attempts = task.attempts + 1;
                self.finish(task, Err(JobError::TimedOut { attempts }));
            }
            return;
        }
        match catch_unwind(AssertUnwindSafe(|| (self.handler)(&task.job))) {
            Ok(response) => self.finish(task, Ok(response)),
            Err(payload) => {
                if task.attempts < self.config.max_retries {
                    self.requeue(task);
                } else {
                    let attempts = task.attempts + 1;
                    let message = panic_message(payload.as_ref());
                    self.finish(task, Err(JobError::Panicked { attempts, message }));
                }
            }
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    fn engine_with<F>(config: EngineConfig, f: F) -> (Engine<u64, u64>, Arc<Metrics>)
    where
        F: Fn(&u64) -> u64 + Send + Sync + 'static,
    {
        let metrics = Arc::new(Metrics::new());
        let engine = Engine::new(config, metrics.clone(), Arc::new(f));
        (engine, metrics)
    }

    #[test]
    fn batch_completes_with_every_outcome() {
        let (engine, metrics) = engine_with(EngineConfig::default(), |n| n * 2);
        let handle = engine.submit_batch((0..200).collect());
        let mut outcomes = handle.wait();
        assert_eq!(outcomes.len(), 200);
        outcomes.sort_by_key(|o| o.job);
        for (i, outcome) in outcomes.iter().enumerate() {
            assert_eq!(outcome.result, Ok(i as u64 * 2));
        }
        assert_eq!(metrics.snapshot().queue_depth, 0);
        engine.shutdown();
    }

    #[test]
    fn panicking_job_retries_then_fails() {
        let config = EngineConfig {
            workers: 2,
            max_retries: 2,
            ..EngineConfig::default()
        };
        let (engine, metrics) = engine_with(config, |_| panic!("boom"));
        let outcome = engine.submit_batch(vec![1]).wait().pop().unwrap();
        assert_eq!(
            outcome.result,
            Err(JobError::Panicked {
                attempts: 3,
                message: "boom".to_string()
            })
        );
        let snap = metrics.snapshot();
        assert_eq!(snap.retries, 2);
        assert_eq!(snap.failed, 1);
        engine.shutdown();
    }

    #[test]
    fn panic_then_success_consumes_one_retry() {
        let calls = Arc::new(AtomicU64::new(0));
        let calls2 = calls.clone();
        let (engine, metrics) = engine_with(EngineConfig::default(), move |n| {
            if calls2.fetch_add(1, Ordering::SeqCst) == 0 {
                panic!("transient");
            }
            *n + 1
        });
        let outcome = engine.submit_batch(vec![9]).wait().pop().unwrap();
        assert_eq!(outcome.result, Ok(10));
        assert_eq!(metrics.snapshot().retries, 1);
        engine.shutdown();
    }

    #[test]
    fn expired_deadline_times_out_after_retry_budget() {
        let config = EngineConfig {
            workers: 1,
            job_timeout: Duration::ZERO,
            max_retries: 1,
        };
        let (engine, metrics) = engine_with(config, |n| *n);
        let outcome = engine.submit_batch(vec![5]).wait().pop().unwrap();
        assert_eq!(outcome.result, Err(JobError::TimedOut { attempts: 2 }));
        assert_eq!(metrics.snapshot().timeouts, 1);
        engine.shutdown();
    }

    #[test]
    fn shutdown_drains_pending_work() {
        let (engine, _metrics) = engine_with(
            EngineConfig {
                workers: 3,
                ..EngineConfig::default()
            },
            |n| {
                std::thread::sleep(Duration::from_micros(200));
                *n
            },
        );
        let handle = engine.submit_batch((0..100).collect());
        engine.shutdown();
        // Every job completed even though shutdown raced the queue.
        assert_eq!(handle.wait().len(), 100);
    }
}
