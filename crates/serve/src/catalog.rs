//! Name resolution for the serving protocol: boards, applications, and
//! communication models addressed by the strings clients send.

use icomm_apps::{LaneApp, OrbApp, ShwfsApp};
use icomm_models::{CommModelKind, Workload};
use icomm_soc::DeviceProfile;

/// The board names the service accepts (canonical forms).
pub const BOARD_NAMES: [&str; 6] = [
    "nano",
    "tx2",
    "xavier",
    "orin-like",
    "mi300a-like",
    "gh-like",
];

/// The application names the service accepts.
pub const APP_NAMES: [&str; 3] = ["shwfs", "orb", "lane"];

/// The communication-model names the service accepts.
pub const MODEL_NAMES: [&str; 5] = ["sc", "um", "zc", "sc+", "upm"];

/// Resolves a board name (case-insensitive, same aliases as the CLI).
///
/// # Errors
///
/// Returns a message listing the valid names.
pub fn board_by_name(name: &str) -> Result<DeviceProfile, String> {
    match name.to_ascii_lowercase().as_str() {
        "nano" | "jetson-nano" => Ok(DeviceProfile::jetson_nano()),
        "tx2" | "jetson-tx2" => Ok(DeviceProfile::jetson_tx2()),
        "xavier" | "agx-xavier" | "jetson-agx-xavier" => Ok(DeviceProfile::jetson_agx_xavier()),
        "orin" | "orin-like" => Ok(DeviceProfile::orin_like()),
        "mi300a" | "mi300a-like" => Ok(DeviceProfile::mi300a_like()),
        "gh" | "gh-like" | "grace-hopper-like" => Ok(DeviceProfile::gh_like()),
        other => Err(format!(
            "unknown board '{other}' (known: {})",
            BOARD_NAMES.join(", ")
        )),
    }
}

/// Builds the workload for an application name.
///
/// # Errors
///
/// Returns a message listing the valid names.
pub fn workload_by_name(app: &str) -> Result<Workload, String> {
    match app.to_ascii_lowercase().as_str() {
        "shwfs" => Ok(ShwfsApp::default().workload()),
        "orb" => Ok(OrbApp::default().workload()),
        "lane" => Ok(LaneApp::default().workload()),
        other => Err(format!(
            "unknown app '{other}' (known: {})",
            APP_NAMES.join(", ")
        )),
    }
}

/// Resolves a communication-model name.
///
/// # Errors
///
/// Returns a message listing the valid names.
pub fn model_by_name(name: &str) -> Result<CommModelKind, String> {
    match name.to_ascii_lowercase().as_str() {
        "sc" | "standard-copy" => Ok(CommModelKind::StandardCopy),
        "um" | "unified-memory" => Ok(CommModelKind::UnifiedMemory),
        "zc" | "zero-copy" => Ok(CommModelKind::ZeroCopy),
        "sc+" | "sc-async" | "double-buffered" => Ok(CommModelKind::StandardCopyAsync),
        "upm" | "coherent-upm" | "coherent-unified-memory" => Ok(CommModelKind::CoherentUpm),
        other => Err(format!(
            "unknown model '{other}' (known: {})",
            MODEL_NAMES.join(", ")
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_names_resolve() {
        for name in BOARD_NAMES {
            assert!(board_by_name(name).is_ok(), "board {name}");
        }
        for name in APP_NAMES {
            assert!(workload_by_name(name).is_ok(), "app {name}");
        }
        for name in MODEL_NAMES {
            assert!(model_by_name(name).is_ok(), "model {name}");
        }
    }

    #[test]
    fn unknown_names_list_valid_ones() {
        let err = board_by_name("pi5").unwrap_err();
        assert!(err.contains("nano") && err.contains("orin-like"), "{err}");
        let err = workload_by_name("doom").unwrap_err();
        assert!(err.contains("shwfs") && err.contains("lane"), "{err}");
        let err = model_by_name("warp").unwrap_err();
        assert!(err.contains("sc") && err.contains("zc"), "{err}");
    }
}
