//! Wire types for the tuning service.
//!
//! One request or response per line, serialized as JSON. The same structs
//! back the in-process [`crate::TuningService`] API, so a TCP client and an
//! embedded caller see identical semantics.

use serde::{Deserialize, Serialize};

use icomm_core::TuningOutcome;

/// One tuning request: "what communication model should `app` use on
/// `board`?"
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TuneRequest {
    /// Client-chosen id echoed back in the response; batches are matched
    /// by it.
    pub id: u64,
    /// Board name (`nano`, `tx2`, `xavier`, `orin-like`, or an alias).
    pub board: String,
    /// Application name (`shwfs`, `orb`, `lane`).
    pub app: String,
    /// Communication model the app currently uses (`sc`, `um`, `zc`,
    /// `sc+`). Defaults to `sc` when omitted.
    pub current: Option<String>,
}

impl TuneRequest {
    /// Convenience constructor with the default current model.
    pub fn new(id: u64, board: &str, app: &str) -> Self {
        TuneRequest {
            id,
            board: board.to_string(),
            app: app.to_string(),
            current: None,
        }
    }

    /// Sets the current communication model.
    #[must_use]
    pub fn with_current(mut self, model: &str) -> Self {
        self.current = Some(model.to_string());
        self
    }
}

/// The service's answer to one [`TuneRequest`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TuneResponse {
    /// Echo of the request id.
    pub id: u64,
    /// Whether the request was served; when `false`, `error` explains why
    /// and the recommendation fields are absent.
    pub ok: bool,
    /// Error message for failed requests.
    pub error: Option<String>,
    /// Echo of the request's board name.
    pub board: Option<String>,
    /// Echo of the application name.
    pub app: Option<String>,
    /// Model the application currently uses (abbreviation, e.g. `ZC`).
    pub current: Option<String>,
    /// Model the framework recommends (abbreviation).
    pub recommended: Option<String>,
    /// Whether a model switch is suggested.
    pub switch_suggested: Option<bool>,
    /// Predicted speedup of switching, when a switch is suggested.
    pub estimated_speedup: Option<f64>,
    /// Human-readable explanation of the verdict.
    pub rationale: Option<String>,
    /// Whether the device characterization was served from the registry
    /// cache.
    pub cache_hit: Option<bool>,
    /// End-to-end service latency for this request, microseconds.
    pub latency_us: Option<u64>,
}

impl TuneResponse {
    /// Builds a failure response.
    pub fn failure(id: u64, error: String) -> Self {
        TuneResponse {
            id,
            ok: false,
            error: Some(error),
            board: None,
            app: None,
            current: None,
            recommended: None,
            switch_suggested: None,
            estimated_speedup: None,
            rationale: None,
            cache_hit: None,
            latency_us: None,
        }
    }

    /// Builds a success response from a tuning outcome.
    pub fn success(
        id: u64,
        board: &str,
        app: &str,
        outcome: &TuningOutcome,
        cache_hit: bool,
        latency_us: u64,
    ) -> Self {
        let rec = &outcome.recommendation;
        TuneResponse {
            id,
            ok: true,
            error: None,
            board: Some(board.to_string()),
            app: Some(app.to_string()),
            current: Some(rec.current.abbrev().to_string()),
            recommended: Some(rec.recommended.abbrev().to_string()),
            switch_suggested: Some(rec.suggests_switch()),
            estimated_speedup: rec.estimated_speedup.as_ref().map(|s| s.estimated),
            rationale: Some(rec.rationale.clone()),
            cache_hit: Some(cache_hit),
            latency_us: Some(latency_us),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips_through_json() {
        let req = TuneRequest::new(7, "tx2", "orb").with_current("zc");
        let line = icomm_persist::to_string(&req).unwrap();
        let back: TuneRequest = icomm_persist::from_str(&line).unwrap();
        assert_eq!(req, back);
    }

    #[test]
    fn current_defaults_to_absent_when_omitted() {
        let back: TuneRequest =
            icomm_persist::from_str(r#"{"id": 1, "board": "nano", "app": "shwfs"}"#).unwrap();
        assert_eq!(back.current, None);
        assert_eq!(back.board, "nano");
    }

    #[test]
    fn failure_response_round_trips() {
        let resp = TuneResponse::failure(3, "unknown board 'pi5'".to_string());
        let line = icomm_persist::to_string(&resp).unwrap();
        let back: TuneResponse = icomm_persist::from_str(&line).unwrap();
        assert!(!back.ok);
        assert_eq!(back.error.as_deref(), Some("unknown board 'pi5'"));
        assert_eq!(back.recommended, None);
    }
}
