//! Wire types for the tuning service.
//!
//! One request or response per line, serialized as JSON. The same structs
//! back the in-process [`crate::TuningService`] API, so a TCP client and an
//! embedded caller see identical semantics.

use serde::{Deserialize, Serialize};

use icomm_core::TuningOutcome;

/// One tuning request: "what communication model should `app` use on
/// `board`?"
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TuneRequest {
    /// Client-chosen id echoed back in the response; batches are matched
    /// by it.
    pub id: u64,
    /// Board name (`nano`, `tx2`, `xavier`, `orin-like`, or an alias).
    pub board: String,
    /// Application name (`shwfs`, `orb`, `lane`).
    pub app: String,
    /// Communication model the app currently uses (`sc`, `um`, `zc`,
    /// `sc+`). Defaults to `sc` when omitted.
    pub current: Option<String>,
    /// Admission-priority class (`interactive` / `bulk`). Defaults to
    /// `interactive` when omitted, so existing clients are unaffected.
    pub class: Option<String>,
}

impl TuneRequest {
    /// Convenience constructor with the default current model.
    pub fn new(id: u64, board: &str, app: &str) -> Self {
        TuneRequest {
            id,
            board: board.to_string(),
            app: app.to_string(),
            current: None,
            class: None,
        }
    }

    /// Sets the current communication model.
    #[must_use]
    pub fn with_current(mut self, model: &str) -> Self {
        self.current = Some(model.to_string());
        self
    }

    /// Sets the admission-priority class (`interactive` / `bulk`).
    #[must_use]
    pub fn with_class(mut self, class: &str) -> Self {
        self.class = Some(class.to_string());
        self
    }
}

/// The service's answer to one [`TuneRequest`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TuneResponse {
    /// Echo of the request id.
    pub id: u64,
    /// Whether the request was served; when `false`, `error` explains why
    /// and the recommendation fields are absent.
    pub ok: bool,
    /// Error message for failed requests.
    pub error: Option<String>,
    /// Echo of the request's board name.
    pub board: Option<String>,
    /// Echo of the application name.
    pub app: Option<String>,
    /// Model the application currently uses (abbreviation, e.g. `ZC`).
    pub current: Option<String>,
    /// Model the framework recommends (abbreviation).
    pub recommended: Option<String>,
    /// Whether a model switch is suggested.
    pub switch_suggested: Option<bool>,
    /// Predicted speedup of switching, when a switch is suggested.
    pub estimated_speedup: Option<f64>,
    /// Human-readable explanation of the verdict.
    pub rationale: Option<String>,
    /// Whether the device characterization was served from the registry
    /// cache.
    pub cache_hit: Option<bool>,
    /// End-to-end service latency for this request, microseconds.
    pub latency_us: Option<u64>,
    /// Set (with the shed reason, `"queue"` or `"rate"`) when the
    /// request was rejected by admission control. Absent on served
    /// requests. Clients should back off and retry rather than treat
    /// this as a hard failure.
    pub overloaded: Option<String>,
}

impl TuneResponse {
    /// Builds a failure response.
    pub fn failure(id: u64, error: String) -> Self {
        TuneResponse {
            id,
            ok: false,
            error: Some(error),
            board: None,
            app: None,
            current: None,
            recommended: None,
            switch_suggested: None,
            estimated_speedup: None,
            rationale: None,
            cache_hit: None,
            latency_us: None,
            overloaded: None,
        }
    }

    /// Builds an explicit admission-rejection response (`reason` is the
    /// shed reason, `"queue"` or `"rate"`).
    pub fn overloaded(id: u64, reason: &str) -> Self {
        TuneResponse {
            overloaded: Some(reason.to_string()),
            ..TuneResponse::failure(id, format!("overloaded ({reason}); retry with backoff"))
        }
    }

    /// Whether this response is an admission rejection.
    pub fn is_overloaded(&self) -> bool {
        self.overloaded.is_some()
    }

    /// Canonical rendering of the *decision* carried by this response —
    /// the fields that must be identical no matter which transport
    /// (line-JSON or binary `icommwire`) served the request. Transport-
    /// and timing-dependent fields (`latency_us`, `cache_hit`) are
    /// excluded on purpose: the JSON/binary parity gate compares these
    /// strings byte for byte.
    pub fn decision_payload(&self) -> String {
        fn opt(value: &Option<String>) -> &str {
            value.as_deref().unwrap_or("-")
        }
        format!(
            "ok={} error={} board={} app={} current={} recommended={} switch={} speedup={} rationale={} overloaded={}",
            self.ok,
            opt(&self.error),
            opt(&self.board),
            opt(&self.app),
            opt(&self.current),
            opt(&self.recommended),
            self.switch_suggested
                .map_or("-".to_string(), |s| s.to_string()),
            self.estimated_speedup
                .map_or("-".to_string(), |s| format!("{s:.6}")),
            opt(&self.rationale),
            opt(&self.overloaded),
        )
    }

    /// Builds a success response from a tuning outcome.
    pub fn success(
        id: u64,
        board: &str,
        app: &str,
        outcome: &TuningOutcome,
        cache_hit: bool,
        latency_us: u64,
    ) -> Self {
        let rec = &outcome.recommendation;
        TuneResponse {
            id,
            ok: true,
            error: None,
            board: Some(board.to_string()),
            app: Some(app.to_string()),
            current: Some(rec.current.abbrev().to_string()),
            recommended: Some(rec.recommended.abbrev().to_string()),
            switch_suggested: Some(rec.suggests_switch()),
            estimated_speedup: rec.estimated_speedup.as_ref().map(|s| s.estimated),
            rationale: Some(rec.rationale.clone()),
            cache_hit: Some(cache_hit),
            latency_us: Some(latency_us),
            overloaded: None,
        }
    }
}

/// A request for the server's counters: `{"stats": true}` on its own
/// line. Kept as a struct (rather than sniffing the raw text) so the
/// verb parses with the same strictness as [`TuneRequest`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatsQuery {
    /// Must be `true`; any line parsing as this struct is a stats query.
    pub stats: bool,
}

/// The server's answer to a [`StatsQuery`] — the full counter set,
/// flattened to scalars so any line-JSON client can consume it without
/// knowing the histogram layout.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatsReport {
    /// Requests accepted (enqueued).
    pub requests: u64,
    /// Requests completed successfully.
    pub completed: u64,
    /// Requests failed.
    pub failed: u64,
    /// Registry cache hits.
    pub cache_hits: u64,
    /// Registry cache misses.
    pub cache_misses: u64,
    /// Characterization runs executed.
    pub characterizations: u64,
    /// Registry hit rate in [0, 1].
    pub hit_rate: f64,
    /// Characterizations answered by federated transfer.
    pub transfer_hits: u64,
    /// Transfer attempts that fell back to a full run.
    pub transfer_fallbacks: u64,
    /// Transfer hit rate in [0, 1] (0 when transfer never ran).
    pub transfer_hit_rate: f64,
    /// Warm-start rate in [0, 1]: lookups served without a full run
    /// (cache hits + transfer hits).
    pub warm_start_rate: f64,
    /// Requests shed on queue pressure.
    pub shed_queue: u64,
    /// Requests shed on rate-limit pressure.
    pub shed_rate: u64,
    /// Jobs queued or running at snapshot time.
    pub queue_depth: u64,
    /// Jobs retried.
    pub retries: u64,
    /// Jobs timed out.
    pub timeouts: u64,
    /// End-to-end latency p50, microseconds (bucket upper bound).
    pub latency_p50_us: u64,
    /// End-to-end latency p95, microseconds (bucket upper bound).
    pub latency_p95_us: u64,
    /// End-to-end latency p99, microseconds (bucket upper bound).
    pub latency_p99_us: u64,
    /// TCP connections accepted.
    pub conn_accepted: u64,
    /// TCP connections refused at the connection cap.
    pub conn_rejected: u64,
    /// Connections closed on a read deadline.
    pub read_timeouts: u64,
    /// Oversized request lines discarded.
    pub oversized_lines: u64,
    /// Malformed request lines answered with an error.
    pub malformed_requests: u64,
    /// Corrupt registry snapshots discarded on load.
    pub snapshot_corruptions: u64,
    /// Binary frames rejected on a CRC32 mismatch.
    pub frame_crc_errors: u64,
    /// Binary frames rejected on an oversized length field.
    pub frame_oversized: u64,
    /// Binary frames rejected as malformed (version/opcode/body).
    pub frame_malformed: u64,
    /// Connections closed mid-frame (truncation or stall).
    pub frame_truncated: u64,
    /// Requests answered from a shard-local decision cache.
    pub decision_cache_hits: u64,
    /// Request batches submitted by the event-driven shards.
    pub batches_submitted: u64,
    /// Requests carried by those batches.
    pub batched_requests: u64,
    /// Connections dropped on transport-setup errors.
    pub conn_errors: u64,
    /// Shard event loops restarted by the supervisor.
    pub shard_restarts: u64,
    /// Shard event-loop panics caught by the supervisor.
    pub shard_panics: u64,
    /// Connections orphaned by a shard panic (clean EOF, no reply).
    pub conns_orphaned: u64,
    /// Characterization sources quarantined as implausible.
    pub transfer_quarantined: u64,
    /// Recommendations priced by the closed-form footprint model.
    pub footprint_evaluations: u64,
    /// Summed footprint bytes over those recommendations.
    pub footprint_bytes_total: u64,
}

impl StatsReport {
    /// Flattens a metrics snapshot into the wire report.
    pub fn from_snapshot(s: &crate::MetricsSnapshot) -> Self {
        StatsReport {
            requests: s.requests,
            completed: s.completed,
            failed: s.failed,
            cache_hits: s.cache_hits,
            cache_misses: s.cache_misses,
            characterizations: s.characterizations,
            hit_rate: s.hit_rate(),
            transfer_hits: s.transfer_hits,
            transfer_fallbacks: s.transfer_fallbacks,
            transfer_hit_rate: s.transfer_hit_rate(),
            warm_start_rate: s.warm_start_rate(),
            shed_queue: s.shed_queue,
            shed_rate: s.shed_rate,
            queue_depth: s.queue_depth,
            retries: s.retries,
            timeouts: s.timeouts,
            latency_p50_us: s.total_latency.quantile_us(0.50),
            latency_p95_us: s.total_latency.quantile_us(0.95),
            latency_p99_us: s.total_latency.quantile_us(0.99),
            conn_accepted: s.conn_accepted,
            conn_rejected: s.conn_rejected,
            read_timeouts: s.read_timeouts,
            oversized_lines: s.oversized_lines,
            malformed_requests: s.malformed_requests,
            snapshot_corruptions: s.snapshot_corruptions,
            frame_crc_errors: s.frame_crc_errors,
            frame_oversized: s.frame_oversized,
            frame_malformed: s.frame_malformed,
            frame_truncated: s.frame_truncated,
            decision_cache_hits: s.decision_cache_hits,
            batches_submitted: s.batches_submitted,
            batched_requests: s.batched_requests,
            conn_errors: s.conn_errors,
            shard_restarts: s.shard_restarts,
            shard_panics: s.shard_panics,
            conns_orphaned: s.conns_orphaned,
            transfer_quarantined: s.transfer_quarantined,
            footprint_evaluations: s.footprint_evaluations,
            footprint_bytes_total: s.footprint_bytes_total,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips_through_json() {
        let req = TuneRequest::new(7, "tx2", "orb").with_current("zc");
        let line = icomm_persist::to_string(&req).unwrap();
        let back: TuneRequest = icomm_persist::from_str(&line).unwrap();
        assert_eq!(req, back);
    }

    #[test]
    fn current_defaults_to_absent_when_omitted() {
        let back: TuneRequest =
            icomm_persist::from_str(r#"{"id": 1, "board": "nano", "app": "shwfs"}"#).unwrap();
        assert_eq!(back.current, None);
        assert_eq!(back.board, "nano");
    }

    #[test]
    fn failure_response_round_trips() {
        let resp = TuneResponse::failure(3, "unknown board 'pi5'".to_string());
        let line = icomm_persist::to_string(&resp).unwrap();
        let back: TuneResponse = icomm_persist::from_str(&line).unwrap();
        assert!(!back.ok);
        assert_eq!(back.error.as_deref(), Some("unknown board 'pi5'"));
        assert_eq!(back.recommended, None);
    }

    #[test]
    fn overloaded_response_is_explicit() {
        let resp = TuneResponse::overloaded(9, "queue");
        assert!(!resp.ok);
        assert!(resp.is_overloaded());
        let line = icomm_persist::to_string(&resp).unwrap();
        let back: TuneResponse = icomm_persist::from_str(&line).unwrap();
        assert_eq!(back.overloaded.as_deref(), Some("queue"));
        assert!(back.error.unwrap().contains("overloaded"));
    }

    #[test]
    fn class_defaults_to_absent_and_round_trips() {
        let back: TuneRequest =
            icomm_persist::from_str(r#"{"id": 1, "board": "nano", "app": "shwfs"}"#).unwrap();
        assert_eq!(back.class, None);
        let req = TuneRequest::new(2, "tx2", "orb").with_class("bulk");
        let line = icomm_persist::to_string(&req).unwrap();
        let back: TuneRequest = icomm_persist::from_str(&line).unwrap();
        assert_eq!(back.class.as_deref(), Some("bulk"));
    }

    #[test]
    fn decision_payload_ignores_transport_fields() {
        let mut a = TuneResponse::failure(1, "unknown board 'pi5'".to_string());
        let mut b = a.clone();
        a.latency_us = Some(120);
        b.latency_us = Some(7_000);
        a.cache_hit = Some(true);
        b.cache_hit = Some(false);
        b.id = 99;
        assert_eq!(a.decision_payload(), b.decision_payload());
        // But a change to the decision itself shows up.
        b.error = Some("unknown board 'pi6'".to_string());
        assert_ne!(a.decision_payload(), b.decision_payload());
    }

    #[test]
    fn stats_query_parses_from_wire_form() {
        let q: StatsQuery = icomm_persist::from_str(r#"{"stats": true}"#).unwrap();
        assert!(q.stats);
        // A tune request line must NOT parse as a stats query.
        assert!(icomm_persist::from_str::<StatsQuery>(
            r#"{"id": 1, "board": "nano", "app": "shwfs"}"#
        )
        .is_err());
    }
}
