//! Supervision and recovery primitives for the icomm serving fleet.
//!
//! Three small, dependency-free building blocks shared by the shard
//! plane, the binary client, and the fleet simulator:
//!
//! - [`RestartPolicy`] / [`Supervisor`] — a bounded restart budget with
//!   exponential backoff, used by the net server to resurrect crashed
//!   shard event loops without ever entering a hot crash loop.
//! - [`RetryPolicy`] — deadline-bounded client retries with
//!   deterministically jittered exponential backoff. The jitter stream
//!   is a pure function of `(seed, attempt)`, so replaying a seeded run
//!   reproduces the exact same delay schedule.
//! - [`CircuitBreaker`] — a per-endpoint closed → open → half-open
//!   breaker driven by consecutive failures and an explicit caller
//!   clock (`now_us`), which keeps every transition unit-testable
//!   without sleeping.
//!
//! All types here are plain data driven by the caller: no threads, no
//! global clocks, no I/O. The policy decisions (when to restart, how
//! long to wait, whether to admit a call) stay deterministic and the
//! side effects stay in the owning layer.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::time::Duration;

/// SplitMix64 — a tiny, high-quality bit mixer used to derive
/// deterministic retry jitter from `(seed, attempt)` without dragging
/// in an RNG dependency.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Restart budget for a supervised component (a shard event loop, a
/// job-engine worker).
///
/// The supervisor grants at most `max_restarts` resurrections over the
/// component's lifetime, sleeping `base_backoff * 2^n` (capped at
/// `max_backoff`) before the n-th restart so a deterministic crasher
/// degrades into a slow, bounded retry rather than a hot loop.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RestartPolicy {
    /// Maximum number of restarts before the component is declared
    /// dead and its supervisor gives up.
    pub max_restarts: u32,
    /// Backoff before the first restart; doubles on every subsequent
    /// crash.
    pub base_backoff: Duration,
    /// Upper bound on the per-restart backoff.
    pub max_backoff: Duration,
}

impl Default for RestartPolicy {
    fn default() -> Self {
        RestartPolicy {
            max_restarts: 8,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_secs(2),
        }
    }
}

impl RestartPolicy {
    /// Backoff to apply before restart number `restart` (0-based).
    pub fn backoff_for(&self, restart: u32) -> Duration {
        let factor = 1u64 << restart.min(20);
        let raw = self
            .base_backoff
            .saturating_mul(factor.min(u32::MAX as u64) as u32);
        raw.min(self.max_backoff)
    }
}

/// Tracks restart consumption against a [`RestartPolicy`].
///
/// One `Supervisor` per supervised component; the owning thread calls
/// [`Supervisor::on_crash`] after each panic and either sleeps the
/// returned backoff and restarts, or gives up when the budget is
/// exhausted.
#[derive(Clone, Debug)]
pub struct Supervisor {
    policy: RestartPolicy,
    restarts: u32,
}

impl Supervisor {
    /// New supervisor with a full restart budget.
    pub fn new(policy: RestartPolicy) -> Self {
        Supervisor {
            policy,
            restarts: 0,
        }
    }

    /// Restarts consumed so far.
    pub fn restarts(&self) -> u32 {
        self.restarts
    }

    /// Record a crash. Returns the backoff to sleep before restarting,
    /// or `None` when the restart budget is exhausted and the
    /// component should stay down.
    pub fn on_crash(&mut self) -> Option<Duration> {
        if self.restarts >= self.policy.max_restarts {
            return None;
        }
        let backoff = self.policy.backoff_for(self.restarts);
        self.restarts += 1;
        Some(backoff)
    }
}

/// Deadline-bounded retry schedule with deterministic jitter.
///
/// `backoff_for(attempt)` yields `base_delay * 2^attempt` capped at
/// `max_delay`, scaled by a jitter fraction in `[0.5, 1.0)` derived
/// purely from `(jitter_seed, attempt)` — so two runs with the same
/// seed produce byte-identical delay schedules, and a fleet of clients
/// seeded differently decorrelates its retry storms.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (first try included). 1 disables retries.
    pub max_attempts: u32,
    /// Delay before the first retry; doubles per attempt.
    pub base_delay: Duration,
    /// Upper bound on a single inter-attempt delay.
    pub max_delay: Duration,
    /// Overall deadline across all attempts, including backoff sleeps.
    pub deadline: Duration,
    /// Seed for the deterministic jitter stream.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_delay: Duration::from_millis(5),
            max_delay: Duration::from_millis(250),
            deadline: Duration::from_secs(5),
            jitter_seed: 0x0001_c077,
        }
    }
}

impl RetryPolicy {
    /// Jittered backoff to sleep after attempt number `attempt`
    /// (0-based) fails.
    pub fn backoff_for(&self, attempt: u32) -> Duration {
        let factor = 1u64 << attempt.min(20);
        let raw = self
            .base_delay
            .saturating_mul(factor.min(u32::MAX as u64) as u32)
            .min(self.max_delay);
        // Jitter fraction in [0.5, 1.0): full-jitter halves thundering
        // herds while keeping a meaningful floor on the wait.
        let bits = splitmix64(self.jitter_seed ^ u64::from(attempt));
        let frac = 0.5 + (bits >> 11) as f64 / (1u64 << 53) as f64 * 0.5;
        raw.mul_f64(frac)
    }
}

/// Breaker tuning knobs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive failures that trip the breaker open.
    pub failure_threshold: u32,
    /// How long the breaker stays open before admitting probes.
    pub cooldown: Duration,
    /// Successful probes required in half-open before closing again.
    pub half_open_probes: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 8,
            cooldown: Duration::from_millis(250),
            half_open_probes: 2,
        }
    }
}

/// Breaker state, exposed for observability and tests.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Calls flow freely; consecutive failures are counted.
    Closed,
    /// Calls are rejected until the cooldown elapses.
    Open,
    /// A limited number of probe calls are admitted; all must succeed
    /// to close the breaker, any failure re-opens it.
    HalfOpen,
}

/// Per-endpoint circuit breaker: closed → open → half-open.
///
/// Driven entirely by an explicit microsecond clock supplied by the
/// caller, so state transitions are deterministic under test and the
/// breaker itself never reads wall time.
#[derive(Clone, Debug)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: BreakerState,
    consecutive_failures: u32,
    opened_at_us: u64,
    probes_issued: u32,
    probe_successes: u32,
    /// Times the breaker transitioned closed/half-open → open.
    trips: u64,
    /// Calls rejected while open.
    rejections: u64,
}

impl CircuitBreaker {
    /// New breaker in the closed state.
    pub fn new(config: BreakerConfig) -> Self {
        CircuitBreaker {
            config,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            opened_at_us: 0,
            probes_issued: 0,
            probe_successes: 0,
            trips: 0,
            rejections: 0,
        }
    }

    /// Current state (after applying any cooldown expiry at `now_us`).
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Times the breaker has tripped open.
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// Calls rejected while the breaker was open.
    pub fn rejections(&self) -> u64 {
        self.rejections
    }

    /// Whether a call may proceed at `now_us`. In the open state this
    /// transitions to half-open once the cooldown has elapsed; in
    /// half-open it admits up to `half_open_probes` calls.
    pub fn allow(&mut self, now_us: u64) -> bool {
        match self.state {
            BreakerState::Closed => true,
            BreakerState::Open => {
                let cooldown_us = self.config.cooldown.as_micros() as u64;
                if now_us.saturating_sub(self.opened_at_us) >= cooldown_us {
                    self.state = BreakerState::HalfOpen;
                    self.probes_issued = 1;
                    self.probe_successes = 0;
                    true
                } else {
                    self.rejections += 1;
                    false
                }
            }
            BreakerState::HalfOpen => {
                if self.probes_issued < self.config.half_open_probes {
                    self.probes_issued += 1;
                    true
                } else {
                    self.rejections += 1;
                    false
                }
            }
        }
    }

    /// Record a successful call finishing at `now_us`.
    pub fn record_success(&mut self, _now_us: u64) {
        match self.state {
            BreakerState::Closed => self.consecutive_failures = 0,
            BreakerState::HalfOpen => {
                self.probe_successes += 1;
                if self.probe_successes >= self.config.half_open_probes {
                    self.state = BreakerState::Closed;
                    self.consecutive_failures = 0;
                }
            }
            // A straggler success landing after the trip: ignore.
            BreakerState::Open => {}
        }
    }

    /// Record a failed (errored or `overloaded`) call at `now_us`.
    pub fn record_failure(&mut self, now_us: u64) {
        match self.state {
            BreakerState::Closed => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.config.failure_threshold {
                    self.trip(now_us);
                }
            }
            BreakerState::HalfOpen => self.trip(now_us),
            BreakerState::Open => {}
        }
    }

    fn trip(&mut self, now_us: u64) {
        self.state = BreakerState::Open;
        self.opened_at_us = now_us;
        self.consecutive_failures = 0;
        self.probes_issued = 0;
        self.probe_successes = 0;
        self.trips += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn restart_backoff_doubles_and_caps() {
        let policy = RestartPolicy {
            max_restarts: 10,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(100),
        };
        assert_eq!(policy.backoff_for(0), Duration::from_millis(10));
        assert_eq!(policy.backoff_for(1), Duration::from_millis(20));
        assert_eq!(policy.backoff_for(2), Duration::from_millis(40));
        assert_eq!(policy.backoff_for(5), Duration::from_millis(100));
        assert_eq!(policy.backoff_for(31), Duration::from_millis(100));
    }

    #[test]
    fn supervisor_exhausts_budget() {
        let mut sup = Supervisor::new(RestartPolicy {
            max_restarts: 2,
            ..RestartPolicy::default()
        });
        assert!(sup.on_crash().is_some());
        assert!(sup.on_crash().is_some());
        assert_eq!(sup.restarts(), 2);
        assert!(sup.on_crash().is_none());
        assert_eq!(sup.restarts(), 2);
    }

    #[test]
    fn retry_jitter_is_deterministic_and_bounded() {
        let policy = RetryPolicy::default();
        for attempt in 0..6 {
            let a = policy.backoff_for(attempt);
            let b = policy.backoff_for(attempt);
            assert_eq!(a, b, "same (seed, attempt) must give same delay");
            let raw = policy
                .base_delay
                .saturating_mul(1 << attempt.min(20))
                .min(policy.max_delay);
            assert!(
                a >= raw.mul_f64(0.5) && a < raw,
                "jitter in [0.5, 1.0) of raw"
            );
        }
        let other = RetryPolicy {
            jitter_seed: 99,
            ..RetryPolicy::default()
        };
        assert_ne!(
            other.backoff_for(3),
            policy.backoff_for(3),
            "different seeds should decorrelate"
        );
    }

    #[test]
    fn breaker_trips_after_consecutive_failures() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 3,
            cooldown: Duration::from_millis(100),
            half_open_probes: 2,
        });
        assert_eq!(b.state(), BreakerState::Closed);
        b.record_failure(0);
        b.record_failure(1);
        assert_eq!(b.state(), BreakerState::Closed);
        // A success resets the consecutive count.
        b.record_success(2);
        b.record_failure(3);
        b.record_failure(4);
        assert_eq!(b.state(), BreakerState::Closed);
        b.record_failure(5);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 1);
        assert!(!b.allow(6));
        assert_eq!(b.rejections(), 1);
    }

    #[test]
    fn breaker_half_open_probe_cycle() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 1,
            cooldown: Duration::from_millis(1),
            half_open_probes: 2,
        });
        b.record_failure(0);
        assert_eq!(b.state(), BreakerState::Open);
        // Before the cooldown: rejected. After: half-open probes.
        assert!(!b.allow(500));
        assert!(b.allow(1_000));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(b.allow(1_001));
        assert!(!b.allow(1_002), "probe budget spent");
        b.record_success(1_003);
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.record_success(1_004);
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn breaker_half_open_failure_reopens() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 1,
            cooldown: Duration::from_millis(1),
            half_open_probes: 1,
        });
        b.record_failure(0);
        assert!(b.allow(2_000));
        b.record_failure(2_001);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 2);
        assert!(!b.allow(2_002), "cooldown restarts from the re-trip");
        assert!(b.allow(4_000));
    }
}
