//! The [`Soc`] facade: one object owning the memory system and attributing
//! work, counters and energy to the right agents.
//!
//! Communication models (in `icomm-models`) drive a `Soc` by launching CPU
//! tasks, GPU kernels, copies and cache-maintenance operations, then compose
//! the returned phase timings into an end-to-end timeline. The `Soc` itself
//! is timeline-agnostic: it accounts busy time and traffic per agent, and
//! derives energy from those counters.

use crate::copy_engine::{run_copy, CopyResult};
use crate::cpu::{run_cpu_task, CpuRunResult, OpCount};
use crate::device::DeviceProfile;
use crate::gpu::{run_kernel, KernelResult};
use crate::hierarchy::{FlushCost, MemorySystem};
use crate::request::MemRequest;
use crate::stats::{AgentStats, SocSnapshot};
use crate::units::{ByteSize, Energy, Picos};

/// A simulated heterogeneous SoC instance.
///
/// # Examples
///
/// ```
/// use icomm_soc::device::DeviceProfile;
/// use icomm_soc::soc::Soc;
///
/// let mut soc = Soc::new(DeviceProfile::jetson_tx2());
/// let copy = soc.copy(icomm_soc::units::ByteSize::mib(1));
/// assert!(copy.time.as_micros_f64() > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct Soc {
    profile: DeviceProfile,
    mem: MemorySystem,
    cpu_stats: AgentStats,
    gpu_stats: AgentStats,
    copy_stats: AgentStats,
}

impl Soc {
    /// Creates a fresh SoC (cold caches, zeroed counters) for a device.
    pub fn new(profile: DeviceProfile) -> Self {
        let mem = profile.build_memory_system();
        Soc {
            profile,
            mem,
            cpu_stats: AgentStats::default(),
            gpu_stats: AgentStats::default(),
            copy_stats: AgentStats::default(),
        }
    }

    /// The device profile this SoC simulates.
    pub fn profile(&self) -> &DeviceProfile {
        &self.profile
    }

    /// Read access to the memory system.
    pub fn mem(&self) -> &MemorySystem {
        &self.mem
    }

    /// Mutable access to the memory system (for ablations that tweak rules).
    pub fn mem_mut(&mut self) -> &mut MemorySystem {
        &mut self.mem
    }

    /// Runs a CPU task and attributes its activity.
    pub fn run_cpu_task(
        &mut self,
        ops: &[OpCount],
        requests: impl Iterator<Item = MemRequest>,
    ) -> CpuRunResult {
        let cpu = self.profile.cpu;
        let result = run_cpu_task(&mut self.mem, &cpu, ops, requests);
        self.cpu_stats.busy_time += result.time;
        self.cpu_stats.ops_retired += result.ops_retired;
        self.cpu_stats.mem_transactions += result.transactions;
        self.cpu_stats.mem_bytes += result.bytes;
        result
    }

    /// Launches a GPU kernel and attributes its activity.
    pub fn run_kernel(
        &mut self,
        compute_work: u64,
        requests: impl Iterator<Item = MemRequest>,
    ) -> KernelResult {
        let gpu = self.profile.gpu;
        let result = run_kernel(&mut self.mem, &gpu, compute_work, requests);
        self.gpu_stats.busy_time += result.time;
        self.gpu_stats.ops_retired += result.ops_retired;
        self.gpu_stats.mem_transactions += result.transactions;
        self.gpu_stats.mem_bytes += result.bytes;
        result
    }

    /// Performs a DMA copy and attributes its activity.
    pub fn copy(&mut self, bytes: ByteSize) -> CopyResult {
        let engine = self.profile.copy_engine;
        let result = run_copy(&mut self.mem, &engine, bytes);
        self.copy_stats.busy_time += result.time;
        self.copy_stats.mem_transactions += if bytes.as_u64() > 0 { 2 } else { 0 };
        self.copy_stats.mem_bytes += 2 * result.bytes;
        result
    }

    /// Flushes dirty CPU cache lines (standard-copy pre-kernel step);
    /// charged as CPU busy time.
    pub fn flush_cpu_caches(&mut self) -> FlushCost {
        let cost = self.mem.flush_cpu_caches();
        self.cpu_stats.busy_time += cost.time;
        cost
    }

    /// Invalidates GPU caches (standard-copy post-kernel step); charged as
    /// GPU busy time.
    pub fn invalidate_gpu_caches(&mut self) -> FlushCost {
        let cost = self.mem.invalidate_gpu_caches();
        self.gpu_stats.busy_time += cost.time;
        cost
    }

    /// Reads the full counter set, with energy derived from the counters.
    pub fn snapshot(&self) -> SocSnapshot {
        use crate::hierarchy::Agent;
        let energy_model = self.profile.energy;
        let dram = *self.mem.dram().stats();
        let energy: Energy = energy_model.dram_energy(dram.bytes_read + dram.bytes_written)
            + energy_model.busy_energy(energy_model.cpu_busy_mw, self.cpu_stats.busy_time)
            + energy_model.busy_energy(energy_model.gpu_busy_mw, self.gpu_stats.busy_time)
            + energy_model.busy_energy(energy_model.copy_busy_mw, self.copy_stats.busy_time);
        SocSnapshot {
            cpu_l1: *self.mem.cache(Agent::Cpu, 1).stats(),
            cpu_llc: *self.mem.cache(Agent::Cpu, 2).stats(),
            gpu_l1: *self.mem.cache(Agent::Gpu, 1).stats(),
            gpu_llc: *self.mem.cache(Agent::Gpu, 2).stats(),
            dram,
            cpu: self.cpu_stats,
            gpu: self.gpu_stats,
            copy_engine: self.copy_stats,
            energy,
        }
    }

    /// Zeroes every counter (cache contents are untouched).
    pub fn reset_stats(&mut self) {
        self.mem.reset_stats();
        self.cpu_stats = AgentStats::default();
        self.gpu_stats = AgentStats::default();
        self.copy_stats = AgentStats::default();
    }

    /// Empties all caches (cold start) without touching counters, then
    /// resets counters so the cold-start writebacks are not attributed to
    /// the next region of interest.
    pub fn cold_start(&mut self) {
        self.mem.cold_caches();
        self.reset_stats();
    }

    /// Configures the hardware-coherent unified-memory (UPM) path for a
    /// shared working set of `footprint` bytes: derives the per-fill
    /// extras (expected TLB walk past reach plus remote-node hop) from
    /// the device's memory topology and installs them in the hierarchy.
    /// On flat in-reach topologies this is a no-op (extras stay zero).
    pub fn configure_upm(&mut self, footprint: ByteSize) {
        use icomm_mem::MemAgent;
        let topology = &self.profile.topology;
        let cpu = topology.upm_fill_extra(MemAgent::Cpu, footprint.as_u64());
        let gpu = topology.upm_fill_extra(MemAgent::Gpu, footprint.as_u64());
        self.mem.set_upm_fill_extra(cpu, gpu);
    }

    /// Clears the UPM per-fill extras (back to the flat default).
    pub fn clear_upm(&mut self) {
        self.mem.set_upm_fill_extra(Picos::ZERO, Picos::ZERO);
    }

    /// Adds extra CPU busy time (used by models for driver overheads such
    /// as page-fault servicing).
    pub fn charge_cpu_overhead(&mut self, time: Picos) {
        self.cpu_stats.busy_time += time;
    }

    /// Adds extra GPU busy time (e.g. per-phase pipeline barriers).
    pub fn charge_gpu_overhead(&mut self, time: Picos) {
        self.gpu_stats.busy_time += time;
    }

    /// Adds extra copy-engine busy time (e.g. page-migration transfers that
    /// bypass the `copy` API).
    pub fn charge_copy_overhead(&mut self, time: Picos) {
        self.copy_stats.busy_time += time;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::CpuOpClass;
    use crate::hierarchy::MemSpace;

    #[test]
    fn snapshot_attributes_busy_time() {
        let mut soc = Soc::new(DeviceProfile::jetson_tx2());
        soc.run_cpu_task(&[OpCount::new(CpuOpClass::FpDiv, 1000)], std::iter::empty());
        soc.run_kernel(1 << 20, std::iter::empty());
        soc.copy(ByteSize::kib(64));
        let snap = soc.snapshot();
        assert!(snap.cpu.busy_time > Picos::ZERO);
        assert!(snap.gpu.busy_time > Picos::ZERO);
        assert!(snap.copy_engine.busy_time > Picos::ZERO);
        assert!(snap.energy > Energy::ZERO);
    }

    #[test]
    fn delta_isolates_region_of_interest() {
        let mut soc = Soc::new(DeviceProfile::jetson_tx2());
        soc.copy(ByteSize::mib(1));
        let before = soc.snapshot();
        soc.run_kernel(
            0,
            (0..16u64).map(|i| MemRequest::read(i * 64, 64, MemSpace::Cached)),
        );
        let after = soc.snapshot();
        let delta = after.delta(&before);
        assert_eq!(delta.gpu.mem_transactions, 16);
        assert_eq!(delta.copy_engine.mem_transactions, 0);
    }

    #[test]
    fn reset_stats_zeroes_counters_but_keeps_cache_contents() {
        let mut soc = Soc::new(DeviceProfile::jetson_tx2());
        soc.run_cpu_task(
            &[],
            std::iter::once(MemRequest::read(0x40, 4, MemSpace::Cached)),
        );
        soc.reset_stats();
        let r = soc.run_cpu_task(
            &[],
            std::iter::once(MemRequest::read(0x40, 4, MemSpace::Cached)),
        );
        // Still cached from before the reset.
        assert_eq!(r.dram_bytes, 0);
        assert_eq!(soc.snapshot().cpu_l1.hits, 1);
    }

    #[test]
    fn cold_start_forces_misses() {
        let mut soc = Soc::new(DeviceProfile::jetson_tx2());
        soc.run_cpu_task(
            &[],
            std::iter::once(MemRequest::read(0x40, 4, MemSpace::Cached)),
        );
        soc.cold_start();
        let r = soc.run_cpu_task(
            &[],
            std::iter::once(MemRequest::read(0x40, 4, MemSpace::Cached)),
        );
        assert!(r.dram_bytes > 0);
    }

    #[test]
    fn energy_grows_with_dram_traffic() {
        let mut a = Soc::new(DeviceProfile::jetson_tx2());
        let mut b = Soc::new(DeviceProfile::jetson_tx2());
        a.copy(ByteSize::mib(1));
        b.copy(ByteSize::mib(16));
        assert!(b.snapshot().energy > a.snapshot().energy);
    }

    #[test]
    fn charge_cpu_overhead_adds_busy_time() {
        let mut soc = Soc::new(DeviceProfile::jetson_nano());
        soc.charge_cpu_overhead(Picos::from_micros(10));
        assert_eq!(soc.snapshot().cpu.busy_time, Picos::from_micros(10));
    }
}
