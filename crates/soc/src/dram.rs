//! LPDDR system-memory model.
//!
//! Embedded SoCs in the Jetson class share a single LPDDR4(x) channel group
//! between the CPU cluster, the iGPU and the DMA engines, so the model's job
//! is to (a) charge a fixed access latency per transaction, (b) bound
//! aggregate throughput by the controller's peak bandwidth, and (c) account
//! every byte moved for the energy model.
//!
//! Timing is *charged*, not scheduled: callers receive the latency and
//! occupancy cost of each transaction and weave those into their own agent
//! timelines. Bandwidth saturation under concurrent agents is handled by the
//! overlap executor in `icomm-models`, which knows which agents run at the
//! same time.

use icomm_mem::MemTopology;
use serde::{Deserialize, Serialize};

use crate::stats::DramStats;
use crate::units::{Bandwidth, ByteSize, Picos};

/// Configuration of the DRAM controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramConfig {
    /// Peak controller bandwidth (all agents combined).
    pub peak_bandwidth: Bandwidth,
    /// Latency of a single transaction (row activation + CAS + transfer of
    /// the first beat), charged to latency-sensitive agents.
    pub access_latency: Picos,
}

impl DramConfig {
    /// Creates a new configuration.
    ///
    /// # Panics
    ///
    /// Panics if `peak_bandwidth` is zero.
    pub fn new(peak_bandwidth: Bandwidth, access_latency: Picos) -> Self {
        assert!(
            peak_bandwidth.as_bytes_per_sec() > 0,
            "DRAM bandwidth must be non-zero"
        );
        DramConfig {
            peak_bandwidth,
            access_latency,
        }
    }

    /// Derives the flat single-channel view of a memory topology: the
    /// aggregate bandwidth across every NUMA node and the home node's
    /// access latency. For single-node ("flat") topologies this
    /// reproduces the node's constants exactly, so the Jetson presets
    /// behave bit-identically to the pre-topology simulator.
    ///
    /// # Panics
    ///
    /// Panics if the topology's aggregate bandwidth is zero.
    pub fn from_topology(topology: &MemTopology) -> Self {
        DramConfig::new(topology.aggregate_bandwidth(), topology.base_latency())
    }
}

/// Cost of one DRAM transaction as seen by the issuing agent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramCost {
    /// Latency until the data is available (for reads) or accepted (writes).
    pub latency: Picos,
    /// Controller occupancy: how long the channel is kept busy. Used for
    /// bandwidth-bound streaming and contention accounting.
    pub occupancy: Picos,
}

/// The shared system-memory controller.
///
/// # Examples
///
/// ```
/// use icomm_soc::dram::{Dram, DramConfig};
/// use icomm_soc::units::{Bandwidth, ByteSize, Picos};
///
/// let mut dram = Dram::new(DramConfig::new(
///     Bandwidth::gib_per_sec(25),
///     Picos::from_nanos(80),
/// ));
/// let cost = dram.read(ByteSize(64));
/// assert_eq!(cost.latency, Picos::from_nanos(80) + cost.occupancy);
/// ```
#[derive(Debug, Clone)]
pub struct Dram {
    config: DramConfig,
    stats: DramStats,
}

impl Dram {
    /// Creates a new controller.
    pub fn new(config: DramConfig) -> Self {
        Dram {
            config,
            stats: DramStats::default(),
        }
    }

    /// Returns the configuration.
    pub fn config(&self) -> DramConfig {
        self.config
    }

    /// Accumulated counters.
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// Resets the counters.
    pub fn reset_stats(&mut self) {
        self.stats = DramStats::default();
    }

    fn transfer(&mut self, bytes: ByteSize, is_read: bool) -> DramCost {
        let occupancy = self.config.peak_bandwidth.transfer_time(bytes);
        let latency = self.config.access_latency + occupancy;
        self.stats.transactions += 1;
        if is_read {
            self.stats.bytes_read += bytes.as_u64();
        } else {
            self.stats.bytes_written += bytes.as_u64();
        }
        self.stats.busy_time += occupancy;
        DramCost { latency, occupancy }
    }

    /// Reads `bytes` from DRAM.
    pub fn read(&mut self, bytes: ByteSize) -> DramCost {
        self.transfer(bytes, true)
    }

    /// Writes `bytes` to DRAM.
    pub fn write(&mut self, bytes: ByteSize) -> DramCost {
        self.transfer(bytes, false)
    }

    /// Time for a bulk, pipelined stream of `bytes` (a DMA copy): one
    /// leading access latency plus bandwidth-bound occupancy.
    pub fn stream_time(&self, bytes: ByteSize) -> Picos {
        self.config.access_latency + self.config.peak_bandwidth.transfer_time(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dram() -> Dram {
        Dram::new(DramConfig::new(
            Bandwidth::bytes_per_sec(64_000_000_000_000), // 64 B/ps
            Picos::from_nanos(100),
        ))
    }

    #[test]
    fn read_charges_latency_plus_occupancy() {
        let mut d = dram();
        let cost = d.read(ByteSize(64));
        assert_eq!(cost.occupancy, Picos(1));
        assert_eq!(cost.latency, Picos::from_nanos(100) + Picos(1));
    }

    #[test]
    fn counters_accumulate() {
        let mut d = dram();
        d.read(ByteSize(64));
        d.write(ByteSize(128));
        assert_eq!(d.stats().bytes_read, 64);
        assert_eq!(d.stats().bytes_written, 128);
        assert_eq!(d.stats().transactions, 2);
        assert_eq!(d.stats().bytes_total(), ByteSize(192));
    }

    #[test]
    fn stream_time_is_pipelined() {
        let d = dram();
        // 1 MiB at 64 B/ps = 16384 ps + 100 ns leading latency.
        let t = d.stream_time(ByteSize::mib(1));
        assert_eq!(t, Picos::from_nanos(100) + Picos(16384));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_bandwidth_rejected() {
        let _ = DramConfig::new(Bandwidth(0), Picos::ZERO);
    }

    #[test]
    fn reset_clears_counters() {
        let mut d = dram();
        d.read(ByteSize(64));
        d.reset_stats();
        assert_eq!(d.stats().transactions, 0);
    }
}
