//! # icomm-soc — transaction-level heterogeneous SoC simulator
//!
//! A deterministic simulator of an embedded system-on-chip in which a CPU
//! cluster and an integrated GPU (iGPU) share one LPDDR system memory, in
//! the style of the NVIDIA Jetson family. It is the hardware substrate for
//! the `icomm` framework, which reproduces *“A Framework for Optimizing
//! CPU-iGPU Communication on Embedded Platforms”* (DAC 2021).
//!
//! The simulator models exactly the signals the framework's performance
//! model consumes:
//!
//! - set-associative write-back caches with flush/invalidate maintenance
//!   and per-level hit/miss/writeback counters ([`cache`]),
//! - a shared DRAM controller with bandwidth and latency bounds ([`dram`]),
//! - per-device **zero-copy rules**: pinned allocations bypass the GPU
//!   caches everywhere, bypass the CPU caches on Nano/TX2-class parts, and
//!   ride hardware I/O coherence (GPU snoops the CPU LLC) on AGX
//!   Xavier-class parts ([`hierarchy`]),
//! - throughput-bound CPU/GPU execution models ([`cpu`], [`gpu`]), a DMA
//!   copy engine ([`copy_engine`]), and a first-order energy model
//!   ([`energy`]),
//! - ready-made [`device::DeviceProfile`] presets for the Jetson Nano, TX2
//!   and AGX Xavier, calibrated against the paper's measured device
//!   characteristics.
//!
//! # Example
//!
//! ```
//! use icomm_soc::device::DeviceProfile;
//! use icomm_soc::hierarchy::MemSpace;
//! use icomm_soc::request::MemRequest;
//! use icomm_soc::soc::Soc;
//!
//! // Stream 1 MiB through the GPU on a simulated TX2, first via the cached
//! // path, then via the pinned zero-copy path.
//! let mut soc = Soc::new(DeviceProfile::jetson_tx2());
//! let stream = |space| (0..16_384u64).map(move |i| MemRequest::read(i * 64, 64, space));
//! let cached = soc.run_kernel(0, stream(MemSpace::Cached));
//! let pinned = soc.run_kernel(0, stream(MemSpace::Pinned));
//! assert!(pinned.time > cached.time); // zero-copy bypasses the caches
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod copy_engine;
pub mod cpu;
pub mod device;
pub mod dram;
pub mod energy;
pub mod gpu;
pub mod hierarchy;
pub mod request;
pub mod soc;
pub mod stats;

pub use icomm_mem::units;

pub use device::DeviceProfile;
pub use icomm_mem::topology::{
    Interconnect, MemAgent, MemTopology, NumaNode, PageSize, PlacementPolicy, TlbConfig,
};
pub use soc::Soc;
