//! The shared memory hierarchy: per-agent caches in front of one DRAM.
//!
//! This module encodes the three cache behaviours that distinguish the
//! CPU-iGPU communication models of the paper:
//!
//! - **Cached** accesses flow through the issuing agent's L1 and LLC with
//!   write-back/write-allocate semantics (used by standard copy and unified
//!   memory).
//! - **Pinned** (zero-copy) accesses obey the device's [`ZcRules`]: the GPU
//!   caches never hold pinned lines; on Nano/TX2-class devices the CPU
//!   caches are bypassed too; on I/O-coherent devices (AGX Xavier) the GPU
//!   *snoops the CPU LLC* so pinned reads can be served from cache.
//! - **Flush/invalidate** operations implement the implicit coherence of the
//!   standard-copy model around kernel launches.
//!
//! Each access returns an [`AccessCost`] carrying the latency seen by the
//! agent plus the LLC and DRAM channel occupancies, which the agent models
//! combine into latency-bound or bandwidth-bound execution times.

use serde::{Deserialize, Serialize};

use crate::cache::{AccessKind, Cache, CacheGeometry, CacheOutcome};
use crate::dram::{Dram, DramConfig};
use crate::units::{Bandwidth, ByteSize, Picos};

/// A processing element that issues memory traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Agent {
    /// The CPU cluster.
    Cpu,
    /// The integrated GPU.
    Gpu,
    /// The DMA copy engine.
    CopyEngine,
}

/// Which logical allocation an access targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemSpace {
    /// An ordinary cacheable allocation (private partitions of the standard
    /// copy model, or unified-memory pages).
    Cached,
    /// A pinned zero-copy allocation shared between CPU and iGPU.
    Pinned,
    /// A system-allocated, hardware-coherent unified allocation (UPM on
    /// MI300A / Grace-Hopper-class parts): cached by both agents like
    /// [`MemSpace::Cached`], but every LLC-line fill pays a
    /// topology-derived extra (TLB walks past reach, remote-node hops)
    /// configured via [`MemorySystem::set_upm_fill_extra`].
    Upm,
}

/// Device-specific handling of pinned (zero-copy) allocations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ZcRules {
    /// Whether CPU caches may hold pinned lines (false on Nano/TX2-class
    /// devices, which effectively disable the CPU cache for zero-copy).
    pub cpu_caches_pinned: bool,
    /// Whether the device implements hardware I/O coherence, letting the GPU
    /// snoop the CPU LLC on pinned accesses (true on AGX Xavier).
    pub io_coherent: bool,
}

/// Fixed latencies and level bandwidths of the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HierarchyLatencies {
    /// CPU L1 hit latency.
    pub cpu_l1_hit: Picos,
    /// CPU LLC hit latency.
    pub cpu_llc_hit: Picos,
    /// GPU L1 hit latency.
    pub gpu_l1_hit: Picos,
    /// GPU LLC hit latency.
    pub gpu_llc_hit: Picos,
    /// Latency of an I/O-coherent GPU access that hits in the CPU LLC.
    pub snoop_hit: Picos,
    /// Extra latency added to a DRAM access for the coherence lookup when an
    /// I/O-coherent access misses the CPU LLC.
    pub snoop_miss_extra: Picos,
    /// Extra per-access latency for uncached (pinned, non-coherent) CPU
    /// accesses on top of the DRAM latency.
    pub uncached_cpu_extra: Picos,
    /// Extra per-access latency for uncached pinned GPU accesses on top of
    /// the DRAM latency.
    pub uncached_gpu_extra: Picos,
    /// Peak bandwidth of the CPU LLC array.
    pub cpu_llc_bandwidth: Bandwidth,
    /// Peak bandwidth of the GPU LLC array (the `LL-L1` throughput ceiling
    /// the first micro-benchmark measures).
    pub gpu_llc_bandwidth: Bandwidth,
}

/// Cost of one transaction as charged to the issuing agent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AccessCost {
    /// Latency until the transaction completes, as seen by one thread of
    /// execution. Agents with memory-level parallelism may overlap many of
    /// these.
    pub latency: Picos,
    /// Occupancy of the issuing agent's LLC data array.
    pub llc_occupancy: Picos,
    /// Occupancy of the DRAM channel.
    pub dram_occupancy: Picos,
    /// Bytes that moved on the DRAM channel.
    pub dram_bytes: u64,
}

impl AccessCost {
    /// Element-wise accumulation.
    pub fn accumulate(&mut self, other: AccessCost) {
        self.latency += other.latency;
        self.llc_occupancy += other.llc_occupancy;
        self.dram_occupancy += other.dram_occupancy;
        self.dram_bytes += other.dram_bytes;
    }
}

/// Cost of a cache flush or invalidate operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FlushCost {
    /// Wall time of the maintenance operation.
    pub time: Picos,
    /// Dirty lines written back to DRAM.
    pub lines_written: u64,
}

/// Geometries for the four caches of the SoC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheLayout {
    /// CPU L1 data cache geometry.
    pub cpu_l1: CacheGeometry,
    /// CPU last-level cache geometry.
    pub cpu_llc: CacheGeometry,
    /// GPU L1 cache geometry.
    pub gpu_l1: CacheGeometry,
    /// GPU last-level cache geometry.
    pub gpu_llc: CacheGeometry,
}

/// The complete memory system: four caches, shared DRAM, and the pinned
/// (zero-copy) access rules.
#[derive(Debug, Clone)]
pub struct MemorySystem {
    cpu_l1: Cache,
    cpu_llc: Cache,
    gpu_l1: Cache,
    gpu_llc: Cache,
    dram: Dram,
    latencies: HierarchyLatencies,
    zc_rules: ZcRules,
    /// Per-line CPU overhead of walking the cache during flush operations.
    flush_line_overhead: Picos,
    /// Extra latency a CPU LLC-miss fill pays on the [`MemSpace::Upm`]
    /// path (expected TLB walk + remote-node hop for the current
    /// working set).
    upm_fill_extra_cpu: Picos,
    /// Same, for GPU fills.
    upm_fill_extra_gpu: Picos,
}

impl MemorySystem {
    /// Builds the memory system from its component configurations.
    pub fn new(
        layout: CacheLayout,
        dram: DramConfig,
        latencies: HierarchyLatencies,
        zc_rules: ZcRules,
        flush_line_overhead: Picos,
    ) -> Self {
        MemorySystem {
            cpu_l1: Cache::new(layout.cpu_l1),
            cpu_llc: Cache::new(layout.cpu_llc),
            gpu_l1: Cache::new(layout.gpu_l1),
            gpu_llc: Cache::new(layout.gpu_llc),
            dram: Dram::new(dram),
            latencies,
            zc_rules,
            flush_line_overhead,
            upm_fill_extra_cpu: Picos::ZERO,
            upm_fill_extra_gpu: Picos::ZERO,
        }
    }

    /// Configures the per-fill extra charged on [`MemSpace::Upm`]
    /// accesses that miss the LLC. The SoC layer derives the values from
    /// the device's memory topology and the workload's shared footprint;
    /// both default to zero (a flat topology within TLB reach).
    pub fn set_upm_fill_extra(&mut self, cpu: Picos, gpu: Picos) {
        self.upm_fill_extra_cpu = cpu;
        self.upm_fill_extra_gpu = gpu;
    }

    /// The configured per-fill UPM extras `(cpu, gpu)`.
    pub fn upm_fill_extra(&self) -> (Picos, Picos) {
        (self.upm_fill_extra_cpu, self.upm_fill_extra_gpu)
    }

    /// The zero-copy rules in force.
    pub fn zc_rules(&self) -> ZcRules {
        self.zc_rules
    }

    /// Overrides the zero-copy rules (used by ablation studies).
    pub fn set_zc_rules(&mut self, rules: ZcRules) {
        self.zc_rules = rules;
    }

    /// The hierarchy latency/bandwidth parameters.
    pub fn latencies(&self) -> HierarchyLatencies {
        self.latencies
    }

    /// Immutable view of a cache by agent/level (`level 1` = L1, otherwise
    /// LLC).
    pub fn cache(&self, agent: Agent, level: u8) -> &Cache {
        match (agent, level) {
            (Agent::Cpu, 1) => &self.cpu_l1,
            (Agent::Cpu, _) => &self.cpu_llc,
            (Agent::Gpu, 1) => &self.gpu_l1,
            (Agent::Gpu, _) => &self.gpu_llc,
            (Agent::CopyEngine, _) => &self.cpu_llc, // DMA snoops the CPU LLC
        }
    }

    /// The DRAM controller.
    pub fn dram(&self) -> &Dram {
        &self.dram
    }

    /// Mutable access to the DRAM controller (copy engine streaming).
    pub fn dram_mut(&mut self) -> &mut Dram {
        &mut self.dram
    }

    fn llc_occ(&self, agent: Agent, bytes: u64) -> Picos {
        let bw = match agent {
            Agent::Cpu | Agent::CopyEngine => self.latencies.cpu_llc_bandwidth,
            Agent::Gpu => self.latencies.gpu_llc_bandwidth,
        };
        bw.transfer_time(ByteSize(bytes))
    }

    /// Issues one transaction of `bytes` at `addr` from `agent` against
    /// `space`, updating cache state and counters, and returns its cost.
    ///
    /// Transactions that span cache lines are split internally.
    pub fn access(
        &mut self,
        agent: Agent,
        space: MemSpace,
        addr: u64,
        kind: AccessKind,
        bytes: u32,
    ) -> AccessCost {
        match (agent, space) {
            (Agent::Cpu, MemSpace::Cached) => {
                self.cached_access(Agent::Cpu, addr, kind, bytes, Picos::ZERO)
            }
            (Agent::Gpu, MemSpace::Cached) => {
                self.cached_access(Agent::Gpu, addr, kind, bytes, Picos::ZERO)
            }
            // Hardware-coherent unified allocations are fully cacheable
            // by both agents; the topology-derived per-fill extra covers
            // TLB walks and remote-node hops.
            (Agent::Cpu, MemSpace::Upm) => {
                self.cached_access(Agent::Cpu, addr, kind, bytes, self.upm_fill_extra_cpu)
            }
            (Agent::Gpu, MemSpace::Upm) => {
                self.cached_access(Agent::Gpu, addr, kind, bytes, self.upm_fill_extra_gpu)
            }
            (Agent::Cpu, MemSpace::Pinned) => {
                if self.zc_rules.cpu_caches_pinned {
                    self.cached_access(Agent::Cpu, addr, kind, bytes, Picos::ZERO)
                } else {
                    self.uncached_access(addr, kind, bytes, self.latencies.uncached_cpu_extra)
                }
            }
            (Agent::Gpu, MemSpace::Pinned) => {
                if self.zc_rules.io_coherent {
                    self.snooped_access(addr, kind, bytes)
                } else {
                    self.uncached_access(addr, kind, bytes, self.latencies.uncached_gpu_extra)
                }
            }
            (Agent::CopyEngine, _) => {
                // The copy engine streams straight through DRAM.
                let cost = match kind {
                    AccessKind::Read => self.dram.read(ByteSize(bytes as u64)),
                    AccessKind::Write => self.dram.write(ByteSize(bytes as u64)),
                };
                AccessCost {
                    latency: cost.latency,
                    llc_occupancy: Picos::ZERO,
                    dram_occupancy: cost.occupancy,
                    dram_bytes: bytes as u64,
                }
            }
        }
    }

    fn cached_access(
        &mut self,
        agent: Agent,
        addr: u64,
        kind: AccessKind,
        bytes: u32,
        fill_extra: Picos,
    ) -> AccessCost {
        let (l1_hit, llc_hit) = match agent {
            Agent::Cpu => (self.latencies.cpu_l1_hit, self.latencies.cpu_llc_hit),
            Agent::Gpu => (self.latencies.gpu_l1_hit, self.latencies.gpu_llc_hit),
            Agent::CopyEngine => (self.latencies.cpu_llc_hit, self.latencies.cpu_llc_hit),
        };
        let line_bytes = self.cache(agent, 1).geometry().line_bytes as u64;
        let mut total = AccessCost::default();
        let start = addr;
        let end = addr as u128 + bytes as u128;
        let mut line_addr = start & !(line_bytes - 1);
        while (line_addr as u128) < end {
            let cost = self.cached_line_access(
                agent, line_addr, kind, l1_hit, llc_hit, line_bytes, fill_extra,
            );
            total.accumulate(cost);
            line_addr += line_bytes;
        }
        total
    }

    #[allow(clippy::too_many_arguments)]
    fn cached_line_access(
        &mut self,
        agent: Agent,
        line_addr: u64,
        kind: AccessKind,
        l1_hit: Picos,
        llc_hit: Picos,
        line_bytes: u64,
        fill_extra: Picos,
    ) -> AccessCost {
        let llc_occ_line = self.llc_occ(agent, line_bytes);
        let (l1, llc) = match agent {
            Agent::Gpu => (&mut self.gpu_l1, &mut self.gpu_llc),
            _ => (&mut self.cpu_l1, &mut self.cpu_llc),
        };
        let mut cost = AccessCost {
            latency: l1_hit,
            ..AccessCost::default()
        };
        let l1_out = l1.access(line_addr, kind);
        let l1_missed = match l1_out {
            CacheOutcome::Hit => false,
            CacheOutcome::Miss { victim_writeback } => {
                if victim_writeback {
                    // Dirty L1 victims land in the LLC; model the array
                    // occupancy but keep it off the DRAM channel.
                    cost.llc_occupancy += llc_occ_line;
                }
                true
            }
            CacheOutcome::Bypass => true,
        };
        if !l1_missed {
            return cost;
        }

        // L1 missed (or is disabled): consult the LLC.
        cost.latency = llc_hit;
        cost.llc_occupancy += llc_occ_line;
        let llc_out = llc.access(line_addr, kind);
        let llc_missed = match llc_out {
            CacheOutcome::Hit => false,
            CacheOutcome::Miss { victim_writeback } => {
                if victim_writeback {
                    let wb = self.dram.write(ByteSize(line_bytes));
                    // Writebacks are posted; they consume channel occupancy
                    // but do not stall the agent.
                    cost.dram_occupancy += wb.occupancy;
                    cost.dram_bytes += line_bytes;
                }
                true
            }
            CacheOutcome::Bypass => true,
        };
        if llc_missed {
            let fill = self.dram.read(ByteSize(line_bytes));
            cost.latency = llc_hit + fill.latency + fill_extra;
            cost.dram_occupancy += fill.occupancy;
            cost.dram_bytes += line_bytes;
        }
        cost
    }

    fn uncached_access(
        &mut self,
        addr: u64,
        kind: AccessKind,
        bytes: u32,
        extra: Picos,
    ) -> AccessCost {
        let _ = addr; // uncached accesses carry no cache state
        let dram_cost = match kind {
            AccessKind::Read => self.dram.read(ByteSize(bytes as u64)),
            AccessKind::Write => self.dram.write(ByteSize(bytes as u64)),
        };
        AccessCost {
            latency: dram_cost.latency + extra,
            llc_occupancy: Picos::ZERO,
            dram_occupancy: dram_cost.occupancy,
            dram_bytes: bytes as u64,
        }
    }

    /// GPU access to pinned memory on an I/O-coherent device: the request
    /// snoops the CPU LLC. Reads that hit are served from cache; writes
    /// update the LLC line (keeping it coherent) without DRAM traffic;
    /// misses fall through to DRAM with a coherence-lookup penalty.
    fn snooped_access(&mut self, addr: u64, kind: AccessKind, bytes: u32) -> AccessCost {
        let line_bytes = self.cpu_llc.geometry().line_bytes as u64;
        let mut total = AccessCost::default();
        let end = addr as u128 + bytes as u128;
        let mut line_addr = addr & !(line_bytes - 1);
        while (line_addr as u128) < end {
            let piece = if self.cpu_llc.probe(line_addr) {
                // Served by (or merged into) the CPU LLC.
                let _ = self.cpu_llc.access(line_addr, kind);
                AccessCost {
                    latency: self.latencies.snoop_hit,
                    llc_occupancy: self
                        .latencies
                        .cpu_llc_bandwidth
                        .transfer_time(ByteSize(line_bytes)),
                    dram_occupancy: Picos::ZERO,
                    dram_bytes: 0,
                }
            } else {
                let dram_cost = match kind {
                    AccessKind::Read => self.dram.read(ByteSize(line_bytes)),
                    AccessKind::Write => self.dram.write(ByteSize(line_bytes)),
                };
                AccessCost {
                    latency: dram_cost.latency + self.latencies.snoop_miss_extra,
                    llc_occupancy: Picos::ZERO,
                    dram_occupancy: dram_cost.occupancy,
                    dram_bytes: line_bytes,
                }
            };
            total.accumulate(piece);
            line_addr += line_bytes;
        }
        total
    }

    fn flush_cache_pair(&mut self, agent: Agent, invalidate: bool) -> FlushCost {
        let (l1, llc) = match agent {
            Agent::Gpu => (&mut self.gpu_l1, &mut self.gpu_llc),
            _ => (&mut self.cpu_l1, &mut self.cpu_llc),
        };
        let line_bytes = llc.geometry().line_bytes as u64;
        let resident = l1.resident_lines() + llc.resident_lines();
        let written = if invalidate {
            l1.invalidate_all() + llc.invalidate_all()
        } else {
            l1.flush_dirty() + llc.flush_dirty()
        };
        let mut time = self.flush_line_overhead * resident.max(1);
        if written > 0 {
            time += self.dram.stream_time(ByteSize(written * line_bytes));
            // Account the writeback traffic.
            let _ = self.dram.write(ByteSize(written * line_bytes));
        }
        FlushCost {
            time,
            lines_written: written,
        }
    }

    /// Writes back all dirty CPU cache lines (standard-copy pre-kernel
    /// coherence step).
    pub fn flush_cpu_caches(&mut self) -> FlushCost {
        self.flush_cache_pair(Agent::Cpu, false)
    }

    /// Writes back and invalidates all GPU cache lines (standard-copy
    /// post-kernel coherence step).
    pub fn invalidate_gpu_caches(&mut self) -> FlushCost {
        self.flush_cache_pair(Agent::Gpu, true)
    }

    /// Writes back and invalidates all CPU cache lines.
    pub fn invalidate_cpu_caches(&mut self) -> FlushCost {
        self.flush_cache_pair(Agent::Cpu, true)
    }

    /// Invalidates only the GPU L1 (kernel-launch semantics: GPU L1s are
    /// not coherent and are flushed at every launch). Dirty lines are
    /// written back into the LLC, which costs nothing extra here because
    /// the L1 is write-through to the LLC in this model's accounting.
    pub fn invalidate_gpu_l1(&mut self) {
        let _ = self.gpu_l1.invalidate_all();
    }

    /// Resets every statistics counter in the hierarchy.
    pub fn reset_stats(&mut self) {
        self.cpu_l1.reset_stats();
        self.cpu_llc.reset_stats();
        self.gpu_l1.reset_stats();
        self.gpu_llc.reset_stats();
        self.dram.reset_stats();
    }

    /// Drops all cached state (cold caches), without touching counters.
    pub fn cold_caches(&mut self) {
        self.cpu_l1.invalidate_all();
        self.cpu_llc.invalidate_all();
        self.gpu_l1.invalidate_all();
        self.gpu_llc.invalidate_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::Bandwidth;

    fn latencies() -> HierarchyLatencies {
        HierarchyLatencies {
            cpu_l1_hit: Picos::from_nanos(1),
            cpu_llc_hit: Picos::from_nanos(10),
            gpu_l1_hit: Picos::from_nanos(2),
            gpu_llc_hit: Picos::from_nanos(20),
            snoop_hit: Picos::from_nanos(50),
            snoop_miss_extra: Picos::from_nanos(30),
            uncached_cpu_extra: Picos::from_nanos(100),
            uncached_gpu_extra: Picos::from_nanos(150),
            cpu_llc_bandwidth: Bandwidth::gib_per_sec(100),
            gpu_llc_bandwidth: Bandwidth::gib_per_sec(100),
        }
    }

    fn system(rules: ZcRules) -> MemorySystem {
        let layout = CacheLayout {
            cpu_l1: CacheGeometry::new(ByteSize::kib(4), 64, 2),
            cpu_llc: CacheGeometry::new(ByteSize::kib(64), 64, 8),
            gpu_l1: CacheGeometry::new(ByteSize::kib(4), 64, 2),
            gpu_llc: CacheGeometry::new(ByteSize::kib(64), 64, 8),
        };
        MemorySystem::new(
            layout,
            DramConfig::new(Bandwidth::gib_per_sec(25), Picos::from_nanos(100)),
            latencies(),
            rules,
            Picos::from_nanos(1),
        )
    }

    const NO_ZC_CACHE: ZcRules = ZcRules {
        cpu_caches_pinned: false,
        io_coherent: false,
    };
    const IO_COHERENT: ZcRules = ZcRules {
        cpu_caches_pinned: true,
        io_coherent: true,
    };

    #[test]
    fn cpu_cached_miss_then_hit() {
        let mut m = system(NO_ZC_CACHE);
        let miss = m.access(Agent::Cpu, MemSpace::Cached, 0x1000, AccessKind::Read, 4);
        assert!(miss.latency > Picos::from_nanos(100));
        assert_eq!(miss.dram_bytes, 64);
        let hit = m.access(Agent::Cpu, MemSpace::Cached, 0x1000, AccessKind::Read, 4);
        assert_eq!(hit.latency, Picos::from_nanos(1));
        assert_eq!(hit.dram_bytes, 0);
    }

    #[test]
    fn multi_line_transaction_splits() {
        let mut m = system(NO_ZC_CACHE);
        // 128 bytes from a 64 B line boundary touches two lines.
        let cost = m.access(Agent::Gpu, MemSpace::Cached, 0x0, AccessKind::Read, 128);
        assert_eq!(cost.dram_bytes, 128);
        assert_eq!(m.cache(Agent::Gpu, 1).stats().misses, 2);
    }

    #[test]
    fn unaligned_transaction_touches_extra_line() {
        let mut m = system(NO_ZC_CACHE);
        // 64 bytes starting at offset 32 spans two lines.
        let cost = m.access(Agent::Cpu, MemSpace::Cached, 32, AccessKind::Read, 64);
        assert_eq!(cost.dram_bytes, 128);
    }

    #[test]
    fn pinned_cpu_bypasses_when_rules_say_so() {
        let mut m = system(NO_ZC_CACHE);
        let c1 = m.access(Agent::Cpu, MemSpace::Pinned, 0x0, AccessKind::Read, 4);
        let c2 = m.access(Agent::Cpu, MemSpace::Pinned, 0x0, AccessKind::Read, 4);
        // No caching: the second access is as expensive as the first.
        assert_eq!(c1.latency, c2.latency);
        assert!(c1.latency >= Picos::from_nanos(200)); // dram + uncached extra
        assert_eq!(m.cache(Agent::Cpu, 1).stats().accesses(), 0);
    }

    #[test]
    fn pinned_cpu_cached_on_io_coherent_device() {
        let mut m = system(IO_COHERENT);
        let c1 = m.access(Agent::Cpu, MemSpace::Pinned, 0x0, AccessKind::Read, 4);
        let c2 = m.access(Agent::Cpu, MemSpace::Pinned, 0x0, AccessKind::Read, 4);
        assert!(c2.latency < c1.latency);
        assert_eq!(c2.latency, Picos::from_nanos(1)); // L1 hit
    }

    #[test]
    fn pinned_gpu_never_fills_gpu_caches() {
        let mut m = system(IO_COHERENT);
        m.access(Agent::Gpu, MemSpace::Pinned, 0x0, AccessKind::Read, 64);
        assert_eq!(m.cache(Agent::Gpu, 1).stats().accesses(), 0);
        assert_eq!(m.cache(Agent::Gpu, 2).stats().accesses(), 0);
    }

    #[test]
    fn io_coherent_gpu_read_hits_cpu_llc() {
        let mut m = system(IO_COHERENT);
        // CPU warms the line (pinned but CPU-cached on Xavier-class rules).
        m.access(Agent::Cpu, MemSpace::Pinned, 0x40, AccessKind::Write, 4);
        let snooped = m.access(Agent::Gpu, MemSpace::Pinned, 0x40, AccessKind::Read, 4);
        assert_eq!(snooped.latency, Picos::from_nanos(50));
        assert_eq!(snooped.dram_bytes, 0);
    }

    #[test]
    fn io_coherent_gpu_miss_pays_snoop_penalty() {
        let mut m = system(IO_COHERENT);
        let c = m.access(Agent::Gpu, MemSpace::Pinned, 0x5000, AccessKind::Read, 4);
        // dram latency (100ns) + line occupancy + snoop extra (30ns)
        assert!(c.latency >= Picos::from_nanos(130));
        assert_eq!(c.dram_bytes, 64);
    }

    #[test]
    fn non_coherent_gpu_pinned_pays_uncached_extra() {
        let mut m = system(NO_ZC_CACHE);
        let c = m.access(Agent::Gpu, MemSpace::Pinned, 0x0, AccessKind::Read, 64);
        assert!(c.latency >= Picos::from_nanos(250));
    }

    #[test]
    fn copy_engine_streams_through_dram() {
        let mut m = system(NO_ZC_CACHE);
        let c = m.access(
            Agent::CopyEngine,
            MemSpace::Cached,
            0x0,
            AccessKind::Read,
            1024,
        );
        assert_eq!(c.dram_bytes, 1024);
        assert_eq!(c.llc_occupancy, Picos::ZERO);
    }

    #[test]
    fn flush_cpu_writes_back_dirty_lines() {
        let mut m = system(NO_ZC_CACHE);
        m.access(Agent::Cpu, MemSpace::Cached, 0x0, AccessKind::Write, 4);
        m.access(Agent::Cpu, MemSpace::Cached, 0x40, AccessKind::Write, 4);
        let wrote_before = m.dram().stats().bytes_written;
        let flush = m.flush_cpu_caches();
        assert!(flush.lines_written >= 2);
        assert!(flush.time > Picos::ZERO);
        assert!(m.dram().stats().bytes_written > wrote_before);
        // Lines remain resident after a flush (write-back, not invalidate).
        let hit = m.access(Agent::Cpu, MemSpace::Cached, 0x0, AccessKind::Read, 4);
        assert_eq!(hit.latency, Picos::from_nanos(1));
    }

    #[test]
    fn invalidate_gpu_empties_caches() {
        let mut m = system(NO_ZC_CACHE);
        m.access(Agent::Gpu, MemSpace::Cached, 0x0, AccessKind::Write, 4);
        let inv = m.invalidate_gpu_caches();
        assert!(inv.lines_written >= 1);
        let miss = m.access(Agent::Gpu, MemSpace::Cached, 0x0, AccessKind::Read, 4);
        assert!(miss.dram_bytes > 0);
    }

    #[test]
    fn dirty_llc_eviction_writes_back_to_dram() {
        let mut m = system(NO_ZC_CACHE);
        // Dirty far more lines than the 64 KiB LLC holds.
        for i in 0..4096u64 {
            m.access(Agent::Cpu, MemSpace::Cached, i * 64, AccessKind::Write, 4);
        }
        assert!(m.dram().stats().bytes_written > 0);
    }

    #[test]
    fn upm_without_extras_matches_cached() {
        let mut a = system(NO_ZC_CACHE);
        let mut b = system(NO_ZC_CACHE);
        let ca = a.access(Agent::Gpu, MemSpace::Cached, 0x2000, AccessKind::Read, 64);
        let cb = b.access(Agent::Gpu, MemSpace::Upm, 0x2000, AccessKind::Read, 64);
        assert_eq!(ca, cb);
    }

    #[test]
    fn upm_fill_extra_charged_only_on_llc_miss() {
        let mut m = system(NO_ZC_CACHE);
        m.set_upm_fill_extra(Picos::from_nanos(40), Picos::from_nanos(400));
        let mut plain = system(NO_ZC_CACHE);
        let miss = m.access(Agent::Gpu, MemSpace::Upm, 0x3000, AccessKind::Read, 4);
        let base = plain.access(Agent::Gpu, MemSpace::Cached, 0x3000, AccessKind::Read, 4);
        assert_eq!(miss.latency, base.latency + Picos::from_nanos(400));
        // A hit on the now-resident line pays no extra at all.
        let hit = m.access(Agent::Gpu, MemSpace::Upm, 0x3000, AccessKind::Read, 4);
        assert_eq!(hit.latency, Picos::from_nanos(2));
        // The CPU pays its own (smaller) extra.
        let cpu = m.access(Agent::Cpu, MemSpace::Upm, 0x9000, AccessKind::Read, 4);
        let cpu_base = plain.access(Agent::Cpu, MemSpace::Cached, 0x9000, AccessKind::Read, 4);
        assert_eq!(cpu.latency, cpu_base.latency + Picos::from_nanos(40));
    }

    #[test]
    fn zc_rules_can_be_overridden() {
        let mut m = system(IO_COHERENT);
        m.set_zc_rules(NO_ZC_CACHE);
        assert_eq!(m.zc_rules(), NO_ZC_CACHE);
        let c = m.access(Agent::Cpu, MemSpace::Pinned, 0x0, AccessKind::Read, 4);
        assert!(c.latency >= Picos::from_nanos(200));
    }
}
