//! Hardware performance counters exposed by the simulated SoC.
//!
//! The profiler crate reads these counters the way `nvprof`/`perf` read the
//! PMU of a real Jetson board: snapshot before a run, snapshot after, and
//! subtract. All counter types therefore implement a cheap [`Clone`] and a
//! `delta` operation.

use serde::{Deserialize, Serialize};

use crate::units::{ByteSize, Energy, Picos};

/// Counters of a single cache level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Accesses that found their line resident.
    pub hits: u64,
    /// Accesses that missed and caused a fill.
    pub misses: u64,
    /// Lines filled from the next level.
    pub fills: u64,
    /// Dirty lines written to the next level (evictions and flushes).
    pub writebacks: u64,
    /// Accesses that bypassed the cache because it was disabled.
    pub bypasses: u64,
    /// Number of flush/invalidate operations performed.
    pub flushes: u64,
}

impl CacheStats {
    /// Total accesses presented while the cache was enabled.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit rate in `[0, 1]`; zero when no accesses were made.
    pub fn hit_rate(&self) -> f64 {
        let total = self.accesses();
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Miss rate in `[0, 1]`; zero when no accesses were made.
    pub fn miss_rate(&self) -> f64 {
        let total = self.accesses();
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }

    /// Counter difference `self - earlier` (element-wise, saturating).
    pub fn delta(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            fills: self.fills.saturating_sub(earlier.fills),
            writebacks: self.writebacks.saturating_sub(earlier.writebacks),
            bypasses: self.bypasses.saturating_sub(earlier.bypasses),
            flushes: self.flushes.saturating_sub(earlier.flushes),
        }
    }
}

/// Counters of the DRAM controller.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramStats {
    /// Bytes read from DRAM.
    pub bytes_read: u64,
    /// Bytes written to DRAM.
    pub bytes_written: u64,
    /// Individual DRAM transactions serviced.
    pub transactions: u64,
    /// Total time the controller was busy moving data.
    pub busy_time: Picos,
}

impl DramStats {
    /// Total bytes moved in either direction.
    pub fn bytes_total(&self) -> ByteSize {
        ByteSize(self.bytes_read + self.bytes_written)
    }

    /// Counter difference `self - earlier`.
    pub fn delta(&self, earlier: &DramStats) -> DramStats {
        DramStats {
            bytes_read: self.bytes_read.saturating_sub(earlier.bytes_read),
            bytes_written: self.bytes_written.saturating_sub(earlier.bytes_written),
            transactions: self.transactions.saturating_sub(earlier.transactions),
            busy_time: self.busy_time.saturating_sub(earlier.busy_time),
        }
    }
}

/// Counters of one processing agent (CPU cluster or GPU).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AgentStats {
    /// Time spent executing work.
    pub busy_time: Picos,
    /// Compute operations retired (FLOPs for the CPU, instructions for GPU).
    pub ops_retired: u64,
    /// Memory transactions issued to the hierarchy.
    pub mem_transactions: u64,
    /// Bytes requested by those transactions.
    pub mem_bytes: u64,
}

impl AgentStats {
    /// Counter difference `self - earlier`.
    pub fn delta(&self, earlier: &AgentStats) -> AgentStats {
        AgentStats {
            busy_time: self.busy_time.saturating_sub(earlier.busy_time),
            ops_retired: self.ops_retired.saturating_sub(earlier.ops_retired),
            mem_transactions: self
                .mem_transactions
                .saturating_sub(earlier.mem_transactions),
            mem_bytes: self.mem_bytes.saturating_sub(earlier.mem_bytes),
        }
    }
}

/// Full counter snapshot of the SoC, as read by the profiler.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SocSnapshot {
    /// CPU-side L1 data cache.
    pub cpu_l1: CacheStats,
    /// CPU-side last-level cache.
    pub cpu_llc: CacheStats,
    /// GPU-side L1 cache.
    pub gpu_l1: CacheStats,
    /// GPU-side last-level cache.
    pub gpu_llc: CacheStats,
    /// DRAM controller.
    pub dram: DramStats,
    /// CPU cluster activity.
    pub cpu: AgentStats,
    /// GPU activity.
    pub gpu: AgentStats,
    /// Copy-engine (DMA) activity.
    pub copy_engine: AgentStats,
    /// Energy consumed so far.
    pub energy: Energy,
}

impl SocSnapshot {
    /// Counter difference `self - earlier`; the standard way to attribute
    /// counters to a region of interest.
    pub fn delta(&self, earlier: &SocSnapshot) -> SocSnapshot {
        SocSnapshot {
            cpu_l1: self.cpu_l1.delta(&earlier.cpu_l1),
            cpu_llc: self.cpu_llc.delta(&earlier.cpu_llc),
            gpu_l1: self.gpu_l1.delta(&earlier.gpu_l1),
            gpu_llc: self.gpu_llc.delta(&earlier.gpu_llc),
            dram: self.dram.delta(&earlier.dram),
            cpu: self.cpu.delta(&earlier.cpu),
            gpu: self.gpu.delta(&earlier.gpu),
            copy_engine: self.copy_engine.delta(&earlier.copy_engine),
            energy: self.energy.saturating_sub(earlier.energy),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_rates() {
        let s = CacheStats {
            hits: 30,
            misses: 10,
            ..Default::default()
        };
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
        assert!((s.miss_rate() - 0.25).abs() < 1e-12);
        assert_eq!(s.accesses(), 40);
    }

    #[test]
    fn empty_cache_rates_are_zero() {
        let s = CacheStats::default();
        assert_eq!(s.hit_rate(), 0.0);
        assert_eq!(s.miss_rate(), 0.0);
    }

    #[test]
    fn cache_delta_subtracts() {
        let early = CacheStats {
            hits: 5,
            misses: 2,
            fills: 2,
            writebacks: 1,
            bypasses: 0,
            flushes: 0,
        };
        let late = CacheStats {
            hits: 15,
            misses: 8,
            fills: 8,
            writebacks: 3,
            bypasses: 4,
            flushes: 1,
        };
        let d = late.delta(&early);
        assert_eq!(d.hits, 10);
        assert_eq!(d.misses, 6);
        assert_eq!(d.writebacks, 2);
        assert_eq!(d.bypasses, 4);
        assert_eq!(d.flushes, 1);
    }

    #[test]
    fn dram_totals() {
        let s = DramStats {
            bytes_read: 100,
            bytes_written: 50,
            transactions: 3,
            busy_time: Picos(10),
        };
        assert_eq!(s.bytes_total(), ByteSize(150));
    }

    #[test]
    fn snapshot_delta_is_elementwise() {
        let mut a = SocSnapshot::default();
        a.cpu.ops_retired = 10;
        a.energy = Energy(100);
        let mut b = a;
        b.cpu.ops_retired = 25;
        b.energy = Energy(180);
        let d = b.delta(&a);
        assert_eq!(d.cpu.ops_retired, 15);
        assert_eq!(d.energy, Energy(80));
    }
}
