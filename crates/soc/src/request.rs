//! The unit of memory traffic exchanged between execution models and the
//! memory hierarchy.

use serde::{Deserialize, Serialize};

use crate::cache::AccessKind;
use crate::hierarchy::MemSpace;

/// One memory transaction as issued by an agent (already coalesced for the
/// GPU: one request per warp-level transaction, not per thread).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MemRequest {
    /// Byte address of the transaction.
    pub addr: u64,
    /// Transaction size in bytes.
    pub bytes: u32,
    /// Read or write.
    pub kind: AccessKind,
    /// Which allocation class the address belongs to.
    pub space: MemSpace,
}

impl MemRequest {
    /// Creates a read request.
    pub fn read(addr: u64, bytes: u32, space: MemSpace) -> Self {
        MemRequest {
            addr,
            bytes,
            kind: AccessKind::Read,
            space,
        }
    }

    /// Creates a write request.
    pub fn write(addr: u64, bytes: u32, space: MemSpace) -> Self {
        MemRequest {
            addr,
            bytes,
            kind: AccessKind::Write,
            space,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_kind() {
        let r = MemRequest::read(0x10, 64, MemSpace::Cached);
        assert_eq!(r.kind, AccessKind::Read);
        let w = MemRequest::write(0x10, 4, MemSpace::Pinned);
        assert_eq!(w.kind, AccessKind::Write);
        assert_eq!(w.space, MemSpace::Pinned);
    }
}
