//! DMA copy-engine model.
//!
//! Standard-copy transfers on a shared-memory SoC are memory-to-memory DMA:
//! every copied byte is read from and written back to the same DRAM, so the
//! effective copy bandwidth is bounded by *half* the DRAM peak (and by the
//! engine's own limit). A fixed setup cost models the `cudaMemcpy` driver
//! overhead, which dominates small transfers on Jetson-class devices.

use serde::{Deserialize, Serialize};

use crate::hierarchy::MemorySystem;
use crate::units::{Bandwidth, ByteSize, Picos};

/// Static configuration of the copy engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CopyEngineConfig {
    /// The engine's own peak bandwidth (before the DRAM bound).
    pub bandwidth: Bandwidth,
    /// Per-invocation setup/driver overhead.
    pub setup: Picos,
}

impl Default for CopyEngineConfig {
    fn default() -> Self {
        CopyEngineConfig {
            bandwidth: Bandwidth::gib_per_sec(50),
            setup: Picos::from_micros(8),
        }
    }
}

/// Outcome of one copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CopyResult {
    /// End-to-end copy time (setup + transfer).
    pub time: Picos,
    /// Bytes copied (payload, not counting the write-back pass).
    pub bytes: u64,
    /// DRAM channel occupancy generated (2x payload).
    pub dram_occupancy: Picos,
}

/// Performs a memory-to-memory copy of `bytes`, charging traffic to DRAM.
///
/// # Examples
///
/// ```
/// use icomm_soc::copy_engine::{run_copy, CopyEngineConfig};
/// use icomm_soc::device::DeviceProfile;
/// use icomm_soc::units::ByteSize;
///
/// let device = DeviceProfile::jetson_tx2();
/// let mut mem = device.build_memory_system();
/// let r = run_copy(&mut mem, &device.copy_engine, ByteSize::mib(1));
/// assert!(r.time > device.copy_engine.setup);
/// ```
pub fn run_copy(mem: &mut MemorySystem, config: &CopyEngineConfig, bytes: ByteSize) -> CopyResult {
    if bytes.as_u64() == 0 {
        return CopyResult {
            time: config.setup,
            bytes: 0,
            dram_occupancy: Picos::ZERO,
        };
    }
    let dram_peak = mem.dram().config().peak_bandwidth;
    let effective = Bandwidth(
        config
            .bandwidth
            .as_bytes_per_sec()
            .min(dram_peak.as_bytes_per_sec() / 2),
    );
    let transfer = effective.transfer_time(bytes);
    // Account the traffic: each payload byte is read once and written once.
    let read = mem.dram_mut().read(bytes);
    let write = mem.dram_mut().write(bytes);
    CopyResult {
        time: config.setup + transfer,
        bytes: bytes.as_u64(),
        dram_occupancy: read.occupancy + write.occupancy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceProfile;

    #[test]
    fn copy_time_bounded_by_half_dram_bandwidth() {
        let device = DeviceProfile::jetson_nano();
        let mut mem = device.build_memory_system();
        let payload = ByteSize::mib(64);
        let r = run_copy(&mut mem, &device.copy_engine, payload);
        let dram_bw = mem.dram().config().peak_bandwidth.as_bytes_per_sec() as f64;
        let transfer_secs = (r.time - device.copy_engine.setup).as_secs_f64();
        let seen = payload.as_u64() as f64 / transfer_secs;
        assert!(
            seen <= dram_bw / 2.0 * 1.001,
            "copy exceeded half-DRAM bound"
        );
    }

    #[test]
    fn copy_accounts_double_traffic() {
        let device = DeviceProfile::jetson_tx2();
        let mut mem = device.build_memory_system();
        run_copy(&mut mem, &device.copy_engine, ByteSize::mib(1));
        let stats = mem.dram().stats();
        assert_eq!(stats.bytes_read, ByteSize::mib(1).as_u64());
        assert_eq!(stats.bytes_written, ByteSize::mib(1).as_u64());
    }

    #[test]
    fn zero_byte_copy_costs_setup_only() {
        let device = DeviceProfile::jetson_tx2();
        let mut mem = device.build_memory_system();
        let r = run_copy(&mut mem, &device.copy_engine, ByteSize::ZERO);
        assert_eq!(r.time, device.copy_engine.setup);
        assert_eq!(mem.dram().stats().transactions, 0);
    }

    #[test]
    fn faster_device_copies_faster() {
        let nano = DeviceProfile::jetson_nano();
        let xavier = DeviceProfile::jetson_agx_xavier();
        let payload = ByteSize::mib(4);
        let mut m1 = nano.build_memory_system();
        let mut m2 = xavier.build_memory_system();
        let t1 = run_copy(&mut m1, &nano.copy_engine, payload).time;
        let t2 = run_copy(&mut m2, &xavier.copy_engine, payload).time;
        assert!(t2 < t1);
    }
}
