//! Set-associative cache model with true-LRU replacement.
//!
//! The cache is a *functional* model: it tracks which lines are resident and
//! dirty so that hit/miss counters, writeback traffic and flush costs are
//! exact for a given access stream. Timing is attributed by the memory
//! hierarchy (see [`crate::hierarchy`]), not by the cache itself.
//!
//! Two features exist specifically for the CPU-iGPU communication models:
//!
//! - [`Cache::flush_dirty`] / [`Cache::invalidate_all`] implement the
//!   flush-based coherence that the *standard copy* model performs around
//!   every kernel launch.
//! - [`Cache::set_enabled`] models devices that disable a cache for pinned
//!   *zero-copy* allocations (e.g. the GPU LLC on every Jetson, and the CPU
//!   LLC on Nano/TX2-class parts).

use serde::{Deserialize, Serialize};

use crate::stats::CacheStats;
use crate::units::ByteSize;

/// Geometry of a set-associative cache.
///
/// # Examples
///
/// ```
/// use icomm_soc::cache::CacheGeometry;
/// use icomm_soc::units::ByteSize;
///
/// let geo = CacheGeometry::new(ByteSize::kib(512), 64, 8);
/// assert_eq!(geo.num_sets(), 1024);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CacheGeometry {
    /// Total capacity in bytes.
    pub size: ByteSize,
    /// Line (block) size in bytes; must be a power of two.
    pub line_bytes: u32,
    /// Number of ways per set.
    pub associativity: u32,
}

impl CacheGeometry {
    /// Creates a new geometry.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero, if `line_bytes` is not a power of
    /// two, or if the capacity is not divisible into an integer number of
    /// sets.
    pub fn new(size: ByteSize, line_bytes: u32, associativity: u32) -> Self {
        assert!(size.as_u64() > 0, "cache size must be non-zero");
        assert!(
            line_bytes > 0 && line_bytes.is_power_of_two(),
            "line size must be a non-zero power of two"
        );
        assert!(associativity > 0, "associativity must be non-zero");
        let way_bytes = line_bytes as u64 * associativity as u64;
        assert!(
            size.as_u64().is_multiple_of(way_bytes),
            "capacity {} not divisible by line_bytes * associativity = {}",
            size.as_u64(),
            way_bytes
        );
        CacheGeometry {
            size,
            line_bytes,
            associativity,
        }
    }

    /// Number of sets implied by the geometry.
    pub fn num_sets(&self) -> u64 {
        self.size.as_u64() / (self.line_bytes as u64 * self.associativity as u64)
    }

    /// Total number of lines the cache can hold.
    pub fn num_lines(&self) -> u64 {
        self.size.as_u64() / self.line_bytes as u64
    }

    /// Maps an address to its line-aligned tag address.
    pub fn line_addr(&self, addr: u64) -> u64 {
        addr & !(self.line_bytes as u64 - 1)
    }
}

/// Whether an access reads or writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// A load.
    Read,
    /// A store.
    Write,
}

/// Result of presenting one access to a cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// The line was resident.
    Hit,
    /// The line was not resident; it has been filled. `victim_writeback`
    /// reports whether a dirty victim had to be written back to the next
    /// level.
    Miss {
        /// A dirty line was evicted and must be written downstream.
        victim_writeback: bool,
    },
    /// The cache is disabled; the access passes through untouched.
    Bypass,
}

impl CacheOutcome {
    /// Whether this outcome is a hit.
    pub fn is_hit(self) -> bool {
        matches!(self, CacheOutcome::Hit)
    }

    /// Whether this outcome is a miss.
    pub fn is_miss(self) -> bool {
        matches!(self, CacheOutcome::Miss { .. })
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Line {
    tag: u64,
    dirty: bool,
    /// Monotonic LRU stamp; larger = more recently used.
    stamp: u64,
}

/// A set-associative, write-back, write-allocate cache with true LRU.
///
/// # Examples
///
/// ```
/// use icomm_soc::cache::{AccessKind, Cache, CacheGeometry};
/// use icomm_soc::units::ByteSize;
///
/// let mut c = Cache::new(CacheGeometry::new(ByteSize::kib(32), 64, 4));
/// assert!(c.access(0x1000, AccessKind::Read).is_miss());
/// assert!(c.access(0x1000, AccessKind::Read).is_hit());
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    geometry: CacheGeometry,
    sets: Vec<Vec<Option<Line>>>,
    next_stamp: u64,
    enabled: bool,
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty, enabled cache with the given geometry.
    pub fn new(geometry: CacheGeometry) -> Self {
        let sets = vec![vec![None; geometry.associativity as usize]; geometry.num_sets() as usize];
        Cache {
            geometry,
            sets,
            next_stamp: 0,
            enabled: true,
            stats: CacheStats::default(),
        }
    }

    /// Returns the cache geometry.
    pub fn geometry(&self) -> CacheGeometry {
        self.geometry
    }

    /// Whether the cache currently services accesses.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Enables or disables the cache. A disabled cache answers every access
    /// with [`CacheOutcome::Bypass`] and retains its contents (real devices
    /// flush before disabling; callers model that cost explicitly via
    /// [`Cache::flush_dirty`]).
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Accumulated hit/miss/writeback counters.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Resets the statistics counters (contents are untouched).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    fn set_index(&self, line_addr: u64) -> usize {
        ((line_addr / self.geometry.line_bytes as u64) % self.geometry.num_sets()) as usize
    }

    /// Presents a single access (of any size up to a line) at `addr`.
    ///
    /// Accesses larger than one line must be split by the caller; the memory
    /// hierarchy does this when translating transactions.
    pub fn access(&mut self, addr: u64, kind: AccessKind) -> CacheOutcome {
        if !self.enabled {
            self.stats.bypasses += 1;
            return CacheOutcome::Bypass;
        }
        let line_addr = self.geometry.line_addr(addr);
        let set_idx = self.set_index(line_addr);
        self.next_stamp += 1;
        let stamp = self.next_stamp;
        let set = &mut self.sets[set_idx];

        // Hit path.
        if let Some(way) = set.iter_mut().flatten().find(|line| line.tag == line_addr) {
            way.stamp = stamp;
            if kind == AccessKind::Write {
                way.dirty = true;
            }
            self.stats.hits += 1;
            return CacheOutcome::Hit;
        }

        // Miss: fill, evicting LRU if needed (write-allocate for stores).
        self.stats.misses += 1;
        self.stats.fills += 1;
        let new_line = Line {
            tag: line_addr,
            dirty: kind == AccessKind::Write,
            stamp,
        };
        if let Some(slot) = set.iter_mut().find(|slot| slot.is_none()) {
            *slot = Some(new_line);
            return CacheOutcome::Miss {
                victim_writeback: false,
            };
        }
        let victim_idx = set
            .iter()
            .enumerate()
            .min_by_key(|(_, slot)| slot.as_ref().map(|l| l.stamp).unwrap_or(0))
            .map(|(i, _)| i)
            .expect("non-empty set");
        let victim = set[victim_idx].replace(new_line).expect("occupied way");
        let victim_writeback = victim.dirty;
        if victim_writeback {
            self.stats.writebacks += 1;
        }
        CacheOutcome::Miss { victim_writeback }
    }

    /// Returns whether the line containing `addr` is resident (no counter or
    /// LRU side effects). Useful for snoop modelling.
    pub fn probe(&self, addr: u64) -> bool {
        if !self.enabled {
            return false;
        }
        let line_addr = self.geometry.line_addr(addr);
        let set_idx = self.set_index(line_addr);
        self.sets[set_idx]
            .iter()
            .flatten()
            .any(|line| line.tag == line_addr)
    }

    /// Writes back every dirty line (marking it clean) and returns the
    /// number of lines written back. Lines stay resident. This is the
    /// pre-kernel `flush` of the standard-copy coherence protocol.
    pub fn flush_dirty(&mut self) -> u64 {
        let mut written = 0;
        for set in &mut self.sets {
            for line in set.iter_mut().flatten() {
                if line.dirty {
                    line.dirty = false;
                    written += 1;
                }
            }
        }
        self.stats.writebacks += written;
        self.stats.flushes += 1;
        written
    }

    /// Invalidates every line, writing back dirty ones first; returns the
    /// number of dirty lines written back. This is the post-kernel
    /// `flush + invalidate` of the standard-copy coherence protocol.
    pub fn invalidate_all(&mut self) -> u64 {
        let mut written = 0;
        for set in &mut self.sets {
            for slot in set.iter_mut() {
                if let Some(line) = slot.take() {
                    if line.dirty {
                        written += 1;
                    }
                }
            }
        }
        self.stats.writebacks += written;
        self.stats.flushes += 1;
        written
    }

    /// Number of currently resident lines.
    pub fn resident_lines(&self) -> u64 {
        self.sets
            .iter()
            .map(|set| set.iter().flatten().count() as u64)
            .sum()
    }

    /// Number of currently dirty lines.
    pub fn dirty_lines(&self) -> u64 {
        self.sets
            .iter()
            .map(|set| set.iter().flatten().filter(|l| l.dirty).count() as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache() -> Cache {
        // 4 sets x 2 ways x 64 B lines = 512 B.
        Cache::new(CacheGeometry::new(ByteSize(512), 64, 2))
    }

    #[test]
    fn geometry_derived_quantities() {
        let geo = CacheGeometry::new(ByteSize::kib(32), 64, 4);
        assert_eq!(geo.num_sets(), 128);
        assert_eq!(geo.num_lines(), 512);
        assert_eq!(geo.line_addr(0x12345), 0x12340);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn geometry_rejects_non_pow2_line() {
        let _ = CacheGeometry::new(ByteSize::kib(32), 48, 4);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn geometry_rejects_non_divisible_capacity() {
        let _ = CacheGeometry::new(ByteSize(1000), 64, 4);
    }

    #[test]
    fn read_miss_then_hit() {
        let mut c = small_cache();
        assert!(c.access(0x0, AccessKind::Read).is_miss());
        assert!(c.access(0x3f, AccessKind::Read).is_hit()); // same line
        assert!(c.access(0x40, AccessKind::Read).is_miss()); // next line
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = small_cache();
        // Set 0 holds lines whose (addr/64) % 4 == 0: 0x000, 0x400, 0x800...
        c.access(0x000, AccessKind::Read);
        c.access(0x100, AccessKind::Read); // set 0? 0x100/64=4, 4%4=0 -> set 0
                                           // Touch 0x000 so that 0x100 is LRU.
        c.access(0x000, AccessKind::Read);
        // Fill a third line in set 0: evicts 0x100.
        c.access(0x200, AccessKind::Read);
        assert!(c.probe(0x000));
        assert!(!c.probe(0x100));
        assert!(c.probe(0x200));
    }

    #[test]
    fn dirty_victim_triggers_writeback() {
        let mut c = small_cache();
        c.access(0x000, AccessKind::Write);
        c.access(0x100, AccessKind::Read);
        // Evict 0x000 (LRU, dirty) by filling two more lines in set 0.
        let out = c.access(0x200, AccessKind::Read);
        assert_eq!(
            out,
            CacheOutcome::Miss {
                victim_writeback: true
            }
        );
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn clean_victim_no_writeback() {
        let mut c = small_cache();
        c.access(0x000, AccessKind::Read);
        c.access(0x100, AccessKind::Read);
        let out = c.access(0x200, AccessKind::Read);
        assert_eq!(
            out,
            CacheOutcome::Miss {
                victim_writeback: false
            }
        );
        assert_eq!(c.stats().writebacks, 0);
    }

    #[test]
    fn disabled_cache_bypasses() {
        let mut c = small_cache();
        c.access(0x0, AccessKind::Read);
        c.set_enabled(false);
        assert_eq!(c.access(0x0, AccessKind::Read), CacheOutcome::Bypass);
        assert!(!c.probe(0x0));
        assert_eq!(c.stats().bypasses, 1);
        c.set_enabled(true);
        // Contents survive the disable window.
        assert!(c.access(0x0, AccessKind::Read).is_hit());
    }

    #[test]
    fn flush_dirty_writes_back_and_keeps_lines() {
        let mut c = small_cache();
        c.access(0x000, AccessKind::Write);
        c.access(0x040, AccessKind::Write);
        c.access(0x080, AccessKind::Read);
        assert_eq!(c.dirty_lines(), 2);
        assert_eq!(c.flush_dirty(), 2);
        assert_eq!(c.dirty_lines(), 0);
        assert_eq!(c.resident_lines(), 3);
        // Second flush has nothing to do.
        assert_eq!(c.flush_dirty(), 0);
    }

    #[test]
    fn invalidate_all_empties_cache() {
        let mut c = small_cache();
        c.access(0x000, AccessKind::Write);
        c.access(0x040, AccessKind::Read);
        assert_eq!(c.invalidate_all(), 1);
        assert_eq!(c.resident_lines(), 0);
        assert!(c.access(0x000, AccessKind::Read).is_miss());
    }

    #[test]
    fn write_allocates_dirty_line() {
        let mut c = small_cache();
        c.access(0x000, AccessKind::Write);
        assert_eq!(c.dirty_lines(), 1);
    }

    #[test]
    fn capacity_never_exceeded() {
        let mut c = small_cache();
        for i in 0..1000u64 {
            c.access(i * 64, AccessKind::Write);
        }
        assert!(c.resident_lines() <= c.geometry().num_lines());
    }

    #[test]
    fn reset_stats_clears_counters() {
        let mut c = small_cache();
        c.access(0x0, AccessKind::Read);
        c.reset_stats();
        assert_eq!(c.stats().hits + c.stats().misses, 0);
    }
}
