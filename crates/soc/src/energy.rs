//! First-order energy model.
//!
//! The paper's energy observation is structural: zero-copy eliminates the
//! DRAM traffic of explicit copies, so it saves the energy of moving those
//! bytes. The model therefore charges (a) a per-byte cost for every byte
//! that crosses the DRAM channel and (b) a busy-power cost per agent-second,
//! which is sufficient to reproduce the sign and rough magnitude of the
//! paper's joules-per-second comparisons.

use serde::{Deserialize, Serialize};

use crate::units::{Energy, Picos};

/// Energy coefficients of a device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Picojoules per byte crossing the DRAM channel.
    pub dram_pj_per_byte: u64,
    /// CPU cluster busy power in milliwatts.
    pub cpu_busy_mw: u64,
    /// GPU busy power in milliwatts.
    pub gpu_busy_mw: u64,
    /// Copy-engine busy power in milliwatts.
    pub copy_busy_mw: u64,
}

impl EnergyModel {
    /// Energy for `bytes` of DRAM traffic.
    pub fn dram_energy(&self, bytes: u64) -> Energy {
        // pJ -> nJ
        Energy((bytes as u128 * self.dram_pj_per_byte as u128 / 1_000) as u64)
    }

    /// Energy for an agent with `busy_mw` busy power running for `busy`.
    ///
    /// `1 mW * 1 ps = 1e-15 J = 1e-6 nJ`, so `nJ = mW * ps / 1e6`.
    pub fn busy_energy(&self, busy_mw: u64, busy: Picos) -> Energy {
        Energy((busy_mw as u128 * busy.as_picos() as u128 / 1_000_000) as u64)
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            dram_pj_per_byte: 60,
            cpu_busy_mw: 2_000,
            gpu_busy_mw: 4_000,
            copy_busy_mw: 800,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dram_energy_scales_with_bytes() {
        let m = EnergyModel::default();
        // 1 GB at 60 pJ/B = 0.06 J
        let e = m.dram_energy(1_000_000_000);
        assert!((e.as_joules() - 0.06).abs() < 1e-9);
    }

    #[test]
    fn busy_energy_matches_power_times_time() {
        let m = EnergyModel::default();
        // 2 W for 1 ms = 2 mJ
        let e = m.busy_energy(2_000, Picos::from_millis(1));
        assert!((e.as_joules() - 0.002).abs() < 1e-12);
    }

    #[test]
    fn zero_inputs_zero_energy() {
        let m = EnergyModel::default();
        assert_eq!(m.dram_energy(0), Energy::ZERO);
        assert_eq!(m.busy_energy(5_000, Picos::ZERO), Energy::ZERO);
    }
}
