//! Device profiles for Jetson-class embedded platforms.
//!
//! A [`DeviceProfile`] gathers every architectural parameter the simulator
//! needs. The three presets model the boards the paper evaluates:
//!
//! | Board | CPU | iGPU | DRAM | ZC behaviour |
//! |-------|-----|------|------|--------------|
//! | Jetson Nano | 4×A57 @1.43 GHz | 1 SM Maxwell @921 MHz | 25.6 GB/s | CPU+GPU caches bypassed on pinned |
//! | Jetson TX2 | 4×A57+2×Denver @2.0 GHz | 2 SM Pascal @1.3 GHz | 58.3 GB/s | CPU+GPU caches bypassed on pinned |
//! | Jetson AGX Xavier | 8×Carmel @2.26 GHz | 8 SM Volta @1.37 GHz | 137 GB/s | HW I/O coherence: GPU snoops CPU LLC |
//!
//! The latency/MLP parameters are calibrated so the micro-benchmarks land on
//! the paper's measured device characteristics (Table I): the zero-copy GPU
//! path is ~77× slower than the cached path on TX2 but only ~7× slower on
//! Xavier.

use icomm_mem::{Interconnect, MemTopology, NumaNode, PageSize, TlbConfig};
use serde::{Deserialize, Serialize};

use crate::cache::CacheGeometry;
use crate::copy_engine::CopyEngineConfig;
use crate::cpu::CpuConfig;
use crate::dram::DramConfig;
use crate::energy::EnergyModel;
use crate::gpu::GpuConfig;
use crate::hierarchy::{CacheLayout, HierarchyLatencies, MemorySystem, ZcRules};
use crate::units::{Bandwidth, ByteSize, Freq, Picos};

/// Unified-memory (managed allocation) parameters of a device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct UmConfig {
    /// Base page size of the managed allocator.
    pub page_bytes: u64,
    /// Bytes migrated per serviced fault group. The CUDA driver escalates
    /// migration granularity with speculative prefetching, which keeps the
    /// per-byte fault overhead roughly constant across transfer sizes (the
    /// paper measures UM within ±8 % of SC at every scale).
    pub migration_chunk_bytes: u64,
    /// Cost of servicing one fault group (driver + TLB shootdown),
    /// excluding the data transfer itself.
    pub fault_cost: Picos,
    /// Per-kernel driver bookkeeping overhead (range tracking, prefetch
    /// heuristics).
    pub kernel_overhead: Picos,
}

impl Default for UmConfig {
    fn default() -> Self {
        UmConfig {
            page_bytes: 4096,
            migration_chunk_bytes: 2 * 1024 * 1024,
            fault_cost: Picos::from_micros(4),
            kernel_overhead: Picos::from_micros(8),
        }
    }
}

/// Complete description of one embedded platform.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceProfile {
    /// Human-readable board name.
    pub name: String,
    /// CPU cluster parameters.
    pub cpu: CpuConfig,
    /// GPU parameters.
    pub gpu: GpuConfig,
    /// Cache geometries.
    pub layout: CacheLayout,
    /// DRAM controller parameters (the flat single-channel view derived
    /// from `topology`; kept as an explicit field so existing consumers
    /// and serialized profiles stay stable).
    pub dram: DramConfig,
    /// Memory topology: NUMA nodes, placement, page size, TLB model.
    /// Jetson-class presets use a flat single-node topology that
    /// reproduces `dram` exactly.
    pub topology: MemTopology,
    /// Hierarchy latencies and level bandwidths.
    pub latencies: HierarchyLatencies,
    /// Pinned (zero-copy) allocation rules.
    pub zc_rules: ZcRules,
    /// DMA copy engine.
    pub copy_engine: CopyEngineConfig,
    /// Unified-memory driver parameters.
    pub um: UmConfig,
    /// Per-line overhead of cache-maintenance walks.
    pub flush_line_overhead: Picos,
    /// Energy coefficients.
    pub energy: EnergyModel,
}

impl DeviceProfile {
    /// Instantiates the memory system described by this profile.
    pub fn build_memory_system(&self) -> MemorySystem {
        MemorySystem::new(
            self.layout,
            self.dram,
            self.latencies,
            self.zc_rules,
            self.flush_line_overhead,
        )
    }

    /// Whether the device implements hardware I/O coherence.
    pub fn is_io_coherent(&self) -> bool {
        self.zc_rules.io_coherent
    }

    /// NVIDIA Jetson Nano: entry-level Maxwell board; zero-copy disables
    /// both CPU and GPU caching of the pinned buffer.
    pub fn jetson_nano() -> Self {
        DeviceProfile {
            name: "Jetson Nano".to_string(),
            cpu: CpuConfig {
                freq: Freq::mhz(1430),
                cores: 4,
                cycles_int_alu: 1,
                cycles_fp_muladd: 1,
                cycles_fp_div: 12,
                cycles_fp_sqrt: 16,
                mlp: 8.0,
                uncached_wc_depth: 2.0,
            },
            gpu: GpuConfig {
                freq: Freq::mhz(921),
                sm_count: 1,
                issue_per_cycle: 128,
                mlp_cached: 96.0,
                mlp_pinned: 6.0,
                launch_overhead: Picos::from_micros(9),
            },
            layout: CacheLayout {
                cpu_l1: CacheGeometry::new(ByteSize::kib(32), 64, 2),
                cpu_llc: CacheGeometry::new(ByteSize::mib(2), 64, 16),
                gpu_l1: CacheGeometry::new(ByteSize::kib(32), 64, 4),
                gpu_llc: CacheGeometry::new(ByteSize::kib(256), 64, 16),
            },
            dram: DramConfig::new(
                Bandwidth::bytes_per_sec(25_600_000_000),
                Picos::from_nanos(130),
            ),
            topology: MemTopology::flat(
                Bandwidth::bytes_per_sec(25_600_000_000),
                Picos::from_nanos(130),
            ),
            latencies: HierarchyLatencies {
                cpu_l1_hit: Picos::from_nanos(3),
                cpu_llc_hit: Picos::from_nanos(21),
                gpu_l1_hit: Picos::from_nanos(28),
                gpu_llc_hit: Picos::from_nanos(95),
                snoop_hit: Picos::from_nanos(200),
                snoop_miss_extra: Picos::from_nanos(60),
                uncached_cpu_extra: Picos::from_nanos(190),
                uncached_gpu_extra: Picos::from_nanos(290),
                cpu_llc_bandwidth: Bandwidth::bytes_per_sec(25_000_000_000),
                gpu_llc_bandwidth: Bandwidth::bytes_per_sec(60_000_000_000),
            },
            zc_rules: ZcRules {
                cpu_caches_pinned: false,
                io_coherent: false,
            },
            copy_engine: CopyEngineConfig {
                bandwidth: Bandwidth::gib_per_sec(40),
                setup: Picos::from_micros(8),
            },
            um: UmConfig::default(),
            flush_line_overhead: Picos::from_nanos(2),
            energy: EnergyModel {
                dram_pj_per_byte: 70,
                cpu_busy_mw: 1_800,
                gpu_busy_mw: 3_000,
                copy_busy_mw: 700,
            },
        }
    }

    /// NVIDIA Jetson TX2: Pascal board; like the Nano, pinned zero-copy
    /// buffers bypass both CPU and GPU caches, making the ZC GPU path ~77×
    /// slower than the cached path.
    pub fn jetson_tx2() -> Self {
        DeviceProfile {
            name: "Jetson TX2".to_string(),
            cpu: CpuConfig {
                freq: Freq::ghz(2),
                cores: 6,
                cycles_int_alu: 1,
                cycles_fp_muladd: 1,
                cycles_fp_div: 10,
                cycles_fp_sqrt: 14,
                mlp: 10.0,
                uncached_wc_depth: 10.0,
            },
            gpu: GpuConfig {
                freq: Freq::mhz(1300),
                sm_count: 2,
                issue_per_cycle: 128,
                mlp_cached: 128.0,
                mlp_pinned: 8.0,
                launch_overhead: Picos::from_micros(7),
            },
            layout: CacheLayout {
                cpu_l1: CacheGeometry::new(ByteSize::kib(32), 64, 2),
                cpu_llc: CacheGeometry::new(ByteSize::mib(2), 64, 16),
                gpu_l1: CacheGeometry::new(ByteSize::kib(48), 64, 4),
                gpu_llc: CacheGeometry::new(ByteSize::kib(512), 64, 16),
            },
            dram: DramConfig::new(
                Bandwidth::bytes_per_sec(58_300_000_000),
                Picos::from_nanos(120),
            ),
            topology: MemTopology::flat(
                Bandwidth::bytes_per_sec(58_300_000_000),
                Picos::from_nanos(120),
            ),
            latencies: HierarchyLatencies {
                cpu_l1_hit: Picos::from_nanos(2),
                cpu_llc_hit: Picos::from_nanos(15),
                gpu_l1_hit: Picos::from_nanos(20),
                gpu_llc_hit: Picos::from_nanos(80),
                snoop_hit: Picos::from_nanos(180),
                snoop_miss_extra: Picos::from_nanos(50),
                uncached_cpu_extra: Picos::from_nanos(150),
                uncached_gpu_extra: Picos::from_nanos(280),
                cpu_llc_bandwidth: Bandwidth::bytes_per_sec(40_000_000_000),
                gpu_llc_bandwidth: Bandwidth::bytes_per_sec(100_000_000_000),
            },
            zc_rules: ZcRules {
                cpu_caches_pinned: false,
                io_coherent: false,
            },
            copy_engine: CopyEngineConfig {
                bandwidth: Bandwidth::gib_per_sec(45),
                setup: Picos::from_micros(8),
            },
            um: UmConfig::default(),
            flush_line_overhead: Picos::from_nanos(2),
            energy: EnergyModel {
                dram_pj_per_byte: 60,
                cpu_busy_mw: 2_500,
                gpu_busy_mw: 4_500,
                copy_busy_mw: 800,
            },
        }
    }

    /// NVIDIA Jetson AGX Xavier: Volta board with hardware I/O coherence.
    /// The CPU keeps caching pinned buffers and the GPU snoops the CPU LLC,
    /// so the zero-copy path retains ~1/7 of the cached GPU throughput
    /// instead of collapsing.
    pub fn jetson_agx_xavier() -> Self {
        DeviceProfile {
            name: "Jetson AGX Xavier".to_string(),
            cpu: CpuConfig {
                freq: Freq::mhz(2260),
                cores: 8,
                cycles_int_alu: 1,
                cycles_fp_muladd: 1,
                cycles_fp_div: 9,
                cycles_fp_sqrt: 12,
                mlp: 24.0,
                uncached_wc_depth: 8.0,
            },
            gpu: GpuConfig {
                freq: Freq::mhz(1377),
                sm_count: 8,
                issue_per_cycle: 64,
                mlp_cached: 256.0,
                mlp_pinned: 64.0,
                launch_overhead: Picos::from_micros(4),
            },
            layout: CacheLayout {
                cpu_l1: CacheGeometry::new(ByteSize::kib(64), 64, 4),
                cpu_llc: CacheGeometry::new(ByteSize::mib(4), 64, 16),
                gpu_l1: CacheGeometry::new(ByteSize::kib(128), 64, 4),
                gpu_llc: CacheGeometry::new(ByteSize::kib(512), 64, 16),
            },
            dram: DramConfig::new(
                Bandwidth::bytes_per_sec(137_000_000_000),
                Picos::from_nanos(100),
            ),
            topology: MemTopology::flat(
                Bandwidth::bytes_per_sec(137_000_000_000),
                Picos::from_nanos(100),
            ),
            latencies: HierarchyLatencies {
                cpu_l1_hit: Picos::from_nanos(2),
                cpu_llc_hit: Picos::from_nanos(12),
                gpu_l1_hit: Picos::from_nanos(15),
                gpu_llc_hit: Picos::from_nanos(60),
                // Calibrated: 64 B x MLP 64 / 127 ns = 32 GB/s I/O-coherent
                // path (Table I: 32.29 GB/s).
                snoop_hit: Picos::from_nanos(127),
                snoop_miss_extra: Picos::from_nanos(27),
                uncached_cpu_extra: Picos::from_nanos(150),
                uncached_gpu_extra: Picos::from_nanos(150),
                cpu_llc_bandwidth: Bandwidth::bytes_per_sec(80_000_000_000),
                gpu_llc_bandwidth: Bandwidth::bytes_per_sec(220_000_000_000),
            },
            zc_rules: ZcRules {
                cpu_caches_pinned: true,
                io_coherent: true,
            },
            copy_engine: CopyEngineConfig {
                bandwidth: Bandwidth::gib_per_sec(50),
                setup: Picos::from_micros(8),
            },
            um: UmConfig::default(),
            flush_line_overhead: Picos::from_nanos(1),
            energy: EnergyModel {
                dram_pj_per_byte: 50,
                cpu_busy_mw: 4_000,
                gpu_busy_mw: 8_000,
                copy_busy_mw: 1_000,
            },
        }
    }

    /// A hypothetical next-generation board (Orin-class): Ampere-style
    /// iGPU, more SMs, much higher DRAM bandwidth, and an improved
    /// coherence fabric whose pinned path keeps a *larger* fraction of the
    /// cached throughput than the Xavier's.
    ///
    /// Not one of the paper's boards — it exists to exercise the
    /// framework's portability: characterizing it with the same three
    /// micro-benchmarks yields thresholds and bounds the decision flow
    /// consumes unchanged.
    pub fn orin_like() -> Self {
        DeviceProfile {
            name: "Orin-like".to_string(),
            cpu: CpuConfig {
                freq: Freq::mhz(2200),
                cores: 12,
                cycles_int_alu: 1,
                cycles_fp_muladd: 1,
                cycles_fp_div: 8,
                cycles_fp_sqrt: 10,
                mlp: 32.0,
                uncached_wc_depth: 8.0,
            },
            gpu: GpuConfig {
                freq: Freq::mhz(1300),
                sm_count: 16,
                issue_per_cycle: 128,
                mlp_cached: 384.0,
                mlp_pinned: 192.0,
                launch_overhead: Picos::from_micros(3),
            },
            layout: CacheLayout {
                cpu_l1: CacheGeometry::new(ByteSize::kib(64), 64, 4),
                cpu_llc: CacheGeometry::new(ByteSize::mib(4), 64, 16),
                gpu_l1: CacheGeometry::new(ByteSize::kib(192), 64, 4),
                gpu_llc: CacheGeometry::new(ByteSize::mib(4), 64, 16),
            },
            dram: DramConfig::new(
                Bandwidth::bytes_per_sec(204_000_000_000),
                Picos::from_nanos(90),
            ),
            topology: MemTopology::flat(
                Bandwidth::bytes_per_sec(204_000_000_000),
                Picos::from_nanos(90),
            ),
            latencies: HierarchyLatencies {
                cpu_l1_hit: Picos::from_nanos(2),
                cpu_llc_hit: Picos::from_nanos(11),
                gpu_l1_hit: Picos::from_nanos(12),
                gpu_llc_hit: Picos::from_nanos(50),
                snoop_hit: Picos::from_nanos(80),
                snoop_miss_extra: Picos::from_nanos(20),
                uncached_cpu_extra: Picos::from_nanos(120),
                uncached_gpu_extra: Picos::from_nanos(120),
                cpu_llc_bandwidth: Bandwidth::bytes_per_sec(120_000_000_000),
                gpu_llc_bandwidth: Bandwidth::bytes_per_sec(400_000_000_000),
            },
            zc_rules: ZcRules {
                cpu_caches_pinned: true,
                io_coherent: true,
            },
            copy_engine: CopyEngineConfig {
                bandwidth: Bandwidth::gib_per_sec(70),
                setup: Picos::from_micros(6),
            },
            um: UmConfig::default(),
            flush_line_overhead: Picos::from_nanos(1),
            energy: EnergyModel {
                dram_pj_per_byte: 40,
                cpu_busy_mw: 6_000,
                gpu_busy_mw: 12_000,
                copy_busy_mw: 1_200,
            },
        }
    }

    /// An MI300A-like APU: CPU and GPU chiplets sharing one unified HBM
    /// stack behind a hardware-coherent data fabric. System allocations
    /// need no migration or maintenance flushes (the `CoherentUpm`
    /// model), but large working sets at 4K pages blow past the TLB
    /// reach and pay a table walk on most fills — huge pages recover
    /// the difference, which is what shifts the UM-vs-UPM crossover on
    /// this family (arXiv:2508.12743-style characterization, scaled to
    /// this simulator's embedded-class envelope).
    pub fn mi300a_like() -> Self {
        let topology = MemTopology {
            nodes: vec![NumaNode {
                name: "hbm".to_string(),
                bandwidth: Bandwidth::bytes_per_sec(400_000_000_000),
                latency: Picos::from_nanos(95),
                capacity: ByteSize::gib(128),
                cpu_local: true,
                gpu_local: true,
            }],
            page_size: PageSize::Small4K,
            placement: icomm_mem::PlacementPolicy::FirstTouchCpu,
            tlb: TlbConfig {
                entries: 512,
                miss_cost: Picos::from_nanos(500),
            },
            interconnect: Interconnect {
                extra_latency: Picos::ZERO,
                bandwidth: Bandwidth::bytes_per_sec(400_000_000_000),
            },
            hardware_coherent: true,
        };
        DeviceProfile {
            name: "MI300A-like".to_string(),
            cpu: CpuConfig {
                freq: Freq::mhz(3200),
                cores: 24,
                cycles_int_alu: 1,
                cycles_fp_muladd: 1,
                cycles_fp_div: 8,
                cycles_fp_sqrt: 10,
                mlp: 48.0,
                uncached_wc_depth: 8.0,
            },
            gpu: GpuConfig {
                freq: Freq::mhz(2100),
                sm_count: 24,
                issue_per_cycle: 128,
                mlp_cached: 384.0,
                mlp_pinned: 192.0,
                launch_overhead: Picos::from_micros(3),
            },
            layout: CacheLayout {
                cpu_l1: CacheGeometry::new(ByteSize::kib(64), 64, 4),
                cpu_llc: CacheGeometry::new(ByteSize::mib(4), 64, 16),
                gpu_l1: CacheGeometry::new(ByteSize::kib(192), 64, 4),
                gpu_llc: CacheGeometry::new(ByteSize::mib(4), 64, 16),
            },
            dram: DramConfig::from_topology(&topology),
            topology,
            latencies: HierarchyLatencies {
                cpu_l1_hit: Picos::from_nanos(2),
                cpu_llc_hit: Picos::from_nanos(10),
                gpu_l1_hit: Picos::from_nanos(10),
                gpu_llc_hit: Picos::from_nanos(45),
                snoop_hit: Picos::from_nanos(70),
                snoop_miss_extra: Picos::from_nanos(15),
                uncached_cpu_extra: Picos::from_nanos(100),
                uncached_gpu_extra: Picos::from_nanos(100),
                cpu_llc_bandwidth: Bandwidth::bytes_per_sec(150_000_000_000),
                gpu_llc_bandwidth: Bandwidth::bytes_per_sec(500_000_000_000),
            },
            zc_rules: ZcRules {
                cpu_caches_pinned: true,
                io_coherent: true,
            },
            copy_engine: CopyEngineConfig {
                bandwidth: Bandwidth::gib_per_sec(200),
                setup: Picos::from_micros(5),
            },
            um: UmConfig::default(),
            flush_line_overhead: Picos::from_nanos(1),
            energy: EnergyModel {
                dram_pj_per_byte: 35,
                cpu_busy_mw: 8_000,
                gpu_busy_mw: 16_000,
                copy_busy_mw: 1_500,
            },
        }
    }

    /// A Grace-Hopper-like superchip: the CPU sits on its own DDR node,
    /// the GPU on an HBM node, and a cache-coherent chip-to-chip link
    /// spans them. First-touch allocations home on the CPU node, so the
    /// coherent-UPM path pays a fabric hop on GPU fills in addition to
    /// any TLB walks (arXiv:2407.07850-style shape, scaled down).
    pub fn gh_like() -> Self {
        let topology = MemTopology {
            nodes: vec![
                NumaNode {
                    name: "cpu-ddr".to_string(),
                    bandwidth: Bandwidth::bytes_per_sec(120_000_000_000),
                    latency: Picos::from_nanos(110),
                    capacity: ByteSize::gib(480),
                    cpu_local: true,
                    gpu_local: false,
                },
                NumaNode {
                    name: "gpu-hbm".to_string(),
                    bandwidth: Bandwidth::bytes_per_sec(400_000_000_000),
                    latency: Picos::from_nanos(90),
                    capacity: ByteSize::gib(96),
                    cpu_local: false,
                    gpu_local: true,
                },
            ],
            page_size: PageSize::Small4K,
            placement: icomm_mem::PlacementPolicy::FirstTouchCpu,
            tlb: TlbConfig {
                entries: 512,
                miss_cost: Picos::from_nanos(500),
            },
            interconnect: Interconnect {
                extra_latency: Picos::from_nanos(100),
                bandwidth: Bandwidth::bytes_per_sec(450_000_000_000),
            },
            hardware_coherent: true,
        };
        DeviceProfile {
            name: "GH-like".to_string(),
            cpu: CpuConfig {
                freq: Freq::mhz(3000),
                cores: 16,
                cycles_int_alu: 1,
                cycles_fp_muladd: 1,
                cycles_fp_div: 8,
                cycles_fp_sqrt: 10,
                mlp: 48.0,
                uncached_wc_depth: 8.0,
            },
            gpu: GpuConfig {
                freq: Freq::mhz(1980),
                sm_count: 20,
                issue_per_cycle: 128,
                mlp_cached: 384.0,
                mlp_pinned: 192.0,
                launch_overhead: Picos::from_micros(3),
            },
            layout: CacheLayout {
                cpu_l1: CacheGeometry::new(ByteSize::kib(64), 64, 4),
                cpu_llc: CacheGeometry::new(ByteSize::mib(4), 64, 16),
                gpu_l1: CacheGeometry::new(ByteSize::kib(192), 64, 4),
                gpu_llc: CacheGeometry::new(ByteSize::mib(4), 64, 16),
            },
            dram: DramConfig::from_topology(&topology),
            topology,
            latencies: HierarchyLatencies {
                cpu_l1_hit: Picos::from_nanos(2),
                cpu_llc_hit: Picos::from_nanos(10),
                gpu_l1_hit: Picos::from_nanos(11),
                gpu_llc_hit: Picos::from_nanos(48),
                snoop_hit: Picos::from_nanos(75),
                snoop_miss_extra: Picos::from_nanos(18),
                uncached_cpu_extra: Picos::from_nanos(110),
                uncached_gpu_extra: Picos::from_nanos(110),
                cpu_llc_bandwidth: Bandwidth::bytes_per_sec(150_000_000_000),
                gpu_llc_bandwidth: Bandwidth::bytes_per_sec(450_000_000_000),
            },
            zc_rules: ZcRules {
                cpu_caches_pinned: true,
                io_coherent: true,
            },
            copy_engine: CopyEngineConfig {
                bandwidth: Bandwidth::gib_per_sec(150),
                setup: Picos::from_micros(6),
            },
            um: UmConfig::default(),
            flush_line_overhead: Picos::from_nanos(1),
            energy: EnergyModel {
                dram_pj_per_byte: 35,
                cpu_busy_mw: 7_000,
                gpu_busy_mw: 14_000,
                copy_busy_mw: 1_400,
            },
        }
    }

    /// Whether system allocations are hardware-coherent across CPU and
    /// GPU caches — the prerequisite for the `CoherentUpm` model.
    pub fn supports_coherent_upm(&self) -> bool {
        self.topology.hardware_coherent
    }

    /// Returns a variant of this profile whose shared allocations are
    /// mapped with `page`-sized pages (TLB reach changes accordingly).
    /// The name gains a suffix when the page size actually changes, so
    /// characterization caches keyed by name stay distinct.
    pub fn with_page_size(&self, page: PageSize) -> Self {
        let mut device = self.clone();
        if device.topology.page_size != page {
            device.name = format!("{} @{} pages", self.name, page.name());
            device.topology.page_size = page;
        }
        device
    }

    /// Derives a DVFS power-mode variant: CPU and GPU clocks scaled by
    /// `cpu_scale` / `gpu_scale` and the memory subsystem (DRAM and cache
    /// array bandwidths) by `mem_scale`, the way `nvpmodel` caps a Jetson.
    /// Fixed wall-clock latencies (DRAM CAS, coherence hops) are left
    /// unscaled — they are set by the silicon, not the clock caps.
    ///
    /// # Panics
    ///
    /// Panics if any scale is zero or negative.
    pub fn with_power_scale(&self, cpu_scale: f64, gpu_scale: f64, mem_scale: f64) -> Self {
        assert!(
            cpu_scale > 0.0 && gpu_scale > 0.0 && mem_scale > 0.0,
            "power scales must be positive"
        );
        let scale_freq = |f: Freq, s: f64| Freq((f.as_hz() as f64 * s) as u64);
        let scale_bw = |b: Bandwidth, s: f64| Bandwidth((b.as_bytes_per_sec() as f64 * s) as u64);
        let mut device = self.clone();
        device.name = format!(
            "{} (cpu x{cpu_scale:.2}, gpu x{gpu_scale:.2}, mem x{mem_scale:.2})",
            self.name
        );
        device.cpu.freq = scale_freq(self.cpu.freq, cpu_scale);
        device.gpu.freq = scale_freq(self.gpu.freq, gpu_scale);
        device.dram = DramConfig::new(
            scale_bw(self.dram.peak_bandwidth, mem_scale),
            self.dram.access_latency,
        );
        device.topology = self.topology.clone().with_bandwidth_scale(mem_scale);
        device.latencies.cpu_llc_bandwidth = scale_bw(self.latencies.cpu_llc_bandwidth, mem_scale);
        device.latencies.gpu_llc_bandwidth = scale_bw(self.latencies.gpu_llc_bandwidth, gpu_scale);
        device.copy_engine.bandwidth = scale_bw(self.copy_engine.bandwidth, mem_scale);
        device
    }

    /// All three built-in profiles, in the paper's order.
    pub fn all_boards() -> Vec<DeviceProfile> {
        vec![
            Self::jetson_nano(),
            Self::jetson_tx2(),
            Self::jetson_agx_xavier(),
        ]
    }

    /// Every built-in profile: the paper's three boards plus the
    /// portability presets (Orin-like) and the hardware-coherent family
    /// (MI300A-like, GH-like).
    pub fn extended_boards() -> Vec<DeviceProfile> {
        vec![
            Self::jetson_nano(),
            Self::jetson_tx2(),
            Self::jetson_agx_xavier(),
            Self::orin_like(),
            Self::mi300a_like(),
            Self::gh_like(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_build_memory_systems() {
        for device in DeviceProfile::all_boards() {
            let mem = device.build_memory_system();
            assert_eq!(mem.zc_rules(), device.zc_rules, "{}", device.name);
        }
    }

    #[test]
    fn only_xavier_is_io_coherent() {
        assert!(!DeviceProfile::jetson_nano().is_io_coherent());
        assert!(!DeviceProfile::jetson_tx2().is_io_coherent());
        assert!(DeviceProfile::jetson_agx_xavier().is_io_coherent());
    }

    #[test]
    fn bandwidth_ordering_matches_hardware() {
        let nano = DeviceProfile::jetson_nano();
        let tx2 = DeviceProfile::jetson_tx2();
        let xavier = DeviceProfile::jetson_agx_xavier();
        assert!(nano.dram.peak_bandwidth < tx2.dram.peak_bandwidth);
        assert!(tx2.dram.peak_bandwidth < xavier.dram.peak_bandwidth);
        assert!(tx2.latencies.gpu_llc_bandwidth < xavier.latencies.gpu_llc_bandwidth);
    }

    #[test]
    fn power_scale_scales_clocks_and_bandwidth() {
        let base = DeviceProfile::jetson_agx_xavier();
        let capped = base.with_power_scale(0.5, 0.5, 0.5);
        assert_eq!(capped.cpu.freq.as_hz(), base.cpu.freq.as_hz() / 2);
        assert_eq!(capped.gpu.freq.as_hz(), base.gpu.freq.as_hz() / 2);
        assert_eq!(
            capped.dram.peak_bandwidth.as_bytes_per_sec(),
            base.dram.peak_bandwidth.as_bytes_per_sec() / 2
        );
        // Fixed latencies stay.
        assert_eq!(capped.dram.access_latency, base.dram.access_latency);
        assert!(capped.name.contains("x0.50"));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn power_scale_rejects_zero() {
        let _ = DeviceProfile::jetson_tx2().with_power_scale(0.0, 1.0, 1.0);
    }

    #[test]
    fn flat_topologies_reproduce_dram_constants() {
        for device in DeviceProfile::extended_boards() {
            assert_eq!(
                DramConfig::from_topology(&device.topology),
                device.dram,
                "{}",
                device.name
            );
        }
    }

    #[test]
    fn only_coherent_family_supports_upm() {
        assert!(!DeviceProfile::jetson_nano().supports_coherent_upm());
        assert!(!DeviceProfile::jetson_tx2().supports_coherent_upm());
        assert!(!DeviceProfile::jetson_agx_xavier().supports_coherent_upm());
        assert!(!DeviceProfile::orin_like().supports_coherent_upm());
        assert!(DeviceProfile::mi300a_like().supports_coherent_upm());
        assert!(DeviceProfile::gh_like().supports_coherent_upm());
    }

    #[test]
    fn with_page_size_renames_and_remaps() {
        let base = DeviceProfile::mi300a_like();
        let huge = base.with_page_size(PageSize::Huge2M);
        assert_eq!(huge.topology.page_size, PageSize::Huge2M);
        assert!(huge.name.contains("2M"), "{}", huge.name);
        // Same page size: identity (name untouched).
        let same = base.with_page_size(PageSize::Small4K);
        assert_eq!(same, base);
    }

    #[test]
    fn power_scale_scales_topology_bandwidth() {
        let base = DeviceProfile::gh_like();
        let capped = base.with_power_scale(1.0, 1.0, 0.5);
        assert_eq!(
            capped.topology.aggregate_bandwidth().as_bytes_per_sec(),
            base.topology.aggregate_bandwidth().as_bytes_per_sec() / 2
        );
        // Latency shape is untouched.
        assert_eq!(capped.topology.base_latency(), base.topology.base_latency());
    }

    #[test]
    fn profiles_clone_equal() {
        let device = DeviceProfile::jetson_tx2();
        let copy = device.clone();
        assert_eq!(device, copy);
    }
}
