//! Property-based tests of the simulator substrate.
//!
//! The cache is checked against an independently written reference model
//! (a naive `Vec`-of-sets LRU), and the hierarchy against conservation
//! and monotonicity invariants, under arbitrary access streams.

use proptest::prelude::*;

use icomm_soc::cache::{AccessKind, Cache, CacheGeometry, CacheOutcome};
use icomm_soc::hierarchy::MemSpace;
use icomm_soc::request::MemRequest;
use icomm_soc::units::ByteSize;
use icomm_soc::{DeviceProfile, Soc};

/// A deliberately naive reference cache: same geometry semantics,
/// different implementation (linear scans, explicit recency lists).
struct ReferenceCache {
    line_bytes: u64,
    num_sets: u64,
    ways: usize,
    /// Per set: (tag, dirty), most recently used last.
    sets: Vec<Vec<(u64, bool)>>,
}

impl ReferenceCache {
    fn new(geometry: CacheGeometry) -> Self {
        ReferenceCache {
            line_bytes: geometry.line_bytes as u64,
            num_sets: geometry.num_sets(),
            ways: geometry.associativity as usize,
            sets: vec![Vec::new(); geometry.num_sets() as usize],
        }
    }

    /// Returns (hit, victim_was_dirty).
    fn access(&mut self, addr: u64, write: bool) -> (bool, bool) {
        let line = addr & !(self.line_bytes - 1);
        let set_idx = ((line / self.line_bytes) % self.num_sets) as usize;
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|&(tag, _)| tag == line) {
            let (tag, dirty) = set.remove(pos);
            set.push((tag, dirty || write));
            return (true, false);
        }
        let mut victim_dirty = false;
        if set.len() == self.ways {
            let (_, dirty) = set.remove(0);
            victim_dirty = dirty;
        }
        set.push((line, write));
        (false, victim_dirty)
    }
}

fn access_stream() -> impl Strategy<Value = Vec<(u64, bool)>> {
    // Addresses drawn from a small region so sets collide and evict.
    prop::collection::vec((0u64..32 * 1024, prop::bool::ANY), 1..600)
}

proptest! {
    #[test]
    fn cache_matches_reference_model(stream in access_stream()) {
        let geometry = CacheGeometry::new(ByteSize(4096), 64, 4);
        let mut cache = Cache::new(geometry);
        let mut reference = ReferenceCache::new(geometry);
        for (addr, is_write) in stream {
            let kind = if is_write { AccessKind::Write } else { AccessKind::Read };
            let outcome = cache.access(addr, kind);
            let (ref_hit, ref_victim_dirty) = reference.access(addr, is_write);
            match outcome {
                CacheOutcome::Hit => prop_assert!(ref_hit, "cache hit, reference missed @{addr:#x}"),
                CacheOutcome::Miss { victim_writeback } => {
                    prop_assert!(!ref_hit, "cache missed, reference hit @{addr:#x}");
                    prop_assert_eq!(
                        victim_writeback,
                        ref_victim_dirty,
                        "writeback divergence @{:#x}",
                        addr
                    );
                }
                CacheOutcome::Bypass => prop_assert!(false, "enabled cache bypassed"),
            }
        }
    }

    #[test]
    fn cache_counter_conservation(stream in access_stream()) {
        let geometry = CacheGeometry::new(ByteSize(4096), 64, 4);
        let mut cache = Cache::new(geometry);
        for (addr, is_write) in &stream {
            let kind = if *is_write { AccessKind::Write } else { AccessKind::Read };
            cache.access(*addr, kind);
        }
        let stats = *cache.stats();
        prop_assert_eq!(stats.hits + stats.misses, stream.len() as u64);
        prop_assert_eq!(stats.fills, stats.misses);
        // Lines cannot exceed capacity; dirty lines cannot exceed resident.
        prop_assert!(cache.resident_lines() <= geometry.num_lines());
        prop_assert!(cache.dirty_lines() <= cache.resident_lines());
        // Every dirty line will eventually write back: flush proves it.
        let dirty_before = cache.dirty_lines();
        let flushed = cache.flush_dirty();
        prop_assert_eq!(flushed, dirty_before); // flush returns the count
        prop_assert_eq!(cache.dirty_lines(), 0);
    }

    #[test]
    fn hierarchy_dram_traffic_is_line_quantized(
        addrs in prop::collection::vec(0u64..1_000_000, 1..200),
    ) {
        let device = DeviceProfile::jetson_tx2();
        let mut soc = Soc::new(device);
        for addr in &addrs {
            soc.run_cpu_task(
                &[],
                std::iter::once(MemRequest::read(*addr, 4, MemSpace::Cached)),
            );
        }
        let snap = soc.snapshot();
        // All DRAM traffic moves whole 64 B lines.
        prop_assert_eq!(snap.dram.bytes_read % 64, 0);
        prop_assert_eq!(snap.dram.bytes_written % 64, 0);
        // Reads from DRAM correspond to LLC fills.
        prop_assert_eq!(snap.dram.bytes_read / 64, snap.cpu_llc.fills);
    }

    #[test]
    fn pinned_accesses_never_touch_gpu_caches(
        addrs in prop::collection::vec(0u64..1_000_000, 1..200),
    ) {
        let device = DeviceProfile::jetson_agx_xavier();
        let mut soc = Soc::new(device);
        let reqs: Vec<_> = addrs
            .iter()
            .map(|&a| MemRequest::read(a, 32, MemSpace::Pinned))
            .collect();
        soc.run_kernel(0, reqs.into_iter());
        let snap = soc.snapshot();
        prop_assert_eq!(snap.gpu_l1.accesses(), 0);
        prop_assert_eq!(snap.gpu_llc.accesses(), 0);
    }

    #[test]
    fn kernel_time_monotone_in_request_count(extra in 1usize..300) {
        let device = DeviceProfile::jetson_tx2();
        let base: Vec<_> = (0..100u64)
            .map(|i| MemRequest::read(i * 4096, 64, MemSpace::Cached))
            .collect();
        let longer: Vec<_> = (0..100 + extra as u64)
            .map(|i| MemRequest::read(i * 4096, 64, MemSpace::Cached))
            .collect();
        let mut soc_a = Soc::new(device.clone());
        let t_base = soc_a.run_kernel(0, base.into_iter()).time;
        let mut soc_b = Soc::new(device);
        let t_longer = soc_b.run_kernel(0, longer.into_iter()).time;
        prop_assert!(t_longer >= t_base);
    }

    #[test]
    fn copy_time_monotone_in_size(a in 1u64..10_000_000, b in 1u64..10_000_000) {
        let (small, large) = (a.min(b), a.max(b));
        let device = DeviceProfile::jetson_nano();
        let mut soc = Soc::new(device);
        let t_small = soc.copy(ByteSize(small)).time;
        let t_large = soc.copy(ByteSize(large)).time;
        prop_assert!(t_large >= t_small);
    }

    #[test]
    fn energy_monotone_under_additional_work(work in 1u64..(1 << 24)) {
        let device = DeviceProfile::jetson_agx_xavier();
        let mut soc = Soc::new(device);
        let before = soc.snapshot().energy;
        soc.run_kernel(work, std::iter::empty());
        let after = soc.snapshot().energy;
        prop_assert!(after >= before);
    }
}
