//! # icomm-synth — auto-synthesized algebraic decision rules
//!
//! The decision stack answers "which communication model should each
//! tenant use?" by brute force: `M^N` co-run oracle evaluations per mix
//! ([`icomm_core::oracle_assignment`]). This crate compresses those
//! sweeps into a handful of human-readable **algebraic rules** — in the
//! spirit of rewrite-rule synthesis à la Ruler — and serves decisions
//! from the rules alone:
//!
//! 1. **Enumerate** ([`grammar`]): grow guard predicates bottom-up by
//!    term size over a typed feature grammar (workload shape,
//!    characterization thresholds, interference and cap pressure),
//!    collapsing candidates that behave identically on the training
//!    table into observational-equivalence classes.
//! 2. **Sweep** ([`sweep`]): the training table comes from the existing
//!    deterministic simulators — every stock board × tenant mix,
//!    labeled by the brute-force oracle.
//! 3. **Cover** ([`cover`]): greedily select the fewest sound classes
//!    that explain every training sample.
//! 4. **Decide** ([`decider`]): answer live queries by first-match rule
//!    evaluation, falling back to the full sweep out of verified scope.
//!
//! The synthesized [`RuleSet`] is serializable (CRC-framed via
//! `icomm-persist`), ships across the fleet as a warm-start artifact
//! (`icomm-fleet` consumes it before falling back to k-NN transfer),
//! and records exactly where it is proven exact: its `scope` lists only
//! contexts re-validated rule-for-rule against the oracle with zero
//! disagreements.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cover;
pub mod decider;
pub mod feature;
pub mod grammar;
pub mod sweep;

use std::path::Path;

use icomm_microbench::DeviceCharacterization;
use icomm_models::CommModelKind;
use serde::{Deserialize, Serialize};

pub use cover::{select_cover, Cover, Rule};
pub use decider::{DecisionSource, MixDecision, RuleDecider};
pub use feature::{mix_features, tenant_features, Feature, FeatureVec, FEATURE_COUNT};
pub use grammar::{enumerate_classes, Atom, Enumeration, EquivClass, Pred};
pub use sweep::{
    context_tenants, stock_board, sweep_board, SweepSample, SweepTable, BOARD_NAMES,
    SWEEP_CAP_BYTES, SWEEP_MIX_NAMES,
};

/// Configuration of one synthesis run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SynthConfig {
    /// Boards to sweep and learn from.
    pub boards: Vec<String>,
    /// Mixes per board (see [`SWEEP_MIX_NAMES`]).
    pub mixes: Vec<String>,
    /// Largest predicate term size to enumerate.
    pub max_size: u32,
    /// Seed shuffling enumeration order (and thus representatives and
    /// greedy tie-breaks). Same seed → byte-identical rule set.
    pub seed: u64,
    /// Also sweep the `pressure` mix under [`SWEEP_CAP_BYTES`].
    pub capped_pressure: bool,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            boards: BOARD_NAMES.iter().map(|b| b.to_string()).collect(),
            mixes: SWEEP_MIX_NAMES.iter().map(|m| m.to_string()).collect(),
            max_size: 3,
            seed: 42,
            capped_pressure: true,
        }
    }
}

/// A synthesized, serializable set of decision rules with its verified
/// scope.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RuleSet {
    /// Seed the synthesis ran under.
    pub seed: u64,
    /// Largest term size the grammar enumerated.
    pub max_size: u32,
    /// Boards the training sweep covered.
    pub boards: Vec<String>,
    /// The rules, in greedy selection order (first match wins; sound
    /// rules never conflict, so order only affects `rules_used` stats).
    pub rules: Vec<Rule>,
    /// Contexts verified exact against the oracle, as
    /// `board/mix` (uncapped) or `board/mix@<capbytes>` keys.
    pub scope: Vec<String>,
    /// Training samples the sweep produced.
    pub samples: u64,
    /// Training samples no rule covers (their contexts are out of
    /// scope).
    pub uncovered: u64,
    /// Rule-vs-oracle label disagreements during validation. Sound
    /// covers make this 0 by construction; it is re-counted and stored
    /// so a corrupt or hand-edited rule set is detectable.
    pub disagreements: u64,
    /// Per-board characterizations the rules' features were computed
    /// against — the decider recomputes query features with these.
    pub board_characterizations: Vec<(String, DeviceCharacterization)>,
}

impl RuleSet {
    /// Scope key of a `(board, mix, cap)` context.
    pub fn scope_key(board: &str, mix: &str, cap_bytes: u64) -> String {
        if cap_bytes == 0 {
            format!("{board}/{mix}")
        } else {
            format!("{board}/{mix}@{cap_bytes}")
        }
    }

    /// Whether a context was verified exact during synthesis.
    pub fn in_scope(&self, board: &str, mix: &str, cap_bytes: u64) -> bool {
        self.scope
            .contains(&RuleSet::scope_key(board, mix, cap_bytes))
    }

    /// Stored characterization of `board`, if it was swept.
    pub fn characterization(&self, board: &str) -> Option<&DeviceCharacterization> {
        self.board_characterizations
            .iter()
            .find(|(b, _)| b == board)
            .map(|(_, c)| c)
    }

    /// First rule matching a feature vector: `(rule index, model)`.
    pub fn match_features(&self, features: &[f64]) -> Option<(usize, CommModelKind)> {
        self.rules
            .iter()
            .enumerate()
            .find(|(_, r)| r.pred.eval(features))
            .map(|(i, r)| (i, r.model))
    }

    /// Rules-only warm start for a fleet device on `board`: the stored
    /// characterization plus a sub-measured confidence, available only
    /// when **every** named co-run mix on that board is verified in
    /// scope — a partially-verified board must not skip its sweep.
    pub fn warm_start(&self, board: &str) -> Option<(&DeviceCharacterization, f64)> {
        let characterization = self.characterization(board)?;
        let all_verified = icomm_apps::MIX_NAMES
            .iter()
            .all(|mix| self.in_scope(board, mix, 0));
        if all_verified {
            // Below 1.0 so rules-backed registry entries never enter the
            // measured k-NN neighbor pool.
            Some((characterization, 0.99))
        } else {
            None
        }
    }

    /// Serialized size inside a CRC-framed snapshot — the numerator of
    /// the compression ratio against [`SweepTable::persisted_bytes`].
    ///
    /// # Errors
    ///
    /// Propagates serialization failures (practically unreachable).
    pub fn persisted_bytes(&self) -> Result<u64, String> {
        let json = icomm_persist::to_string(self).map_err(|e| e.to_string())?;
        Ok(icomm_persist::snapshot::encode(&json).len() as u64)
    }

    /// Writes the rule set atomically as a CRC-framed snapshot.
    ///
    /// # Errors
    ///
    /// Returns a message on serialization or I/O failure.
    pub fn save(&self, path: &Path) -> Result<(), String> {
        let json = icomm_persist::to_string(self).map_err(|e| e.to_string())?;
        icomm_persist::snapshot::write_atomic(path, &json).map_err(|e| e.to_string())
    }

    /// Reads a rule set back from a CRC-framed snapshot.
    ///
    /// # Errors
    ///
    /// Returns a message on I/O, framing/CRC, or deserialization
    /// failure.
    pub fn load(path: &Path) -> Result<RuleSet, String> {
        let json = icomm_persist::snapshot::read_verified(path).map_err(|e| e.to_string())?;
        icomm_persist::from_str(&json).map_err(|e| e.to_string())
    }
}

/// Everything one synthesis run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthOutput {
    /// The synthesized rule set.
    pub ruleset: RuleSet,
    /// The training table it was learned from.
    pub table: SweepTable,
    /// Size-1 candidates enumerated.
    pub atoms_enumerated: u64,
    /// Total candidates enumerated across all term sizes.
    pub preds_enumerated: u64,
    /// Surviving equivalence classes.
    pub classes: usize,
    /// Classes with a uniform oracle label (the cover's candidates).
    pub sound_candidates: usize,
}

/// Runs the full pipeline: sweep → enumerate → cover → validate.
///
/// Deterministic per `(config)`: the sweep is closed-form, the
/// enumeration is seeded, and validation replays the decider's own
/// feature path — so equal configs produce byte-identical rule sets.
///
/// # Errors
///
/// Returns a message on unknown board/mix names or an uncapped oracle
/// failure (capped-infeasible contexts are skipped, not failed).
pub fn synthesize(config: &SynthConfig) -> Result<SynthOutput, String> {
    let mut board_characterizations = Vec::new();
    let mut samples: Vec<SweepSample> = Vec::new();
    let mut skipped_contexts = Vec::new();
    for board in &config.boards {
        let (characterization, board_samples, skipped) =
            sweep_board(board, &config.mixes, config.capped_pressure)?;
        board_characterizations.push((board.clone(), characterization));
        samples.extend(board_samples);
        skipped_contexts.extend(skipped);
    }
    if samples.is_empty() {
        return Err("sweep produced no samples (no boards or mixes?)".to_string());
    }

    let features: Vec<Vec<f64>> = samples.iter().map(|s| s.features.clone()).collect();
    let labels: Vec<CommModelKind> = samples.iter().map(|s| s.label).collect();
    let sample_boards: Vec<String> = samples.iter().map(|s| s.board.clone()).collect();

    let enumeration = enumerate_classes(&features, config.max_size, config.seed);
    let cover = select_cover(&enumeration, &labels, &sample_boards);

    // Validate through the decide-time path: first-match over the
    // selected rules must reproduce the oracle label for every covered
    // sample; a context is in scope only when all its samples agree.
    let mut disagreements = 0u64;
    let mut verdict: Vec<Option<bool>> = Vec::with_capacity(samples.len()); // None = uncovered
    let interim = RuleSet {
        seed: config.seed,
        max_size: config.max_size,
        boards: config.boards.clone(),
        rules: cover.rules.clone(),
        scope: Vec::new(),
        samples: samples.len() as u64,
        uncovered: cover.uncovered() as u64,
        disagreements: 0,
        board_characterizations,
    };
    for sample in &samples {
        match interim.match_features(&sample.features) {
            Some((_, model)) if model == sample.label => verdict.push(Some(true)),
            Some(_) => {
                disagreements += 1;
                verdict.push(Some(false));
            }
            None => verdict.push(None),
        }
    }

    let mut scope = Vec::new();
    let mut seen = Vec::new();
    for sample in &samples {
        let key = RuleSet::scope_key(&sample.board, &sample.mix, sample.mem_cap_bytes);
        if seen.contains(&key) {
            continue;
        }
        let exact = samples
            .iter()
            .zip(&verdict)
            .filter(|(s, _)| {
                s.board == sample.board
                    && s.mix == sample.mix
                    && s.mem_cap_bytes == sample.mem_cap_bytes
            })
            .all(|(_, v)| *v == Some(true));
        if exact {
            scope.push(key.clone());
        }
        seen.push(key);
    }

    let mut table_boards = config.boards.clone();
    table_boards.dedup();
    let ruleset = RuleSet {
        scope,
        disagreements,
        ..interim
    };
    Ok(SynthOutput {
        ruleset,
        table: SweepTable {
            boards: table_boards,
            samples,
            skipped_contexts,
        },
        atoms_enumerated: enumeration.atoms_enumerated,
        preds_enumerated: enumeration.preds_enumerated,
        classes: enumeration.classes.len(),
        sound_candidates: cover.sound_candidates,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> SynthConfig {
        SynthConfig {
            boards: vec!["tx2".to_string()],
            mixes: vec!["solo:shwfs".to_string(), "duo".to_string()],
            max_size: 2,
            seed: 42,
            capped_pressure: false,
        }
    }

    #[test]
    fn synthesis_runs_and_validates_cleanly() {
        let out = synthesize(&tiny_config()).expect("synthesis runs");
        assert_eq!(out.ruleset.disagreements, 0);
        assert!(!out.ruleset.rules.is_empty());
        assert_eq!(out.ruleset.samples, out.table.samples.len() as u64);
    }

    #[test]
    fn scope_keys_round_trip() {
        assert_eq!(RuleSet::scope_key("tx2", "duo", 0), "tx2/duo");
        assert_eq!(
            RuleSet::scope_key("nano", "pressure", 6 << 20),
            "nano/pressure@6291456"
        );
    }

    #[test]
    fn same_config_is_byte_identical() {
        let a = synthesize(&tiny_config()).expect("synthesis runs");
        let b = synthesize(&tiny_config()).expect("synthesis runs");
        assert_eq!(a.ruleset, b.ruleset);
        let sa = icomm_persist::to_string(&a.ruleset).expect("serializes");
        let sb = icomm_persist::to_string(&b.ruleset).expect("serializes");
        assert_eq!(sa, sb);
    }
}
