//! The typed term grammar and its bottom-up, observational-equivalence
//! enumeration.
//!
//! Following the Ruler/enumo recipe, candidate predicates are grown by
//! term size: size-1 candidates are atomic comparisons (a feature
//! against a data-derived threshold, or a feature against a scaled
//! feature), size-`k` candidates conjoin a size-`k−1` survivor with a
//! size-1 survivor. After every growth step candidates are evaluated
//! against the whole sample table and merged into **equivalence
//! classes** by their truth-vector fingerprint: two predicates that
//! agree on every sample are observationally equal, and only the first
//! (smallest) representative of each class survives into the next
//! level. The classes form a partition of everything enumerated — a
//! property the crate's proptests pin down.

use icomm_chaos::ChaosRng;
use serde::{Deserialize, Serialize};

use crate::feature::Feature;

/// Cap on data-derived thresholds kept per feature.
const MAX_THRESHOLDS_PER_FEATURE: usize = 12;
/// Scales tried for feature-vs-feature atoms.
const PAIR_SCALES: [f64; 3] = [0.5, 1.0, 2.0];
/// Hard cap on surviving equivalence classes: past this the enumeration
/// stops growing (the greedy cover only ever consumes a few dozen).
const MAX_CLASSES: usize = 24_576;

/// An atomic comparison over the feature space.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Atom {
    /// `feature <= threshold`.
    Le(Feature, f64),
    /// `feature > threshold`.
    Gt(Feature, f64),
    /// `lhs <= scale * rhs`.
    LeScaled(Feature, f64, Feature),
    /// `lhs > scale * rhs`.
    GtScaled(Feature, f64, Feature),
}

impl Atom {
    /// Evaluates the atom against one feature vector.
    ///
    /// Comparisons with NaN are `false` for both directions — a
    /// non-finite feature never satisfies a rule, so malformed inputs
    /// fall through to the sweep instead of matching something.
    pub fn eval(&self, v: &[f64]) -> bool {
        match *self {
            Atom::Le(f, t) => v[f.index()] <= t,
            Atom::Gt(f, t) => v[f.index()] > t,
            Atom::LeScaled(a, s, b) => v[a.index()] <= s * v[b.index()],
            Atom::GtScaled(a, s, b) => v[a.index()] > s * v[b.index()],
        }
    }
}

impl std::fmt::Display for Atom {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            Atom::Le(a, t) => write!(f, "{} <= {t:.4}", a.name()),
            Atom::Gt(a, t) => write!(f, "{} > {t:.4}", a.name()),
            Atom::LeScaled(a, s, b) => write!(f, "{} <= {s:.2}*{}", a.name(), b.name()),
            Atom::GtScaled(a, s, b) => write!(f, "{} > {s:.2}*{}", a.name(), b.name()),
        }
    }
}

/// A conjunction of atoms; the term size is the number of atoms.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Pred {
    /// The conjuncts, in enumeration order.
    pub atoms: Vec<Atom>,
}

impl Pred {
    /// Term size: number of atomic comparisons.
    pub fn size(&self) -> usize {
        self.atoms.len()
    }

    /// Evaluates the conjunction against one feature vector.
    pub fn eval(&self, v: &[f64]) -> bool {
        self.atoms.iter().all(|a| a.eval(v))
    }
}

impl std::fmt::Display for Pred {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.atoms.is_empty() {
            return f.write_str("true");
        }
        for (i, atom) in self.atoms.iter().enumerate() {
            if i > 0 {
                f.write_str("  &&  ")?;
            }
            write!(f, "{atom}")?;
        }
        Ok(())
    }
}

/// Truth vector of a predicate over the sample table, packed 64 samples
/// per word.
pub type Fingerprint = Vec<u64>;

fn fingerprint_of(pred: &Pred, samples: &[Vec<f64>]) -> Fingerprint {
    let mut bits = vec![0u64; samples.len().div_ceil(64)];
    for (i, sample) in samples.iter().enumerate() {
        if pred.eval(sample) {
            bits[i / 64] |= 1u64 << (i % 64);
        }
    }
    bits
}

/// One observational-equivalence class of enumerated predicates.
#[derive(Debug, Clone, PartialEq)]
pub struct EquivClass {
    /// Smallest (first-enumerated) predicate of the class.
    pub representative: Pred,
    /// Packed truth vector over the sample table.
    pub fingerprint: Fingerprint,
    /// How many enumerated predicates collapsed into this class.
    pub members: u64,
    /// Samples the class matches (population count of the fingerprint).
    pub support: u32,
}

/// Everything the bottom-up enumeration produced.
#[derive(Debug, Clone, PartialEq)]
pub struct Enumeration {
    /// Surviving equivalence classes, in discovery order.
    pub classes: Vec<EquivClass>,
    /// Size-1 candidates enumerated (atoms after the seed shuffle).
    pub atoms_enumerated: u64,
    /// Total candidates enumerated across all sizes.
    pub preds_enumerated: u64,
    /// Largest term size reached.
    pub max_size: u32,
}

/// Data-derived thresholds for one feature: midpoints between adjacent
/// distinct sample values, downsampled evenly to the per-feature cap.
fn thresholds(samples: &[Vec<f64>], feature: Feature) -> Vec<f64> {
    let mut values: Vec<f64> = samples
        .iter()
        .map(|s| s[feature.index()])
        .filter(|v| v.is_finite())
        .collect();
    values.sort_by(f64::total_cmp);
    values.dedup();
    let mids: Vec<f64> = values.windows(2).map(|w| (w[0] + w[1]) / 2.0).collect();
    if mids.len() <= MAX_THRESHOLDS_PER_FEATURE {
        return mids;
    }
    // Evenly spaced subsample, deterministic.
    (0..MAX_THRESHOLDS_PER_FEATURE)
        .map(|i| mids[i * mids.len() / MAX_THRESHOLDS_PER_FEATURE])
        .collect()
}

/// Generates the atomic candidate pool over the sample table.
fn atom_pool(samples: &[Vec<f64>]) -> Vec<Atom> {
    let mut atoms = Vec::new();
    for feature in Feature::ALL {
        for t in thresholds(samples, feature) {
            atoms.push(Atom::Le(feature, t));
            atoms.push(Atom::Gt(feature, t));
        }
    }
    for a in Feature::ALL {
        for b in Feature::ALL {
            if a == b {
                continue;
            }
            for scale in PAIR_SCALES {
                atoms.push(Atom::LeScaled(a, scale, b));
                atoms.push(Atom::GtScaled(a, scale, b));
            }
        }
    }
    atoms
}

/// Enumerates predicates bottom-up by term size over `samples`,
/// collapsing them into observational-equivalence classes.
///
/// The `seed` shuffles the atomic candidate order (and with it which
/// member of each class becomes the representative and how greedy
/// tie-breaks later fall); the same seed always reproduces the same
/// classes in the same order.
pub fn enumerate_classes(samples: &[Vec<f64>], max_size: u32, seed: u64) -> Enumeration {
    let mut atoms = atom_pool(samples);
    let mut rng = ChaosRng::new(seed);
    // Fisher–Yates, deterministic per seed.
    for i in (1..atoms.len()).rev() {
        let j = rng.index(i + 1);
        atoms.swap(i, j);
    }

    let mut classes: Vec<EquivClass> = Vec::new();
    let mut index: std::collections::HashMap<Fingerprint, usize> = std::collections::HashMap::new();
    let mut preds_enumerated = 0u64;
    let mut reached = 0u32;

    let insert = |pred: Pred,
                  fp: Fingerprint,
                  classes: &mut Vec<EquivClass>,
                  index: &mut std::collections::HashMap<Fingerprint, usize>| {
        if let Some(&at) = index.get(&fp) {
            classes[at].members += 1;
            false
        } else {
            let support = fp.iter().map(|w| w.count_ones()).sum();
            index.insert(fp.clone(), classes.len());
            classes.push(EquivClass {
                representative: pred,
                fingerprint: fp,
                members: 1,
                support,
            });
            true
        }
    };

    // Size 1: the shuffled atom pool.
    for atom in &atoms {
        let pred = Pred {
            atoms: vec![atom.clone()],
        };
        let fp = fingerprint_of(&pred, samples);
        preds_enumerated += 1;
        insert(pred, fp, &mut classes, &mut index);
    }
    reached = reached.max(1);
    let size1_end = classes.len();

    // Sizes 2..=max_size: conjoin a previous-level survivor with a
    // size-1 survivor. Fingerprints compose by AND, so no re-evaluation
    // of the sample table is needed.
    let mut level_start = 0usize;
    let mut level_end = size1_end;
    for size in 2..=max_size {
        if classes.len() >= MAX_CLASSES {
            break;
        }
        let next_start = classes.len();
        'grow: for left in level_start..level_end {
            for right in 0..size1_end {
                if classes.len() >= MAX_CLASSES {
                    break 'grow;
                }
                let fp: Fingerprint = classes[left]
                    .fingerprint
                    .iter()
                    .zip(&classes[right].fingerprint)
                    .map(|(a, b)| a & b)
                    .collect();
                preds_enumerated += 1;
                if index.contains_key(&fp) {
                    if let Some(&at) = index.get(&fp) {
                        classes[at].members += 1;
                    }
                    continue;
                }
                let mut atoms = classes[left].representative.atoms.clone();
                atoms.extend(classes[right].representative.atoms.iter().cloned());
                insert(Pred { atoms }, fp, &mut classes, &mut index);
            }
        }
        reached = size;
        level_start = next_start;
        level_end = classes.len();
        if level_start == level_end {
            break; // no new behavior at this size; larger terms cannot help
        }
    }

    Enumeration {
        atoms_enumerated: atoms.len() as u64,
        preds_enumerated,
        max_size: reached,
        classes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_samples() -> Vec<Vec<f64>> {
        // Three samples differing only in the first two features.
        (0..3)
            .map(|i| {
                let mut v = vec![0.0; crate::feature::FEATURE_COUNT];
                v[0] = f64::from(i);
                v[1] = f64::from(2 - i);
                v
            })
            .collect()
    }

    #[test]
    fn atoms_evaluate_the_documented_comparisons() {
        let mut v = vec![0.0; crate::feature::FEATURE_COUNT];
        v[Feature::PayloadMib.index()] = 2.0;
        v[Feature::Reuse.index()] = 3.0;
        assert!(Atom::Le(Feature::PayloadMib, 2.0).eval(&v));
        assert!(!Atom::Gt(Feature::PayloadMib, 2.0).eval(&v));
        assert!(Atom::LeScaled(Feature::PayloadMib, 1.0, Feature::Reuse).eval(&v));
        assert!(Atom::GtScaled(Feature::Reuse, 1.0, Feature::PayloadMib).eval(&v));
    }

    #[test]
    fn nan_features_never_match() {
        let mut v = vec![f64::NAN; crate::feature::FEATURE_COUNT];
        v[1] = 1.0;
        assert!(!Atom::Le(Feature::PayloadMib, 1.0).eval(&v));
        assert!(!Atom::Gt(Feature::PayloadMib, 0.0).eval(&v));
        assert!(!Atom::LeScaled(Feature::PayloadMib, 1.0, Feature::Reuse).eval(&v));
    }

    #[test]
    fn classes_partition_the_enumerated_candidates() {
        let samples = toy_samples();
        let e = enumerate_classes(&samples, 2, 42);
        let members: u64 = e.classes.iter().map(|c| c.members).sum();
        assert_eq!(
            members, e.preds_enumerated,
            "every candidate lands in a class"
        );
        // Fingerprints are pairwise distinct.
        let mut fps: Vec<&Fingerprint> = e.classes.iter().map(|c| &c.fingerprint).collect();
        let before = fps.len();
        fps.sort();
        fps.dedup();
        assert_eq!(fps.len(), before, "class fingerprints must be unique");
    }

    #[test]
    fn same_seed_reproduces_the_same_classes() {
        let samples = toy_samples();
        let a = enumerate_classes(&samples, 3, 7);
        let b = enumerate_classes(&samples, 3, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn support_counts_match_fingerprint_popcount() {
        let samples = toy_samples();
        let e = enumerate_classes(&samples, 2, 1);
        for class in &e.classes {
            let pop: u32 = class.fingerprint.iter().map(|w| w.count_ones()).sum();
            assert_eq!(class.support, pop);
        }
    }
}
