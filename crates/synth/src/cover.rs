//! Greedy minimal-cover selection over sound equivalence classes.
//!
//! Every equivalence class whose matching samples all carry the same
//! oracle label is a *sound* rule candidate: "when this predicate
//! holds, pick that model". The selector greedily picks the candidate
//! covering the most still-uncovered samples (ties: smaller term, then
//! earlier discovery), until no candidate gains anything. Because every
//! selected rule is sound on the whole table, two selected rules can
//! only overlap on samples where they agree — first-match evaluation
//! order is therefore irrelevant to correctness.

use icomm_models::CommModelKind;
use serde::{Deserialize, Serialize};

use crate::grammar::{Enumeration, Pred};

/// One synthesized decision rule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Rule {
    /// The guard predicate over the feature space.
    pub pred: Pred,
    /// Model the rule assigns when the guard holds.
    pub model: CommModelKind,
    /// Training samples the rule matched (all carried `model`).
    pub support: u32,
    /// Boards contributing supporting samples, sorted and deduplicated.
    pub boards: Vec<String>,
}

/// Result of cover selection over one training table.
#[derive(Debug, Clone, PartialEq)]
pub struct Cover {
    /// Selected rules, in greedy pick order.
    pub rules: Vec<Rule>,
    /// Per-sample coverage flags, parallel to the training table.
    pub covered: Vec<bool>,
    /// Sound candidates considered (classes with a uniform label).
    pub sound_candidates: usize,
}

impl Cover {
    /// Number of training samples no selected rule matches.
    pub fn uncovered(&self) -> usize {
        self.covered.iter().filter(|c| !**c).count()
    }
}

fn bit(fp: &[u64], i: usize) -> bool {
    fp[i / 64] >> (i % 64) & 1 == 1
}

/// Selects a greedy minimal cover of `labels` from the enumeration's
/// equivalence classes.
///
/// `labels` and `boards` run parallel to the sample table the
/// enumeration was built over. A class is a candidate iff it matches at
/// least one sample and every sample it matches carries the same label;
/// the greedy loop then maximizes newly covered samples per pick.
///
/// # Panics
///
/// Panics if `labels` and `boards` disagree in length (caller bug).
pub fn select_cover(
    enumeration: &Enumeration,
    labels: &[CommModelKind],
    boards: &[String],
) -> Cover {
    assert_eq!(labels.len(), boards.len(), "parallel table columns");
    let n = labels.len();

    // Sound candidates: (class index, uniform label).
    let mut candidates: Vec<(usize, CommModelKind)> = Vec::new();
    'class: for (ci, class) in enumeration.classes.iter().enumerate() {
        if class.support == 0 {
            continue;
        }
        let mut label = None;
        for (i, l) in labels.iter().enumerate() {
            if !bit(&class.fingerprint, i) {
                continue;
            }
            match label {
                None => label = Some(*l),
                Some(seen) if seen == *l => {}
                Some(_) => continue 'class,
            }
        }
        if let Some(l) = label {
            candidates.push((ci, l));
        }
    }

    let mut covered = vec![false; n];
    let mut rules = Vec::new();
    loop {
        let mut best: Option<(usize, usize, CommModelKind)> = None; // (gain, class, label)
        for &(ci, label) in &candidates {
            let class = &enumeration.classes[ci];
            let gain = (0..n)
                .filter(|&i| bit(&class.fingerprint, i) && !covered[i])
                .count();
            if gain == 0 {
                continue;
            }
            let better = match best {
                None => true,
                Some((bg, bc, _)) => {
                    let (bsize, csize) = (
                        enumeration.classes[bc].representative.size(),
                        class.representative.size(),
                    );
                    gain > bg || (gain == bg && (csize < bsize || (csize == bsize && ci < bc)))
                }
            };
            if better {
                best = Some((gain, ci, label));
            }
        }
        let Some((_, ci, label)) = best else { break };
        let class = &enumeration.classes[ci];
        let mut rule_boards: Vec<String> = Vec::new();
        let mut support = 0u32;
        for i in 0..n {
            if bit(&class.fingerprint, i) {
                covered[i] = true;
                support += 1;
                rule_boards.push(boards[i].clone());
            }
        }
        rule_boards.sort_unstable();
        rule_boards.dedup();
        rules.push(Rule {
            pred: class.representative.clone(),
            model: label,
            support,
            boards: rule_boards,
        });
    }

    Cover {
        rules,
        covered,
        sound_candidates: candidates.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grammar::enumerate_classes;

    /// Two clusters split on feature 0: below 1.5 → StandardCopy,
    /// above → ZeroCopy.
    fn split_table() -> (Vec<Vec<f64>>, Vec<CommModelKind>, Vec<String>) {
        let mut samples = Vec::new();
        let mut labels = Vec::new();
        let mut boards = Vec::new();
        for i in 0..6 {
            let mut v = vec![0.0; crate::feature::FEATURE_COUNT];
            v[0] = f64::from(i);
            samples.push(v);
            labels.push(if i < 2 {
                CommModelKind::StandardCopy
            } else {
                CommModelKind::ZeroCopy
            });
            boards.push(if i % 2 == 0 { "tx2" } else { "nano" }.to_string());
        }
        (samples, labels, boards)
    }

    #[test]
    fn cover_is_sound_and_complete_on_separable_data() {
        let (samples, labels, boards) = split_table();
        let e = enumerate_classes(&samples, 2, 42);
        let cover = select_cover(&e, &labels, &boards);
        assert_eq!(cover.uncovered(), 0, "separable table must be covered");
        // Soundness: every rule agrees with the label of everything it matches.
        for rule in &cover.rules {
            for (i, sample) in samples.iter().enumerate() {
                if rule.pred.eval(sample) {
                    assert_eq!(rule.model, labels[i], "rule {} mismatches", rule.pred);
                }
            }
            assert!(rule.support > 0);
            assert!(!rule.boards.is_empty());
        }
    }

    #[test]
    fn overlapping_sound_rules_always_agree() {
        let (samples, labels, boards) = split_table();
        let e = enumerate_classes(&samples, 2, 9);
        let cover = select_cover(&e, &labels, &boards);
        for sample in &samples {
            let picks: Vec<CommModelKind> = cover
                .rules
                .iter()
                .filter(|r| r.pred.eval(sample))
                .map(|r| r.model)
                .collect();
            assert!(picks.windows(2).all(|w| w[0] == w[1]), "conflicting rules");
        }
    }

    #[test]
    fn rule_boards_are_sorted_and_deduped() {
        let (samples, labels, boards) = split_table();
        let e = enumerate_classes(&samples, 2, 42);
        let cover = select_cover(&e, &labels, &boards);
        for rule in &cover.rules {
            let mut sorted = rule.boards.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted, rule.boards);
        }
    }
}
