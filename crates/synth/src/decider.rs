//! Answering live tune/joint-assignment queries from a rule set alone.
//!
//! A [`RuleDecider`] holds a synthesized [`RuleSet`] and answers
//! `(board, mix, cap)` queries. In-scope queries — contexts the
//! synthesis verified rule-for-rule against the oracle — are answered
//! by first-match rule evaluation with **no** `M^N` sweep. Anything
//! else (unknown board, unverified context, a tenant no rule matches)
//! falls back to the full [`oracle_assignment_capped`] sweep, so the
//! decider never answers worse than the oracle and never panics on an
//! out-of-scope query.

use icomm_core::{oracle_assignment_capped, CorunTenant};
use icomm_models::CommModelKind;
use icomm_soc::units::ByteSize;
use icomm_soc::DeviceProfile;
use serde::{Deserialize, Serialize};

use crate::feature::mix_features;
use crate::sweep::{context_tenants, stock_board};
use crate::RuleSet;

/// How a [`MixDecision`] was produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DecisionSource {
    /// Answered from synthesized rules alone — no oracle sweep ran.
    Rules,
    /// Out of verified scope (or an unmatched tenant): the full oracle
    /// sweep produced the answer.
    SweepFallback,
}

/// A joint model assignment for one queried mix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MixDecision {
    /// Chosen model per tenant, in mix order.
    pub assignment: Vec<CommModelKind>,
    /// Whether rules or the fallback sweep answered.
    pub source: DecisionSource,
    /// Distinct rules consulted (0 on fallback).
    pub rules_used: usize,
}

/// Answers decision queries from a [`RuleSet`], with oracle fallback.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RuleDecider {
    ruleset: RuleSet,
}

impl RuleDecider {
    /// Wraps a synthesized rule set.
    pub fn new(ruleset: RuleSet) -> Self {
        RuleDecider { ruleset }
    }

    /// The wrapped rule set.
    pub fn ruleset(&self) -> &RuleSet {
        &self.ruleset
    }

    /// Whether `(board, mix, cap)` was verified exact during synthesis.
    pub fn in_scope(&self, board: &str, mix: &str, cap: Option<ByteSize>) -> bool {
        self.ruleset
            .in_scope(board, mix, cap.map_or(0, ByteSize::as_u64))
    }

    /// Answers a `(board, mix, cap)` query.
    ///
    /// In-scope queries are answered from rules; everything else falls
    /// back to the oracle sweep.
    ///
    /// # Errors
    ///
    /// Returns a message when the board or mix name is unknown, or when
    /// the fallback sweep itself fails (e.g. an infeasible cap).
    pub fn decide(
        &self,
        board: &str,
        mix: &str,
        cap: Option<ByteSize>,
    ) -> Result<MixDecision, String> {
        let device =
            stock_board(board).ok_or_else(|| format!("unknown board '{board}' for decide"))?;
        let tenants = context_tenants(mix)?;
        if self.in_scope(board, mix, cap) {
            if let Some((assignment, rules_used)) =
                self.match_tenants(board, &device, &tenants, cap)
            {
                return Ok(MixDecision {
                    assignment,
                    source: DecisionSource::Rules,
                    rules_used,
                });
            }
        }
        let assignment = oracle_assignment_capped(&device, &tenants, cap)?;
        Ok(MixDecision {
            assignment,
            source: DecisionSource::SweepFallback,
            rules_used: 0,
        })
    }

    /// First-match rule evaluation for every tenant of the mix; `None`
    /// when the board has no stored characterization or any tenant
    /// matches no rule (callers then fall back to the sweep).
    fn match_tenants(
        &self,
        board: &str,
        device: &DeviceProfile,
        tenants: &[CorunTenant],
        cap: Option<ByteSize>,
    ) -> Option<(Vec<CommModelKind>, usize)> {
        let characterization = self.ruleset.characterization(board)?;
        let mut assignment = Vec::with_capacity(tenants.len());
        let mut used: Vec<usize> = Vec::new();
        for features in mix_features(device, characterization, tenants, cap) {
            let (rule_idx, model) = self.ruleset.match_features(&features)?;
            if !used.contains(&rule_idx) {
                used.push(rule_idx);
            }
            assignment.push(model);
        }
        Some((assignment, used.len()))
    }
}
