//! The feature space the term grammar ranges over.
//!
//! Every sweep sample — one tenant inside one `(board, mix, cap)`
//! context — is projected onto a fixed vector of characterization and
//! workload features. The grammar in [`crate::grammar`] builds
//! predicates over these features; the decider in [`crate::decider`]
//! recomputes the same vector at query time, so a rule learned from the
//! sweep evaluates identically when it answers a live query.
//!
//! Features split into three groups:
//!
//! - **workload** (payload, copy/kernel ratio, reuse): functions of the
//!   tenant's workload and the device profile, computed from one cheap
//!   solo standard-copy run — never from the `M^N` oracle sweep.
//! - **characterization** (cache thresholds, max speedups, the UPM
//!   kernel penalty): read straight off the board's
//!   [`DeviceCharacterization`].
//! - **context** (interference pressure, cap pressure): what the
//!   co-tenants and the memory budget do to this tenant.

use icomm_core::{copy_time_estimate, tenant_demand, CorunTenant};
use icomm_footprint::model_footprint;
use icomm_microbench::DeviceCharacterization;
use icomm_models::{run_model, CommModelKind};
use icomm_soc::units::ByteSize;
use icomm_soc::DeviceProfile;
use serde::{Deserialize, Serialize};

/// Number of features in the fixed vector.
pub const FEATURE_COUNT: usize = 12;

/// One axis of the feature space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Feature {
    /// Bytes the workload exchanges with the GPU, in MiB.
    PayloadMib,
    /// Estimated copy time over kernel time under standard copy — the
    /// paper's headline predictor for when copies dominate.
    CopyKernelRatio,
    /// Bytes the GPU touches over bytes exchanged: >1 means the kernel
    /// revisits data and caches can pay off.
    Reuse,
    /// GPU cache-usage threshold of the board, percent.
    GpuCacheThresholdPct,
    /// Zone-2 GPU threshold when the board exposes one (100 when not).
    GpuCacheZone2Pct,
    /// CPU cache-usage threshold of the board, percent.
    CpuCacheThresholdPct,
    /// Board's measured SC→ZC maximum speedup.
    ScZcMaxSpeedup,
    /// Board's measured ZC→SC maximum speedup.
    ZcScMaxSpeedup,
    /// 1 when the board supports hardware-coherent UPM, else 0.
    UpmSupported,
    /// Kernel slowdown of running over coherent UPM (1 = free).
    UpmKernelPenalty,
    /// Sum over co-tenants of their solo DRAM-channel utilization under
    /// their current models — how crowded the channel is before this
    /// tenant runs.
    InterferencePressure,
    /// Summed current-model footprint of the whole mix over the memory
    /// cap (0 when uncapped) — how hard the budget binds.
    CapPressure,
}

impl Feature {
    /// Every feature, in the canonical vector order.
    pub const ALL: [Feature; FEATURE_COUNT] = [
        Feature::PayloadMib,
        Feature::CopyKernelRatio,
        Feature::Reuse,
        Feature::GpuCacheThresholdPct,
        Feature::GpuCacheZone2Pct,
        Feature::CpuCacheThresholdPct,
        Feature::ScZcMaxSpeedup,
        Feature::ZcScMaxSpeedup,
        Feature::UpmSupported,
        Feature::UpmKernelPenalty,
        Feature::InterferencePressure,
        Feature::CapPressure,
    ];

    /// Position of this feature in the canonical vector.
    pub fn index(self) -> usize {
        match self {
            Feature::PayloadMib => 0,
            Feature::CopyKernelRatio => 1,
            Feature::Reuse => 2,
            Feature::GpuCacheThresholdPct => 3,
            Feature::GpuCacheZone2Pct => 4,
            Feature::CpuCacheThresholdPct => 5,
            Feature::ScZcMaxSpeedup => 6,
            Feature::ZcScMaxSpeedup => 7,
            Feature::UpmSupported => 8,
            Feature::UpmKernelPenalty => 9,
            Feature::InterferencePressure => 10,
            Feature::CapPressure => 11,
        }
    }

    /// Snake-case name used in rule pretty-printing.
    pub fn name(self) -> &'static str {
        match self {
            Feature::PayloadMib => "payload_mib",
            Feature::CopyKernelRatio => "copy_kernel_ratio",
            Feature::Reuse => "reuse",
            Feature::GpuCacheThresholdPct => "gpu_cache_threshold_pct",
            Feature::GpuCacheZone2Pct => "gpu_cache_zone2_pct",
            Feature::CpuCacheThresholdPct => "cpu_cache_threshold_pct",
            Feature::ScZcMaxSpeedup => "sc_zc_max_speedup",
            Feature::ZcScMaxSpeedup => "zc_sc_max_speedup",
            Feature::UpmSupported => "upm_supported",
            Feature::UpmKernelPenalty => "upm_kernel_penalty",
            Feature::InterferencePressure => "interference_pressure",
            Feature::CapPressure => "cap_pressure",
        }
    }
}

/// One sample's projection onto the feature space.
pub type FeatureVec = [f64; FEATURE_COUNT];

/// The per-tenant simulator probes the feature vector is built from:
/// the solo DRAM-channel utilization under the tenant's current model
/// (what co-tenants see as interference pressure) and the solo
/// standard-copy kernel time (the copy/kernel ratio's denominator).
/// A tenant already running standard copy needs a single run for both.
fn tenant_probe(device: &DeviceProfile, tenant: &CorunTenant) -> (f64, f64) {
    let sc = run_model(CommModelKind::StandardCopy, device, &tenant.workload);
    let kernel_picos = sc.kernel_time.as_picos().max(1) as f64;
    let ratio = if tenant.current == CommModelKind::StandardCopy {
        // Same numbers tenant_demand would read off the same run.
        let wall = sc.total_time.as_picos().max(1) as f64;
        sc.counters.dram.busy_time.as_picos() as f64 / wall
    } else {
        let demand = tenant_demand(device, &tenant.name, &tenant.workload, tenant.current);
        let wall = demand.wall_solo.as_picos().max(1) as f64;
        demand.dram_busy_solo.as_picos() as f64 / wall
    };
    (ratio, kernel_picos)
}

/// Summed current-model footprint of the mix over the cap (0 uncapped).
fn mix_cap_pressure(device: &DeviceProfile, tenants: &[CorunTenant], cap: Option<ByteSize>) -> f64 {
    cap.map_or(0.0, |c| {
        let total: u64 = tenants
            .iter()
            .map(|t| model_footprint(t.current, &t.workload, device).as_u64())
            .sum();
        total as f64 / c.as_u64().max(1) as f64
    })
}

fn assemble(
    device: &DeviceProfile,
    characterization: &DeviceCharacterization,
    tenants: &[CorunTenant],
    idx: usize,
    probes: &[(f64, f64)],
    cap_pressure: f64,
) -> FeatureVec {
    let tenant = &tenants[idx];
    let kernel_picos = probes[idx].1;
    let copy_picos = copy_time_estimate(device, &tenant.workload).as_picos() as f64;
    let payload_bytes = tenant.workload.bytes_exchanged().as_u64();
    let accessed_bytes = tenant.workload.gpu.shared_accesses.bytes();

    let mut pressure = 0.0;
    for (j, (ratio, _)) in probes.iter().enumerate() {
        if j == idx {
            continue;
        }
        pressure += ratio;
    }

    let mut v = [0.0; FEATURE_COUNT];
    v[Feature::PayloadMib.index()] = payload_bytes as f64 / (1u64 << 20) as f64;
    v[Feature::CopyKernelRatio.index()] = copy_picos / kernel_picos;
    v[Feature::Reuse.index()] = accessed_bytes as f64 / payload_bytes.max(1) as f64;
    v[Feature::GpuCacheThresholdPct.index()] = characterization.gpu_cache_threshold_pct;
    v[Feature::GpuCacheZone2Pct.index()] = characterization.gpu_cache_zone2_pct.unwrap_or(100.0);
    v[Feature::CpuCacheThresholdPct.index()] = characterization.cpu_cache_threshold_pct;
    v[Feature::ScZcMaxSpeedup.index()] = characterization.sc_zc_max_speedup;
    v[Feature::ZcScMaxSpeedup.index()] = characterization.zc_sc_max_speedup;
    v[Feature::UpmSupported.index()] = f64::from(characterization.upm_supported);
    v[Feature::UpmKernelPenalty.index()] = characterization.upm_kernel_penalty;
    v[Feature::InterferencePressure.index()] = pressure;
    v[Feature::CapPressure.index()] = cap_pressure;
    v
}

/// Computes the feature vector of every tenant of a mix on `device`
/// under `cap`, running each per-tenant simulator probe exactly once.
///
/// This is the query-path entry point: an N-tenant mix costs N demand
/// probes plus N solo standard-copy runs, where per-tenant
/// [`tenant_features`] calls would repeat the demand probes N times
/// over. Deterministic, and sample-for-sample identical to
/// [`tenant_features`] — the sweep trains and the decider answers on
/// the same numbers.
pub fn mix_features(
    device: &DeviceProfile,
    characterization: &DeviceCharacterization,
    tenants: &[CorunTenant],
    cap: Option<ByteSize>,
) -> Vec<FeatureVec> {
    let probes: Vec<(f64, f64)> = tenants.iter().map(|t| tenant_probe(device, t)).collect();
    let cap_pressure = mix_cap_pressure(device, tenants, cap);
    (0..tenants.len())
        .map(|idx| {
            assemble(
                device,
                characterization,
                tenants,
                idx,
                &probes,
                cap_pressure,
            )
        })
        .collect()
}

/// Computes the feature vector of tenant `idx` inside its mix on
/// `device` under `cap`.
///
/// Deterministic: every term is a closed-form function of the device
/// profile, the characterization, and one solo simulator run — no
/// randomness, no wall clock. When vectors for the whole mix are
/// needed, [`mix_features`] computes the shared per-tenant probes once
/// instead of once per queried index.
pub fn tenant_features(
    device: &DeviceProfile,
    characterization: &DeviceCharacterization,
    tenants: &[CorunTenant],
    idx: usize,
    cap: Option<ByteSize>,
) -> FeatureVec {
    let probes: Vec<(f64, f64)> = tenants.iter().map(|t| tenant_probe(device, t)).collect();
    let cap_pressure = mix_cap_pressure(device, tenants, cap);
    assemble(
        device,
        characterization,
        tenants,
        idx,
        &probes,
        cap_pressure,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_order_matches_index() {
        for (i, f) in Feature::ALL.iter().enumerate() {
            assert_eq!(f.index(), i, "{}", f.name());
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = Feature::ALL.iter().map(|f| f.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), FEATURE_COUNT);
    }
}
