//! Deterministic sweep-sample generation from the existing simulators.
//!
//! A *sweep* runs the ground-truth decision stack — solo
//! [`icomm_models::run_model`] runs for every candidate model plus the
//! brute-force
//! [`oracle_assignment_capped`] over every tenant combination — across a
//! set of `(board, mix, cap)` contexts, and records one
//! [`SweepSample`] per tenant: its feature vector, the per-model solo
//! wall times the sweep measured, and the oracle's chosen model as the
//! label. The table is what the synthesizer trains on, and its
//! persisted size is the denominator of the compression ratio the rule
//! set is measured by.

use icomm_core::{oracle_assignment_capped, tenant_demand, CorunTenant};
use icomm_microbench::{quick_characterize_device, DeviceCharacterization};
use icomm_models::{candidate_models, CommModelKind};
use icomm_soc::units::ByteSize;
use icomm_soc::DeviceProfile;
use serde::{Deserialize, Serialize};

use crate::feature::mix_features;

/// The stock board names the sweep knows (canonical catalog forms).
pub const BOARD_NAMES: [&str; 6] = [
    "nano",
    "tx2",
    "xavier",
    "orin-like",
    "mi300a-like",
    "gh-like",
];

/// Mixes a default sweep visits: the three applications solo, every
/// named co-run mix uncapped, and the memory-heavy mix under the
/// 6 MiB cap that demonstrably demotes it.
pub const SWEEP_MIX_NAMES: [&str; 8] = [
    "solo:shwfs",
    "solo:orb",
    "solo:lane",
    "duo",
    "trio",
    "quad",
    "contended",
    "pressure",
];

/// The cap (bytes) the capped `pressure` context runs under.
pub const SWEEP_CAP_BYTES: u64 = 6 << 20;

/// Resolves a stock board by its canonical (or aliased) name.
pub fn stock_board(name: &str) -> Option<DeviceProfile> {
    match name.to_ascii_lowercase().as_str() {
        "nano" | "jetson-nano" => Some(DeviceProfile::jetson_nano()),
        "tx2" | "jetson-tx2" => Some(DeviceProfile::jetson_tx2()),
        "xavier" | "agx-xavier" | "jetson-agx-xavier" => Some(DeviceProfile::jetson_agx_xavier()),
        "orin" | "orin-like" => Some(DeviceProfile::orin_like()),
        "mi300a" | "mi300a-like" => Some(DeviceProfile::mi300a_like()),
        "gh" | "gh-like" | "grace-hopper-like" => Some(DeviceProfile::gh_like()),
        _ => None,
    }
}

/// Resolves a sweep mix name — a named co-run mix, or `solo:<app>` for
/// a single-tenant tune context — into its tenant list.
///
/// # Errors
///
/// Returns a message listing the valid names when `mix` is unknown.
pub fn context_tenants(mix: &str) -> Result<Vec<CorunTenant>, String> {
    if let Some(app) = mix.strip_prefix("solo:") {
        let workload = match app {
            "shwfs" => icomm_apps::ShwfsApp::default().workload(),
            "orb" => icomm_apps::OrbApp::default().workload(),
            "lane" => icomm_apps::LaneApp::default().workload(),
            other => return Err(format!("unknown app '{other}' (try shwfs, orb, lane)")),
        };
        return Ok(vec![CorunTenant {
            name: app.to_string(),
            workload,
            current: CommModelKind::StandardCopy,
        }]);
    }
    Ok(icomm_apps::mix_by_name(mix)?
        .into_iter()
        .map(|s| CorunTenant {
            name: s.name,
            workload: s.workload,
            current: s.current,
        })
        .collect())
}

/// One training sample: one tenant inside one `(board, mix, cap)`
/// context, with everything the sweep measured for it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepSample {
    /// Board the context ran on.
    pub board: String,
    /// Mix name (including `solo:<app>` contexts).
    pub mix: String,
    /// Tenant name within the mix.
    pub tenant: String,
    /// Memory cap of the context, bytes (0 = uncapped).
    pub mem_cap_bytes: u64,
    /// Feature vector in [`crate::feature::Feature::ALL`] order.
    pub features: Vec<f64>,
    /// Candidate models the sweep measured, catalog order.
    pub models: Vec<CommModelKind>,
    /// Measured solo wall time per candidate model, microseconds,
    /// aligned with `models`.
    pub model_wall_us: Vec<f64>,
    /// The oracle's joint choice for this tenant — the label.
    pub label: CommModelKind,
}

/// The full training table plus the boards it came from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepTable {
    /// Boards swept, in request order.
    pub boards: Vec<String>,
    /// All samples, in deterministic board → mix → tenant order.
    pub samples: Vec<SweepSample>,
    /// Capped contexts skipped because the cap was infeasible on that
    /// board (eviction would be required), as `board/mix` strings.
    pub skipped_contexts: Vec<String>,
}

/// Sweeps one board over the given mixes and returns its
/// characterization plus samples.
///
/// Capped contexts that are infeasible under the cap (the oracle would
/// have to evict) are skipped and reported, not failed: a sweep over a
/// small board must not abort the whole synthesis.
///
/// # Errors
///
/// Returns a message on an unknown board or mix name.
pub fn sweep_board(
    board: &str,
    mixes: &[String],
    capped_pressure: bool,
) -> Result<(DeviceCharacterization, Vec<SweepSample>, Vec<String>), String> {
    let device = stock_board(board).ok_or_else(|| format!("unknown board '{board}' for sweep"))?;
    let characterization = quick_characterize_device(&device);
    let mut samples = Vec::new();
    let mut skipped = Vec::new();

    let mut contexts: Vec<(String, Option<ByteSize>)> =
        mixes.iter().map(|m| (m.clone(), None)).collect();
    if capped_pressure && mixes.iter().any(|m| m == "pressure") {
        contexts.push(("pressure".to_string(), Some(ByteSize(SWEEP_CAP_BYTES))));
    }

    for (mix, cap) in contexts {
        let tenants = context_tenants(&mix)?;
        let labels = match oracle_assignment_capped(&device, &tenants, cap) {
            Ok(labels) => labels,
            Err(err) if cap.is_some() => {
                // The cap cannot admit this mix on this board even after
                // full demotion; record the hole and move on.
                let _ = err;
                skipped.push(format!("{board}/{mix}"));
                continue;
            }
            Err(err) => return Err(format!("{board}/{mix}: {err}")),
        };
        let candidates = candidate_models(&device);
        let features_by_tenant = mix_features(&device, &characterization, &tenants, cap);
        for (i, tenant) in tenants.iter().enumerate() {
            let features = features_by_tenant[i];
            let model_wall_us: Vec<f64> = candidates
                .iter()
                .map(|&m| {
                    let d = tenant_demand(&device, &tenant.name, &tenant.workload, m);
                    d.wall_solo.as_picos() as f64 / 1e6
                })
                .collect();
            samples.push(SweepSample {
                board: board.to_string(),
                mix: mix.clone(),
                tenant: tenant.name.clone(),
                mem_cap_bytes: cap.map_or(0, |c| c.as_u64()),
                features: features.to_vec(),
                models: candidates.clone(),
                model_wall_us,
                label: labels[i],
            });
        }
    }
    Ok((characterization, samples, skipped))
}

impl SweepTable {
    /// Serialized size of the table inside a CRC-framed snapshot —
    /// the bytes a persisted sweep occupies on disk.
    ///
    /// # Errors
    ///
    /// Propagates serialization failures (practically unreachable for
    /// this type).
    pub fn persisted_bytes(&self) -> Result<u64, String> {
        let json = icomm_persist::to_string(self).map_err(|e| e.to_string())?;
        Ok(icomm_persist::snapshot::encode(&json).len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_stock_board_resolves() {
        for name in BOARD_NAMES {
            assert!(stock_board(name).is_some(), "{name}");
        }
        assert!(stock_board("pi5").is_none());
    }

    #[test]
    fn solo_contexts_resolve_to_one_tenant() {
        for app in ["shwfs", "orb", "lane"] {
            let tenants = context_tenants(&format!("solo:{app}")).expect("solo resolves");
            assert_eq!(tenants.len(), 1);
            assert_eq!(tenants[0].name, app);
        }
        assert!(context_tenants("solo:quake").is_err());
        assert!(context_tenants("nosuchmix").is_err());
    }

    #[test]
    fn sweeping_a_board_labels_every_tenant() {
        let mixes = vec!["solo:shwfs".to_string(), "duo".to_string()];
        let (chr, samples, skipped) = sweep_board("tx2", &mixes, false).expect("sweep runs");
        assert_eq!(chr.device, "Jetson TX2");
        assert!(skipped.is_empty());
        assert_eq!(samples.len(), 3, "1 solo + 2 duo tenants");
        for s in &samples {
            assert_eq!(s.features.len(), crate::feature::FEATURE_COUNT);
            assert_eq!(s.models.len(), s.model_wall_us.len());
            assert!(s.models.contains(&s.label), "label must be a candidate");
            assert!(s.model_wall_us.iter().all(|w| *w > 0.0));
        }
    }

    #[test]
    fn sweep_is_deterministic() {
        let mixes = vec!["duo".to_string()];
        let a = sweep_board("nano", &mixes, false).expect("sweep runs");
        let b = sweep_board("nano", &mixes, false).expect("sweep runs");
        assert_eq!(a.1, b.1);
    }
}
