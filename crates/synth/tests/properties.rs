//! Property tests for the rule-synthesis core, run over synthetic
//! feature tables (no simulator sweeps): seeded enumeration is
//! deterministic, equivalence classes partition the candidate stream
//! and their fingerprints tell the truth sample-by-sample, greedy
//! covers are sound on the table they were trained on, and rule sets
//! survive persistence byte-identically.

use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;

use icomm_models::CommModelKind;
use icomm_synth::{enumerate_classes, select_cover, RuleSet, FEATURE_COUNT};

/// A small discrete value palette: value collisions and duplicate
/// columns are exactly the cases observational equivalence must merge.
const PALETTE: [f64; 5] = [-1.0, 0.0, 0.5, 1.0, 2.0];

const LABELS: [CommModelKind; 3] = [
    CommModelKind::StandardCopy,
    CommModelKind::UnifiedMemory,
    CommModelKind::ZeroCopy,
];

/// Largest table the strategies below generate.
const MAX_SAMPLES: usize = 13;

fn to_table(rows: Vec<Vec<usize>>) -> Vec<Vec<f64>> {
    rows.into_iter()
        .map(|row| row.into_iter().map(|i| PALETTE[i]).collect())
        .collect()
}

fn to_labels(picks: &[usize], len: usize) -> Vec<CommModelKind> {
    (0..len).map(|i| LABELS[picks[i]]).collect()
}

fn bit(fingerprint: &[u64], index: usize) -> bool {
    fingerprint[index / 64] >> (index % 64) & 1 == 1
}

proptest! {
    /// Same table, same seed: the full enumeration (classes,
    /// representatives, fingerprints, counters) is reproduced exactly.
    #[test]
    fn enumeration_is_deterministic_per_seed(
        rows in prop::collection::vec(
            prop::collection::vec(0usize..PALETTE.len(), FEATURE_COUNT..FEATURE_COUNT + 1),
            2..MAX_SAMPLES + 1,
        ),
        seed in 0u64..1024,
    ) {
        let table = to_table(rows);
        let a = enumerate_classes(&table, 2, seed);
        let b = enumerate_classes(&table, 2, seed);
        prop_assert_eq!(a, b);
    }

    /// The classes partition the candidate stream: member counts sum to
    /// the number of predicates enumerated, no two classes share a
    /// fingerprint, and each fingerprint is exactly the representative's
    /// truth vector over the table (support included).
    #[test]
    fn classes_partition_the_candidate_stream(
        rows in prop::collection::vec(
            prop::collection::vec(0usize..PALETTE.len(), FEATURE_COUNT..FEATURE_COUNT + 1),
            2..MAX_SAMPLES + 1,
        ),
        seed in 0u64..1024,
    ) {
        let table = to_table(rows);
        let enumeration = enumerate_classes(&table, 2, seed);
        let members: u64 = enumeration.classes.iter().map(|c| c.members).sum();
        prop_assert_eq!(members, enumeration.preds_enumerated);
        for (i, a) in enumeration.classes.iter().enumerate() {
            for b in &enumeration.classes[i + 1..] {
                prop_assert_ne!(&a.fingerprint, &b.fingerprint, "duplicate class fingerprint");
            }
        }
        for class in &enumeration.classes {
            let mut support = 0u32;
            for (index, sample) in table.iter().enumerate() {
                let hit = class.representative.eval(sample);
                prop_assert_eq!(
                    bit(&class.fingerprint, index),
                    hit,
                    "fingerprint bit {} lies about `{}`",
                    index,
                    class.representative
                );
                support += u32::from(hit);
            }
            prop_assert_eq!(class.support, support);
        }
    }

    /// Every selected rule is sound on its own training table: a rule
    /// never matches a sample carrying a different oracle label, the
    /// covered mask agrees with first-match evaluation, and
    /// `uncovered()` counts exactly the unmatched samples.
    #[test]
    fn greedy_cover_is_sound_on_training_samples(
        rows in prop::collection::vec(
            prop::collection::vec(0usize..PALETTE.len(), FEATURE_COUNT..FEATURE_COUNT + 1),
            2..MAX_SAMPLES + 1,
        ),
        picks in prop::collection::vec(0usize..LABELS.len(), MAX_SAMPLES..MAX_SAMPLES + 1),
        seed in 0u64..1024,
    ) {
        let table = to_table(rows);
        let labels = to_labels(&picks, table.len());
        let boards = vec!["prop-board".to_string(); table.len()];
        let enumeration = enumerate_classes(&table, 2, seed);
        let cover = select_cover(&enumeration, &labels, &boards);
        for rule in &cover.rules {
            for (sample, label) in table.iter().zip(&labels) {
                if rule.pred.eval(sample) {
                    prop_assert_eq!(
                        *label, rule.model,
                        "unsound rule `{}` matched a {:?}-labeled sample",
                        rule.pred, label
                    );
                }
            }
        }
        let mut uncovered = 0usize;
        for (index, sample) in table.iter().enumerate() {
            let matched = cover.rules.iter().any(|r| r.pred.eval(sample));
            prop_assert_eq!(cover.covered[index], matched);
            uncovered += usize::from(!matched);
        }
        prop_assert_eq!(cover.uncovered(), uncovered);
    }

    /// A rule set round-trips through JSON and through the CRC-framed
    /// snapshot file byte-identically.
    #[test]
    fn ruleset_persist_round_trip_is_byte_identical(
        rows in prop::collection::vec(
            prop::collection::vec(0usize..PALETTE.len(), FEATURE_COUNT..FEATURE_COUNT + 1),
            2..MAX_SAMPLES + 1,
        ),
        picks in prop::collection::vec(0usize..LABELS.len(), MAX_SAMPLES..MAX_SAMPLES + 1),
        seed in 0u64..1024,
    ) {
        let table = to_table(rows);
        let labels = to_labels(&picks, table.len());
        let boards = vec!["prop-board".to_string(); table.len()];
        let enumeration = enumerate_classes(&table, 2, seed);
        let cover = select_cover(&enumeration, &labels, &boards);
        let ruleset = RuleSet {
            seed,
            max_size: 2,
            boards: vec!["prop-board".to_string()],
            rules: cover.rules.clone(),
            scope: vec!["prop-board/duo".to_string()],
            samples: table.len() as u64,
            uncovered: cover.uncovered() as u64,
            disagreements: 0,
            board_characterizations: Vec::new(),
        };
        let json = icomm_persist::to_string(&ruleset).expect("ruleset serializes");
        let back: RuleSet = icomm_persist::from_str(&json).expect("ruleset parses");
        prop_assert_eq!(&back, &ruleset);
        let again = icomm_persist::to_string(&back).expect("ruleset re-serializes");
        prop_assert_eq!(&again, &json);

        static FILE_ID: AtomicU64 = AtomicU64::new(0);
        let path = std::env::temp_dir().join(format!(
            "icomm-synth-prop-{}-{}.snap",
            std::process::id(),
            FILE_ID.fetch_add(1, Ordering::Relaxed),
        ));
        ruleset.save(&path).expect("snapshot writes");
        let loaded = RuleSet::load(&path).expect("snapshot loads");
        let _ = std::fs::remove_file(&path);
        prop_assert_eq!(&loaded, &ruleset);
        let reloaded = icomm_persist::to_string(&loaded).expect("loaded ruleset serializes");
        prop_assert_eq!(reloaded, json);
    }
}
