//! Scheduler-run results.
//!
//! [`SchedReport`] carries every number derived from the virtual-time
//! run — it serializes byte-identically for a given
//! `(board, mix, policy, seed)` tuple, which is what the CI replay stage
//! compares. All floating-point fields are quantized at report-building
//! time (percent to 2 decimals, slowdowns to 3), so the JSON is stable
//! and human-diffable.

use std::fmt;

use serde::{Deserialize, Serialize};

/// One tenant's outcome over the whole run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantSummary {
    /// Tenant name, unique within the mix.
    pub name: String,
    /// Communication model the joint assignment gave the tenant
    /// (abbreviated: `SC`, `UM`, `ZC`).
    pub model: String,
    /// The tenant's measured solo-best model (abbreviated).
    pub solo_best: String,
    /// Whether co-location flipped the choice away from the solo best.
    pub flipped: bool,
    /// Release period (= implicit deadline), microseconds.
    pub period_us: u64,
    /// Jobs completed.
    pub jobs: u32,
    /// Jobs that finished after their deadline.
    pub missed: u32,
    /// `missed / jobs`, percent.
    pub miss_pct: f64,
    /// Mean job response time over the solo job cost.
    pub mean_slowdown: f64,
    /// Worst single-job slowdown.
    pub max_slowdown: f64,
    /// Times the bandwidth budget throttled the tenant.
    pub throttles: u64,
    /// Peak resident bytes the tenant's assigned model keeps on the
    /// board (closed-form `icomm-footprint` pricing).
    pub footprint_bytes: u64,
}

/// Deterministic results of one scheduler run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SchedReport {
    /// Board name.
    pub board: String,
    /// Mix name.
    pub mix: String,
    /// Policy name (`fifo` / `deadline`).
    pub policy: String,
    /// Seed the run replays from.
    pub seed: u64,
    /// Jobs each tenant released.
    pub jobs_per_tenant: u32,
    /// Concurrent job slots.
    pub slots: u32,
    /// Per-tenant outcomes, in mix order.
    pub tenants: Vec<TenantSummary>,
    /// Missed jobs over all jobs, percent.
    pub deadline_miss_pct: f64,
    /// Mean slowdown over all jobs of all tenants.
    pub mean_slowdown: f64,
    /// Virtual time of the last completion, microseconds.
    pub makespan_us: u64,
    /// Whether the joint assignment flipped any tenant off its solo best.
    pub any_flip: bool,
    /// Predicted combined co-run wall under the joint assignment, µs.
    pub joint_total_us: u64,
    /// Predicted combined co-run wall under per-app greedy choices, µs.
    pub greedy_total_us: u64,
    /// Explicit memory cap admission ran under (0 = the board's stock
    /// budget, which the paper-scale mixes never approach).
    pub mem_cap_bytes: u64,
    /// Summed footprint of the admitted assignment (the ledger's peak).
    pub footprint_bytes: u64,
    /// Budget bytes left once the admitted mix is charged.
    pub headroom_bytes: u64,
    /// Tenants the cap pushed onto a cheaper-footprint model than the
    /// unconstrained optimum would pick.
    pub demotions: u32,
    /// Tenants admission refused outright (largest cheapest-footprint
    /// first) because even full demotion could not fit the mix.
    pub evictions: u32,
    /// Footprint bytes turned away with the evicted tenants.
    pub spilled_bytes: u64,
}

impl SchedReport {
    /// Total jobs across tenants.
    pub fn total_jobs(&self) -> u32 {
        self.tenants.iter().map(|t| t.jobs).sum()
    }

    /// Total missed jobs across tenants.
    pub fn missed_jobs(&self) -> u32 {
        self.tenants.iter().map(|t| t.missed).sum()
    }
}

impl fmt::Display for SchedReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "sched        {} on {}  ({} policy, seed {}, {} slots, {} jobs/tenant)",
            self.mix, self.board, self.policy, self.seed, self.slots, self.jobs_per_tenant
        )?;
        for t in &self.tenants {
            let choice = if t.flipped {
                format!("{} (solo {}, flipped)", t.model, t.solo_best)
            } else {
                t.model.clone()
            };
            writeln!(
                f,
                "tenant       {:<12} {:<22} period {:>6} us  miss {:>5.1}%  slow {:.3}x (max {:.3}x)  throttles {}",
                t.name, choice, t.period_us, t.miss_pct, t.mean_slowdown, t.max_slowdown, t.throttles
            )?;
        }
        writeln!(
            f,
            "deadlines    {} missed / {} jobs  ({:.1}%)",
            self.missed_jobs(),
            self.total_jobs(),
            self.deadline_miss_pct
        )?;
        writeln!(
            f,
            "slowdown     mean {:.3}x  (makespan {} us)",
            self.mean_slowdown, self.makespan_us
        )?;
        writeln!(
            f,
            "assignment   joint {} us vs greedy {} us  (flip: {})",
            self.joint_total_us,
            self.greedy_total_us,
            if self.any_flip { "yes" } else { "no" }
        )?;
        let cap = if self.mem_cap_bytes > 0 {
            icomm_footprint::human_bytes(self.mem_cap_bytes)
        } else {
            "stock budget".to_string()
        };
        write!(
            f,
            "memory       footprint {} under {} (headroom {})  demoted {}  evicted {} (spilled {})",
            icomm_footprint::human_bytes(self.footprint_bytes),
            cap,
            icomm_footprint::human_bytes(self.headroom_bytes),
            self.demotions,
            self.evictions,
            icomm_footprint::human_bytes(self.spilled_bytes),
        )
    }
}

/// Rounds a percentage to 2 decimals for stable serialization.
pub(crate) fn q_pct(x: f64) -> f64 {
    (x * 100.0).round() / 100.0
}

/// Rounds a slowdown to 3 decimals for stable serialization.
pub(crate) fn q_slow(x: f64) -> f64 {
    (x * 1000.0).round() / 1000.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SchedReport {
        SchedReport {
            board: "jetson-tx2".to_string(),
            mix: "contended".to_string(),
            policy: "deadline".to_string(),
            seed: 42,
            jobs_per_tenant: 8,
            slots: 2,
            tenants: vec![
                TenantSummary {
                    name: "lane".to_string(),
                    model: "ZC".to_string(),
                    solo_best: "SC".to_string(),
                    flipped: true,
                    period_us: 1350,
                    jobs: 8,
                    missed: 1,
                    miss_pct: 12.5,
                    mean_slowdown: 1.21,
                    max_slowdown: 1.44,
                    throttles: 0,
                    footprint_bytes: 2 << 20,
                },
                TenantSummary {
                    name: "orb-reloc".to_string(),
                    model: "SC".to_string(),
                    solo_best: "SC".to_string(),
                    flipped: false,
                    period_us: 4800,
                    jobs: 8,
                    missed: 0,
                    miss_pct: 0.0,
                    mean_slowdown: 1.35,
                    max_slowdown: 1.61,
                    throttles: 5,
                    footprint_bytes: 6 << 20,
                },
            ],
            deadline_miss_pct: 6.25,
            mean_slowdown: 1.28,
            makespan_us: 38_450,
            any_flip: true,
            joint_total_us: 4451,
            greedy_total_us: 4726,
            mem_cap_bytes: 16 << 20,
            footprint_bytes: 8 << 20,
            headroom_bytes: 8 << 20,
            demotions: 1,
            evictions: 1,
            spilled_bytes: 4 << 20,
        }
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = sample();
        let json = icomm_persist::to_string(&report).expect("report serializes");
        let back: SchedReport = icomm_persist::from_str(&json).expect("report deserializes");
        assert_eq!(report, back);
    }

    #[test]
    fn totals_sum_over_tenants() {
        let report = sample();
        assert_eq!(report.total_jobs(), 16);
        assert_eq!(report.missed_jobs(), 1);
    }

    #[test]
    fn display_shows_the_flip_and_the_misses() {
        let text = sample().to_string();
        assert!(text.contains("ZC (solo SC, flipped)"), "{text}");
        assert!(text.contains("1 missed / 16 jobs"), "{text}");
        assert!(text.contains("flip: yes"), "{text}");
        assert!(text.contains("throttles 5"), "{text}");
        assert!(
            text.contains("footprint 8.00 MiB under 16.00 MiB"),
            "{text}"
        );
        assert!(
            text.contains("demoted 1  evicted 1 (spilled 4.00 MiB)"),
            "{text}"
        );
    }

    #[test]
    fn uncapped_reports_show_the_stock_budget() {
        let mut report = sample();
        report.mem_cap_bytes = 0;
        let text = report.to_string();
        assert!(text.contains("under stock budget"), "{text}");
    }

    #[test]
    fn quantizers_round_stably() {
        assert_eq!(q_pct(12.3456), 12.35);
        assert_eq!(q_slow(1.23456), 1.235);
        assert_eq!(q_pct(0.0), 0.0);
    }
}
