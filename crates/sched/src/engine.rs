//! The virtual-time discrete-event engine.
//!
//! Tenants release jobs strictly periodically; up to `slots` jobs run
//! concurrently. Between events the active set is fixed, so each running
//! job progresses through its solo timeline at the constant rate the
//! interference model gives for that set: with `f = max(1, Σ u_j)` over
//! the running tenants, tenant *i* advances at `1 / ((1 - u_i) + u_i·f)`
//! solo-seconds per wall-second — exactly the piecewise dynamics of
//! [`icomm_models::interference::co_run_oracle`], extended with release
//! queues, slot limits, and bandwidth budgets. Four event kinds exist:
//! job release, job completion, budget exhaustion, and window replenish.
//! Everything is pure `f64` arithmetic over integer-picosecond inputs,
//! so a `(mix, policy, seed)` tuple replays byte-identically.

use std::collections::VecDeque;

use crate::policy::PolicyKind;

/// Absolute slack, in picoseconds, absorbing `f64` rounding when events
/// coincide. Job times are ~1e9 ps, where the accumulated error of the
/// piecewise subtractions is below 1e-4 ps.
const EPS: f64 = 1e-3;

/// Iteration guard: a run that exceeds this many events is a bug, not a
/// long schedule (real runs take a few events per job per window).
const MAX_EVENTS: u64 = 1_000_000;

/// One tenant's scheduling contract and interference demand.
#[derive(Debug, Clone)]
pub(crate) struct TenantParams {
    /// Tenant name (for error messages).
    pub name: String,
    /// Smaller is more important; breaks deadline ties.
    pub priority: u8,
    /// Solo wall time of one job under the assigned model, picoseconds.
    pub cost: f64,
    /// Release period (= implicit deadline), picoseconds.
    pub period: f64,
    /// Effective DRAM-channel utilization under the co-run assignment.
    pub util: f64,
    /// First-release phase offset, picoseconds.
    pub offset: f64,
}

/// Engine knobs.
#[derive(Debug, Clone)]
pub(crate) struct EngineConfig {
    pub policy: PolicyKind,
    /// Concurrent job slots.
    pub slots: usize,
    /// Jobs each tenant releases before the run ends.
    pub jobs_per_tenant: u32,
    /// Fraction of the channel the budgets hand out per window.
    pub budget_fraction: f64,
    /// Budget replenish window, picoseconds.
    pub window: f64,
}

/// Per-tenant outcome counters.
#[derive(Debug, Clone, Default)]
pub(crate) struct TenantStats {
    /// Jobs completed.
    pub jobs: u32,
    /// Jobs that finished after their deadline.
    pub missed: u32,
    /// Sum over jobs of `response / cost`.
    pub slowdown_sum: f64,
    /// Worst single-job `response / cost`.
    pub slowdown_max: f64,
    /// Times the tenant was throttled off the SoC.
    pub throttles: u64,
}

/// Everything the engine measures.
#[derive(Debug, Clone)]
pub(crate) struct EngineOutcome {
    pub tenants: Vec<TenantStats>,
    /// Virtual time of the last completion, picoseconds.
    pub makespan: f64,
}

#[derive(Debug)]
struct TenantState {
    /// Jobs released so far (index of the next release).
    released: u32,
    /// Release times of released, unfinished jobs; front is in service.
    queue: VecDeque<f64>,
    /// Solo-picoseconds left on the queue front.
    head_remaining: f64,
    /// Channel-busy allowance left this window, picoseconds.
    budget: f64,
    /// Out of service until the next replenish.
    throttled: bool,
    /// Holds a slot (carries FIFO's non-preemption between events).
    running: bool,
    stats: TenantStats,
}

/// Runs the schedule to completion (every tenant finishes
/// `jobs_per_tenant` jobs) and returns the per-tenant counters.
pub(crate) fn run_engine(
    tenants: &[TenantParams],
    config: &EngineConfig,
) -> Result<EngineOutcome, String> {
    if tenants.is_empty() {
        return Err("scheduler needs at least one tenant".to_string());
    }
    if config.slots == 0 {
        return Err("scheduler needs at least one slot".to_string());
    }
    if config.jobs_per_tenant == 0 {
        return Err("scheduler needs at least one job per tenant".to_string());
    }
    if !config.window.is_finite() || config.window <= 0.0 {
        return Err("replenish window must be positive".to_string());
    }
    for t in tenants {
        let positive = |x: f64| x.is_finite() && x > 0.0;
        if !positive(t.cost) || !positive(t.period) {
            return Err(format!(
                "tenant '{}' needs a positive cost and period",
                t.name
            ));
        }
    }

    let budgeted = config.policy.budgeted();
    // MemGuard-style proportional shares: the budgeted fraction of each
    // window is split across tenants by their channel demand, so a burst
    // cannot monopolize the channel but a quiet tenant is never starved.
    let total_util: f64 = tenants.iter().map(|t| t.util).sum();
    let full_budget: Vec<f64> = tenants
        .iter()
        .map(|t| {
            if !budgeted || total_util <= 0.0 {
                f64::INFINITY
            } else {
                config.window * config.budget_fraction * (t.util / total_util)
            }
        })
        .collect();

    let mut states: Vec<TenantState> = tenants
        .iter()
        .enumerate()
        .map(|(i, _)| TenantState {
            released: 0,
            queue: VecDeque::new(),
            head_remaining: 0.0,
            budget: full_budget[i],
            throttled: false,
            running: false,
            stats: TenantStats::default(),
        })
        .collect();

    let mut now = 0.0f64;
    let mut makespan = 0.0f64;
    let mut next_replenish = config.window;
    let mut events = 0u64;

    // Admit the t = 0 releases (offsets may be zero).
    drain_releases(tenants, &mut states, now, config.jobs_per_tenant);

    while states.iter().any(|s| s.stats.jobs < config.jobs_per_tenant) {
        events += 1;
        if events > MAX_EVENTS {
            return Err(format!(
                "scheduler exceeded {MAX_EVENTS} events — runaway schedule"
            ));
        }

        let running = pick_running(tenants, &mut states, config);
        let rates = progress_rates(tenants, &running);
        // Criticality exemption: the budget exists to protect the most
        // urgent job, so the running tenant with the earliest deadline is
        // never charged — regulation binds only its co-runners. Without
        // this, an over-saturated mix throttles the deadline-tight tenant
        // itself and budgeting loses to plain FIFO.
        let exempt = if budgeted {
            running.iter().copied().min_by(|&a, &b| {
                let da = states[a].queue[0] + tenants[a].period;
                let db = states[b].queue[0] + tenants[b].period;
                da.total_cmp(&db)
                    .then(tenants[a].priority.cmp(&tenants[b].priority))
                    .then(a.cmp(&b))
            })
        } else {
            None
        };

        // Next event: the earliest of completion, budget exhaustion,
        // release, and window replenish.
        let mut t_next = f64::INFINITY;
        for (&i, &rate) in running.iter().zip(&rates) {
            t_next = t_next.min(now + states[i].head_remaining / rate);
            if budgeted && exempt != Some(i) && states[i].budget.is_finite() {
                let consumption = tenants[i].util * rate;
                if consumption > 0.0 {
                    t_next = t_next.min(now + states[i].budget / consumption);
                }
            }
        }
        for (i, t) in tenants.iter().enumerate() {
            if states[i].released < config.jobs_per_tenant {
                t_next = t_next.min(t.offset + states[i].released as f64 * t.period);
            }
        }
        if budgeted {
            t_next = t_next.min(next_replenish);
        }
        if !t_next.is_finite() {
            return Err("scheduler stalled: no runnable tenant and no pending event".to_string());
        }

        let dt = (t_next - now).max(0.0);
        for (&i, &rate) in running.iter().zip(&rates) {
            states[i].head_remaining -= dt * rate;
            if budgeted && exempt != Some(i) {
                states[i].budget -= dt * tenants[i].util * rate;
            }
        }
        now = t_next;

        // Completions first: a job that finishes exactly at a window
        // boundary completes rather than throttles.
        for &i in &running {
            if states[i].head_remaining <= EPS {
                let release = states[i]
                    .queue
                    .pop_front()
                    .ok_or_else(|| format!("tenant '{}' ran without a job", tenants[i].name))?;
                let response = now - release;
                let s = &mut states[i].stats;
                s.jobs += 1;
                if response > tenants[i].period + EPS {
                    s.missed += 1;
                }
                let slowdown = response / tenants[i].cost;
                s.slowdown_sum += slowdown;
                s.slowdown_max = s.slowdown_max.max(slowdown);
                makespan = makespan.max(now);
                states[i].running = false;
                states[i].head_remaining = if states[i].queue.is_empty() {
                    0.0
                } else {
                    tenants[i].cost
                };
            }
        }

        // Replenish before the exhaustion check so a boundary-coincident
        // exhaust does not count as a throttle.
        if budgeted && now >= next_replenish - EPS {
            for (i, s) in states.iter_mut().enumerate() {
                s.budget = full_budget[i];
                s.throttled = false;
            }
            next_replenish += config.window;
        }
        if budgeted {
            for &i in &running {
                if exempt == Some(i) {
                    continue;
                }
                if !states[i].throttled && states[i].running && states[i].budget <= EPS {
                    states[i].throttled = true;
                    states[i].running = false;
                    states[i].stats.throttles += 1;
                }
            }
        }

        drain_releases(tenants, &mut states, now, config.jobs_per_tenant);
    }

    Ok(EngineOutcome {
        tenants: states.into_iter().map(|s| s.stats).collect(),
        makespan,
    })
}

/// Admits every release due by `now`, arming the queue head on first fill.
fn drain_releases(tenants: &[TenantParams], states: &mut [TenantState], now: f64, jobs: u32) {
    for (i, t) in tenants.iter().enumerate() {
        while states[i].released < jobs {
            let release = t.offset + states[i].released as f64 * t.period;
            if release > now + EPS {
                break;
            }
            states[i].queue.push_back(release);
            if states[i].queue.len() == 1 {
                states[i].head_remaining = t.cost;
            }
            states[i].released += 1;
        }
    }
}

/// Fills the slots for the next interval and returns the running set.
fn pick_running(
    tenants: &[TenantParams],
    states: &mut [TenantState],
    config: &EngineConfig,
) -> Vec<usize> {
    let runnable = |s: &TenantState| !s.queue.is_empty() && !s.throttled;
    let mut running: Vec<usize> = Vec::new();
    match config.policy {
        PolicyKind::Fifo => {
            // Non-preemptive: a started job keeps its slot to completion.
            for (i, s) in states.iter().enumerate() {
                if s.running && runnable(s) {
                    running.push(i);
                }
            }
            // Fill free slots in release order of the head jobs.
            let mut waiting: Vec<usize> = states
                .iter()
                .enumerate()
                .filter(|(_, s)| runnable(s) && !s.running)
                .map(|(i, _)| i)
                .collect();
            waiting.sort_by(|&a, &b| {
                states[a].queue[0]
                    .total_cmp(&states[b].queue[0])
                    .then(a.cmp(&b))
            });
            for i in waiting {
                if running.len() >= config.slots {
                    break;
                }
                running.push(i);
            }
        }
        PolicyKind::DeadlineBudget => {
            // Preemptive EDF over the head jobs; priority breaks ties.
            let mut ready: Vec<usize> = states
                .iter()
                .enumerate()
                .filter(|(_, s)| runnable(s))
                .map(|(i, _)| i)
                .collect();
            ready.sort_by(|&a, &b| {
                let da = states[a].queue[0] + tenants[a].period;
                let db = states[b].queue[0] + tenants[b].period;
                da.total_cmp(&db)
                    .then(tenants[a].priority.cmp(&tenants[b].priority))
                    .then(a.cmp(&b))
            });
            ready.truncate(config.slots);
            running = ready;
        }
    }
    for s in states.iter_mut() {
        s.running = false;
    }
    for &i in &running {
        states[i].running = true;
    }
    running.sort_unstable();
    running
}

/// Progress rates of the running set: `1 / ((1 - u_i) + u_i·f)` with
/// `f = max(1, Σ u_j)` over the set.
fn progress_rates(tenants: &[TenantParams], running: &[usize]) -> Vec<f64> {
    let stretch: f64 = running
        .iter()
        .map(|&i| tenants[i].util)
        .sum::<f64>()
        .max(1.0);
    running
        .iter()
        .map(|&i| {
            let u = tenants[i].util;
            1.0 / ((1.0 - u) + u * stretch)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: f64 = 1e9; // picoseconds per millisecond

    fn tenant(name: &str, priority: u8, cost_ms: f64, period_ms: f64, util: f64) -> TenantParams {
        TenantParams {
            name: name.to_string(),
            priority,
            cost: cost_ms * MS,
            period: period_ms * MS,
            util,
            offset: 0.0,
        }
    }

    fn config(policy: PolicyKind, slots: usize, jobs: u32, window_ms: f64) -> EngineConfig {
        EngineConfig {
            policy,
            slots,
            jobs_per_tenant: jobs,
            budget_fraction: 0.9,
            window: window_ms * MS,
        }
    }

    #[test]
    fn lone_tenant_meets_every_deadline() {
        let t = vec![tenant("solo", 0, 1.0, 2.0, 0.8)];
        let out = run_engine(&t, &config(PolicyKind::Fifo, 2, 8, 0.5)).expect("engine runs");
        let s = &out.tenants[0];
        assert_eq!(s.jobs, 8);
        assert_eq!(s.missed, 0);
        assert!(
            (s.slowdown_sum / 8.0 - 1.0).abs() < 1e-9,
            "{}",
            s.slowdown_sum
        );
        // Eight periods, last job takes one cost.
        assert!((out.makespan - (7.0 * 2.0 + 1.0) * MS).abs() < 1.0);
    }

    #[test]
    fn single_slot_fifo_queues_the_second_tenant() {
        // Same contract, same release instant: tenant b always waits a
        // full job behind a in the only slot.
        let t = vec![tenant("a", 0, 1.0, 4.0, 0.0), tenant("b", 1, 1.0, 4.0, 0.0)];
        let out = run_engine(&t, &config(PolicyKind::Fifo, 1, 4, 1.0)).expect("engine runs");
        assert_eq!(out.tenants[0].missed, 0);
        assert!(out.tenants[1].slowdown_sum / 4.0 > 1.9, "b should queue");
    }

    #[test]
    fn channel_contention_stretches_co_runners() {
        // Two memory-heavy tenants sharing both slots: f = 1.8, each
        // job's slowdown = 1 + 0.9 * 0.8 = 1.72.
        let t = vec![
            tenant("a", 0, 1.0, 10.0, 0.9),
            tenant("b", 1, 1.0, 10.0, 0.9),
        ];
        let out = run_engine(&t, &config(PolicyKind::Fifo, 2, 3, 2.0)).expect("engine runs");
        for s in &out.tenants {
            assert!(
                (s.slowdown_sum / 3.0 - 1.72).abs() < 1e-6,
                "{}",
                s.slowdown_sum
            );
        }
    }

    #[test]
    fn edf_protects_the_tight_deadline() {
        // A long, early job parks in the only slot under FIFO and the
        // tight tenant misses; EDF preempts and both meet.
        let mut long = tenant("long", 1, 3.0, 12.0, 0.0);
        long.offset = 0.0;
        let mut tight = tenant("tight", 0, 0.5, 1.0, 0.0);
        tight.offset = 0.1 * MS;
        let t = vec![long, tight];
        let fifo = run_engine(&t, &config(PolicyKind::Fifo, 1, 4, 1.0)).expect("fifo runs");
        let edf = run_engine(&t, &config(PolicyKind::DeadlineBudget, 1, 4, 1.0)).expect("edf runs");
        assert!(
            fifo.tenants[1].missed > 0,
            "fifo should miss tight deadlines"
        );
        assert_eq!(
            edf.tenants[1].missed, 0,
            "edf should protect the tight tenant"
        );
    }

    #[test]
    fn budget_throttles_a_burst_and_still_finishes() {
        // One tenant hammers the channel; the proportional budget
        // throttles it whenever the meek tenant co-runs (the meek tenant
        // holds the earliest deadline, so it is the exempt one), yet all
        // jobs complete.
        let t = vec![
            tenant("burst", 1, 2.0, 20.0, 0.95),
            tenant("meek", 0, 0.2, 2.0, 0.05),
        ];
        let mut cfg = config(PolicyKind::DeadlineBudget, 2, 4, 0.5);
        cfg.budget_fraction = 0.2;
        let out = run_engine(&t, &cfg).expect("engine runs");
        assert!(out.tenants[0].throttles > 0, "burst should hit its budget");
        assert_eq!(out.tenants[0].jobs, 4);
        assert_eq!(out.tenants[1].jobs, 4);
        assert_eq!(out.tenants[1].missed, 0, "meek tenant rides its share");
    }

    #[test]
    fn fifo_never_throttles() {
        let t = vec![tenant("a", 0, 1.0, 3.0, 0.9), tenant("b", 1, 1.0, 3.0, 0.9)];
        let out = run_engine(&t, &config(PolicyKind::Fifo, 2, 4, 0.25)).expect("engine runs");
        assert!(out.tenants.iter().all(|s| s.throttles == 0));
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let t = vec![tenant("a", 0, 1.0, 2.0, 0.5)];
        assert!(run_engine(&[], &config(PolicyKind::Fifo, 1, 1, 1.0)).is_err());
        assert!(run_engine(&t, &config(PolicyKind::Fifo, 0, 1, 1.0)).is_err());
        assert!(run_engine(&t, &config(PolicyKind::Fifo, 1, 0, 1.0)).is_err());
        assert!(run_engine(&t, &config(PolicyKind::Fifo, 1, 1, 0.0)).is_err());
        let bad = vec![tenant("a", 0, 0.0, 2.0, 0.5)];
        assert!(run_engine(&bad, &config(PolicyKind::Fifo, 1, 1, 1.0)).is_err());
    }

    #[test]
    fn engine_is_deterministic() {
        let t = vec![
            tenant("a", 0, 1.1, 2.3, 0.7),
            tenant("b", 1, 0.9, 2.9, 0.6),
            tenant("c", 2, 1.7, 5.1, 0.8),
        ];
        let cfg = config(PolicyKind::DeadlineBudget, 2, 6, 0.7);
        let first = run_engine(&t, &cfg).expect("engine runs");
        let second = run_engine(&t, &cfg).expect("engine runs");
        assert_eq!(format!("{first:?}"), format!("{second:?}"));
    }
}
