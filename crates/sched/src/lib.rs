//! # icomm-sched — multi-tenant co-run scheduling for the icomm stack
//!
//! The paper tunes one application per board. Deployed boards host
//! several: an ADAS pipeline, a localization front-end, and a sensing
//! loop all sharing one DRAM channel and two LLCs. This crate schedules
//! such tenant *mixes*:
//!
//! - the mix's communication models are assigned **jointly** by
//!   [`icomm_core::joint_assignment`] — scored under the cross-tenant
//!   interference model rather than per-app greedy tuning;
//! - a virtual-time discrete-event engine then runs the periodic
//!   schedule: up to `slots` jobs co-run, each progressing at the rate
//!   the interference model gives for the currently active set;
//! - two policies are pluggable ([`PolicyKind`]): the FIFO baseline, and
//!   a deadline-aware policy with a MemGuard-style per-tenant bandwidth
//!   budget (throttle on exhaustion, replenish per window).
//!
//! The run produces a [`SchedReport`] — per-tenant deadline-miss rate,
//! slowdown versus solo, and throttle counts — that serializes
//! byte-identically for a given `(board, mix, policy, seed)` tuple, the
//! same replay discipline as `icomm-chaos` and `icomm-fleet`.
//!
//! ```
//! use icomm_sched::{run_sched, SchedConfig};
//! use icomm_soc::DeviceProfile;
//!
//! let mut config = SchedConfig::new(DeviceProfile::jetson_tx2());
//! config.mix = "duo".to_string();
//! config.jobs_per_tenant = 2;
//! let out = run_sched(&config)?;
//! assert_eq!(out.report.total_jobs(), 4);
//! # Ok::<(), String>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod engine;
pub mod policy;
pub mod report;

use icomm_apps::mix_by_name;
use icomm_chaos::ChaosRng;
use icomm_core::{
    joint_assignment, joint_assignment_capped, tenant_demand, CorunTenant, JointAssignment,
};
use icomm_footprint::{cheapest_model, human_bytes, MemBudget};
use icomm_microbench::{quick_characterize_device, DeviceCharacterization};
use icomm_models::candidate_models;
use icomm_models::interference::{co_run_interference, InterferenceConfig, TenantDemand};
use icomm_soc::units::ByteSize;
use icomm_soc::DeviceProfile;

use engine::{run_engine, EngineConfig, TenantParams};

pub use policy::{PolicyKind, POLICY_NAMES};
pub use report::{SchedReport, TenantSummary};

/// Configuration of one scheduler run.
#[derive(Debug, Clone)]
pub struct SchedConfig {
    /// The board hosting the mix.
    pub device: DeviceProfile,
    /// Named tenant mix (see [`icomm_apps::MIX_NAMES`]).
    pub mix: String,
    /// Scheduling policy.
    pub policy: PolicyKind,
    /// Seed for the release phase offsets.
    pub seed: u64,
    /// Jobs each tenant releases before the run ends.
    pub jobs_per_tenant: u32,
    /// Concurrent job slots (how many tenants co-run at once).
    pub slots: usize,
    /// Fraction of the DRAM channel the per-tenant budgets hand out per
    /// replenish window, `(0, 1]`. Only the deadline policy enforces it.
    pub budget_fraction: f64,
    /// Budget replenish window as a fraction of the shortest tenant
    /// period, `(0, 1]`.
    pub window_fraction: f64,
    /// Explicit memory cap for admission. `None` admits against the
    /// board's stock [`MemBudget`] (its full DRAM capacity, which the
    /// paper-scale mixes never approach — admission is then a no-op).
    pub mem_cap: Option<ByteSize>,
}

impl SchedConfig {
    /// Defaults: the `contended` mix under the deadline policy, seed 42,
    /// 8 jobs per tenant, 2 slots, 90 % budgeted channel, quarter-period
    /// replenish windows, no explicit memory cap.
    pub fn new(device: DeviceProfile) -> Self {
        SchedConfig {
            device,
            mix: "contended".to_string(),
            policy: PolicyKind::DeadlineBudget,
            seed: 42,
            jobs_per_tenant: 8,
            slots: 2,
            budget_fraction: 0.9,
            window_fraction: 0.25,
            mem_cap: None,
        }
    }
}

/// Everything a scheduler run produces: the deterministic report plus
/// the joint assignment it scheduled under.
#[derive(Debug, Clone, PartialEq)]
pub struct SchedRunOutput {
    /// The deterministic, serializable report.
    pub report: SchedReport,
    /// The joint model assignment the schedule ran under.
    pub assignment: JointAssignment,
}

/// Runs the named mix on the configured board, characterizing the device
/// with the quick micro-benchmark sweep first.
///
/// # Errors
///
/// Propagates unknown mixes, invalid knobs, and engine failures.
pub fn run_sched(config: &SchedConfig) -> Result<SchedRunOutput, String> {
    let characterization = quick_characterize_device(&config.device);
    run_sched_with(config, &characterization)
}

/// [`run_sched`] against an existing device characterization — the entry
/// point the fleet simulator uses so the registry's characterization
/// (possibly a federated transfer) drives the joint assignment.
///
/// # Errors
///
/// Propagates unknown mixes, invalid knobs, and engine failures.
pub fn run_sched_with(
    config: &SchedConfig,
    characterization: &DeviceCharacterization,
) -> Result<SchedRunOutput, String> {
    if !(config.budget_fraction > 0.0 && config.budget_fraction <= 1.0) {
        return Err(format!(
            "budget fraction must be in (0, 1], got {}",
            config.budget_fraction
        ));
    }
    if !(config.window_fraction > 0.0 && config.window_fraction <= 1.0) {
        return Err(format!(
            "window fraction must be in (0, 1], got {}",
            config.window_fraction
        ));
    }
    let mut specs = mix_by_name(&config.mix)?;
    let mut tenants: Vec<CorunTenant> = specs
        .iter()
        .map(|s| CorunTenant {
            name: s.name.clone(),
            workload: s.workload.clone(),
            current: s.current,
        })
        .collect();

    // Admission under the memory budget. First evict — largest
    // cheapest-footprint tenant spills first — until even the cheapest
    // model combination fits; then let the capped solver demote the
    // survivors toward cheaper-footprint models where the optimum no
    // longer fits. Both steps are deterministic (first-found maxima,
    // lexicographic enumeration), so capped reports replay byte-for-byte.
    let budget = match config.mem_cap {
        Some(cap) => MemBudget::with_cap(cap),
        None => MemBudget::for_device(&config.device),
    };
    let cap = budget.capacity;
    let models = candidate_models(&config.device);
    let mut evictions = 0u32;
    let mut spilled_bytes = 0u64;
    loop {
        if tenants.is_empty() {
            return Err(format!(
                "no tenant of mix '{}' fits the {} memory budget on {}",
                config.mix,
                human_bytes(cap.as_u64()),
                config.device.name
            ));
        }
        let cheapest: Vec<u64> = tenants
            .iter()
            .map(|t| {
                cheapest_model(&models, &t.workload, &config.device)
                    .map_or(0, |(_, bytes)| bytes.as_u64())
            })
            .collect();
        if cheapest.iter().sum::<u64>() <= cap.as_u64() {
            break;
        }
        let victim = cheapest
            .iter()
            .enumerate()
            .max_by(|(ia, a), (ib, b)| a.cmp(b).then(ib.cmp(ia)))
            .map_or(0, |(i, _)| i);
        spilled_bytes += cheapest[victim];
        evictions += 1;
        specs.remove(victim);
        tenants.remove(victim);
    }

    let uncapped = joint_assignment(&config.device, characterization, &tenants)?;
    let (assignment, demotions) = if uncapped.footprint <= cap {
        (uncapped, 0u32)
    } else {
        let capped =
            joint_assignment_capped(&config.device, characterization, &tenants, Some(cap))?;
        let demotions = capped
            .tenants
            .iter()
            .zip(&uncapped.tenants)
            .filter(|(c, u)| c.footprint < u.footprint)
            .count() as u32;
        (capped, demotions)
    };

    // Charge the admitted mix to the ledger; headroom and the peak feed
    // the report's budget accounting.
    let mut ledger = budget.ledger();
    for verdict in &assignment.tenants {
        ledger
            .charge(&verdict.name, verdict.footprint)
            .map_err(|e| e.to_string())?;
    }

    // Demands under the joint models feed the engine's progress rates.
    let demands: Vec<TenantDemand> = specs
        .iter()
        .zip(&assignment.tenants)
        .map(|(s, verdict)| tenant_demand(&config.device, &s.name, &s.workload, verdict.joint))
        .collect();
    let icfg = InterferenceConfig::for_device(&config.device);
    let interference = co_run_interference(&demands, &icfg);

    let mut rng = ChaosRng::new(config.seed);
    let params: Vec<TenantParams> = specs
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let cost = demands[i].wall_solo.as_picos() as f64;
            let period = cost * s.period_factor;
            TenantParams {
                name: s.name.clone(),
                priority: s.priority,
                cost,
                period,
                util: interference[i].channel_util,
                // Stagger first releases inside a quarter period so the
                // mix does not start in artificial lockstep.
                offset: rng.uniform() * period * 0.25,
            }
        })
        .collect();
    let min_period = params
        .iter()
        .map(|p| p.period)
        .fold(f64::INFINITY, f64::min);
    let outcome = run_engine(
        &params,
        &EngineConfig {
            policy: config.policy,
            slots: config.slots,
            jobs_per_tenant: config.jobs_per_tenant,
            budget_fraction: config.budget_fraction,
            window: min_period * config.window_fraction,
        },
    )?;

    let to_us = |picos: f64| (picos / 1e6).round() as u64;
    let summaries: Vec<TenantSummary> = outcome
        .tenants
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let verdict = &assignment.tenants[i];
            TenantSummary {
                name: params[i].name.clone(),
                model: verdict.joint.abbrev().to_string(),
                solo_best: verdict.solo_best.abbrev().to_string(),
                flipped: verdict.flipped,
                period_us: to_us(params[i].period),
                jobs: s.jobs,
                missed: s.missed,
                miss_pct: report::q_pct(100.0 * s.missed as f64 / s.jobs.max(1) as f64),
                mean_slowdown: report::q_slow(s.slowdown_sum / s.jobs.max(1) as f64),
                max_slowdown: report::q_slow(s.slowdown_max),
                throttles: s.throttles,
                footprint_bytes: verdict.footprint.as_u64(),
            }
        })
        .collect();
    let total_jobs: u32 = summaries.iter().map(|t| t.jobs).sum();
    let missed: u32 = summaries.iter().map(|t| t.missed).sum();
    let slowdown_sum: f64 = outcome.tenants.iter().map(|s| s.slowdown_sum).sum();
    let report = SchedReport {
        board: config.device.name.clone(),
        mix: config.mix.clone(),
        policy: config.policy.name().to_string(),
        seed: config.seed,
        jobs_per_tenant: config.jobs_per_tenant,
        slots: config.slots as u32,
        tenants: summaries,
        deadline_miss_pct: report::q_pct(100.0 * missed as f64 / total_jobs.max(1) as f64),
        mean_slowdown: report::q_slow(slowdown_sum / total_jobs.max(1) as f64),
        makespan_us: to_us(outcome.makespan),
        any_flip: assignment.any_flip,
        joint_total_us: assignment.joint_total.as_picos() / 1_000_000,
        greedy_total_us: assignment.greedy_total.as_picos() / 1_000_000,
        mem_cap_bytes: config.mem_cap.map_or(0, |c| c.as_u64()),
        footprint_bytes: ledger.peak().as_u64(),
        headroom_bytes: ledger.headroom().as_u64(),
        demotions,
        evictions,
        spilled_bytes,
    };
    Ok(SchedRunOutput { report, assignment })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config(mix: &str, policy: PolicyKind) -> SchedConfig {
        let mut config = SchedConfig::new(DeviceProfile::jetson_tx2());
        config.mix = mix.to_string();
        config.policy = policy;
        config.jobs_per_tenant = 4;
        config
    }

    #[test]
    fn duo_mix_schedules_cleanly_under_both_policies() {
        let characterization = quick_characterize_device(&DeviceProfile::jetson_tx2());
        for policy in [PolicyKind::Fifo, PolicyKind::DeadlineBudget] {
            let out = run_sched_with(&quick_config("duo", policy), &characterization)
                .expect("duo schedules");
            assert_eq!(out.report.total_jobs(), 8);
            // Two tenants, two slots, generous deadlines: nothing misses.
            assert_eq!(out.report.missed_jobs(), 0, "{policy}");
            assert!(out.report.mean_slowdown >= 1.0);
        }
    }

    #[test]
    fn same_seed_replays_byte_identically() {
        let characterization = quick_characterize_device(&DeviceProfile::jetson_tx2());
        let config = quick_config("contended", PolicyKind::DeadlineBudget);
        let first = run_sched_with(&config, &characterization).expect("first run");
        let second = run_sched_with(&config, &characterization).expect("second run");
        assert_eq!(first.report, second.report);
        let a = icomm_persist::to_string(&first.report).expect("serialize first");
        let b = icomm_persist::to_string(&second.report).expect("serialize second");
        assert_eq!(a, b);
    }

    #[test]
    fn seed_changes_the_phase_offsets_not_the_contract() {
        let characterization = quick_characterize_device(&DeviceProfile::jetson_tx2());
        let mut config = quick_config("trio", PolicyKind::Fifo);
        let first = run_sched_with(&config, &characterization).expect("seed 42");
        config.seed = 43;
        let second = run_sched_with(&config, &characterization).expect("seed 43");
        // The contract (periods, models, jobs) is seed-independent.
        for (a, b) in first.report.tenants.iter().zip(&second.report.tenants) {
            assert_eq!(a.period_us, b.period_us);
            assert_eq!(a.model, b.model);
            assert_eq!(a.jobs, b.jobs);
        }
    }

    #[test]
    fn a_memory_cap_demotes_then_evicts_then_refuses() {
        let characterization = quick_characterize_device(&DeviceProfile::jetson_tx2());
        let mut config = quick_config("pressure", PolicyKind::DeadlineBudget);

        let open = run_sched_with(&config, &characterization).expect("uncapped");
        assert_eq!(open.report.demotions, 0);
        assert_eq!(open.report.evictions, 0);
        assert!(open.report.footprint_bytes > ByteSize::mib(6).as_u64());

        // Tight enough to forbid the double-buffered optimum, loose
        // enough that single-copy models still fit: demotion, no loss.
        config.mem_cap = Some(ByteSize::mib(6));
        let demoted = run_sched_with(&config, &characterization).expect("demoted");
        assert_eq!(demoted.report.tenants.len(), open.report.tenants.len());
        assert!(demoted.report.demotions > 0, "{:?}", demoted.report);
        assert_eq!(demoted.report.evictions, 0);
        assert!(demoted.report.footprint_bytes <= ByteSize::mib(6).as_u64());
        assert!(demoted.report.mem_cap_bytes == ByteSize::mib(6).as_u64());

        // Below the sum of the cheapest models: the largest tenant
        // spills, the rest are admitted (demoted as needed).
        config.mem_cap = Some(ByteSize::mib(4));
        let evicted = run_sched_with(&config, &characterization).expect("evicted");
        assert_eq!(evicted.report.evictions, 1);
        assert!(evicted.report.spilled_bytes > 0);
        assert_eq!(evicted.report.tenants.len(), open.report.tenants.len() - 1);
        assert!(
            !evicted.report.tenants.iter().any(|t| t.name == "orb-hd"),
            "the largest-footprint tenant goes first"
        );

        // No tenant fits at all: admission refuses the mix.
        config.mem_cap = Some(ByteSize::kib(256));
        let err = run_sched_with(&config, &characterization).unwrap_err();
        assert!(err.contains("memory budget"), "{err}");
    }

    #[test]
    fn capped_runs_replay_byte_identically() {
        let characterization = quick_characterize_device(&DeviceProfile::jetson_tx2());
        let mut config = quick_config("pressure", PolicyKind::DeadlineBudget);
        config.mem_cap = Some(ByteSize::mib(6));
        let first = run_sched_with(&config, &characterization).expect("first");
        let second = run_sched_with(&config, &characterization).expect("second");
        let a = icomm_persist::to_string(&first.report).expect("serialize first");
        let b = icomm_persist::to_string(&second.report).expect("serialize second");
        assert_eq!(a, b);
    }

    #[test]
    fn bad_knobs_and_mixes_are_rejected() {
        let characterization = quick_characterize_device(&DeviceProfile::jetson_tx2());
        let mut config = quick_config("nope", PolicyKind::Fifo);
        assert!(run_sched_with(&config, &characterization)
            .expect_err("unknown mix")
            .contains("unknown mix"));
        config.mix = "duo".to_string();
        config.budget_fraction = 0.0;
        assert!(run_sched_with(&config, &characterization).is_err());
        config.budget_fraction = 0.9;
        config.window_fraction = 1.5;
        assert!(run_sched_with(&config, &characterization).is_err());
        config.window_fraction = 0.25;
        config.slots = 0;
        assert!(run_sched_with(&config, &characterization).is_err());
    }
}
