//! Scheduling policies.
//!
//! Two policies bracket the design space the co-run experiments explore:
//!
//! - [`PolicyKind::Fifo`] — the baseline every embedded stack starts
//!   from: jobs run in release order, non-preemptively, with no memory
//!   regulation at all. Under a contended mix a long memory burst parks
//!   in a slot and the deadline-tight tenant queues behind it.
//! - [`PolicyKind::DeadlineBudget`] — earliest-deadline-first slot
//!   assignment (preemptive at event boundaries, ties broken by the
//!   tenant's declared priority) plus a MemGuard-style per-tenant DRAM
//!   budget: each tenant gets a proportional share of the channel per
//!   replenish window, and a tenant that exhausts its share is throttled
//!   off the SoC until the window replenishes. The running tenant holding
//!   the earliest deadline is exempt from regulation — the budget exists
//!   to protect it, so only its co-runners are charged. Throttling a
//!   burst is what keeps the channel stretch low while a tight tenant
//!   runs.

use std::fmt;

/// The scheduling policies `icomm sched` knows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// Release-order, non-preemptive, no bandwidth regulation.
    Fifo,
    /// Earliest-deadline-first slots plus a per-tenant bandwidth budget
    /// with throttle/replenish.
    DeadlineBudget,
}

/// The policy names [`PolicyKind::parse`] accepts (canonical forms).
pub const POLICY_NAMES: [&str; 2] = ["fifo", "deadline"];

impl PolicyKind {
    /// Canonical name, as printed in reports and accepted by the CLI.
    pub fn name(&self) -> &'static str {
        match self {
            PolicyKind::Fifo => "fifo",
            PolicyKind::DeadlineBudget => "deadline",
        }
    }

    /// Whether the policy enforces per-tenant bandwidth budgets.
    pub fn budgeted(&self) -> bool {
        matches!(self, PolicyKind::DeadlineBudget)
    }

    /// Resolves a policy by name (case-insensitive, a few aliases).
    ///
    /// # Errors
    ///
    /// Returns the list of valid names when `name` is unknown.
    pub fn parse(name: &str) -> Result<Self, String> {
        match name.to_ascii_lowercase().as_str() {
            "fifo" => Ok(PolicyKind::Fifo),
            "deadline" | "deadline-budget" | "edf" => Ok(PolicyKind::DeadlineBudget),
            other => Err(format!(
                "unknown policy '{other}' (expected one of: {})",
                POLICY_NAMES.join(", ")
            )),
        }
    }
}

impl fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for name in POLICY_NAMES {
            let policy = PolicyKind::parse(name).expect("canonical name parses");
            assert_eq!(policy.name(), name);
            assert_eq!(policy.to_string(), name);
        }
    }

    #[test]
    fn aliases_and_case_fold() {
        assert_eq!(
            PolicyKind::parse("EDF").expect("edf alias"),
            PolicyKind::DeadlineBudget
        );
        assert_eq!(
            PolicyKind::parse("deadline-budget").expect("long alias"),
            PolicyKind::DeadlineBudget
        );
        assert_eq!(
            PolicyKind::parse("FIFO").expect("case fold"),
            PolicyKind::Fifo
        );
    }

    #[test]
    fn unknown_policy_lists_options() {
        let err = PolicyKind::parse("lottery").expect_err("unknown policy");
        assert!(err.contains("fifo") && err.contains("deadline"), "{err}");
    }

    #[test]
    fn only_deadline_is_budgeted() {
        assert!(!PolicyKind::Fifo.budgeted());
        assert!(PolicyKind::DeadlineBudget.budgeted());
    }
}
