//! Fleet-run results.
//!
//! [`FleetReport`] carries every number derived from the deterministic
//! virtual-time simulation — it serializes byte-identically for a given
//! `(mix, devices, arrival, rate, seed)` tuple, which is what the CI
//! replay stage compares. Wall-clock measurements from the optional
//! live-fire stage are intentionally **not** part of the report: they
//! land in [`LivefireStats`], a side structure that is printed for
//! humans but never serialized, so timing jitter can never break replay.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Deterministic results of one fleet run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetReport {
    /// Board mix, comma-joined in mix order.
    pub boards: String,
    /// Population size.
    pub devices: u64,
    /// Arrival-process preset name.
    pub arrival: String,
    /// Mean arrival rate, requests per second.
    pub rate_per_sec: f64,
    /// Seed the run replays from.
    pub seed: u64,
    /// Requests generated (one per device).
    pub requests: u64,
    /// Requests served to completion.
    pub served: u64,
    /// Requests shed on queue pressure.
    pub shed_queue: u64,
    /// Requests shed on rate-limit pressure.
    pub shed_rate: u64,
    /// Characterization lookups answered from the registry cache
    /// (exact fingerprint repeats).
    pub cache_hits: u64,
    /// Characterizations answered by federated transfer.
    pub transfer_hits: u64,
    /// Transfer attempts that fell below the confidence floor.
    pub transfer_fallbacks: u64,
    /// Characterizations answered from a synthesized rule set
    /// (rules-first warm start; 0 when the fleet ships no rules).
    pub rules_hits: u64,
    /// Full micro-benchmark characterization runs.
    pub full_characterizations: u64,
    /// Warm-start rate, percent: lookups served without a full run
    /// (cache + transfer + rules) over all served lookups.
    pub warm_start_pct: f64,
    /// Transfer hit rate, percent, over transfer attempts.
    pub transfer_hit_pct: f64,
    /// Virtual end-to-end latency p50, microseconds.
    pub latency_p50_us: u64,
    /// Virtual end-to-end latency p95, microseconds.
    pub latency_p95_us: u64,
    /// Virtual end-to-end latency p99, microseconds.
    pub latency_p99_us: u64,
    /// Virtual mean latency, microseconds.
    pub latency_mean_us: f64,
    /// Served throughput over the virtual run, requests per second.
    pub throughput_rps: f64,
    /// Latency SLO the attainment is measured against, microseconds.
    pub slo_us: u64,
    /// Percent of served requests inside the SLO.
    pub slo_attainment_pct: f64,
    /// Transferred devices spot-checked against a full characterization.
    pub regret_samples: u64,
    /// Spot checks where transferred and full characterizations
    /// recommended different models.
    pub regret_disagreements: u64,
    /// Mean decision regret of transferred vs full characterization,
    /// percent of ground-truth runtime.
    pub mean_regret_pct: f64,
    /// Worst single-sample decision regret, percent.
    pub max_regret_pct: f64,
    /// Tenants co-hosted per served device (1 = single-tenant fleet;
    /// the co-run fields below are all zero in that case).
    pub tenants_per_device: u64,
    /// Tenant instances scheduled across all served devices in the
    /// multi-tenant stage.
    pub corun_tenants: u64,
    /// Percent of co-run jobs that missed their deadline, fleet-wide.
    pub corun_deadline_miss_pct: f64,
    /// Percent of tenant instances that met every deadline — the
    /// per-tenant SLO attainment of the multi-tenant stage.
    pub corun_slo_attainment_pct: f64,
    /// Job-weighted mean co-run slowdown versus solo execution.
    pub corun_mean_slowdown: f64,
    /// Served devices whose joint model assignment flipped at least one
    /// tenant away from its solo-best communication model.
    pub corun_flips: u64,
    /// Per-device memory cap the multi-tenant stage admitted under
    /// (0 = each board's stock DRAM budget).
    pub mem_cap_bytes: u64,
    /// Tenant instances the cap pushed onto a cheaper-footprint model
    /// than the unconstrained optimum, summed over served devices.
    pub corun_demotions: u64,
    /// Tenant instances admission refused outright, summed over served
    /// devices.
    pub corun_evictions: u64,
    /// Footprint bytes turned away with evicted tenants, summed over
    /// served devices.
    pub corun_spilled_bytes: u64,
    /// Largest admitted per-device footprint seen in the run.
    pub corun_footprint_peak_bytes: u64,
    /// Injected churn events: devices whose registry state was evicted
    /// before their lookup (crash-and-rejoin).
    pub churn_events: u64,
    /// Injected poisoning events: adversarial characterizations planted
    /// in the registry by compromised devices.
    pub poisoned_sources: u64,
    /// Sources on the registry quarantine list when the run ended —
    /// poisoned entries the robust transfer path caught and attributed.
    pub quarantined_sources: u64,
    /// Requests sent during the live-fire TCP stage (0 when skipped).
    pub livefire_sent: u64,
    /// Live-fire requests answered `ok`.
    pub livefire_ok: u64,
    /// Live-fire requests answered with an error or lost.
    pub livefire_failed: u64,
    /// Shard event loops the live-fire server's supervisor restarted
    /// after injected panics (0 unless the fault plan injects panics).
    pub livefire_shard_restarts: u64,
}

impl FleetReport {
    /// The acceptance gate: every served request answered, ≥ 90 %
    /// warm start, ≤ 10 % mean transfer regret, and a clean live-fire
    /// stage (when one ran).
    pub fn passed(&self) -> bool {
        self.served + self.shed_queue + self.shed_rate == self.requests
            && self.warm_start_pct >= 90.0
            && self.mean_regret_pct <= 10.0
            && self.livefire_failed == 0
    }
}

impl fmt::Display for FleetReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "fleet        {} devices over {} ({} arrivals at {:.0} req/s, seed {})",
            self.devices, self.boards, self.arrival, self.rate_per_sec, self.seed
        )?;
        writeln!(
            f,
            "admission    {} served / {} requests  ({} shed on queue, {} shed on rate)",
            self.served, self.requests, self.shed_queue, self.shed_rate
        )?;
        writeln!(
            f,
            "warm start   {:.1}%  ({} cache hits, {} transferred, {} rules, {} fallbacks, {} full runs)",
            self.warm_start_pct,
            self.cache_hits,
            self.transfer_hits,
            self.rules_hits,
            self.transfer_fallbacks,
            self.full_characterizations
        )?;
        writeln!(
            f,
            "latency      p50 {} us   p95 {} us   p99 {} us   mean {:.0} us",
            self.latency_p50_us, self.latency_p95_us, self.latency_p99_us, self.latency_mean_us
        )?;
        writeln!(
            f,
            "slo          {:.1}% within {} us   ({:.0} req/s served)",
            self.slo_attainment_pct, self.slo_us, self.throughput_rps
        )?;
        writeln!(
            f,
            "regret       mean {:.2}%  max {:.2}%  ({} spot checks, {} model disagreements)",
            self.mean_regret_pct,
            self.max_regret_pct,
            self.regret_samples,
            self.regret_disagreements
        )?;
        if self.corun_tenants > 0 {
            writeln!(
                f,
                "co-run       {} tenants/device  {} tenant instances  miss {:.1}%  slo {:.1}%  slowdown {:.3}x  ({} flips)",
                self.tenants_per_device,
                self.corun_tenants,
                self.corun_deadline_miss_pct,
                self.corun_slo_attainment_pct,
                self.corun_mean_slowdown,
                self.corun_flips
            )?;
            if self.mem_cap_bytes > 0 || self.corun_evictions > 0 {
                writeln!(
                    f,
                    "memory       cap {} per device  peak footprint {}  {} demotions  {} evictions (spilled {})",
                    if self.mem_cap_bytes > 0 {
                        icomm_footprint::human_bytes(self.mem_cap_bytes)
                    } else {
                        "stock".to_string()
                    },
                    icomm_footprint::human_bytes(self.corun_footprint_peak_bytes),
                    self.corun_demotions,
                    self.corun_evictions,
                    icomm_footprint::human_bytes(self.corun_spilled_bytes)
                )?;
            }
        }
        if self.churn_events + self.poisoned_sources + self.quarantined_sources > 0 {
            writeln!(
                f,
                "faults       {} churn evictions  {} poisoned uploads  {} sources quarantined",
                self.churn_events, self.poisoned_sources, self.quarantined_sources
            )?;
        }
        if self.livefire_sent > 0 {
            writeln!(
                f,
                "livefire     {} sent  {} ok  {} failed  {} shard restarts",
                self.livefire_sent,
                self.livefire_ok,
                self.livefire_failed,
                self.livefire_shard_restarts
            )?;
        }
        write!(
            f,
            "verdict      {}",
            if self.passed() { "PASS" } else { "FAIL" }
        )
    }
}

/// Wall-clock measurements from the live-fire TCP stage.
///
/// Never serialized: these numbers vary run to run by nature, and
/// keeping them out of [`FleetReport`] is what lets the report replay
/// byte-identically.
#[derive(Debug, Clone, PartialEq)]
pub struct LivefireStats {
    /// Wall-clock request latency p50, microseconds.
    pub wall_p50_us: u64,
    /// Wall-clock request latency p95, microseconds.
    pub wall_p95_us: u64,
    /// Wall-clock request latency p99, microseconds.
    pub wall_p99_us: u64,
    /// Wall-clock mean latency, microseconds.
    pub wall_mean_us: f64,
    /// Wall-clock duration of the whole stage, microseconds.
    pub wall_duration_us: u64,
    /// Observed wall-clock throughput, requests per second.
    pub wall_throughput_rps: f64,
}

impl fmt::Display for LivefireStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "livefire wall-clock: p50 {} us  p95 {} us  p99 {} us  mean {:.0} us  ({:.0} req/s over {:.1} ms)",
            self.wall_p50_us,
            self.wall_p95_us,
            self.wall_p99_us,
            self.wall_mean_us,
            self.wall_throughput_rps,
            self.wall_duration_us as f64 / 1000.0
        )
    }
}

/// Everything a fleet run produces: the deterministic report plus the
/// optional wall-clock side channel.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetRunOutput {
    /// The deterministic, serializable report.
    pub report: FleetReport,
    /// Wall-clock live-fire measurements, when that stage ran.
    pub livefire: Option<LivefireStats>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FleetReport {
        FleetReport {
            boards: "nano,tx2".to_string(),
            devices: 100,
            arrival: "poisson".to_string(),
            rate_per_sec: 400.0,
            seed: 7,
            requests: 100,
            served: 98,
            shed_queue: 1,
            shed_rate: 1,
            cache_hits: 50,
            transfer_hits: 40,
            transfer_fallbacks: 8,
            rules_hits: 0,
            full_characterizations: 8,
            warm_start_pct: 91.8,
            transfer_hit_pct: 83.3,
            latency_p50_us: 700,
            latency_p95_us: 9_000,
            latency_p99_us: 30_000,
            latency_mean_us: 2_500.0,
            throughput_rps: 390.0,
            slo_us: 50_000,
            slo_attainment_pct: 99.0,
            regret_samples: 16,
            regret_disagreements: 1,
            mean_regret_pct: 0.4,
            max_regret_pct: 6.0,
            tenants_per_device: 2,
            corun_tenants: 196,
            corun_deadline_miss_pct: 1.5,
            corun_slo_attainment_pct: 97.0,
            corun_mean_slowdown: 1.21,
            corun_flips: 12,
            mem_cap_bytes: 6 << 20,
            corun_demotions: 24,
            corun_evictions: 2,
            corun_spilled_bytes: 9 << 20,
            corun_footprint_peak_bytes: 5 << 20,
            churn_events: 9,
            poisoned_sources: 5,
            quarantined_sources: 3,
            livefire_sent: 64,
            livefire_ok: 64,
            livefire_failed: 0,
            livefire_shard_restarts: 2,
        }
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = sample();
        let json = icomm_persist::to_string(&report).unwrap();
        let back: FleetReport = icomm_persist::from_str(&json).unwrap();
        assert_eq!(report, back);
    }

    #[test]
    fn pass_gate_checks_every_axis() {
        let good = sample();
        assert!(good.passed());
        let mut low_warm = sample();
        low_warm.warm_start_pct = 80.0;
        assert!(!low_warm.passed());
        let mut high_regret = sample();
        high_regret.mean_regret_pct = 12.0;
        assert!(!high_regret.passed());
        let mut lost = sample();
        lost.served = 90;
        assert!(!lost.passed());
        let mut broken_livefire = sample();
        broken_livefire.livefire_failed = 1;
        assert!(!broken_livefire.passed());
    }

    #[test]
    fn display_reports_the_verdict() {
        let text = sample().to_string();
        assert!(text.contains("warm start   91.8%"));
        assert!(text.contains("verdict      PASS"));
        assert!(text.contains("livefire     64 sent"));
        assert!(text.contains("co-run       2 tenants/device"));
        assert!(text.contains("faults       9 churn evictions"));
        assert!(text.contains("2 shard restarts"));
        let mut single = sample();
        single.corun_tenants = 0;
        assert!(!single.to_string().contains("co-run"));
        let mut calm = sample();
        calm.churn_events = 0;
        calm.poisoned_sources = 0;
        calm.quarantined_sources = 0;
        assert!(!calm.to_string().contains("faults"));
    }
}
