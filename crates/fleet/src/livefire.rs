//! Live-fire stage: hammer a real in-process server over real TCP.
//!
//! The virtual-time simulation validates the *policies*; this stage
//! validates the *stack* — the accept loop, the line protocol, the
//! worker pool, and the transfer-enabled registry all under concurrent
//! client load. The wire protocol carries board *names*, so the stage
//! exercises the built-in catalog boards rather than the synthetic
//! population; that is exactly the split we want, since wall-clock
//! numbers from this stage are jittery by nature and are therefore kept
//! out of the deterministic [`FleetReport`](crate::report::FleetReport).
//! Only the counts (sent / ok / failed) — which a healthy stack makes
//! deterministic — feed the report.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use icomm_microbench::TransferPolicy;
use icomm_net::{BinaryServer, NetConfig, PanicPlan, ResilienceConfig, ResilientClient, WireMode};
use icomm_resilience::{RestartPolicy, RetryPolicy};
use icomm_serve::{
    AdmissionConfig, Server, ServiceConfig, TuneRequest, TuneResponse, TuningService,
};

use crate::report::LivefireStats;

/// Boards the wire protocol can name (subset of the serving catalog the
/// stage rotates through).
const BOARDS: [&str; 3] = ["nano", "tx2", "xavier"];
const APPS: [&str; 3] = ["shwfs", "orb", "lane"];

/// Deterministic counts plus wall-clock measurements from one stage run.
#[derive(Debug)]
pub(crate) struct LivefireOutcome {
    pub sent: u64,
    pub ok: u64,
    pub failed: u64,
    pub shard_restarts: u64,
    pub stats: LivefireStats,
}

/// Runs `requests` requests against a fresh in-process server from
/// `threads` concurrent TCP clients and tears everything down. `wire`
/// selects the serving plane: the line-JSON thread-per-connection
/// listener, or the `icomm-net` binary event loop.
///
/// `shard_panics > 0` arms the binary plane's deterministic panic
/// injector: panics fire mid-frame at fixed intervals, the shard
/// supervisor restarts each crashed event loop, and the resilient
/// clients retry over fresh connections — so the stage still answers
/// every request. Requires the binary wire (the JSON listener has no
/// supervisor).
///
/// Admission is unlimited here on purpose: the stage asserts the stack
/// serves every request, while shedding behavior is validated
/// deterministically in the simulation.
pub(crate) fn run_livefire(
    requests: usize,
    threads: usize,
    wire: WireMode,
    shard_panics: u32,
) -> Result<LivefireOutcome, String> {
    if shard_panics > 0 && wire != WireMode::Binary {
        return Err("shard panic injection requires the binary serving plane: \
             the line-JSON listener has no shard supervisor"
            .to_string());
    }
    let service = Arc::new(TuningService::start(
        ServiceConfig::quick()
            .with_workers(4)
            .with_admission(AdmissionConfig::unlimited())
            .with_transfer(TransferPolicy::default()),
    ));
    // One teardown path for both planes: hold a reference here, stop the
    // listener, then unwrap and shut the service down.
    enum Listener {
        Json(Server),
        Binary(BinaryServer),
    }
    let listener = match wire {
        WireMode::Json => Listener::Json(
            Server::start(Arc::clone(&service), "127.0.0.1:0")
                .map_err(|e| format!("livefire stage could not bind a local socket: {e}"))?,
        ),
        WireMode::Binary => {
            let mut net_config = NetConfig::default();
            if shard_panics > 0 {
                // Panics spread across the run so each one lands while
                // requests are still in flight; the restart budget
                // covers every injected panic with slack.
                net_config = net_config
                    .with_restart(RestartPolicy {
                        max_restarts: shard_panics.max(4),
                        base_backoff: Duration::from_millis(2),
                        max_backoff: Duration::from_millis(50),
                    })
                    .with_panic_plan(PanicPlan {
                        after_frames: (requests as u64 / (u64::from(shard_panics) + 1)).max(4),
                        panics: shard_panics,
                    });
            }
            Listener::Binary(
                BinaryServer::start_with(Arc::clone(&service), "127.0.0.1:0", net_config)
                    .map_err(|e| format!("livefire stage could not bind a local socket: {e}"))?,
            )
        }
    };
    let addr = match &listener {
        Listener::Json(server) => server.local_addr(),
        Listener::Binary(server) => server.local_addr(),
    };

    let threads = threads.max(1).min(requests.max(1));
    let start = Instant::now();
    let mut handles = Vec::with_capacity(threads);
    for t in 0..threads {
        // Spread the request ids across clients: client t sends ids
        // t, t+threads, t+2*threads, ...
        let share: Vec<u64> = (0..requests as u64)
            .filter(|id| *id as usize % threads == t)
            .collect();
        handles.push(std::thread::spawn(move || match wire {
            WireMode::Json => client_thread(addr, &share),
            WireMode::Binary => binary_client_thread(addr, &share),
        }));
    }

    let mut sent = 0u64;
    let mut ok = 0u64;
    let mut latencies: Vec<u64> = Vec::with_capacity(requests);
    for handle in handles {
        let outcome = handle
            .join()
            .map_err(|_| "livefire client thread panicked".to_string())??;
        sent += outcome.sent;
        ok += outcome.ok;
        latencies.extend(outcome.latencies_us);
    }
    let wall_duration_us = start.elapsed().as_micros() as u64;

    let shard_restarts = match listener {
        Listener::Json(server) => {
            server.stop();
            0
        }
        Listener::Binary(server) => {
            let restarts = server.health().restarts_total;
            server.stop();
            restarts
        }
    };
    Arc::try_unwrap(service)
        .map_err(|_| "livefire server still holds service references".to_string())?
        .shutdown()?;

    latencies.sort_unstable();
    let pick = |q: f64| -> u64 {
        if latencies.is_empty() {
            return 0;
        }
        let rank = ((q * latencies.len() as f64).ceil() as usize).max(1);
        latencies[rank.min(latencies.len()) - 1]
    };
    let wall_mean_us = if latencies.is_empty() {
        0.0
    } else {
        latencies.iter().sum::<u64>() as f64 / latencies.len() as f64
    };
    Ok(LivefireOutcome {
        sent,
        ok,
        failed: sent - ok,
        shard_restarts,
        stats: LivefireStats {
            wall_p50_us: pick(0.50),
            wall_p95_us: pick(0.95),
            wall_p99_us: pick(0.99),
            wall_mean_us,
            wall_duration_us,
            wall_throughput_rps: if wall_duration_us == 0 {
                0.0
            } else {
                sent as f64 / (wall_duration_us as f64 / 1e6)
            },
        },
    })
}

/// Per-client results.
struct ClientOutcome {
    sent: u64,
    ok: u64,
    latencies_us: Vec<u64>,
}

/// One client connection: write a request line, read the response line,
/// time the round trip, repeat.
fn client_thread(addr: std::net::SocketAddr, ids: &[u64]) -> Result<ClientOutcome, String> {
    let stream =
        TcpStream::connect(addr).map_err(|e| format!("livefire client could not connect: {e}"))?;
    let mut writer = stream
        .try_clone()
        .map_err(|e| format!("livefire client could not clone its stream: {e}"))?;
    let mut reader = BufReader::new(stream);
    let mut outcome = ClientOutcome {
        sent: 0,
        ok: 0,
        latencies_us: Vec::with_capacity(ids.len()),
    };
    for &id in ids {
        let board = BOARDS[id as usize % BOARDS.len()];
        let app = APPS[(id as usize / BOARDS.len()) % APPS.len()];
        let request = TuneRequest::new(id, board, app);
        let line = icomm_persist::to_string(&request)
            .map_err(|e| format!("livefire request {id} failed to serialize: {e}"))?;
        let begin = Instant::now();
        writer
            .write_all(line.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .and_then(|()| writer.flush())
            .map_err(|e| format!("livefire request {id} failed to send: {e}"))?;
        outcome.sent += 1;
        let mut reply = String::new();
        reader
            .read_line(&mut reply)
            .map_err(|e| format!("livefire response {id} failed to arrive: {e}"))?;
        outcome
            .latencies_us
            .push(begin.elapsed().as_micros() as u64);
        let response: TuneResponse = icomm_persist::from_str(reply.trim())
            .map_err(|e| format!("livefire response {id} failed to parse: {e}"))?;
        if response.ok && response.id == id {
            outcome.ok += 1;
        }
    }
    Ok(outcome)
}

/// One binary client connection: the same request stream as
/// [`client_thread`], carried as `icommwire v1` tune frames through the
/// resilient client, so a shard panic mid-frame costs a retry on a
/// fresh connection rather than a lost response.
fn binary_client_thread(addr: std::net::SocketAddr, ids: &[u64]) -> Result<ClientOutcome, String> {
    let config = ResilienceConfig {
        retry: RetryPolicy {
            max_attempts: 8,
            base_delay: Duration::from_millis(2),
            max_delay: Duration::from_millis(50),
            deadline: Duration::from_secs(20),
            ..RetryPolicy::default()
        },
        ..ResilienceConfig::default()
    };
    let mut client = ResilientClient::with_config(addr, config);
    let mut outcome = ClientOutcome {
        sent: 0,
        ok: 0,
        latencies_us: Vec::with_capacity(ids.len()),
    };
    for &id in ids {
        let board = BOARDS[id as usize % BOARDS.len()];
        let app = APPS[(id as usize / BOARDS.len()) % APPS.len()];
        let request = TuneRequest::new(id, board, app);
        let begin = Instant::now();
        outcome.sent += 1;
        let response = client
            .tune(&request)
            .map_err(|e| format!("livefire binary request {id} failed: {e}"))?;
        outcome
            .latencies_us
            .push(begin.elapsed().as_micros() as u64);
        if response.ok && response.id == id {
            outcome.ok += 1;
        }
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn livefire_round_trips_every_request() {
        let outcome = run_livefire(24, 3, WireMode::Json, 0).unwrap();
        assert_eq!(outcome.sent, 24);
        assert_eq!(outcome.ok, 24);
        assert_eq!(outcome.failed, 0);
        assert_eq!(outcome.shard_restarts, 0);
        assert!(outcome.stats.wall_p50_us <= outcome.stats.wall_p99_us);
        assert!(outcome.stats.wall_throughput_rps > 0.0);
    }

    #[test]
    fn livefire_binary_round_trips_every_request() {
        let outcome = run_livefire(24, 3, WireMode::Binary, 0).unwrap();
        assert_eq!(outcome.sent, 24);
        assert_eq!(outcome.ok, 24);
        assert_eq!(outcome.failed, 0);
        assert_eq!(outcome.shard_restarts, 0);
        assert!(outcome.stats.wall_throughput_rps > 0.0);
    }

    #[test]
    fn single_thread_single_request_works() {
        let outcome = run_livefire(1, 1, WireMode::Json, 0).unwrap();
        assert_eq!((outcome.sent, outcome.ok, outcome.failed), (1, 1, 0));
    }

    #[test]
    fn injected_shard_panics_lose_no_responses() {
        let outcome = run_livefire(96, 4, WireMode::Binary, 2).unwrap();
        assert_eq!(outcome.sent, 96);
        assert_eq!(outcome.ok, 96, "resilient clients must retry past panics");
        assert_eq!(outcome.failed, 0);
        assert_eq!(
            outcome.shard_restarts, 2,
            "the supervisor restarts each injected panic"
        );
    }

    #[test]
    fn shard_panics_need_the_binary_wire() {
        let err = run_livefire(8, 2, WireMode::Json, 1).unwrap_err();
        assert!(err.contains("binary"), "error: {err}");
    }
}
