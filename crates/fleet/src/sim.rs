//! Deterministic virtual-time fleet simulation.
//!
//! The simulator runs the *real* characterization pipeline — the actual
//! registry, the actual transfer interpolation, the actual quick
//! micro-benchmark sweeps — under a discrete-event queueing model with
//! virtual time. Arrival timestamps, admission decisions, queue depths,
//! and latencies are all functions of the seed and the configuration,
//! never of the host's wall clock, so the resulting [`FleetReport`]
//! serializes byte-identically across replays. Wall-clock numbers exist
//! too (the optional live-fire TCP stage) but are confined to
//! [`LivefireStats`](crate::report::LivefireStats).
//!
//! Per-request virtual service cost is classified by how the lookup was
//! satisfied: a registry cache hit costs microseconds, a federated
//! transfer costs the interpolation, and a full characterization costs
//! the micro-benchmark sweep — the three-orders-of-magnitude spread that
//! makes warm-start rate the number that decides fleet p99.

use std::cell::Cell;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::Arc;

use icomm_chaos::{ChaosRng, FaultPlan};
use icomm_core::recommend_for_device;
use icomm_microbench::{
    fingerprint_features, quick_characterize_device, robust_transfer_characterization,
    DeviceCharacterization, TransferPolicy,
};
use icomm_models::run_model;
use icomm_sched::{run_sched_with, PolicyKind, SchedConfig, SchedReport};
use icomm_serve::catalog;
use icomm_serve::registry::EntryMeta;
use icomm_serve::{AdmissionConfig, AdmissionController, AdmissionDecision, Registry, ShedReason};
use icomm_soc::units::ByteSize;
use icomm_soc::DeviceProfile;
use icomm_synth::RuleSet;

use crate::arrival::ArrivalConfig;
use crate::population::{synthesize_population, BoardMix, PopulationConfig};
use crate::report::{FleetReport, FleetRunOutput};

/// Virtual service cost of a registry cache hit (decision flow only).
const COST_HIT_US: u64 = 180;
/// Virtual service cost of a federated transfer (neighbor search +
/// interpolation + decision flow).
const COST_TRANSFER_US: u64 = 600;
/// Virtual service cost of a rules-first warm start (first-match rule
/// evaluation over the transferred rule set — cheaper than a k-NN
/// interpolation, pricier than an exact cache hit).
const COST_RULES_US: u64 = 240;
/// Virtual service cost of a full quick micro-benchmark sweep.
const COST_FULL_US: u64 = 24_000;

/// Full fleet-run configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetConfig {
    /// Comma-separated board mix (`"nano,tx2,xavier"`).
    pub boards: String,
    /// Population size (one request per device).
    pub devices: usize,
    /// Arrival-process knobs.
    pub arrival: ArrivalConfig,
    /// Population-shape knobs.
    pub population: PopulationConfig,
    /// Seed for population, schedule, and class draws.
    pub seed: u64,
    /// Virtual service workers (concurrent characterizations).
    pub workers: usize,
    /// Admission-control policy applied in the simulation.
    pub admission: AdmissionConfig,
    /// Federated-transfer policy.
    pub transfer: TransferPolicy,
    /// Latency SLO the attainment is measured against, microseconds.
    pub slo_us: u64,
    /// Transferred devices to spot-check against a full
    /// characterization for the regret metric.
    pub regret_samples: usize,
    /// Whether to run the live-fire TCP stage after the simulation.
    pub livefire: bool,
    /// Serving plane the live-fire stage drives: the line-JSON
    /// compatibility listener or the `icomm-net` binary event loop.
    pub livefire_wire: icomm_net::WireMode,
    /// Tenants co-hosted per served device. `1` (the default) keeps the
    /// fleet single-tenant; `2`–`4` turn on the multi-tenant stage: every
    /// served device schedules the co-run mix of that size under the
    /// characterization the registry resolved for it (cache hit,
    /// federated transfer, or full sweep — the same object, so a bad
    /// transfer shows up as co-run deadline misses too).
    pub tenants_per_device: usize,
    /// Named co-run mix for the multi-tenant stage, or `"auto"` to pick
    /// by `tenants_per_device` (2 → `duo`, 3 → `contended`, 4 → `quad`).
    pub tenant_mix: String,
    /// Explicit per-device memory cap the multi-tenant stage admits
    /// under (`None` = each board's stock DRAM budget, which the
    /// paper-scale mixes never approach). Only meaningful when
    /// `tenants_per_device > 1`.
    pub mem_cap: Option<ByteSize>,
    /// Synthesized rule set shipped to the fleet ahead of time
    /// (`icomm-synth`). When present, a registry miss on a board whose
    /// every named mix the rule set verified is answered **rules-first**
    /// — the transferred characterization plus rule-backed provenance —
    /// before k-NN transfer or a full sweep is even attempted. `None`
    /// (the default) leaves the pipeline exactly as before.
    pub rules: Option<Arc<RuleSet>>,
    /// Fleet-scale fault plan: `churn_prob` evicts a device's registry
    /// state before its lookup (crash-and-rejoin), `poison_prob` makes a
    /// served device upload an adversarial characterization under a
    /// near-identical identity, and `shard_panics` injects panics into
    /// the live-fire binary serving plane.
    pub faults: FaultPlan,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            boards: "nano,tx2,xavier".to_string(),
            devices: 256,
            arrival: ArrivalConfig::default(),
            population: PopulationConfig::default(),
            seed: 7,
            workers: 4,
            admission: AdmissionConfig {
                rate_per_sec: 2_000.0,
                burst: 64.0,
                queue_bound: 64,
                bulk_queue_fraction: 0.5,
            },
            transfer: TransferPolicy::default(),
            slo_us: 50_000,
            regret_samples: 16,
            livefire: true,
            livefire_wire: icomm_net::WireMode::Json,
            tenants_per_device: 1,
            tenant_mix: "auto".to_string(),
            mem_cap: None,
            rules: None,
            faults: FaultPlan::none(),
        }
    }
}

/// Salt decorrelating the fault-injection draws from the population and
/// arrival draws, so turning faults on never reshuffles who arrives
/// when.
const FAULT_STREAM_SALT: u64 = 0xFA17_5EED_0B5E_55ED;

/// Builds the adversarial characterization a compromised device uploads.
/// Even-numbered poison events violate board physics outright (caught by
/// the plausibility screen and quarantined at the source); odd-numbered
/// ones lie an order of magnitude while staying inside physical bounds
/// (caught by the consensus screen once an honest majority exists).
fn poison_characterization(name: &str, event: u64) -> DeviceCharacterization {
    let implausible = event.is_multiple_of(2);
    DeviceCharacterization {
        device: name.to_string(),
        gpu_cache_max_throughput: if implausible { -5.0e9 } else { 9.0e12 },
        gpu_zc_throughput: 9.0e12,
        gpu_um_throughput: 9.0e12,
        gpu_cache_threshold_pct: 99.0,
        gpu_cache_zone2_pct: Some(99.5),
        cpu_cache_threshold_pct: 99.0,
        sc_zc_max_speedup: 900.0,
        zc_sc_max_speedup: 900.0,
        upm_supported: false,
        gpu_upm_throughput: 0.0,
        upm_kernel_penalty: 1.0,
        um_upm_max_speedup: 1.0,
    }
}

/// Resolves the co-run mix name for the configured tenant count, or
/// `None` when the fleet stays single-tenant.
fn corun_mix(config: &FleetConfig) -> Result<Option<String>, String> {
    match config.tenants_per_device {
        0 => Err("tenants_per_device must be at least 1".to_string()),
        1 => Ok(None),
        n @ 2..=4 => Ok(Some(if config.tenant_mix == "auto" {
            match n {
                2 => "duo",
                3 => "contended",
                _ => "quad",
            }
            .to_string()
        } else {
            config.tenant_mix.clone()
        })),
        n => Err(format!(
            "tenants_per_device must be between 1 and 4, got {n}"
        )),
    }
}

/// How one simulated lookup was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LookupClass {
    Hit,
    Rules,
    Transfer,
    FullFresh,
    FullFallback,
}

/// Exact quantile from a sorted latency vector (nearest-rank).
fn quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank.min(sorted.len()) - 1]
}

/// Positive-part relative regret of running `chosen` instead of `best`,
/// in percent of `best`'s ground-truth runtime.
fn decision_regret_pct(
    device: &DeviceProfile,
    app: &str,
    chosen: icomm_models::CommModelKind,
    best: icomm_models::CommModelKind,
) -> Result<f64, String> {
    if chosen == best {
        return Ok(0.0);
    }
    let workload = catalog::workload_by_name(app)?;
    let t_chosen = run_model(chosen, device, &workload).total_time.as_picos() as f64;
    let t_best = run_model(best, device, &workload).total_time.as_picos() as f64;
    if t_best <= 0.0 {
        return Ok(0.0);
    }
    Ok(((t_chosen - t_best) / t_best * 100.0).max(0.0))
}

/// Runs the deterministic simulation (and, when configured, the
/// live-fire stage) and assembles the [`FleetRunOutput`].
///
/// # Errors
///
/// Returns a message on an unknown board in the mix, a zero-device
/// population, or a live-fire stage that cannot bind its socket.
pub fn run_fleet(config: &FleetConfig) -> Result<FleetRunOutput, String> {
    if config.devices == 0 {
        return Err("fleet population must have at least one device".to_string());
    }
    config.faults.validate()?;
    if config.faults.shard_panics > 0 {
        if !config.livefire {
            return Err(
                "shard_panics requires the live-fire stage (set livefire=true)".to_string(),
            );
        }
        if config.livefire_wire != icomm_net::WireMode::Binary {
            return Err(
                "shard_panics requires the binary serving plane (--wire binary): \
                 the line-JSON listener has no shard supervisor to restart"
                    .to_string(),
            );
        }
    }
    let mix = BoardMix::parse(&config.boards)?;
    let mut rng = ChaosRng::new(config.seed);
    // Separate stream for fault draws: a fault-free plan consumes no
    // draws from it, and enabling faults never perturbs the population
    // or arrival schedule.
    let mut fault_rng = ChaosRng::new(config.seed ^ FAULT_STREAM_SALT);
    let population = synthesize_population(&mix, config.devices, &config.population, &mut rng);
    let arrivals = crate::arrival::generate_arrivals(config.devices, &config.arrival, &mut rng);

    let registry = Registry::default();
    let controller = AdmissionController::new(config.admission.clone());
    let workers = config.workers.max(1);
    let mut worker_free_us = vec![0u64; workers];
    let mut in_system: BinaryHeap<Reverse<u64>> = BinaryHeap::new();

    let mut served = 0u64;
    let mut shed_queue = 0u64;
    let mut shed_rate = 0u64;
    let mut churn_events = 0u64;
    let mut poisoned_sources = 0u64;
    let mut cache_hits = 0u64;
    let mut transfer_hits = 0u64;
    let mut rules_hits = 0u64;
    let mut transfer_fallbacks = 0u64;
    let mut full_runs = 0u64;
    let mut latencies: Vec<u64> = Vec::with_capacity(arrivals.len());
    let mut within_slo = 0u64;
    let mut max_finish_us = 0u64;
    // Transferred devices, with the app each one asked for — the regret
    // spot-check pool.
    let mut transferred: Vec<(usize, &'static str)> = Vec::new();

    // Multi-tenant stage: a co-run schedule per served device, memoized
    // per (board, cluster). Co-run behaviour is a cluster property (the
    // cluster shares DVFS caps and memory timings), so the first
    // registry-resolved characterization in a cluster prices the whole
    // cluster; per-unit clock drift stays a single-tenant concern.
    let tenant_mix_name = corun_mix(config)?;
    let mut sched_memo: HashMap<(String, usize), SchedReport> = HashMap::new();
    let mut corun_tenants = 0u64;
    let mut corun_jobs = 0u64;
    let mut corun_missed = 0u64;
    let mut corun_slo_ok = 0u64;
    let mut corun_slowdown_sum = 0.0f64;
    let mut corun_flips = 0u64;
    let mut corun_demotions = 0u64;
    let mut corun_evictions = 0u64;
    let mut corun_spilled_bytes = 0u64;
    let mut corun_footprint_peak = 0u64;

    for arrival in &arrivals {
        let now = arrival.at_us;
        while matches!(in_system.peek(), Some(Reverse(finish)) if *finish <= now) {
            in_system.pop();
        }
        match controller.admit(arrival.class, in_system.len(), now) {
            AdmissionDecision::Shed(ShedReason::Queue) => {
                shed_queue += 1;
                continue;
            }
            AdmissionDecision::Shed(ShedReason::Rate) => {
                shed_rate += 1;
                continue;
            }
            AdmissionDecision::Admit => {}
        }

        let device = &population[arrival.device_index];
        // Device churn: the device crashed, lost local state, and
        // re-joins the fleet as a stranger — its registry entry (and any
        // quarantine verdict against it) evaporates before the lookup.
        if fault_rng.chance(config.faults.churn_prob) && registry.remove(&device.profile) {
            churn_events += 1;
        }
        let class_flag = Cell::new(LookupClass::Hit);
        let (characterization, lookup) =
            registry.get_or_characterize_with(&device.profile, |profile| {
                let features = fingerprint_features(profile);
                // Rules-first: a shipped rule set that verified every
                // named mix on this board answers the miss outright —
                // no neighbor search, no sweep. Confidence stays below
                // measured so the entry never seeds k-NN transfers.
                if let Some(rules) = &config.rules {
                    if let Some((chr, confidence)) = rules.warm_start(&device.board) {
                        class_flag.set(LookupClass::Rules);
                        return (chr.clone(), Some(EntryMeta::rules(features, confidence)));
                    }
                }
                let neighbors = registry.measured_neighbors();
                let had_neighbors = !neighbors.is_empty();
                let outcome = robust_transfer_characterization(
                    &profile.name,
                    &features,
                    &neighbors,
                    &config.transfer,
                );
                for source in &outcome.rejected_sources {
                    registry.quarantine_source(*source);
                }
                match outcome.transferred {
                    Some(t) => {
                        class_flag.set(LookupClass::Transfer);
                        let meta = EntryMeta {
                            features,
                            confidence: t.confidence,
                        };
                        (t.characterization, Some(meta))
                    }
                    None => {
                        class_flag.set(if had_neighbors {
                            LookupClass::FullFallback
                        } else {
                            LookupClass::FullFresh
                        });
                        (
                            quick_characterize_device(profile),
                            Some(EntryMeta::measured(features)),
                        )
                    }
                }
            });
        let class = if lookup.served_from_cache() {
            LookupClass::Hit
        } else {
            class_flag.get()
        };
        let cost = match class {
            LookupClass::Hit => {
                cache_hits += 1;
                COST_HIT_US
            }
            LookupClass::Rules => {
                rules_hits += 1;
                // Rules-served devices join the regret spot-check pool:
                // a bad rule set must show up as decision regret, not
                // hide behind the warm-start number.
                transferred.push((arrival.device_index, arrival.app));
                COST_RULES_US
            }
            LookupClass::Transfer => {
                transfer_hits += 1;
                transferred.push((arrival.device_index, arrival.app));
                COST_TRANSFER_US
            }
            LookupClass::FullFallback => {
                transfer_fallbacks += 1;
                full_runs += 1;
                COST_FULL_US
            }
            LookupClass::FullFresh => {
                full_runs += 1;
                COST_FULL_US
            }
        };

        // Characterization poisoning: with probability `poison_prob` the
        // served device is compromised and uploads an adversarial
        // characterization under a near-identical (Sybil) identity — a
        // fresh key sitting well inside the transfer horizon of its
        // cluster, marked measured so it enters neighbor aggregation.
        if fault_rng.chance(config.faults.poison_prob) {
            let scale = 1.0015 + 0.0005 * (poisoned_sources % 4) as f64;
            let sybil = device.profile.with_power_scale(scale, scale, scale);
            let features = fingerprint_features(&sybil);
            registry.insert_with_meta(
                &sybil,
                poison_characterization(&sybil.name, poisoned_sources),
                EntryMeta::measured(features),
            );
            poisoned_sources += 1;
        }

        if let Some(mix_name) = &tenant_mix_name {
            let key = (device.board.clone(), device.cluster);
            if !sched_memo.contains_key(&key) {
                let mut sched = SchedConfig::new(device.profile.clone());
                sched.mix = mix_name.clone();
                sched.policy = PolicyKind::DeadlineBudget;
                // Decorrelate release phases across clusters while
                // keeping the whole stage a function of the fleet seed.
                sched.seed = config.seed ^ ((device.cluster as u64) << 8);
                sched.jobs_per_tenant = 4;
                sched.mem_cap = config.mem_cap;
                let out = run_sched_with(&sched, &characterization)?;
                sched_memo.insert(key.clone(), out.report);
            }
            let corun = &sched_memo[&key];
            corun_tenants += corun.tenants.len() as u64;
            if corun.any_flip {
                corun_flips += 1;
            }
            corun_demotions += u64::from(corun.demotions);
            corun_evictions += u64::from(corun.evictions);
            corun_spilled_bytes += corun.spilled_bytes;
            corun_footprint_peak = corun_footprint_peak.max(corun.footprint_bytes);
            for tenant in &corun.tenants {
                corun_jobs += u64::from(tenant.jobs);
                corun_missed += u64::from(tenant.missed);
                if tenant.missed == 0 {
                    corun_slo_ok += 1;
                }
                corun_slowdown_sum += tenant.mean_slowdown * f64::from(tenant.jobs);
            }
        }

        // Assign to the earliest-free virtual worker.
        let (slot, free_at) = worker_free_us
            .iter()
            .copied()
            .enumerate()
            .min_by_key(|(i, free)| (*free, *i))
            .unwrap_or((0, 0));
        let start = now.max(free_at);
        let finish = start + cost;
        worker_free_us[slot] = finish;
        in_system.push(Reverse(finish));
        max_finish_us = max_finish_us.max(finish);

        let latency = finish - now;
        if latency <= config.slo_us {
            within_slo += 1;
        }
        latencies.push(latency);
        served += 1;
    }

    latencies.sort_unstable();
    let latency_mean_us = if latencies.is_empty() {
        0.0
    } else {
        latencies.iter().sum::<u64>() as f64 / latencies.len() as f64
    };

    // Spot-check transferred characterizations against full sweeps:
    // stride-sample so the checks spread across boards and clusters.
    let mut regret_samples = 0u64;
    let mut regret_disagreements = 0u64;
    let mut regret_sum_pct = 0.0f64;
    let mut regret_max_pct = 0.0f64;
    if !transferred.is_empty() && config.regret_samples > 0 {
        let stride = (transferred.len() / config.regret_samples.min(transferred.len())).max(1);
        for (device_index, app) in transferred.iter().step_by(stride) {
            let device = &population[*device_index];
            let transferred_chr: std::sync::Arc<DeviceCharacterization> = registry
                .get(&device.profile)
                .ok_or_else(|| format!("transferred entry for device {device_index} vanished"))?;
            let full_chr = quick_characterize_device(&device.profile);
            let workload = catalog::workload_by_name(app)?;
            let current = icomm_models::CommModelKind::StandardCopy;
            let chosen =
                recommend_for_device(&device.profile, &transferred_chr, &workload, current)
                    .recommendation
                    .recommended;
            let best = recommend_for_device(&device.profile, &full_chr, &workload, current)
                .recommendation
                .recommended;
            let regret = decision_regret_pct(&device.profile, app, chosen, best)?;
            if chosen != best {
                regret_disagreements += 1;
            }
            regret_sum_pct += regret;
            regret_max_pct = regret_max_pct.max(regret);
            regret_samples += 1;
        }
    }
    let mean_regret_pct = if regret_samples == 0 {
        0.0
    } else {
        regret_sum_pct / regret_samples as f64
    };

    let lookups = cache_hits
        + transfer_hits
        + rules_hits
        + transfer_fallbacks
        + (full_runs - transfer_fallbacks);
    let warm_start_pct = if lookups == 0 {
        0.0
    } else {
        (cache_hits + transfer_hits + rules_hits) as f64 / lookups as f64 * 100.0
    };
    let transfer_attempts = transfer_hits + transfer_fallbacks;
    let transfer_hit_pct = if transfer_attempts == 0 {
        0.0
    } else {
        transfer_hits as f64 / transfer_attempts as f64 * 100.0
    };
    let throughput_rps = if max_finish_us == 0 {
        0.0
    } else {
        served as f64 / (max_finish_us as f64 / 1e6)
    };
    let slo_attainment_pct = if served == 0 {
        0.0
    } else {
        within_slo as f64 / served as f64 * 100.0
    };
    let corun_deadline_miss_pct = if corun_jobs == 0 {
        0.0
    } else {
        corun_missed as f64 / corun_jobs as f64 * 100.0
    };
    let corun_slo_attainment_pct = if corun_tenants == 0 {
        0.0
    } else {
        corun_slo_ok as f64 / corun_tenants as f64 * 100.0
    };
    let corun_mean_slowdown = if corun_jobs == 0 {
        0.0
    } else {
        corun_slowdown_sum / corun_jobs as f64
    };

    let (livefire_counts, livefire_stats, livefire_shard_restarts) = if config.livefire {
        let outcome = crate::livefire::run_livefire(
            config.devices.min(192),
            4,
            config.livefire_wire,
            config.faults.shard_panics,
        )?;
        (
            (outcome.sent, outcome.ok, outcome.failed),
            Some(outcome.stats),
            outcome.shard_restarts,
        )
    } else {
        ((0, 0, 0), None, 0)
    };

    let report = FleetReport {
        boards: mix.names().join(","),
        devices: config.devices as u64,
        arrival: config.arrival.process.as_str().to_string(),
        rate_per_sec: config.arrival.rate_per_sec,
        seed: config.seed,
        requests: arrivals.len() as u64,
        served,
        shed_queue,
        shed_rate,
        cache_hits,
        transfer_hits,
        transfer_fallbacks,
        rules_hits,
        full_characterizations: full_runs,
        warm_start_pct,
        transfer_hit_pct,
        latency_p50_us: quantile(&latencies, 0.50),
        latency_p95_us: quantile(&latencies, 0.95),
        latency_p99_us: quantile(&latencies, 0.99),
        latency_mean_us,
        throughput_rps,
        slo_us: config.slo_us,
        slo_attainment_pct,
        regret_samples,
        regret_disagreements,
        mean_regret_pct,
        max_regret_pct: regret_max_pct,
        tenants_per_device: config.tenants_per_device as u64,
        corun_tenants,
        corun_deadline_miss_pct,
        corun_slo_attainment_pct,
        corun_mean_slowdown,
        corun_flips,
        mem_cap_bytes: config.mem_cap.map_or(0, |c| c.as_u64()),
        corun_demotions,
        corun_evictions,
        corun_spilled_bytes,
        corun_footprint_peak_bytes: corun_footprint_peak,
        churn_events,
        poisoned_sources,
        quarantined_sources: registry.quarantined_sources().len() as u64,
        livefire_sent: livefire_counts.0,
        livefire_ok: livefire_counts.1,
        livefire_failed: livefire_counts.2,
        livefire_shard_restarts,
    };
    Ok(FleetRunOutput {
        report,
        livefire: livefire_stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> FleetConfig {
        FleetConfig {
            devices: 96,
            livefire: false,
            regret_samples: 4,
            ..FleetConfig::default()
        }
    }

    #[test]
    fn simulation_replays_byte_identically() {
        let run = || {
            let out = run_fleet(&small_config()).unwrap();
            icomm_persist::to_string(&out.report).unwrap()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn warm_start_clears_ninety_percent_on_clustered_population() {
        let out = run_fleet(&small_config()).unwrap();
        let r = out.report;
        assert_eq!(r.requests, 96);
        assert_eq!(r.served + r.shed_queue + r.shed_rate, r.requests);
        assert!(
            r.warm_start_pct >= 90.0,
            "warm start {:.1}% (hits {}, transfers {}, full {})",
            r.warm_start_pct,
            r.cache_hits,
            r.transfer_hits,
            r.full_characterizations
        );
        assert!(r.latency_p50_us <= r.latency_p95_us);
        assert!(r.latency_p95_us <= r.latency_p99_us);
        assert!(r.latency_p99_us > 0);
        assert!(
            r.mean_regret_pct <= 10.0,
            "regret {:.2}%",
            r.mean_regret_pct
        );
    }

    #[test]
    fn a_shipped_ruleset_answers_misses_rules_first() {
        let synth_config = icomm_synth::SynthConfig {
            boards: vec!["nano".to_string(), "tx2".to_string(), "xavier".to_string()],
            mixes: icomm_apps::MIX_NAMES
                .iter()
                .map(|m| m.to_string())
                .collect(),
            capped_pressure: false,
            ..icomm_synth::SynthConfig::default()
        };
        let ruleset = icomm_synth::synthesize(&synth_config)
            .expect("synthesis runs")
            .ruleset;
        for board in ["nano", "tx2", "xavier"] {
            assert!(
                ruleset.warm_start(board).is_some(),
                "{board} must be fully verified for rules-first warm start"
            );
        }
        let config = FleetConfig {
            rules: Some(Arc::new(ruleset)),
            ..small_config()
        };
        let out = run_fleet(&config).expect("rules-first fleet runs");
        let r = out.report;
        assert!(r.rules_hits > 0, "misses must be answered from rules");
        assert_eq!(
            r.full_characterizations, 0,
            "no device may pay a full sweep when rules cover every board"
        );
        assert_eq!(r.transfer_hits, 0, "rules pre-empt k-NN transfer");
        assert!(r.warm_start_pct >= 90.0, "warm {:.1}%", r.warm_start_pct);
        assert!(
            r.mean_regret_pct <= 10.0,
            "regret {:.2}%",
            r.mean_regret_pct
        );
        // Rules-served fleets replay byte-identically like every mode.
        let replay = run_fleet(&config).expect("replay runs").report;
        assert_eq!(
            icomm_persist::to_string(&r).unwrap(),
            icomm_persist::to_string(&replay).unwrap()
        );
    }

    #[test]
    fn burst_arrivals_trip_admission_control() {
        let config = FleetConfig {
            devices: 192,
            arrival: ArrivalConfig {
                process: crate::arrival::ArrivalProcess::Burst,
                rate_per_sec: 4_000.0,
                bulk_fraction: 0.3,
            },
            admission: AdmissionConfig {
                rate_per_sec: 500.0,
                burst: 16.0,
                queue_bound: 8,
                bulk_queue_fraction: 0.25,
            },
            livefire: false,
            regret_samples: 0,
            ..FleetConfig::default()
        };
        let out = run_fleet(&config).unwrap();
        let r = out.report;
        assert!(
            r.shed_queue + r.shed_rate > 0,
            "overdriven burst load must shed"
        );
        assert_eq!(r.served + r.shed_queue + r.shed_rate, r.requests);
    }

    #[test]
    fn multi_tenant_mode_schedules_every_served_device() {
        let config = FleetConfig {
            devices: 36,
            tenants_per_device: 2,
            ..small_config()
        };
        let out = run_fleet(&config).expect("multi-tenant fleet runs");
        let r = out.report;
        assert_eq!(r.tenants_per_device, 2);
        // Every served device hosts exactly the duo mix's two tenants.
        assert_eq!(r.corun_tenants, r.served * 2);
        assert!(r.corun_slo_attainment_pct > 0.0);
        assert!(r.corun_mean_slowdown >= 1.0);
        // The single-tenant pipeline metrics are untouched by the stage.
        let solo = run_fleet(&FleetConfig {
            devices: 36,
            ..small_config()
        })
        .expect("single-tenant fleet runs");
        assert_eq!(r.served, solo.report.served);
        assert_eq!(r.warm_start_pct, solo.report.warm_start_pct);
        assert_eq!(solo.report.corun_tenants, 0);
    }

    #[test]
    fn a_fleet_wide_memory_cap_is_accounted_per_device() {
        let capped_config = FleetConfig {
            devices: 36,
            tenants_per_device: 3,
            tenant_mix: "pressure".to_string(),
            mem_cap: Some(ByteSize(6 << 20)),
            ..small_config()
        };
        let capped = run_fleet(&capped_config).expect("capped fleet runs").report;
        assert_eq!(capped.mem_cap_bytes, 6 << 20);
        // The HD mix does not fit 6 MiB under double-buffered optima, so
        // every served device's schedule demotes at least one tenant.
        assert!(capped.corun_demotions >= capped.served, "{capped:?}");
        assert_eq!(capped.corun_evictions, 0);
        assert_eq!(capped.corun_spilled_bytes, 0);
        assert!(capped.corun_footprint_peak_bytes > 0);
        assert!(capped.corun_footprint_peak_bytes <= 6 << 20);

        // Same fleet uncapped: stock budgets never bind, nothing demotes,
        // and the single-tenant pipeline metrics are untouched.
        let open = run_fleet(&FleetConfig {
            mem_cap: None,
            ..capped_config.clone()
        })
        .expect("uncapped fleet runs")
        .report;
        assert_eq!(open.mem_cap_bytes, 0);
        assert_eq!(open.corun_demotions, 0);
        assert!(open.corun_footprint_peak_bytes > capped.corun_footprint_peak_bytes);
        assert_eq!(open.served, capped.served);
        assert_eq!(open.warm_start_pct, capped.warm_start_pct);

        // Capped runs replay byte-identically like every other mode.
        let replay = run_fleet(&capped_config)
            .expect("capped replay runs")
            .report;
        assert_eq!(
            icomm_persist::to_string(&capped).unwrap(),
            icomm_persist::to_string(&replay).unwrap()
        );
    }

    #[test]
    fn bad_tenant_counts_are_rejected() {
        for tenants in [0, 5] {
            let config = FleetConfig {
                tenants_per_device: tenants,
                ..small_config()
            };
            let err = run_fleet(&config).expect_err("tenant count out of range");
            assert!(err.contains("tenants_per_device"), "error: {err}");
        }
    }

    #[test]
    fn faulted_simulation_replays_byte_identically() {
        let config = FleetConfig {
            faults: FaultPlan {
                churn_prob: 0.2,
                poison_prob: 0.25,
                ..FaultPlan::none()
            },
            ..small_config()
        };
        let run = || {
            let out = run_fleet(&config).unwrap();
            icomm_persist::to_string(&out.report).unwrap()
        };
        let first = run();
        assert_eq!(first, run());
        let report: FleetReport = icomm_persist::from_str(&first).unwrap();
        assert!(report.churn_events > 0, "churn draws must fire at 20%");
        assert!(report.poisoned_sources > 0, "poison draws must fire at 25%");
        assert!(
            report.quarantined_sources > 0,
            "implausible poisons must be caught and attributed"
        );
    }

    #[test]
    fn poisoned_fleet_holds_decisions_and_quarantines_sources() {
        let baseline = run_fleet(&small_config()).unwrap().report;
        let poisoned = run_fleet(&FleetConfig {
            faults: FaultPlan {
                poison_prob: 0.25,
                ..FaultPlan::none()
            },
            ..small_config()
        })
        .unwrap()
        .report;
        assert!(poisoned.poisoned_sources > 0);
        assert!(poisoned.quarantined_sources > 0);
        // Each plausible poison costs at most one fail-safe decline into
        // measurement before the neighborhood majority quarantines it;
        // at 96 devices that overhead is proportionally heavy (it
        // amortizes to a few points at fleet scale), so the bound here
        // is looser than the fleet gate.
        assert!(
            poisoned.warm_start_pct >= 75.0,
            "warm start {:.1}% under poisoning",
            poisoned.warm_start_pct
        );
        // The robust aggregation keeps transferred decisions identical
        // to the unpoisoned fleet: zero regret inflation.
        assert!(
            poisoned.mean_regret_pct <= baseline.mean_regret_pct,
            "regret inflated: {:.2}% vs baseline {:.2}%",
            poisoned.mean_regret_pct,
            baseline.mean_regret_pct
        );
        assert_eq!(poisoned.regret_disagreements, 0);
    }

    #[test]
    fn churn_forces_relookups_without_losing_requests() {
        let baseline = run_fleet(&small_config()).unwrap().report;
        let churned = run_fleet(&FleetConfig {
            faults: FaultPlan {
                churn_prob: 0.5,
                ..FaultPlan::none()
            },
            ..small_config()
        })
        .unwrap()
        .report;
        assert!(churned.churn_events > 0);
        assert_eq!(
            churned.served + churned.shed_queue + churned.shed_rate,
            churned.requests
        );
        assert!(
            churned.cache_hits < baseline.cache_hits,
            "evictions must cost cache hits ({} vs {})",
            churned.cache_hits,
            baseline.cache_hits
        );
    }

    #[test]
    fn livefire_survives_injected_shard_panics() {
        let config = FleetConfig {
            devices: 96,
            regret_samples: 0,
            livefire: true,
            livefire_wire: icomm_net::WireMode::Binary,
            faults: FaultPlan {
                shard_panics: 2,
                ..FaultPlan::none()
            },
            ..FleetConfig::default()
        };
        let out = run_fleet(&config).unwrap();
        let r = out.report;
        assert_eq!(r.livefire_sent, 96);
        assert_eq!(r.livefire_failed, 0, "no response may be lost to a panic");
        assert_eq!(r.livefire_shard_restarts, 2);
        assert!(r.passed(), "report:\n{r}");
    }

    #[test]
    fn shard_panics_demand_a_supervised_plane() {
        let json_wire = FleetConfig {
            faults: FaultPlan {
                shard_panics: 1,
                ..FaultPlan::none()
            },
            ..FleetConfig::default()
        };
        let err = run_fleet(&json_wire).unwrap_err();
        assert!(err.contains("binary"), "error: {err}");

        let no_livefire = FleetConfig {
            livefire: false,
            livefire_wire: icomm_net::WireMode::Binary,
            ..json_wire
        };
        let err = run_fleet(&no_livefire).unwrap_err();
        assert!(err.contains("live-fire"), "error: {err}");
    }

    #[test]
    fn unknown_board_is_a_descriptive_error() {
        let config = FleetConfig {
            boards: "nano,pi5".to_string(),
            ..small_config()
        };
        let err = run_fleet(&config).unwrap_err();
        assert!(err.contains("pi5"), "error: {err}");
    }

    #[test]
    fn exact_quantiles_from_sorted_samples() {
        let sorted = [10, 20, 30, 40, 50, 60, 70, 80, 90, 100];
        assert_eq!(quantile(&sorted, 0.5), 50);
        assert_eq!(quantile(&sorted, 0.95), 100);
        assert_eq!(quantile(&sorted, 0.0), 10);
        assert_eq!(quantile(&[], 0.5), 0);
    }
}
