//! Open-loop arrival processes.
//!
//! The load generator is *open loop*: arrival times are drawn up front
//! from the configured process and do not react to service latency, the
//! discipline that exposes queueing collapse instead of politely hiding
//! it (a closed-loop client slows down exactly when the server needs
//! mercy the least). Two presets cover the interesting regimes:
//!
//! - **Poisson** — independent exponential inter-arrivals at the target
//!   rate; the memoryless baseline.
//! - **Burst** — the same mean rate delivered as alternating bursts
//!   (10× rate) and quiet gaps, the shape that actually trips admission
//!   control.
//!
//! Arrivals are drawn from the caller's seeded [`ChaosRng`] stream, so
//! the schedule replays byte-identically per seed.

use icomm_chaos::ChaosRng;
use icomm_serve::RequestClass;

/// Arrival-process preset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalProcess {
    /// Exponential inter-arrivals at the target rate.
    Poisson,
    /// Alternating 10×-rate bursts and quiet gaps with the same mean
    /// rate.
    Burst,
}

impl ArrivalProcess {
    /// Parses the CLI form (`poisson` / `burst`).
    ///
    /// # Errors
    ///
    /// Returns a message listing the valid names.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s.to_ascii_lowercase().as_str() {
            "poisson" => Ok(ArrivalProcess::Poisson),
            "burst" | "bursty" => Ok(ArrivalProcess::Burst),
            other => Err(format!(
                "unknown arrival process '{other}' (expected poisson or burst)"
            )),
        }
    }

    /// CLI/report form of the preset.
    pub fn as_str(self) -> &'static str {
        match self {
            ArrivalProcess::Poisson => "poisson",
            ArrivalProcess::Burst => "burst",
        }
    }
}

/// Load-generation knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrivalConfig {
    /// Which process generates inter-arrival gaps.
    pub process: ArrivalProcess,
    /// Mean arrival rate, requests per second.
    pub rate_per_sec: f64,
    /// Fraction of requests tagged [`RequestClass::Bulk`].
    pub bulk_fraction: f64,
}

impl Default for ArrivalConfig {
    fn default() -> Self {
        ArrivalConfig {
            process: ArrivalProcess::Poisson,
            rate_per_sec: 400.0,
            bulk_fraction: 0.2,
        }
    }
}

/// One scheduled request: which device asks, when, for which app, at
/// which priority.
#[derive(Debug, Clone, PartialEq)]
pub struct Arrival {
    /// Virtual arrival time, microseconds from schedule start.
    pub at_us: u64,
    /// Index into the synthesized population.
    pub device_index: usize,
    /// Application name (`shwfs` / `orb` / `lane`).
    pub app: &'static str,
    /// Admission-priority class.
    pub class: RequestClass,
}

const APPS: [&str; 3] = ["shwfs", "orb", "lane"];

/// How many times denser than the mean rate a burst is.
const BURST_FACTOR: f64 = 10.0;
/// Arrivals per burst before the process goes quiet.
const BURST_LEN: usize = 32;

/// Generates one arrival per device, in device-shuffled order, with
/// inter-arrival gaps from the configured process.
///
/// Shuffling matters: population synthesis lays devices out round-robin
/// by board, and an unshuffled schedule would hand the transfer pipeline
/// an unrealistically adversarial (perfectly interleaved) or
/// unrealistically friendly (perfectly grouped) order. The shuffle is
/// drawn from the same seeded stream as everything else.
pub fn generate_arrivals(
    devices: usize,
    config: &ArrivalConfig,
    rng: &mut ChaosRng,
) -> Vec<Arrival> {
    let mut order: Vec<usize> = (0..devices).collect();
    // Fisher-Yates with the seeded stream.
    for i in (1..order.len()).rev() {
        order.swap(i, rng.index(i + 1));
    }
    let rate = config.rate_per_sec.max(1e-3);
    let mean_gap_us = 1e6 / rate;
    let mut now_us = 0f64;
    order
        .into_iter()
        .enumerate()
        .map(|(n, device_index)| {
            let gap = match config.process {
                ArrivalProcess::Poisson => {
                    // Exponential inter-arrival: -ln(U) * mean.
                    -((1.0 - rng.uniform()).max(f64::MIN_POSITIVE)).ln() * mean_gap_us
                }
                ArrivalProcess::Burst => {
                    let in_burst = (n / BURST_LEN).is_multiple_of(2);
                    if in_burst {
                        // Dense phase: 10x the mean rate.
                        mean_gap_us / BURST_FACTOR
                    } else {
                        // Quiet phase sized so the overall mean holds:
                        // gap + gap/factor averaged over both phases
                        // equals 2 * mean.
                        mean_gap_us * (2.0 - 1.0 / BURST_FACTOR)
                    }
                }
            };
            now_us += gap;
            Arrival {
                at_us: now_us as u64,
                device_index,
                app: APPS[rng.index(APPS.len())],
                class: if rng.chance(config.bulk_fraction) {
                    RequestClass::Bulk
                } else {
                    RequestClass::Interactive
                },
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_presets() {
        assert_eq!(
            ArrivalProcess::parse("poisson").unwrap().as_str(),
            "poisson"
        );
        assert_eq!(ArrivalProcess::parse("BURST").unwrap().as_str(), "burst");
        assert!(ArrivalProcess::parse("uniform").is_err());
    }

    #[test]
    fn schedule_replays_per_seed_and_covers_every_device() {
        let build = |seed| {
            let mut rng = ChaosRng::new(seed);
            generate_arrivals(200, &ArrivalConfig::default(), &mut rng)
        };
        let a = build(7);
        assert_eq!(a, build(7));
        assert_ne!(a, build(9));
        let mut seen: Vec<usize> = a.iter().map(|x| x.device_index).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..200).collect::<Vec<_>>());
        // Times are nondecreasing.
        assert!(a.windows(2).all(|w| w[0].at_us <= w[1].at_us));
    }

    #[test]
    fn poisson_mean_rate_is_roughly_honored() {
        let mut rng = ChaosRng::new(11);
        let config = ArrivalConfig {
            rate_per_sec: 1000.0,
            ..ArrivalConfig::default()
        };
        let arrivals = generate_arrivals(2000, &config, &mut rng);
        let span_s = arrivals.last().unwrap().at_us as f64 / 1e6;
        let rate = arrivals.len() as f64 / span_s;
        assert!((700.0..1400.0).contains(&rate), "observed rate {rate:.0}");
    }

    #[test]
    fn burst_preset_alternates_dense_and_quiet_gaps() {
        let mut rng = ChaosRng::new(5);
        let config = ArrivalConfig {
            process: ArrivalProcess::Burst,
            rate_per_sec: 100.0,
            ..ArrivalConfig::default()
        };
        let arrivals = generate_arrivals(128, &config, &mut rng);
        let gap = |i: usize| arrivals[i].at_us - arrivals[i - 1].at_us;
        // Inside the first burst: 1 ms gaps. Inside the quiet phase:
        // ~19.5 ms gaps.
        assert!(gap(10) < 2_000, "burst gap {}", gap(10));
        assert!(gap(40) > 15_000, "quiet gap {}", gap(40));
    }

    #[test]
    fn bulk_fraction_is_roughly_honored() {
        let mut rng = ChaosRng::new(3);
        let arrivals = generate_arrivals(1000, &ArrivalConfig::default(), &mut rng);
        let bulk = arrivals
            .iter()
            .filter(|a| a.class == RequestClass::Bulk)
            .count();
        assert!((120..280).contains(&bulk), "bulk count {bulk}");
    }
}
