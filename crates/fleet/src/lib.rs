//! Fleet-scale validation of the icomm serving stack.
//!
//! The paper's framework characterizes *one* device and tunes *one*
//! application. This crate asks the deployment question: what happens
//! when a thousand devices — a handful of SKUs, dozens of firmware
//! clusters, per-unit clock drift — all ask the tuning service for
//! recommendations at once? Three subsystems answer it:
//!
//! - [`population`] synthesizes deterministic, realistically clustered
//!   device fleets from the serving catalog's base boards.
//! - [`arrival`] generates open-loop Poisson or bursty request
//!   schedules from the same seeded stream.
//! - [`sim`] drives the *real* registry, federated-transfer, and
//!   admission-control code under a virtual-time discrete-event model,
//!   producing a byte-identically replayable [`FleetReport`]; an
//!   optional live-fire stage then hammers a real TCP server in-process
//!   and reports wall-clock numbers through the non-serialized
//!   [`LivefireStats`] side channel. With `tenants_per_device > 1` the
//!   simulation also co-schedules a tenant mix on every served device
//!   (via `icomm-sched`, using the characterization the registry
//!   resolved) and reports fleet-wide per-tenant SLO attainment.
//!
//! The headline metrics are the ones fleet operators care about:
//! warm-start rate (what fraction of devices avoided the expensive full
//! micro-benchmark sweep), tail latency against an SLO, shed counts
//! under overload, and the decision *regret* of transferred
//! characterizations versus full per-device ones.
//!
//! ```
//! use icomm_fleet::{FleetConfig, run_fleet};
//!
//! let config = FleetConfig {
//!     devices: 60,
//!     livefire: false,
//!     ..FleetConfig::default()
//! };
//! let out = run_fleet(&config)?;
//! let r = &out.report;
//! assert_eq!(r.served + r.shed_queue + r.shed_rate, r.requests);
//! assert!(r.latency_p50_us <= r.latency_p99_us);
//! # Ok::<(), String>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod arrival;
mod livefire;
pub mod population;
pub mod report;
pub mod sim;

pub use arrival::{Arrival, ArrivalConfig, ArrivalProcess};
pub use population::{synthesize_population, BoardMix, FleetDevice, PopulationConfig};
pub use report::{FleetReport, FleetRunOutput, LivefireStats};
pub use sim::{run_fleet, FleetConfig};
