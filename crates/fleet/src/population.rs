//! Synthetic fleet populations.
//!
//! Real device fleets are not uniform random samples of parameter space:
//! they are a handful of SKUs, each split into firmware *clusters*
//! (devices shipped with the same DVFS caps and memory timings), with
//! small per-unit clock drift inside each cluster. This module
//! synthesizes exactly that shape so the federated-transfer pipeline is
//! exercised realistically — stock devices repeat fingerprints exactly
//! (registry cache hits), drifted cluster-mates land close in feature
//! space (transfer hits), and distinct clusters or boards land far apart
//! (full characterizations).
//!
//! Everything is drawn from one seeded [`ChaosRng`] stream, so a
//! `(mix, devices, seed)` triple fully determines the population.

use icomm_chaos::ChaosRng;
use icomm_serve::catalog;
use icomm_soc::DeviceProfile;

/// The set of base boards a fleet is built from.
#[derive(Debug, Clone, PartialEq)]
pub struct BoardMix {
    names: Vec<String>,
    bases: Vec<DeviceProfile>,
}

impl BoardMix {
    /// Parses a comma-separated board list (`"nano,tx2,xavier"`) against
    /// the serving catalog.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first unknown board, or when the
    /// list is empty.
    pub fn parse(list: &str) -> Result<Self, String> {
        let mut names = Vec::new();
        let mut bases = Vec::new();
        for raw in list.split(',') {
            let name = raw.trim();
            if name.is_empty() {
                continue;
            }
            let device = catalog::board_by_name(name)?;
            names.push(name.to_string());
            bases.push(device);
        }
        if names.is_empty() {
            return Err(format!("board mix '{list}' names no boards"));
        }
        Ok(BoardMix { names, bases })
    }

    /// The board names in mix order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Number of boards in the mix.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the mix is empty (never true for a parsed mix).
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

/// One synthesized fleet device.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetDevice {
    /// Stable index in the population (0-based).
    pub index: usize,
    /// Base board name from the mix.
    pub board: String,
    /// Firmware cluster the device belongs to (0-based, per board).
    pub cluster: usize,
    /// Whether the device runs the stock cluster firmware (exact
    /// centroid scales — an exact fingerprint repeat of its cluster
    /// mates).
    pub stock: bool,
    /// The synthesized device profile.
    pub profile: DeviceProfile,
}

/// Population-shape knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct PopulationConfig {
    /// Firmware clusters per base board.
    pub clusters_per_board: usize,
    /// Fraction of devices on exact stock cluster firmware.
    pub stock_fraction: f64,
}

impl Default for PopulationConfig {
    fn default() -> Self {
        PopulationConfig {
            clusters_per_board: 4,
            stock_fraction: 0.45,
        }
    }
}

/// Quantizes `v` to the nearest multiple of `step` — firmware tables
/// hold discrete DVFS points, not continuous clocks, and the resulting
/// exact value collisions are what make stock devices cache-hit.
fn quantize(v: f64, step: f64) -> f64 {
    (v / step).round() * step
}

/// Per-cluster centroid scales for (cpu, gpu, mem), drawn uniformly in
/// `[0.88, 1.12]` and quantized to DVFS steps of 1 %.
fn cluster_centroid(rng: &mut ChaosRng) -> (f64, f64, f64) {
    let draw = |rng: &mut ChaosRng| quantize(0.88 + rng.uniform() * 0.24, 0.01);
    (draw(rng), draw(rng), draw(rng))
}

/// Synthesizes a clustered population of `devices` devices over `mix`.
///
/// Boards rotate round-robin so every mix member gets an equal share;
/// each device lands in a per-board firmware cluster. Stock devices use
/// the cluster centroid exactly; the rest add per-unit Gaussian clock
/// drift (σ ≈ 1.2 %, quantized to 0.4 % steps, clamped to ±25 %).
pub fn synthesize_population(
    mix: &BoardMix,
    devices: usize,
    config: &PopulationConfig,
    rng: &mut ChaosRng,
) -> Vec<FleetDevice> {
    let clusters = config.clusters_per_board.max(1);
    let centroids: Vec<Vec<(f64, f64, f64)>> = (0..mix.len())
        .map(|_| (0..clusters).map(|_| cluster_centroid(rng)).collect())
        .collect();
    (0..devices)
        .map(|index| {
            let board_idx = index % mix.len();
            let cluster = rng.index(clusters);
            let (ccpu, cgpu, cmem) = centroids[board_idx][cluster];
            let stock = rng.chance(config.stock_fraction);
            let (cpu, gpu, mem) = if stock {
                (ccpu, cgpu, cmem)
            } else {
                let drift = |rng: &mut ChaosRng| quantize(rng.gauss() * 0.012, 0.004);
                let d = (drift(rng), drift(rng), drift(rng));
                (
                    (ccpu + d.0).clamp(0.75, 1.25),
                    (cgpu + d.1).clamp(0.75, 1.25),
                    (cmem + d.2).clamp(0.75, 1.25),
                )
            };
            FleetDevice {
                index,
                board: mix.names[board_idx].clone(),
                cluster,
                stock,
                profile: mix.bases[board_idx].with_power_scale(cpu, gpu, mem),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use icomm_microbench::{feature_distance, fingerprint, fingerprint_features};

    fn mix() -> BoardMix {
        BoardMix::parse("nano,tx2,xavier").unwrap()
    }

    #[test]
    fn mix_rejects_unknown_boards() {
        assert!(BoardMix::parse("nano,pi5").is_err());
        assert!(BoardMix::parse("  ,, ").is_err());
        assert_eq!(mix().names(), ["nano", "tx2", "xavier"]);
    }

    #[test]
    fn population_replays_identically_per_seed() {
        let build = |seed| {
            let mut rng = ChaosRng::new(seed);
            synthesize_population(&mix(), 64, &PopulationConfig::default(), &mut rng)
        };
        assert_eq!(build(7), build(7));
        assert_ne!(build(7), build(8));
    }

    #[test]
    fn stock_devices_repeat_fingerprints_within_clusters() {
        let mut rng = ChaosRng::new(7);
        let pop = synthesize_population(&mix(), 600, &PopulationConfig::default(), &mut rng);
        let stock: Vec<&FleetDevice> = pop.iter().filter(|d| d.stock).collect();
        assert!(stock.len() > 150, "stock share too low: {}", stock.len());
        // Two stock devices of the same (board, cluster) are identical.
        let a = stock
            .iter()
            .find(|d| {
                stock
                    .iter()
                    .any(|o| o.index != d.index && o.board == d.board && o.cluster == d.cluster)
            })
            .expect("some cluster has two stock devices");
        let b = stock
            .iter()
            .find(|o| o.index != a.index && o.board == a.board && o.cluster == a.cluster)
            .unwrap();
        assert_eq!(fingerprint(&a.profile), fingerprint(&b.profile));
    }

    #[test]
    fn cluster_mates_sit_close_other_clusters_far() {
        let mut rng = ChaosRng::new(7);
        let pop = synthesize_population(&mix(), 600, &PopulationConfig::default(), &mut rng);
        let anchor = pop.iter().find(|d| d.stock).unwrap();
        let af = fingerprint_features(&anchor.profile);
        let mate = pop
            .iter()
            .find(|d| {
                !d.stock
                    && d.board == anchor.board
                    && d.cluster == anchor.cluster
                    && d.index != anchor.index
            })
            .expect("drifted cluster mate exists");
        let near = feature_distance(&af, &fingerprint_features(&mate.profile));
        assert!(near < 0.03, "cluster-mate distance {near}");
        let other_board = pop.iter().find(|d| d.board != anchor.board).unwrap();
        let far = feature_distance(&af, &fingerprint_features(&other_board.profile));
        assert!(far > 0.1, "cross-board distance {far}");
    }
}
