#!/usr/bin/env bash
# The full CI gate, runnable locally: `./scripts/ci.sh`.
#
# Mirrors .github/workflows/ci.yml exactly so a green local run means a
# green CI run. The workspace is fully vendored (see vendor/), so every
# step works offline.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc --no-deps (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test (tier 1: root package)"
cargo test -q

echo "==> cargo test (workspace)"
cargo test -q --workspace

echo "CI gate passed."
