#!/usr/bin/env bash
# The full CI gate, runnable locally: `./scripts/ci.sh`.
#
# Mirrors .github/workflows/ci.yml exactly so a green local run means a
# green CI run. The workspace is fully vendored (see vendor/), so every
# step works offline.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc --no-deps (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test (tier 1: root package)"
cargo test -q

echo "==> cargo test (workspace)"
cargo test -q --workspace

echo "==> chaos smoke (fixed seed matrix + replay determinism)"
# Each campaign must terminate safely (non-zero exit means a panic, a
# wedge, or a non-safe termination), and a same-seed rerun must produce
# a byte-identical report.
ICOMM=target/release/icomm
CHAOS_TMP="$(mktemp -d)"
trap 'rm -rf "$CHAOS_TMP"' EXIT
for plan in noise loss corrupt hostile full; do
    "$ICOMM" chaos tx2 --plan "$plan" --seed 42 --seed 1337 --windows 4 \
        --json >"$CHAOS_TMP/$plan-a.json"
    "$ICOMM" chaos tx2 --plan "$plan" --seed 42 --seed 1337 --windows 4 \
        --json >"$CHAOS_TMP/$plan-b.json"
    cmp "$CHAOS_TMP/$plan-a.json" "$CHAOS_TMP/$plan-b.json" || {
        echo "chaos replay diverged for plan '$plan'" >&2
        exit 1
    }
    echo "    plan '$plan': survived, replay byte-identical"
done

echo "==> fleet smoke (fixed seed, replay determinism, SLO report)"
# A small fleet run must complete without panicking, replay
# byte-identically for the same seed, and emit the latency/SLO numbers
# the acceptance gate is built on.
FLEET_TMP="$(mktemp -d)"
trap 'rm -rf "$CHAOS_TMP" "$FLEET_TMP"' EXIT
"$ICOMM" fleet nano,tx2,xavier --devices 120 --seed 7 --json \
    >"$FLEET_TMP/fleet-a.json"
"$ICOMM" fleet nano,tx2,xavier --devices 120 --seed 7 --json \
    >"$FLEET_TMP/fleet-b.json"
cmp "$FLEET_TMP/fleet-a.json" "$FLEET_TMP/fleet-b.json" || {
    echo "fleet replay diverged for seed 7" >&2
    exit 1
}
grep -q '"latency_p99_us"' "$FLEET_TMP/fleet-a.json"
grep -q '"slo_attainment_pct"' "$FLEET_TMP/fleet-a.json"
echo "    fleet 120 devices: completed, replay byte-identical, SLO report emitted"

echo "==> sched smoke (fixed seed, replay determinism, deadline report)"
# The contended co-run schedule must complete under both policies,
# replay byte-identically for the same seed, and emit the deadline-miss
# metric the acceptance gate is built on.
SCHED_TMP="$(mktemp -d)"
trap 'rm -rf "$CHAOS_TMP" "$FLEET_TMP" "$SCHED_TMP"' EXIT
for policy in fifo deadline; do
    "$ICOMM" sched tx2 --mix contended --policy "$policy" --seed 42 --json \
        >"$SCHED_TMP/sched-$policy-a.json"
    "$ICOMM" sched tx2 --mix contended --policy "$policy" --seed 42 --json \
        >"$SCHED_TMP/sched-$policy-b.json"
    cmp "$SCHED_TMP/sched-$policy-a.json" "$SCHED_TMP/sched-$policy-b.json" || {
        echo "sched replay diverged for policy '$policy'" >&2
        exit 1
    }
    grep -q '"deadline_miss_pct"' "$SCHED_TMP/sched-$policy-a.json"
    echo "    policy '$policy': completed, replay byte-identical, deadline report emitted"
done

echo "==> footprint smoke (cap-driven demotion + capped fleet accounting)"
# The memory cap — and nothing else — must reshape admission: the same
# board/mix/seed runs clean uncapped and demotes under a 6 MiB cap, each
# invocation replays byte-identically, and a capped 150-device
# multi-tenant fleet must report per-device budget accounting.
FP_TMP="$(mktemp -d)"
trap 'rm -rf "$CHAOS_TMP" "$FLEET_TMP" "$SCHED_TMP" "$FP_TMP"' EXIT
"$ICOMM" sched tx2 --mix pressure --seed 42 --json >"$FP_TMP/open-a.json"
"$ICOMM" sched tx2 --mix pressure --seed 42 --json >"$FP_TMP/open-b.json"
cmp "$FP_TMP/open-a.json" "$FP_TMP/open-b.json" || {
    echo "footprint smoke: uncapped sched replay diverged" >&2
    exit 1
}
"$ICOMM" sched tx2 --mix pressure --seed 42 --mem-cap 6m --json \
    >"$FP_TMP/capped-a.json"
"$ICOMM" sched tx2 --mix pressure --seed 42 --mem-cap 6m --json \
    >"$FP_TMP/capped-b.json"
cmp "$FP_TMP/capped-a.json" "$FP_TMP/capped-b.json" || {
    echo "footprint smoke: capped sched replay diverged" >&2
    exit 1
}
grep -q '"demotions":0' "$FP_TMP/open-a.json" || {
    echo "footprint smoke: the stock budget demoted a paper-scale mix" >&2
    exit 1
}
grep -Eq '"demotions":[1-9]' "$FP_TMP/capped-a.json" || {
    echo "footprint smoke: a 6 MiB cap no longer demotes the pressure mix" >&2
    exit 1
}
"$ICOMM" fleet nano,tx2,xavier --devices 150 --seed 7 --tenants 2 \
    --mem-cap 6m --json >"$FP_TMP/fleet-capped.json"
grep -q '"mem_cap_bytes":6291456' "$FP_TMP/fleet-capped.json" || {
    echo "footprint smoke: capped fleet run lost its budget accounting" >&2
    exit 1
}
grep -q '"corun_footprint_peak_bytes":' "$FP_TMP/fleet-capped.json" || {
    echo "footprint smoke: capped fleet run reports no footprint peak" >&2
    exit 1
}
echo "    uncapped clean, 6m cap demotes, capped 150-device fleet accounted, replays byte-identical"

echo "==> mem smoke (page-size crossover + replay determinism)"
# The memory-topology lever must actually move the verdict: the same
# workload on the same coherent board keeps UM at 4K pages and switches
# to coherent UPM at 2M pages, and each invocation must replay
# byte-identically.
MEM_TMP="$(mktemp -d)"
trap 'rm -rf "$CHAOS_TMP" "$FLEET_TMP" "$SCHED_TMP" "$FP_TMP" "$MEM_TMP"' EXIT
for pages in 4k 2m; do
    "$ICOMM" tune mi300a-like orb --current um --pages "$pages" --json \
        >"$MEM_TMP/mem-$pages-a.json"
    "$ICOMM" tune mi300a-like orb --current um --pages "$pages" --json \
        >"$MEM_TMP/mem-$pages-b.json"
    cmp "$MEM_TMP/mem-$pages-a.json" "$MEM_TMP/mem-$pages-b.json" || {
        echo "mem tune replay diverged for --pages $pages" >&2
        exit 1
    }
done
grep -q '"recommended":"UnifiedMemory"' "$MEM_TMP/mem-4k-a.json" || {
    echo "mem smoke: 4K pages no longer keep UM on mi300a-like" >&2
    exit 1
}
grep -q '"recommended":"CoherentUpm"' "$MEM_TMP/mem-2m-a.json" || {
    echo "mem smoke: 2M pages no longer flip UM to UPM on mi300a-like" >&2
    exit 1
}
echo "    pages 4k -> keep UM, pages 2m -> coherent UPM, replays byte-identical"

echo "==> net smoke (binary round-trip, JSON/binary parity, hostile survival)"
# The servebench harness runs both serving planes over one shared
# service: every request must round-trip on both wires, the decision
# payloads must be byte-identical across planes, and all six hostile
# binary probes (garbage, oversized, truncated, CRC-corrupt) must be
# refused with the faults showing up in the serve counters.
NET_TMP="$(mktemp -d)"
trap 'rm -rf "$CHAOS_TMP" "$FLEET_TMP" "$SCHED_TMP" "$FP_TMP" "$MEM_TMP" "$NET_TMP"' EXIT
"$ICOMM" servebench --requests 60 --conns 4 --workers 2 --batch 8 \
    --hostile --json >"$NET_TMP/net.json"
grep -q '"json_failed":0,' "$NET_TMP/net.json" || {
    echo "net smoke: JSON plane dropped requests" >&2
    exit 1
}
grep -q '"binary_failed":0,' "$NET_TMP/net.json" || {
    echo "net smoke: binary plane dropped requests" >&2
    exit 1
}
grep -q '"parity_mismatches":0,' "$NET_TMP/net.json" || {
    echo "net smoke: serving planes disagree on decision payloads" >&2
    exit 1
}
grep -q '"hostile_defended":6}' "$NET_TMP/net.json" || {
    echo "net smoke: a hostile binary client got through" >&2
    exit 1
}
if grep -q '"frame_faults":0,' "$NET_TMP/net.json"; then
    echo "net smoke: hostile frames were not counted in the serve metrics" >&2
    exit 1
fi
echo "    both planes clean, decisions byte-identical, 6/6 hostile probes defended"

echo "==> resilience smoke (fleet chaos: churn + poisoning + shard panics)"
# A 1000-device fleet with 10 % churn, 10 % registry poisoning, and two
# injected shard panics on the supervised binary plane must survive:
# warm start >= 95 %, zero decision-regret disagreements, zero lost
# live-fire responses, both panicked shards restarted, at least one
# poison quarantined, and a same-seed rerun byte-identical. Gate on the
# JSON fields, not stderr — injected shard panics legitimately print
# backtraces there.
RES_TMP="$(mktemp -d)"
trap 'rm -rf "$CHAOS_TMP" "$FLEET_TMP" "$SCHED_TMP" "$FP_TMP" "$MEM_TMP" "$NET_TMP" "$RES_TMP"' EXIT
RES_FAULTS="none,churn_prob=0.1,poison_prob=0.1,shard_panics=2"
for seed in 42 43; do
    "$ICOMM" fleet nano,tx2,xavier --devices 1000 --seed "$seed" \
        --wire binary --faults "$RES_FAULTS" --json \
        >"$RES_TMP/res-$seed-a.json" 2>/dev/null
    "$ICOMM" fleet nano,tx2,xavier --devices 1000 --seed "$seed" \
        --wire binary --faults "$RES_FAULTS" --json \
        >"$RES_TMP/res-$seed-b.json" 2>/dev/null
    cmp "$RES_TMP/res-$seed-a.json" "$RES_TMP/res-$seed-b.json" || {
        echo "resilience replay diverged for seed $seed" >&2
        exit 1
    }
    grep -Eq '"livefire_failed":0[,}]' "$RES_TMP/res-$seed-a.json" || {
        echo "resilience smoke: lost live-fire responses (seed $seed)" >&2
        exit 1
    }
    grep -Eq '"livefire_shard_restarts":2[,}]' "$RES_TMP/res-$seed-a.json" || {
        echo "resilience smoke: supervisor did not restart both panicked shards (seed $seed)" >&2
        exit 1
    }
    grep -Eq '"regret_disagreements":0[,}]' "$RES_TMP/res-$seed-a.json" || {
        echo "resilience smoke: poisoning induced decision regret (seed $seed)" >&2
        exit 1
    }
    if grep -Eq '"quarantined_sources":0[,}]' "$RES_TMP/res-$seed-a.json"; then
        echo "resilience smoke: no poisoned sources quarantined (seed $seed)" >&2
        exit 1
    fi
    warm="$(grep -o '"warm_start_pct":[0-9.]*' "$RES_TMP/res-$seed-a.json" | cut -d: -f2)"
    awk -v w="$warm" 'BEGIN { exit !(w >= 95.0) }' || {
        echo "resilience smoke: warm start $warm% < 95% under chaos (seed $seed)" >&2
        exit 1
    }
    echo "    seed $seed: warm $warm%, 0 regret, 0 lost, 2 restarts, poisons quarantined, replay byte-identical"
done

echo "==> synth smoke (rule synthesis: oracle agreement + replay determinism)"
# Rule synthesis on two boards x two seeds must learn a non-empty rule
# set that reproduces the brute-force oracle exactly (0 disagreements,
# 0 uncovered samples), and a same-config rerun must replay
# byte-identically. A restricted mix list keeps each run to seconds;
# the full six-board sweep is gated by tests/synthesis.rs.
SYNTH_TMP="$(mktemp -d)"
trap 'rm -rf "$CHAOS_TMP" "$FLEET_TMP" "$SCHED_TMP" "$FP_TMP" "$MEM_TMP" "$NET_TMP" "$RES_TMP" "$SYNTH_TMP"' EXIT
SYNTH_MIXES="--mix solo:shwfs --mix duo --mix contended"
for board in tx2 nano; do
    for seed in 42 43; do
        # shellcheck disable=SC2086
        "$ICOMM" synth "$board" $SYNTH_MIXES --seed "$seed" --json \
            >"$SYNTH_TMP/synth-$board-$seed-a.json"
        # shellcheck disable=SC2086
        "$ICOMM" synth "$board" $SYNTH_MIXES --seed "$seed" --json \
            >"$SYNTH_TMP/synth-$board-$seed-b.json"
        cmp "$SYNTH_TMP/synth-$board-$seed-a.json" "$SYNTH_TMP/synth-$board-$seed-b.json" || {
            echo "synth replay diverged for $board seed $seed" >&2
            exit 1
        }
        grep -Eq '"rule_count":[1-9]' "$SYNTH_TMP/synth-$board-$seed-a.json" || {
            echo "synth smoke: empty rule set on $board (seed $seed)" >&2
            exit 1
        }
        grep -Eq '"uncovered":0[,}]' "$SYNTH_TMP/synth-$board-$seed-a.json" || {
            echo "synth smoke: uncovered sweep samples on $board (seed $seed)" >&2
            exit 1
        }
        grep -Eq '"disagreements":0[,}]' "$SYNTH_TMP/synth-$board-$seed-a.json" || {
            echo "synth smoke: rules disagree with the oracle on $board (seed $seed)" >&2
            exit 1
        }
        echo "    $board seed $seed: rules learned, 0 disagreements, 0 uncovered, replay byte-identical"
    done
done

echo "CI gate passed."
