#!/usr/bin/env bash
# Refreshes the committed benchmark baseline: runs the criterion fleet
# benchmark, then captures the deterministic fleet headline numbers into
# BENCH_fleet.json (p50/p99 serve latency, fleet throughput, warm-start
# and transfer hit rates). The capture uses a fixed seed, so the JSON is
# reproducible and diffs in it are real behavior changes, not noise.
#
# Usage: ./scripts/bench_snapshot.sh [--skip-criterion]
set -euo pipefail

cd "$(dirname "$0")/.."

SKIP_CRITERION=0
if [[ "${1:-}" == "--skip-criterion" ]]; then
    SKIP_CRITERION=1
fi

echo "==> cargo build --release -p icomm-cli"
cargo build --release -p icomm-cli

if [[ "$SKIP_CRITERION" -eq 0 ]]; then
    echo "==> cargo bench -p icomm-bench --bench fleet_scaling"
    cargo bench -p icomm-bench --bench fleet_scaling
fi

echo "==> capturing BENCH_fleet.json (seed 7, 256 devices, nano,tx2,xavier)"
REPORT="$(target/release/icomm fleet nano,tx2,xavier --devices 256 --seed 7 --json)"
python3 - "$REPORT" <<'EOF'
import json
import sys

report = json.loads(sys.argv[1])
baseline = {
    "source": "icomm fleet nano,tx2,xavier --devices 256 --seed 7 --json",
    "note": "deterministic virtual-time numbers; regenerate with scripts/bench_snapshot.sh",
    "devices": report["devices"],
    "seed": report["seed"],
    "latency_p50_us": report["latency_p50_us"],
    "latency_p99_us": report["latency_p99_us"],
    "throughput_rps": round(report["throughput_rps"], 1),
    "warm_start_pct": round(report["warm_start_pct"], 1),
    "transfer_hit_pct": round(report["transfer_hit_pct"], 1),
    "slo_attainment_pct": round(report["slo_attainment_pct"], 1),
    "mean_regret_pct": round(report["mean_regret_pct"], 2),
}
with open("BENCH_fleet.json", "w") as f:
    json.dump(baseline, f, indent=2)
    f.write("\n")
print(json.dumps(baseline, indent=2))
EOF

echo "baseline written to BENCH_fleet.json"
