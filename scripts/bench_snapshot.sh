#!/usr/bin/env bash
# Refreshes the committed benchmark baselines: runs the criterion fleet,
# sched, and mem benchmarks, then captures the deterministic headline
# numbers into BENCH_fleet.json (p50/p99 serve latency, fleet throughput,
# warm-start and transfer hit rates), BENCH_sched.json (deadline-miss
# rates and slowdowns per policy on the contended TX2 mix), and
# BENCH_mem.json (the UM-vs-UPM page-size crossover on the coherent
# boards). The captures use fixed seeds, so the JSON is reproducible and
# diffs in it are real behavior changes, not noise.
#
# Usage: ./scripts/bench_snapshot.sh [--skip-criterion]
set -euo pipefail

cd "$(dirname "$0")/.."

SKIP_CRITERION=0
if [[ "${1:-}" == "--skip-criterion" ]]; then
    SKIP_CRITERION=1
fi

echo "==> cargo build --release -p icomm-cli"
cargo build --release -p icomm-cli

if [[ "$SKIP_CRITERION" -eq 0 ]]; then
    echo "==> cargo bench -p icomm-bench --bench fleet_scaling"
    cargo bench -p icomm-bench --bench fleet_scaling
    echo "==> cargo bench -p icomm-bench --bench sched_scaling"
    cargo bench -p icomm-bench --bench sched_scaling
    echo "==> cargo bench -p icomm-bench --bench mem_topology"
    cargo bench -p icomm-bench --bench mem_topology
fi

echo "==> capturing BENCH_fleet.json (seed 7, 256 devices, nano,tx2,xavier)"
REPORT="$(target/release/icomm fleet nano,tx2,xavier --devices 256 --seed 7 --json)"
python3 - "$REPORT" <<'EOF'
import json
import sys

report = json.loads(sys.argv[1])
baseline = {
    "source": "icomm fleet nano,tx2,xavier --devices 256 --seed 7 --json",
    "note": "deterministic virtual-time numbers; regenerate with scripts/bench_snapshot.sh",
    "devices": report["devices"],
    "seed": report["seed"],
    "latency_p50_us": report["latency_p50_us"],
    "latency_p99_us": report["latency_p99_us"],
    "throughput_rps": round(report["throughput_rps"], 1),
    "warm_start_pct": round(report["warm_start_pct"], 1),
    "transfer_hit_pct": round(report["transfer_hit_pct"], 1),
    "slo_attainment_pct": round(report["slo_attainment_pct"], 1),
    "mean_regret_pct": round(report["mean_regret_pct"], 2),
}
with open("BENCH_fleet.json", "w") as f:
    json.dump(baseline, f, indent=2)
    f.write("\n")
print(json.dumps(baseline, indent=2))
EOF

echo "baseline written to BENCH_fleet.json"

echo "==> capturing BENCH_sched.json (seed 42, contended mix on tx2, both policies)"
FIFO="$(target/release/icomm sched tx2 --mix contended --policy fifo --seed 42 --json)"
DEADLINE="$(target/release/icomm sched tx2 --mix contended --policy deadline --seed 42 --json)"
python3 - "$FIFO" "$DEADLINE" <<'EOF'
import json
import sys

fifo = json.loads(sys.argv[1])
deadline = json.loads(sys.argv[2])
def summarize(report):
    return {
        "deadline_miss_pct": report["deadline_miss_pct"],
        "mean_slowdown": report["mean_slowdown"],
        "makespan_us": report["makespan_us"],
        "throttles": sum(t["throttles"] for t in report["tenants"]),
    }
baseline = {
    "source": "icomm sched tx2 --mix contended --policy {fifo,deadline} --seed 42 --json",
    "note": "deterministic virtual-time numbers; regenerate with scripts/bench_snapshot.sh",
    "board": fifo["board"],
    "mix": fifo["mix"],
    "seed": fifo["seed"],
    "joint_total_us": fifo["joint_total_us"],
    "greedy_total_us": fifo["greedy_total_us"],
    "any_flip": fifo["any_flip"],
    "fifo": summarize(fifo),
    "deadline": summarize(deadline),
}
with open("BENCH_sched.json", "w") as f:
    json.dump(baseline, f, indent=2)
    f.write("\n")
print(json.dumps(baseline, indent=2))
EOF

echo "baseline written to BENCH_sched.json"

echo "==> capturing BENCH_mem.json (UM-vs-UPM crossover, coherent boards x page sizes)"
MI_4K="$(target/release/icomm tune mi300a-like orb --current um --pages 4k --json)"
MI_2M="$(target/release/icomm tune mi300a-like orb --current um --pages 2m --json)"
GH_4K="$(target/release/icomm tune gh-like orb --current um --pages 4k --json)"
GH_2M="$(target/release/icomm tune gh-like orb --current um --pages 2m --json)"
python3 - "$MI_4K" "$MI_2M" "$GH_4K" "$GH_2M" <<'EOF'
import json
import sys

def summarize(raw):
    report = json.loads(raw)
    rec = report["recommendation"]
    speedup = rec.get("estimated_speedup")
    return {
        "recommended": rec["recommended"],
        "estimated_speedup": round(speedup["estimated"], 3) if speedup else None,
        "actual_speedup": round(report["actual_speedup"], 3),
    }

baseline = {
    "source": "icomm tune {mi300a-like,gh-like} orb --current um --pages {4k,2m} --json",
    "note": "deterministic virtual-time numbers; regenerate with scripts/bench_snapshot.sh",
    "mi300a_like": {"pages_4k": summarize(sys.argv[1]), "pages_2m": summarize(sys.argv[2])},
    "gh_like": {"pages_4k": summarize(sys.argv[3]), "pages_2m": summarize(sys.argv[4])},
}
with open("BENCH_mem.json", "w") as f:
    json.dump(baseline, f, indent=2)
    f.write("\n")
print(json.dumps(baseline, indent=2))
EOF

echo "baseline written to BENCH_mem.json"
