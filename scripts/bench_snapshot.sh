#!/usr/bin/env bash
# Refreshes the committed benchmark baselines: runs the criterion fleet,
# sched, mem, and serve benchmarks, then captures the headline numbers
# into BENCH_fleet.json (p50/p99 serve latency, fleet throughput,
# warm-start and transfer hit rates), BENCH_sched.json (deadline-miss
# rates and slowdowns per policy on the contended TX2 mix),
# BENCH_mem.json (the UM-vs-UPM page-size crossover on the coherent
# boards), BENCH_footprint.json (what a binding memory cap costs the
# pressure mix on a TX2: demotions, resident bytes, co-run wall), and
# BENCH_serve.json (JSON-vs-binary serving-plane throughput and
# decision parity). The fleet/sched/mem/footprint captures use fixed seeds, so
# that JSON is reproducible and diffs in it are real behavior changes;
# the serve capture is wall-clock and the headline there is the *ratio*
# (binary vs JSON), which is stable even when absolute rps is not.
#
# Usage: ./scripts/bench_snapshot.sh [--skip-criterion]
set -euo pipefail

cd "$(dirname "$0")/.."

SKIP_CRITERION=0
if [[ "${1:-}" == "--skip-criterion" ]]; then
    SKIP_CRITERION=1
fi

echo "==> cargo build --release -p icomm-cli"
cargo build --release -p icomm-cli

if [[ "$SKIP_CRITERION" -eq 0 ]]; then
    echo "==> cargo bench -p icomm-bench --bench fleet_scaling"
    cargo bench -p icomm-bench --bench fleet_scaling
    echo "==> cargo bench -p icomm-bench --bench sched_scaling"
    cargo bench -p icomm-bench --bench sched_scaling
    echo "==> cargo bench -p icomm-bench --bench mem_topology"
    cargo bench -p icomm-bench --bench mem_topology
    echo "==> cargo bench -p icomm-bench --bench footprint_assignment"
    cargo bench -p icomm-bench --bench footprint_assignment
    echo "==> cargo bench -p icomm-bench --bench rule_synthesis"
    cargo bench -p icomm-bench --bench rule_synthesis
    echo "==> cargo bench -p icomm-bench --bench serve_throughput"
    cargo bench -p icomm-bench --bench serve_throughput
fi

echo "==> capturing BENCH_fleet.json (seed 7, 256 devices, nano,tx2,xavier)"
REPORT="$(target/release/icomm fleet nano,tx2,xavier --devices 256 --seed 7 --json)"
python3 - "$REPORT" <<'EOF'
import json
import sys

report = json.loads(sys.argv[1])
baseline = {
    "source": "icomm fleet nano,tx2,xavier --devices 256 --seed 7 --json",
    "note": "deterministic virtual-time numbers; regenerate with scripts/bench_snapshot.sh",
    "devices": report["devices"],
    "seed": report["seed"],
    "latency_p50_us": report["latency_p50_us"],
    "latency_p99_us": report["latency_p99_us"],
    "throughput_rps": round(report["throughput_rps"], 1),
    "warm_start_pct": round(report["warm_start_pct"], 1),
    "transfer_hit_pct": round(report["transfer_hit_pct"], 1),
    "slo_attainment_pct": round(report["slo_attainment_pct"], 1),
    "mean_regret_pct": round(report["mean_regret_pct"], 2),
}
with open("BENCH_fleet.json", "w") as f:
    json.dump(baseline, f, indent=2)
    f.write("\n")
print(json.dumps(baseline, indent=2))
EOF

echo "baseline written to BENCH_fleet.json"

echo "==> capturing BENCH_sched.json (seed 42, contended mix on tx2, both policies)"
FIFO="$(target/release/icomm sched tx2 --mix contended --policy fifo --seed 42 --json)"
DEADLINE="$(target/release/icomm sched tx2 --mix contended --policy deadline --seed 42 --json)"
python3 - "$FIFO" "$DEADLINE" <<'EOF'
import json
import sys

fifo = json.loads(sys.argv[1])
deadline = json.loads(sys.argv[2])
def summarize(report):
    return {
        "deadline_miss_pct": report["deadline_miss_pct"],
        "mean_slowdown": report["mean_slowdown"],
        "makespan_us": report["makespan_us"],
        "throttles": sum(t["throttles"] for t in report["tenants"]),
    }
baseline = {
    "source": "icomm sched tx2 --mix contended --policy {fifo,deadline} --seed 42 --json",
    "note": "deterministic virtual-time numbers; regenerate with scripts/bench_snapshot.sh",
    "board": fifo["board"],
    "mix": fifo["mix"],
    "seed": fifo["seed"],
    "joint_total_us": fifo["joint_total_us"],
    "greedy_total_us": fifo["greedy_total_us"],
    "any_flip": fifo["any_flip"],
    "fifo": summarize(fifo),
    "deadline": summarize(deadline),
}
with open("BENCH_sched.json", "w") as f:
    json.dump(baseline, f, indent=2)
    f.write("\n")
print(json.dumps(baseline, indent=2))
EOF

echo "baseline written to BENCH_sched.json"

echo "==> capturing BENCH_footprint.json (seed 42, pressure mix on tx2, stock vs 6 MiB cap)"
OPEN="$(target/release/icomm sched tx2 --mix pressure --seed 42 --json)"
CAPPED="$(target/release/icomm sched tx2 --mix pressure --seed 42 --mem-cap 6m --json)"
python3 - "$OPEN" "$CAPPED" <<'EOF'
import json
import sys

open_report = json.loads(sys.argv[1])
capped = json.loads(sys.argv[2])
def summarize(report):
    return {
        "footprint_bytes": report["footprint_bytes"],
        "joint_total_us": report["joint_total_us"],
        "greedy_total_us": report["greedy_total_us"],
        "demotions": report["demotions"],
        "evictions": report["evictions"],
        "models": {t["name"]: t["model"] for t in report["tenants"]},
    }
baseline = {
    "source": "icomm sched tx2 --mix pressure --seed 42 [--mem-cap 6m] --json",
    "note": "deterministic virtual-time numbers; regenerate with scripts/bench_snapshot.sh",
    "board": open_report["board"],
    "mix": open_report["mix"],
    "seed": open_report["seed"],
    "mem_cap_bytes": capped["mem_cap_bytes"],
    "headroom_bytes": capped["headroom_bytes"],
    "uncapped": summarize(open_report),
    "capped": summarize(capped),
}
if capped["demotions"] == 0:
    sys.exit("the 6 MiB cap no longer binds on the pressure mix; baseline not captured")
with open("BENCH_footprint.json", "w") as f:
    json.dump(baseline, f, indent=2)
    f.write("\n")
print(json.dumps(baseline, indent=2))
EOF

echo "baseline written to BENCH_footprint.json"

echo "==> capturing BENCH_mem.json (UM-vs-UPM crossover, coherent boards x page sizes)"
MI_4K="$(target/release/icomm tune mi300a-like orb --current um --pages 4k --json)"
MI_2M="$(target/release/icomm tune mi300a-like orb --current um --pages 2m --json)"
GH_4K="$(target/release/icomm tune gh-like orb --current um --pages 4k --json)"
GH_2M="$(target/release/icomm tune gh-like orb --current um --pages 2m --json)"
python3 - "$MI_4K" "$MI_2M" "$GH_4K" "$GH_2M" <<'EOF'
import json
import sys

def summarize(raw):
    report = json.loads(raw)
    rec = report["recommendation"]
    speedup = rec.get("estimated_speedup")
    return {
        "recommended": rec["recommended"],
        "estimated_speedup": round(speedup["estimated"], 3) if speedup else None,
        "actual_speedup": round(report["actual_speedup"], 3),
    }

baseline = {
    "source": "icomm tune {mi300a-like,gh-like} orb --current um --pages {4k,2m} --json",
    "note": "deterministic virtual-time numbers; regenerate with scripts/bench_snapshot.sh",
    "mi300a_like": {"pages_4k": summarize(sys.argv[1]), "pages_2m": summarize(sys.argv[2])},
    "gh_like": {"pages_4k": summarize(sys.argv[3]), "pages_2m": summarize(sys.argv[4])},
}
with open("BENCH_mem.json", "w") as f:
    json.dump(baseline, f, indent=2)
    f.write("\n")
print(json.dumps(baseline, indent=2))
EOF

echo "baseline written to BENCH_mem.json"

echo "==> capturing BENCH_synth.json (seed 42, all boards, full default sweep)"
SYNTH="$(target/release/icomm synth all --seed 42 --json)"
python3 - "$SYNTH" <<'EOF'
import json
import sys

report = json.loads(sys.argv[1])
if report["disagreements"] != 0:
    sys.exit(f"rule set disagrees with the oracle {report['disagreements']} times; baseline not captured")
if report["uncovered"] != 0:
    sys.exit(f"{report['uncovered']} sweep samples uncovered; baseline not captured")
baseline = {
    "source": "icomm synth all --seed 42 --json",
    "note": "deterministic synthesis numbers; regenerate with scripts/bench_snapshot.sh",
    "boards": report["boards"],
    "seed": report["seed"],
    "max_size": report["max_size"],
    "samples": report["samples"],
    "rule_count": report["rule_count"],
    "uncovered": report["uncovered"],
    "disagreements": report["disagreements"],
    "scope_contexts": report["scope_contexts"],
    "sweep_bytes": report["sweep_bytes"],
    "ruleset_bytes": report["ruleset_bytes"],
    "compression": report["compression"],
    "rules": [{"pred": r["pred"], "model": r["model"], "support": r["support"]} for r in report["rules"]],
}
if baseline["compression"] < 5.0:
    sys.exit(f"compression {baseline['compression']}x under the 5x floor; baseline not captured")
with open("BENCH_synth.json", "w") as f:
    json.dump(baseline, f, indent=2)
    f.write("\n")
print(json.dumps(baseline, indent=2))
EOF

echo "baseline written to BENCH_synth.json"

echo "==> capturing BENCH_serve.json (both planes, 2000 requests each, 8 conns, batch 16)"
SERVE="$(target/release/icomm servebench --requests 2000 --conns 8 --workers 4 --batch 16 --json)"
python3 - "$SERVE" <<'EOF'
import json
import sys

report = json.loads(sys.argv[1])
if report["parity_mismatches"] != 0:
    sys.exit(f"serving planes disagree on {report['parity_mismatches']} decision payloads")
if report["json_failed"] != 0 or report["binary_failed"] != 0:
    sys.exit("servebench dropped requests; baseline not captured")
baseline = {
    "source": "icomm servebench --requests 2000 --conns 8 --workers 4 --batch 16 --json",
    "note": "wall-clock serving-plane comparison; the stable headline is the binary-vs-JSON speedup ratio, not absolute rps; regenerate with scripts/bench_snapshot.sh",
    "requests_per_plane": report["requests_per_plane"],
    "conns": report["conns"],
    "workers": report["workers"],
    "batch": report["batch"],
    "json_rps": round(report["json_rps"], 1),
    "json_p50_us": report["json_p50_us"],
    "json_p99_us": report["json_p99_us"],
    "binary_rps": round(report["binary_rps"], 1),
    "binary_p50_us": report["binary_p50_us"],
    "binary_p99_us": report["binary_p99_us"],
    "speedup": round(report["speedup"], 2),
    "parity_checked": report["parity_checked"],
    "parity_mismatches": report["parity_mismatches"],
    "decision_cache_hits": report["decision_cache_hits"],
    "batches_submitted": report["batches_submitted"],
}
if baseline["speedup"] < 10.0:
    print(
        f"WARNING: binary plane only {baseline['speedup']}x over JSON (target >= 10x)",
        file=sys.stderr,
    )
with open("BENCH_serve.json", "w") as f:
    json.dump(baseline, f, indent=2)
    f.write("\n")
print(json.dumps(baseline, indent=2))
EOF

echo "baseline written to BENCH_serve.json"
