//! Offline stand-in for [proptest](https://proptest-rs.github.io/proptest).
//!
//! Reimplements the subset of the proptest API this workspace uses:
//! the `proptest!` test macro, `Strategy` with `prop_map` /
//! `prop_recursive` / `boxed`, `prop_oneof!`, `Just`, `any`, range and
//! tuple strategies, `collection::vec`, `bool::ANY`, `num::f64::NORMAL`,
//! and string generation for the `"\\PC*"` regex.
//!
//! Differences from the real crate: cases are generated from a
//! deterministic per-test seed (derived from the test name), there is no
//! shrinking — a failing case panics with the ordinary assert message —
//! and regex string strategies only support the "any printable chars"
//! pattern the workspace uses. Each test runs a fixed number of cases.

/// Number of generated cases per property test.
pub const CASES: u64 = 64;

/// Deterministic generator driving value generation (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a uniform f64 in [0, 1).
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Runs `case` [`CASES`] times with fresh generators derived from the
/// test name. Used by the `proptest!` macro expansion.
#[doc(hidden)]
pub fn __run_cases<F: FnMut(&mut TestRng)>(name: &str, mut case: F) {
    // FNV-1a over the test name: stable per-test seed, so failures
    // reproduce across runs without a persistence file.
    let mut seed = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        seed ^= b as u64;
        seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
    }
    for i in 0..CASES {
        let mut rng = TestRng::new(seed ^ i.wrapping_mul(0xA076_1D64_78BD_642F));
        case(&mut rng);
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use super::TestRng;
    use std::ops::Range;
    use std::sync::Arc;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Generate-only: unlike the real crate there is no shrinking pass,
    /// so `generate` replaces the `ValueTree` machinery.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Produces one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Erases the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Arc::new(self))
        }

        /// Builds a recursive strategy: at each of `depth` levels, a
        /// value is either drawn from the base strategy or from
        /// `recurse` applied to the previous level. `_desired_size` and
        /// `_expected_branch_size` are accepted for API compatibility
        /// but unused (no size-driven generation here).
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let leaf = self.boxed();
            let mut current = leaf.clone();
            for _ in 0..depth {
                let composite = recurse(current).boxed();
                current = Union::new(vec![leaf.clone(), composite]).boxed();
            }
            current
        }
    }

    trait DynStrategy<V> {
        fn dyn_generate(&self, rng: &mut TestRng) -> V;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<V>(Arc<dyn DynStrategy<V>>);

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            BoxedStrategy(Arc::clone(&self.0))
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            self.0.dyn_generate(rng)
        }
    }

    /// Strategy yielding a fixed value.
    #[derive(Debug, Clone, Copy)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone, Copy)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice among several strategies of one value type.
    /// Built by `prop_oneof!`.
    pub struct Union<V> {
        arms: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// Creates a union over `arms` (must be non-empty).
        pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! requires at least one arm");
            Union { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = (rng.next_u64() % self.arms.len() as u64) as usize;
            self.arms[i].generate(rng)
        }
    }

    /// Function-pointer strategy; backs `any`, `bool::ANY`, and the
    /// `num` constants.
    #[derive(Debug, Clone, Copy)]
    pub struct FnStrategy<T>(pub fn(&mut TestRng) -> T);

    impl<T> Strategy for FnStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let offset = (rng.next_u64() as u128) % span;
                    (self.start as i128 + offset as i128) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident : $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A: 0);
    impl_tuple_strategy!(A: 0, B: 1);
    impl_tuple_strategy!(A: 0, B: 1, C: 2);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

    /// String-regex strategy. Only the `"\\PC*"` shape used in this
    /// workspace is honoured: any printable (non-control) chars,
    /// including non-ASCII, length 0..32.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let len = (rng.next_u64() % 32) as usize;
            (0..len)
                .map(|_| loop {
                    // Bias toward ASCII so escapes and quotes get
                    // exercised, with a non-ASCII tail for coverage.
                    let c = if !rng.next_u64().is_multiple_of(4) {
                        char::from(b' ' + (rng.next_u64() % 95) as u8)
                    } else {
                        match char::from_u32((rng.next_u64() % 0x11_0000) as u32) {
                            Some(c) => c,
                            None => continue,
                        }
                    };
                    if !c.is_control() {
                        break c;
                    }
                })
                .collect()
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` support for the types the workspace draws.

    use super::strategy::FnStrategy;
    use super::TestRng;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// The strategy `any` returns.
        type Strategy: super::strategy::Strategy<Value = Self>;
        /// Returns the whole-domain strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// Returns the canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }

    macro_rules! impl_arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                type Strategy = FnStrategy<$t>;
                fn arbitrary() -> Self::Strategy {
                    FnStrategy(|rng: &mut TestRng| rng.next_u64() as $t)
                }
            }
        )*};
    }

    impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        type Strategy = FnStrategy<bool>;
        fn arbitrary() -> Self::Strategy {
            FnStrategy(|rng: &mut TestRng| rng.next_u64() & 1 == 1)
        }
    }
}

pub mod collection {
    //! Collection strategies (`vec`).

    use super::strategy::Strategy;
    use super::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors of values from `element`, with length in
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let len = self.size.start + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod bool {
    //! Boolean strategies.

    use super::strategy::FnStrategy;
    use super::TestRng;

    /// Uniform choice of `true`/`false`.
    pub const ANY: FnStrategy<core::primitive::bool> =
        FnStrategy(|rng: &mut TestRng| rng.next_u64() & 1 == 1);
}

pub mod num {
    //! Numeric strategies.

    pub mod f64 {
        //! `f64` strategies.

        use crate::strategy::FnStrategy;
        use crate::TestRng;

        /// Normal (non-zero, non-subnormal, finite, non-NaN) floats of
        /// either sign: random sign/mantissa with a biased exponent in
        /// the normal range [1, 2046].
        pub const NORMAL: FnStrategy<core::primitive::f64> = FnStrategy(|rng: &mut TestRng| {
            let sign = rng.next_u64() & (1 << 63);
            let exponent = 1 + rng.next_u64() % 2046;
            let mantissa = rng.next_u64() & ((1 << 52) - 1);
            core::primitive::f64::from_bits(sign | (exponent << 52) | mantissa)
        });
    }
}

pub mod prop {
    //! The `prop::` aliases exported by the prelude.

    pub use crate::bool;
    pub use crate::collection;
    pub use crate::num;
}

pub mod prelude {
    //! Glob-import surface matching `proptest::prelude::*`.

    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests: each `fn name(binding in strategy, ...)`
/// becomes a `#[test]` running [`CASES`] generated cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::__run_cases(stringify!($name), |__proptest_rng| {
                    $crate::__proptest_bind!(__proptest_rng, $body, $($params)*)
                });
            }
        )*
    };
}

/// Implementation detail of [`proptest!`]: peels one `name in strategy`
/// parameter off the list.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident, $body:block,) => { $body };
    ($rng:ident, $body:block, $name:ident in $($rest:tt)*) => {
        $crate::__proptest_munch!($rng, $body, $name, (), $($rest)*)
    };
}

/// Implementation detail of [`proptest!`]: accumulates strategy tokens
/// until a top-level comma or the end of the parameter list.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_munch {
    ($rng:ident, $body:block, $name:ident, ($($strat:tt)*), , $($rest:tt)*) => {{
        let $name = $crate::strategy::Strategy::generate(&($($strat)*), $rng);
        $crate::__proptest_bind!($rng, $body, $($rest)*)
    }};
    ($rng:ident, $body:block, $name:ident, ($($strat:tt)*),) => {{
        let $name = $crate::strategy::Strategy::generate(&($($strat)*), $rng);
        $body
    }};
    ($rng:ident, $body:block, $name:ident, ($($strat:tt)*), $head:tt $($rest:tt)*) => {
        $crate::__proptest_munch!($rng, $body, $name, ($($strat)* $head), $($rest)*)
    };
}

/// Uniform choice among strategies yielding one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::Strategy::boxed($arm)),+])
    };
}

/// Asserts a property holds for the current case.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts two values are equal for the current case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts two values differ for the current case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}
