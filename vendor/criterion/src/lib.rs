//! Offline stand-in for `criterion`.
//!
//! Implements the macro/API surface the bench targets use —
//! `criterion_group!`/`criterion_main!`, `Criterion::bench_function`,
//! benchmark groups with `Throughput` — with a deliberately small
//! timing loop (mean over a handful of iterations, no statistical
//! analysis or HTML reports). The point is that `cargo bench` and
//! `cargo test --benches` run every target and print wall-clock numbers,
//! not publication-grade statistics.

use std::time::{Duration, Instant};

/// Declared per-benchmark throughput, used to derive rates in reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Logical elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Entry point handed to benchmark functions.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    /// `--test` mode: run each benchmark exactly once, for CI smoke.
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            test_mode: false,
        }
    }
}

impl Criterion {
    /// Sets how many timed samples to collect per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Configures from the process arguments (`--test` runs each
    /// benchmark once).
    pub fn configure_from_args(mut self) -> Self {
        self.test_mode = std::env::args().any(|a| a == "--test");
        self
    }

    /// Times `f` under `id` and prints the mean iteration time.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(id, self.sample_size, self.test_mode, None, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let (sample_size, test_mode) = (self.sample_size, self.test_mode);
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size,
            test_mode,
            throughput: None,
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    test_mode: bool,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares throughput for subsequent benchmarks in the group.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Times `f` under `group/id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.sample_size, self.test_mode, self.throughput, f);
        self
    }

    /// Ends the group. (No-op here; reports print as benchmarks run.)
    pub fn finish(self) {}
}

/// Per-benchmark timing driver.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `routine` `iters` times, timing the whole batch.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Opaque value sink preventing the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

fn run_one<F: FnMut(&mut Bencher)>(
    id: &str,
    sample_size: usize,
    test_mode: bool,
    throughput: Option<Throughput>,
    mut f: F,
) {
    // Warm-up / calibration pass: one iteration, to size the batches.
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    if test_mode {
        println!("{id}: ok (test mode, 1 iteration)");
        return;
    }
    let calibration = bencher.elapsed.max(Duration::from_nanos(1));
    // Aim for ~20ms of work per sample, capped to keep total runtime low.
    let per_sample = (Duration::from_millis(20).as_nanos() / calibration.as_nanos()).clamp(1, 1000);
    let mut total = Duration::ZERO;
    let mut iters = 0u64;
    for _ in 0..sample_size {
        let mut bencher = Bencher {
            iters: per_sample as u64,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        total += bencher.elapsed;
        iters += bencher.iters;
    }
    let mean_ns = total.as_nanos() as f64 / iters.max(1) as f64;
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!(" ({:.1} Melem/s)", n as f64 / mean_ns * 1e3),
        Throughput::Bytes(n) => format!(
            " ({:.1} MiB/s)",
            n as f64 / mean_ns * 1e9 / (1 << 20) as f64
        ),
    });
    println!(
        "{id}: mean {:.3} us over {iters} iterations{}",
        mean_ns / 1e3,
        rate.unwrap_or_default()
    );
}

/// Declares a benchmark group; mirrors criterion's two accepted forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
