//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind the parking_lot API surface the
//! workspace uses: infallible `lock`/`read`/`write` (no `Result`
//! unwrapping at call sites) plus a `Condvar` without poisoning. The real
//! crate's locks are faster and smaller; these have identical semantics
//! under the workspace's usage, where a poisoned lock (a panic while
//! holding the guard) is already a test failure.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};
use std::time::Duration;

/// A mutex with an infallible `lock`, like `parking_lot::Mutex`.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
///
/// Holds the std guard in an `Option` so [`Condvar::wait`] can take it
/// by value and put the re-acquired guard back.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a mutex guarding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken during wait")
    }
}

/// A reader-writer lock with infallible `read`/`write`.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

/// Exclusive guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a lock guarding `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Result of a timed [`Condvar`] wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended by timeout rather than notification.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable usable with [`MutexGuard`], like
/// `parking_lot::Condvar` (waits take `&mut guard` instead of consuming
/// it).
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Blocks until notified, releasing the guard while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard taken during wait");
        let inner = self
            .inner
            .wait(inner)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard taken during wait");
        let (inner, result) = match self.inner.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(poisoned) => poisoned.into_inner(),
        };
        guard.inner = Some(inner);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}
