//! Offline stand-in for `crossbeam`.
//!
//! Supplies `crossbeam::channel`: multi-producer multi-consumer channels
//! with disconnect semantics, built on a `Mutex<VecDeque>` plus two
//! condition variables. Throughput is far below the real crate's
//! lock-free queues, but the blocking/disconnect contract is identical,
//! which is what the serving layer's worker pool relies on.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex, PoisonError};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        inner: Mutex<State<T>>,
        /// Signalled when a message is pushed (wakes receivers).
        not_empty: Condvar,
        /// Signalled when a message is popped (wakes bounded senders).
        not_full: Condvar,
        capacity: Option<usize>,
    }

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Sending half of a channel. Clonable; the channel disconnects for
    /// receivers when the last sender drops.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half of a channel. Clonable; the channel disconnects for
    /// senders when the last receiver drops.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    /// Carries the unsent message back to the caller.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty
    /// and all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty, but senders remain.
        Empty,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived before the deadline.
        Timeout,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T: fmt::Debug> std::error::Error for SendError<T> {}

    /// Creates a channel with no capacity bound.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    /// Creates a channel holding at most `cap` queued messages; sends
    /// block while full. `cap` must be non-zero (rendezvous channels are
    /// not supported by this stand-in).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        assert!(cap > 0, "zero-capacity channels are not supported");
        with_capacity(Some(cap))
    }

    fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            inner: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues `msg`, blocking while a bounded channel is full.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let shared = &self.shared;
            let mut state = shared.inner.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if state.receivers == 0 {
                    return Err(SendError(msg));
                }
                match shared.capacity {
                    Some(cap) if state.queue.len() >= cap => {
                        state = shared
                            .not_full
                            .wait(state)
                            .unwrap_or_else(PoisonError::into_inner);
                    }
                    _ => break,
                }
            }
            state.queue.push_back(msg);
            drop(state);
            shared.not_empty.notify_one();
            Ok(())
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.shared
                .inner
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .queue
                .len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Receiver<T> {
        /// Dequeues a message, blocking until one arrives or all senders
        /// drop.
        pub fn recv(&self) -> Result<T, RecvError> {
            let shared = &self.shared;
            let mut state = shared.inner.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(msg) = state.queue.pop_front() {
                    drop(state);
                    shared.not_full.notify_one();
                    return Ok(msg);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = shared
                    .not_empty
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Dequeues a message, waiting at most `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let shared = &self.shared;
            let mut state = shared.inner.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(msg) = state.queue.pop_front() {
                    drop(state);
                    shared.not_full.notify_one();
                    return Ok(msg);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (next, _) = shared
                    .not_empty
                    .wait_timeout(state, deadline - now)
                    .unwrap_or_else(PoisonError::into_inner);
                state = next;
            }
        }

        /// Dequeues a message without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let shared = &self.shared;
            let mut state = shared.inner.lock().unwrap_or_else(PoisonError::into_inner);
            if let Some(msg) = state.queue.pop_front() {
                drop(state);
                shared.not_full.notify_one();
                return Ok(msg);
            }
            if state.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.shared
                .inner
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .queue
                .len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Drains and returns all currently queued messages.
        pub fn try_iter(&self) -> impl Iterator<Item = T> + '_ {
            std::iter::from_fn(move || self.try_recv().ok())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared
                .inner
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared
                .inner
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self
                .shared
                .inner
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                // Wake receivers blocked on an empty queue so they can
                // observe the disconnect.
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self
                .shared
                .inner
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            state.receivers -= 1;
            if state.receivers == 0 {
                drop(state);
                // Wake senders blocked on a full queue so they can
                // observe the disconnect.
                self.shared.not_full.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }
}
