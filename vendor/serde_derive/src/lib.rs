//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! shapes this workspace actually uses: non-generic structs (named-field,
//! tuple/newtype, unit) and non-generic enums whose variants are unit,
//! newtype, tuple, or struct-like. The derives emit the same externally
//! tagged representation as the real serde derives, so data written by
//! one is readable by the other.
//!
//! There is no `syn`/`quote` in the pinned dependency set, so the item is
//! parsed directly from the `proc_macro` token stream — sufficient for
//! plain data definitions (attributes and visibility are skipped, field
//! types are only inspected to special-case `Option` fields, which
//! default to `None` when missing, as in serde).

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Fields {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
}

struct Field {
    name: String,
    is_option: bool,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Cursor {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn bump(&mut self) -> Option<TokenTree> {
        let token = self.tokens.get(self.pos).cloned();
        if token.is_some() {
            self.pos += 1;
        }
        token
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    /// Skips `#[...]` (and `#![...]`) attribute groups, including the
    /// `#[doc = "..."]` forms doc comments lower to.
    fn skip_attributes(&mut self) {
        while let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() != '#' {
                break;
            }
            self.bump();
            if let Some(TokenTree::Punct(p)) = self.peek() {
                if p.as_char() == '!' {
                    self.bump();
                }
            }
            match self.peek() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                    self.bump();
                }
                _ => break,
            }
        }
    }

    /// Skips `pub`, `pub(crate)`, `pub(in ...)`.
    fn skip_visibility(&mut self) {
        if let Some(TokenTree::Ident(id)) = self.peek() {
            if id.to_string() == "pub" {
                self.bump();
                if let Some(TokenTree::Group(g)) = self.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        self.bump();
                    }
                }
            }
        }
    }

    fn expect_ident(&mut self) -> Result<String, String> {
        match self.bump() {
            Some(TokenTree::Ident(id)) => Ok(id.to_string()),
            other => Err(format!("expected identifier, found {other:?}")),
        }
    }

    fn is_punct(&self, c: char) -> bool {
        matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == c)
    }

    /// Consumes a type, tracking `<...>` nesting, stopping before a
    /// top-level `,` or the end. Returns the first token's text (to
    /// recognize `Option<...>` fields).
    fn skip_type(&mut self) -> String {
        let mut first = String::new();
        let mut angle_depth = 0i32;
        while let Some(token) = self.peek() {
            match token {
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                _ => {}
            }
            if first.is_empty() {
                first = token.to_string();
            }
            self.bump();
        }
        first
    }
}

fn parse_named_fields(group: TokenStream) -> Result<Vec<Field>, String> {
    let mut cursor = Cursor::new(group);
    let mut fields = Vec::new();
    loop {
        cursor.skip_attributes();
        if cursor.at_end() {
            break;
        }
        cursor.skip_visibility();
        let name = cursor.expect_ident()?;
        if !cursor.is_punct(':') {
            return Err(format!("expected `:` after field `{name}`"));
        }
        cursor.bump();
        let first = cursor.skip_type();
        fields.push(Field {
            name,
            is_option: first == "Option",
        });
        if cursor.is_punct(',') {
            cursor.bump();
        }
    }
    Ok(fields)
}

fn count_tuple_fields(group: TokenStream) -> usize {
    let mut cursor = Cursor::new(group);
    let mut count = 0;
    loop {
        cursor.skip_attributes();
        if cursor.at_end() {
            break;
        }
        cursor.skip_visibility();
        cursor.skip_type();
        count += 1;
        if cursor.is_punct(',') {
            cursor.bump();
        }
    }
    count
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut cursor = Cursor::new(input);
    cursor.skip_attributes();
    cursor.skip_visibility();
    let keyword = cursor.expect_ident()?;
    let name = cursor.expect_ident()?;
    if cursor.is_punct('<') {
        return Err(format!(
            "serde derives in this workspace do not support generic type `{name}`"
        ));
    }
    match keyword.as_str() {
        "struct" => {
            let fields = match cursor.peek() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream())?)
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                _ => Fields::Unit,
            };
            Ok(Item::Struct { name, fields })
        }
        "enum" => {
            let body = match cursor.bump() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => return Err(format!("expected enum body, found {other:?}")),
            };
            let mut cursor = Cursor::new(body);
            let mut variants = Vec::new();
            loop {
                cursor.skip_attributes();
                if cursor.at_end() {
                    break;
                }
                let vname = cursor.expect_ident()?;
                let fields = match cursor.peek() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        let f = Fields::Named(parse_named_fields(g.stream())?);
                        cursor.bump();
                        f
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        let f = Fields::Tuple(count_tuple_fields(g.stream()));
                        cursor.bump();
                        f
                    }
                    _ => Fields::Unit,
                };
                if cursor.is_punct('=') {
                    // Skip an explicit discriminant.
                    cursor.bump();
                    while !cursor.at_end() && !cursor.is_punct(',') {
                        cursor.bump();
                    }
                }
                if cursor.is_punct(',') {
                    cursor.bump();
                }
                variants.push(Variant {
                    name: vname,
                    fields,
                });
            }
            Ok(Item::Enum { name, variants })
        }
        other => Err(format!("cannot derive serde traits for `{other}` items")),
    }
}

fn compile_error(message: &str) -> TokenStream {
    format!("compile_error!({message:?});").parse().unwrap()
}

// ---------------------------------------------------------------------------
// Serialize

/// Derives `serde::Serialize` (externally tagged representation).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(msg) => return compile_error(&msg),
    };
    let body = match &item {
        Item::Struct { name, fields } => serialize_struct_body(name, fields),
        Item::Enum { name, variants } => serialize_enum_body(name, variants),
    };
    let name = item_name(&item);
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn serialize<S: ::serde::Serializer>(&self, serializer: S)\n\
                 -> ::std::result::Result<S::Ok, S::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
    .parse()
    .unwrap()
}

fn item_name(item: &Item) -> &str {
    match item {
        Item::Struct { name, .. } => name,
        Item::Enum { name, .. } => name,
    }
}

fn serialize_struct_body(name: &str, fields: &Fields) -> String {
    match fields {
        Fields::Named(fields) => {
            let mut out = format!(
                "let mut state = ::serde::Serializer::serialize_struct(\
                     serializer, \"{name}\", {})?;\n",
                fields.len()
            );
            for field in fields {
                out.push_str(&format!(
                    "::serde::ser::SerializeStruct::serialize_field(\
                         &mut state, \"{0}\", &self.{0})?;\n",
                    field.name
                ));
            }
            out.push_str("::serde::ser::SerializeStruct::end(state)");
            out
        }
        Fields::Tuple(1) => {
            format!(
                "::serde::Serializer::serialize_newtype_struct(serializer, \"{name}\", &self.0)"
            )
        }
        Fields::Tuple(n) => {
            let mut out = format!(
                "let mut state = ::serde::Serializer::serialize_tuple_struct(\
                     serializer, \"{name}\", {n})?;\n"
            );
            for i in 0..*n {
                out.push_str(&format!(
                    "::serde::ser::SerializeTupleStruct::serialize_field(&mut state, &self.{i})?;\n"
                ));
            }
            out.push_str("::serde::ser::SerializeTupleStruct::end(state)");
            out
        }
        Fields::Unit => {
            format!("::serde::Serializer::serialize_unit_struct(serializer, \"{name}\")")
        }
    }
}

fn serialize_enum_body(name: &str, variants: &[Variant]) -> String {
    let mut out = String::from("match self {\n");
    for (index, variant) in variants.iter().enumerate() {
        let vname = &variant.name;
        match &variant.fields {
            Fields::Unit => out.push_str(&format!(
                "{name}::{vname} => ::serde::Serializer::serialize_unit_variant(\
                     serializer, \"{name}\", {index}u32, \"{vname}\"),\n"
            )),
            Fields::Tuple(1) => out.push_str(&format!(
                "{name}::{vname}(f0) => ::serde::Serializer::serialize_newtype_variant(\
                     serializer, \"{name}\", {index}u32, \"{vname}\", f0),\n"
            )),
            Fields::Tuple(n) => {
                let binders: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                let mut arm = format!(
                    "{name}::{vname}({binders}) => {{\n\
                         let mut state = ::serde::Serializer::serialize_tuple_variant(\
                             serializer, \"{name}\", {index}u32, \"{vname}\", {n})?;\n",
                    binders = binders.join(", ")
                );
                for binder in &binders {
                    arm.push_str(&format!(
                        "::serde::ser::SerializeTupleVariant::serialize_field(&mut state, {binder})?;\n"
                    ));
                }
                arm.push_str("::serde::ser::SerializeTupleVariant::end(state)\n}\n");
                out.push_str(&arm);
            }
            Fields::Named(fields) => {
                let binders: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                let mut arm = format!(
                    "{name}::{vname} {{ {binders} }} => {{\n\
                         let mut state = ::serde::Serializer::serialize_struct_variant(\
                             serializer, \"{name}\", {index}u32, \"{vname}\", {len})?;\n",
                    binders = binders.join(", "),
                    len = fields.len()
                );
                for binder in &binders {
                    arm.push_str(&format!(
                        "::serde::ser::SerializeStructVariant::serialize_field(\
                             &mut state, \"{binder}\", {binder})?;\n"
                    ));
                }
                arm.push_str("::serde::ser::SerializeStructVariant::end(state)\n}\n");
                out.push_str(&arm);
            }
        }
    }
    out.push('}');
    out
}

// ---------------------------------------------------------------------------
// Deserialize

/// Derives `serde::Deserialize` (externally tagged representation).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(msg) => return compile_error(&msg),
    };
    let body = match &item {
        Item::Struct { name, fields } => deserialize_struct_body(name, fields),
        Item::Enum { name, variants } => deserialize_enum_body(name, variants),
    };
    let name = item_name(&item);
    format!(
        "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
             fn deserialize<D: ::serde::Deserializer<'de>>(deserializer: D)\n\
                 -> ::std::result::Result<Self, D::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
    .parse()
    .unwrap()
}

/// Generates a visitor struct named `$visitor` producing `target` (a type
/// path like `Demo` or an enum constructor context) from named fields via
/// `visit_map`/`visit_seq`.
fn named_fields_visitor(
    visitor: &str,
    value_type: &str,
    constructor: &str,
    expecting: &str,
    fields: &[Field],
) -> String {
    let mut declares = String::new();
    let mut match_arms = String::new();
    let mut build_map = String::new();
    let mut build_seq = String::new();
    for (i, field) in fields.iter().enumerate() {
        let fname = &field.name;
        declares.push_str(&format!(
            "let mut fld{i}: ::std::option::Option<_> = ::std::option::Option::None;\n"
        ));
        match_arms.push_str(&format!(
            "\"{fname}\" => {{ fld{i} = ::std::option::Option::Some(\
                 ::serde::de::MapAccess::next_value(&mut map)?); }}\n"
        ));
        let missing = if field.is_option {
            "::std::option::Option::None".to_string()
        } else {
            format!(
                "return ::std::result::Result::Err(\
                     <A::Error as ::serde::de::Error>::missing_field(\"{fname}\"))"
            )
        };
        build_map.push_str(&format!(
            "{fname}: match fld{i} {{\n\
                 ::std::option::Option::Some(v) => v,\n\
                 ::std::option::Option::None => {missing},\n\
             }},\n"
        ));
        build_seq.push_str(&format!(
            "{fname}: match ::serde::de::SeqAccess::next_element(&mut seq)? {{\n\
                 ::std::option::Option::Some(v) => v,\n\
                 ::std::option::Option::None => return ::std::result::Result::Err(\
                     <A::Error as ::serde::de::Error>::missing_field(\"{fname}\")),\n\
             }},\n"
        ));
    }
    format!(
        "struct {visitor};\n\
         impl<'de> ::serde::de::Visitor<'de> for {visitor} {{\n\
             type Value = {value_type};\n\
             fn expecting(&self, f: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {{\n\
                 f.write_str(\"{expecting}\")\n\
             }}\n\
             fn visit_map<A: ::serde::de::MapAccess<'de>>(self, mut map: A)\n\
                 -> ::std::result::Result<Self::Value, A::Error> {{\n\
                 {declares}\
                 while let ::std::option::Option::Some(key) =\n\
                     ::serde::de::MapAccess::next_key::<::std::string::String>(&mut map)? {{\n\
                     match key.as_str() {{\n\
                         {match_arms}\
                         _ => {{ let _ = ::serde::de::MapAccess::next_value::<\
                             ::serde::de::IgnoredAny>(&mut map)?; }}\n\
                     }}\n\
                 }}\n\
                 ::std::result::Result::Ok({constructor} {{\n{build_map}}})\n\
             }}\n\
             fn visit_seq<A: ::serde::de::SeqAccess<'de>>(self, mut seq: A)\n\
                 -> ::std::result::Result<Self::Value, A::Error> {{\n\
                 ::std::result::Result::Ok({constructor} {{\n{build_seq}}})\n\
             }}\n\
         }}"
    )
}

/// Generates a visitor struct producing `constructor(e0, e1, ...)` from a
/// sequence of `n` elements.
fn tuple_fields_visitor(
    visitor: &str,
    value_type: &str,
    constructor: &str,
    expecting: &str,
    n: usize,
) -> String {
    let mut elems = String::new();
    for i in 0..n {
        elems.push_str(&format!(
            "match ::serde::de::SeqAccess::next_element(&mut seq)? {{\n\
                 ::std::option::Option::Some(v) => v,\n\
                 ::std::option::Option::None => return ::std::result::Result::Err(\
                     <A::Error as ::serde::de::Error>::custom(\
                         \"missing element {i} of {expecting}\")),\n\
             }},\n"
        ));
    }
    format!(
        "struct {visitor};\n\
         impl<'de> ::serde::de::Visitor<'de> for {visitor} {{\n\
             type Value = {value_type};\n\
             fn expecting(&self, f: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {{\n\
                 f.write_str(\"{expecting}\")\n\
             }}\n\
             fn visit_seq<A: ::serde::de::SeqAccess<'de>>(self, mut seq: A)\n\
                 -> ::std::result::Result<Self::Value, A::Error> {{\n\
                 ::std::result::Result::Ok({constructor}(\n{elems}))\n\
             }}\n\
         }}"
    )
}

fn deserialize_struct_body(name: &str, fields: &Fields) -> String {
    match fields {
        Fields::Named(fields) => {
            let field_names: Vec<String> =
                fields.iter().map(|f| format!("\"{}\"", f.name)).collect();
            let visitor = named_fields_visitor(
                "SerdeVisitor",
                name,
                name,
                &format!("struct {name}"),
                fields,
            );
            format!(
                "{visitor}\n\
                 ::serde::Deserializer::deserialize_struct(\
                     deserializer, \"{name}\", &[{fields}], SerdeVisitor)",
                fields = field_names.join(", ")
            )
        }
        Fields::Tuple(1) => format!(
            "struct SerdeVisitor;\n\
             impl<'de> ::serde::de::Visitor<'de> for SerdeVisitor {{\n\
                 type Value = {name};\n\
                 fn expecting(&self, f: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {{\n\
                     f.write_str(\"newtype struct {name}\")\n\
                 }}\n\
                 fn visit_newtype_struct<D2: ::serde::Deserializer<'de>>(self, d: D2)\n\
                     -> ::std::result::Result<Self::Value, D2::Error> {{\n\
                     ::std::result::Result::Ok({name}(::serde::Deserialize::deserialize(d)?))\n\
                 }}\n\
             }}\n\
             ::serde::Deserializer::deserialize_newtype_struct(\
                 deserializer, \"{name}\", SerdeVisitor)"
        ),
        Fields::Tuple(n) => {
            let visitor = tuple_fields_visitor(
                "SerdeVisitor",
                name,
                name,
                &format!("tuple struct {name}"),
                *n,
            );
            format!(
                "{visitor}\n\
                 ::serde::Deserializer::deserialize_tuple_struct(\
                     deserializer, \"{name}\", {n}, SerdeVisitor)"
            )
        }
        Fields::Unit => format!(
            "struct SerdeVisitor;\n\
             impl<'de> ::serde::de::Visitor<'de> for SerdeVisitor {{\n\
                 type Value = {name};\n\
                 fn expecting(&self, f: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {{\n\
                     f.write_str(\"unit struct {name}\")\n\
                 }}\n\
                 fn visit_unit<E: ::serde::de::Error>(self)\n\
                     -> ::std::result::Result<Self::Value, E> {{\n\
                     ::std::result::Result::Ok({name})\n\
                 }}\n\
             }}\n\
             ::serde::Deserializer::deserialize_unit_struct(\
                 deserializer, \"{name}\", SerdeVisitor)"
        ),
    }
}

fn deserialize_enum_body(name: &str, variants: &[Variant]) -> String {
    let variant_names: Vec<String> = variants.iter().map(|v| format!("\"{}\"", v.name)).collect();
    let mut helper_visitors = String::new();
    let mut arms = String::new();
    for (i, variant) in variants.iter().enumerate() {
        let vname = &variant.name;
        match &variant.fields {
            Fields::Unit => arms.push_str(&format!(
                "\"{vname}\" => {{\n\
                     ::serde::de::VariantAccess::unit_variant(acc)?;\n\
                     ::std::result::Result::Ok({name}::{vname})\n\
                 }}\n"
            )),
            Fields::Tuple(1) => arms.push_str(&format!(
                "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(\
                     ::serde::de::VariantAccess::newtype_variant(acc)?)),\n"
            )),
            Fields::Tuple(n) => {
                helper_visitors.push_str(&tuple_fields_visitor(
                    &format!("SerdeVariant{i}"),
                    name,
                    &format!("{name}::{vname}"),
                    &format!("tuple variant {name}::{vname}"),
                    *n,
                ));
                helper_visitors.push('\n');
                arms.push_str(&format!(
                    "\"{vname}\" => ::serde::de::VariantAccess::tuple_variant(\
                         acc, {n}, SerdeVariant{i}),\n"
                ));
            }
            Fields::Named(fields) => {
                let field_names: Vec<String> =
                    fields.iter().map(|f| format!("\"{}\"", f.name)).collect();
                helper_visitors.push_str(&named_fields_visitor(
                    &format!("SerdeVariant{i}"),
                    name,
                    &format!("{name}::{vname}"),
                    &format!("struct variant {name}::{vname}"),
                    fields,
                ));
                helper_visitors.push('\n');
                arms.push_str(&format!(
                    "\"{vname}\" => ::serde::de::VariantAccess::struct_variant(\
                         acc, &[{fields}], SerdeVariant{i}),\n",
                    fields = field_names.join(", ")
                ));
            }
        }
    }
    format!(
        "{helper_visitors}\
         struct SerdeVisitor;\n\
         impl<'de> ::serde::de::Visitor<'de> for SerdeVisitor {{\n\
             type Value = {name};\n\
             fn expecting(&self, f: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {{\n\
                 f.write_str(\"enum {name}\")\n\
             }}\n\
             fn visit_enum<A: ::serde::de::EnumAccess<'de>>(self, data: A)\n\
                 -> ::std::result::Result<Self::Value, A::Error> {{\n\
                 let (variant, acc) =\n\
                     ::serde::de::EnumAccess::variant::<::std::string::String>(data)?;\n\
                 match variant.as_str() {{\n\
                     {arms}\
                     _ => ::std::result::Result::Err(\
                         <A::Error as ::serde::de::Error>::unknown_variant(\
                             &variant, &[{variant_names}])),\n\
                 }}\n\
             }}\n\
         }}\n\
         ::serde::Deserializer::deserialize_enum(\
             deserializer, \"{name}\", &[{variant_names}], SerdeVisitor)",
        variant_names = variant_names.join(", ")
    )
}
