//! Serialization half of the data model.

use std::fmt::Display;

/// Error raised by a serializer.
pub trait Error: Sized + std::error::Error {
    /// Builds an error from an arbitrary message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A data structure that can be serialized into any serde data format.
pub trait Serialize {
    /// Serializes `self` with the given serializer.
    fn serialize<S>(&self, serializer: S) -> Result<S::Ok, S::Error>
    where
        S: Serializer;
}

/// A data format that can serialize any serde data structure.
pub trait Serializer: Sized {
    /// Output produced on success.
    type Ok;
    /// Error raised on failure.
    type Error: Error;

    /// Compound serializer for sequences.
    type SerializeSeq: SerializeSeq<Ok = Self::Ok, Error = Self::Error>;
    /// Compound serializer for tuples.
    type SerializeTuple: SerializeTuple<Ok = Self::Ok, Error = Self::Error>;
    /// Compound serializer for tuple structs.
    type SerializeTupleStruct: SerializeTupleStruct<Ok = Self::Ok, Error = Self::Error>;
    /// Compound serializer for tuple enum variants.
    type SerializeTupleVariant: SerializeTupleVariant<Ok = Self::Ok, Error = Self::Error>;
    /// Compound serializer for maps.
    type SerializeMap: SerializeMap<Ok = Self::Ok, Error = Self::Error>;
    /// Compound serializer for structs.
    type SerializeStruct: SerializeStruct<Ok = Self::Ok, Error = Self::Error>;
    /// Compound serializer for struct enum variants.
    type SerializeStructVariant: SerializeStructVariant<Ok = Self::Ok, Error = Self::Error>;

    /// Serializes a `bool`.
    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
    /// Serializes an `i8`.
    fn serialize_i8(self, v: i8) -> Result<Self::Ok, Self::Error>;
    /// Serializes an `i16`.
    fn serialize_i16(self, v: i16) -> Result<Self::Ok, Self::Error>;
    /// Serializes an `i32`.
    fn serialize_i32(self, v: i32) -> Result<Self::Ok, Self::Error>;
    /// Serializes an `i64`.
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error>;
    /// Serializes a `u8`.
    fn serialize_u8(self, v: u8) -> Result<Self::Ok, Self::Error>;
    /// Serializes a `u16`.
    fn serialize_u16(self, v: u16) -> Result<Self::Ok, Self::Error>;
    /// Serializes a `u32`.
    fn serialize_u32(self, v: u32) -> Result<Self::Ok, Self::Error>;
    /// Serializes a `u64`.
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
    /// Serializes an `f32`.
    fn serialize_f32(self, v: f32) -> Result<Self::Ok, Self::Error>;
    /// Serializes an `f64`.
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
    /// Serializes a `char`.
    fn serialize_char(self, v: char) -> Result<Self::Ok, Self::Error>;
    /// Serializes a string slice.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
    /// Serializes raw bytes.
    fn serialize_bytes(self, v: &[u8]) -> Result<Self::Ok, Self::Error>;
    /// Serializes `Option::None`.
    fn serialize_none(self) -> Result<Self::Ok, Self::Error>;
    /// Serializes `Option::Some(value)`.
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<Self::Ok, Self::Error>;
    /// Serializes `()`.
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error>;
    /// Serializes a unit struct.
    fn serialize_unit_struct(self, name: &'static str) -> Result<Self::Ok, Self::Error>;
    /// Serializes a unit enum variant.
    fn serialize_unit_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
    ) -> Result<Self::Ok, Self::Error>;
    /// Serializes a newtype struct (transparent by default).
    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        name: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>;
    /// Serializes a newtype enum variant.
    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>;
    /// Begins serializing a sequence.
    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq, Self::Error>;
    /// Begins serializing a tuple.
    fn serialize_tuple(self, len: usize) -> Result<Self::SerializeTuple, Self::Error>;
    /// Begins serializing a tuple struct.
    fn serialize_tuple_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeTupleStruct, Self::Error>;
    /// Begins serializing a tuple enum variant.
    fn serialize_tuple_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeTupleVariant, Self::Error>;
    /// Begins serializing a map.
    fn serialize_map(self, len: Option<usize>) -> Result<Self::SerializeMap, Self::Error>;
    /// Begins serializing a struct.
    fn serialize_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStruct, Self::Error>;
    /// Begins serializing a struct enum variant.
    fn serialize_struct_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStructVariant, Self::Error>;
}

/// Incremental serialization of a sequence.
pub trait SerializeSeq {
    /// See [`Serializer::Ok`].
    type Ok;
    /// See [`Serializer::Error`].
    type Error: Error;
    /// Serializes the next element.
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finishes the sequence.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Incremental serialization of a tuple.
pub trait SerializeTuple {
    /// See [`Serializer::Ok`].
    type Ok;
    /// See [`Serializer::Error`].
    type Error: Error;
    /// Serializes the next element.
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finishes the tuple.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Incremental serialization of a tuple struct.
pub trait SerializeTupleStruct {
    /// See [`Serializer::Ok`].
    type Ok;
    /// See [`Serializer::Error`].
    type Error: Error;
    /// Serializes the next field.
    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finishes the tuple struct.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Incremental serialization of a tuple enum variant.
pub trait SerializeTupleVariant {
    /// See [`Serializer::Ok`].
    type Ok;
    /// See [`Serializer::Error`].
    type Error: Error;
    /// Serializes the next field.
    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finishes the variant.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Incremental serialization of a map.
pub trait SerializeMap {
    /// See [`Serializer::Ok`].
    type Ok;
    /// See [`Serializer::Error`].
    type Error: Error;
    /// Serializes the next key.
    fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<(), Self::Error>;
    /// Serializes the next value.
    fn serialize_value<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Serializes the next entry.
    fn serialize_entry<K: Serialize + ?Sized, V: Serialize + ?Sized>(
        &mut self,
        key: &K,
        value: &V,
    ) -> Result<(), Self::Error> {
        self.serialize_key(key)?;
        self.serialize_value(value)
    }
    /// Finishes the map.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Incremental serialization of a struct.
pub trait SerializeStruct {
    /// See [`Serializer::Ok`].
    type Ok;
    /// See [`Serializer::Error`].
    type Error: Error;
    /// Serializes the next named field.
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;
    /// Finishes the struct.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Incremental serialization of a struct enum variant.
pub trait SerializeStructVariant {
    /// See [`Serializer::Ok`].
    type Ok;
    /// See [`Serializer::Error`].
    type Error: Error;
    /// Serializes the next named field.
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;
    /// Finishes the variant.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

// ---------------------------------------------------------------------------
// Serialize impls for std types.

macro_rules! impl_serialize_int {
    ($($ty:ty => $method:ident as $as:ty),* $(,)?) => {$(
        impl Serialize for $ty {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.$method(*self as $as)
            }
        }
    )*};
}

impl_serialize_int! {
    i8 => serialize_i8 as i8,
    i16 => serialize_i16 as i16,
    i32 => serialize_i32 as i32,
    i64 => serialize_i64 as i64,
    isize => serialize_i64 as i64,
    u8 => serialize_u8 as u8,
    u16 => serialize_u16 as u16,
    u32 => serialize_u32 as u32,
    u64 => serialize_u64 as u64,
    usize => serialize_u64 as u64,
}

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_bool(*self)
    }
}

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f32(*self)
    }
}

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f64(*self)
    }
}

impl Serialize for char {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_char(*self)
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for () {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_unit()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for &mut T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for std::rc::Rc<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(value) => serializer.serialize_some(value),
            None => serializer.serialize_none(),
        }
    }
}

fn serialize_iter<S, I>(serializer: S, iter: I, len: usize) -> Result<S::Ok, S::Error>
where
    S: Serializer,
    I: IntoIterator,
    I::Item: Serialize,
{
    let mut seq = serializer.serialize_seq(Some(len))?;
    for item in iter {
        seq.serialize_element(&item)?;
    }
    seq.end()
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.iter(), self.len())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.iter(), N)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.iter(), self.len())
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.iter(), self.len())
    }
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut map = serializer.serialize_map(Some(self.len()))?;
        for (k, v) in self {
            map.serialize_entry(k, v)?;
        }
        map.end()
    }
}

impl<K: Serialize, V: Serialize, H> Serialize for std::collections::HashMap<K, V, H> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut map = serializer.serialize_map(Some(self.len()))?;
        for (k, v) in self {
            map.serialize_entry(k, v)?;
        }
        map.end()
    }
}

macro_rules! impl_serialize_tuple {
    ($($len:expr => ($($n:tt $ty:ident),+))+) => {$(
        impl<$($ty: Serialize),+> Serialize for ($($ty,)+) {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let mut tup = serializer.serialize_tuple($len)?;
                $(tup.serialize_element(&self.$n)?;)+
                tup.end()
            }
        }
    )+};
}

impl_serialize_tuple! {
    1 => (0 T0)
    2 => (0 T0, 1 T1)
    3 => (0 T0, 1 T1, 2 T2)
    4 => (0 T0, 1 T1, 2 T2, 3 T3)
    5 => (0 T0, 1 T1, 2 T2, 3 T3, 4 T4)
    6 => (0 T0, 1 T1, 2 T2, 3 T3, 4 T4, 5 T5)
    7 => (0 T0, 1 T1, 2 T2, 3 T3, 4 T4, 5 T5, 6 T6)
    8 => (0 T0, 1 T1, 2 T2, 3 T3, 4 T4, 5 T5, 6 T6, 7 T7)
}
