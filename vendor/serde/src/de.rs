//! Deserialization half of the data model.

use std::fmt::{self, Display};
use std::marker::PhantomData;

/// Error raised by a deserializer.
pub trait Error: Sized + std::error::Error {
    /// Builds an error from an arbitrary message.
    fn custom<T: Display>(msg: T) -> Self;

    /// A required field was absent.
    fn missing_field(field: &'static str) -> Self {
        Self::custom(format_args!("missing field `{field}`"))
    }

    /// An enum variant name was not recognized.
    fn unknown_variant(variant: &str, expected: &'static [&'static str]) -> Self {
        Self::custom(format_args!(
            "unknown variant `{variant}`, expected one of {expected:?}"
        ))
    }

    /// A value had the wrong type for the visitor.
    fn invalid_type(unexpected: &str, expecting: &dyn Expected) -> Self {
        Self::custom(format_args!(
            "invalid type: {unexpected}, expected {expecting}"
        ))
    }

    /// A sequence or map had the wrong number of entries.
    fn invalid_length(len: usize, expecting: &dyn Expected) -> Self {
        Self::custom(format_args!("invalid length {len}, expected {expecting}"))
    }
}

/// What a [`Visitor`] expects, for error messages.
pub trait Expected {
    /// Writes the expectation, e.g. `struct Demo`.
    fn fmt(&self, formatter: &mut fmt::Formatter<'_>) -> fmt::Result;
}

impl<'de, V: Visitor<'de>> Expected for V {
    fn fmt(&self, formatter: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.expecting(formatter)
    }
}

impl Display for dyn Expected + '_ {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        Expected::fmt(self, f)
    }
}

/// A data structure that can be deserialized from any serde data format.
pub trait Deserialize<'de>: Sized {
    /// Deserializes `Self` with the given deserializer.
    fn deserialize<D>(deserializer: D) -> Result<Self, D::Error>
    where
        D: Deserializer<'de>;
}

/// A type deserializable without borrowing from the input.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

/// Stateful deserialization entry point (the stateless case is
/// `PhantomData<T>`).
pub trait DeserializeSeed<'de>: Sized {
    /// Value produced.
    type Value;
    /// Deserializes the value.
    fn deserialize<D>(self, deserializer: D) -> Result<Self::Value, D::Error>
    where
        D: Deserializer<'de>;
}

impl<'de, T: Deserialize<'de>> DeserializeSeed<'de> for PhantomData<T> {
    type Value = T;
    fn deserialize<D>(self, deserializer: D) -> Result<T, D::Error>
    where
        D: Deserializer<'de>,
    {
        T::deserialize(deserializer)
    }
}

/// A data format that can deserialize any serde data structure.
pub trait Deserializer<'de>: Sized {
    /// Error raised on failure.
    type Error: Error;

    /// Deserializes whatever the input contains next.
    fn deserialize_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes a `bool`.
    fn deserialize_bool<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes an `i8`.
    fn deserialize_i8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes an `i16`.
    fn deserialize_i16<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes an `i32`.
    fn deserialize_i32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes an `i64`.
    fn deserialize_i64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes a `u8`.
    fn deserialize_u8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes a `u16`.
    fn deserialize_u16<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes a `u32`.
    fn deserialize_u32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes a `u64`.
    fn deserialize_u64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes an `f32`.
    fn deserialize_f32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes an `f64`.
    fn deserialize_f64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes a `char`.
    fn deserialize_char<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes a borrowed string.
    fn deserialize_str<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes an owned string.
    fn deserialize_string<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes borrowed bytes.
    fn deserialize_bytes<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes an owned byte buffer.
    fn deserialize_byte_buf<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes an `Option`.
    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes `()`.
    fn deserialize_unit<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes a unit struct.
    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Deserializes a newtype struct.
    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Deserializes a sequence.
    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes a tuple.
    fn deserialize_tuple<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Deserializes a tuple struct.
    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Deserializes a map.
    fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes a struct.
    fn deserialize_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Deserializes an enum.
    fn deserialize_enum<V: Visitor<'de>>(
        self,
        name: &'static str,
        variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Deserializes a struct-field or enum-variant identifier.
    fn deserialize_identifier<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Skips over whatever the input contains next.
    fn deserialize_ignored_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
}

macro_rules! visit_default {
    ($($method:ident: $ty:ty => $unexpected:expr;)*) => {$(
        /// Visits one input shape; the default rejects it.
        fn $method<E: Error>(self, v: $ty) -> Result<Self::Value, E> {
            let _ = v;
            Err(E::invalid_type($unexpected, &self))
        }
    )*};
}

/// Walks the value a [`Deserializer`] produces.
pub trait Visitor<'de>: Sized {
    /// Value produced.
    type Value;

    /// Writes what this visitor expects, for error messages.
    fn expecting(&self, formatter: &mut fmt::Formatter<'_>) -> fmt::Result;

    visit_default! {
        visit_bool: bool => "a boolean";
        visit_i64: i64 => "an integer";
        visit_u64: u64 => "an unsigned integer";
        visit_f64: f64 => "a float";
        visit_str: &str => "a string";
        visit_bytes: &[u8] => "bytes";
    }

    /// Visits an `i8` (defaults to widening).
    fn visit_i8<E: Error>(self, v: i8) -> Result<Self::Value, E> {
        self.visit_i64(v as i64)
    }
    /// Visits an `i16` (defaults to widening).
    fn visit_i16<E: Error>(self, v: i16) -> Result<Self::Value, E> {
        self.visit_i64(v as i64)
    }
    /// Visits an `i32` (defaults to widening).
    fn visit_i32<E: Error>(self, v: i32) -> Result<Self::Value, E> {
        self.visit_i64(v as i64)
    }
    /// Visits a `u8` (defaults to widening).
    fn visit_u8<E: Error>(self, v: u8) -> Result<Self::Value, E> {
        self.visit_u64(v as u64)
    }
    /// Visits a `u16` (defaults to widening).
    fn visit_u16<E: Error>(self, v: u16) -> Result<Self::Value, E> {
        self.visit_u64(v as u64)
    }
    /// Visits a `u32` (defaults to widening).
    fn visit_u32<E: Error>(self, v: u32) -> Result<Self::Value, E> {
        self.visit_u64(v as u64)
    }
    /// Visits an `f32` (defaults to widening).
    fn visit_f32<E: Error>(self, v: f32) -> Result<Self::Value, E> {
        self.visit_f64(v as f64)
    }
    /// Visits a `char` (defaults to a one-character string).
    fn visit_char<E: Error>(self, v: char) -> Result<Self::Value, E> {
        self.visit_str(v.encode_utf8(&mut [0u8; 4]))
    }
    /// Visits an owned string (defaults to borrowing).
    fn visit_string<E: Error>(self, v: String) -> Result<Self::Value, E> {
        self.visit_str(&v)
    }
    /// Visits a string borrowed from the input (defaults to `visit_str`).
    fn visit_borrowed_str<E: Error>(self, v: &'de str) -> Result<Self::Value, E> {
        self.visit_str(v)
    }
    /// Visits a unit value.
    fn visit_unit<E: Error>(self) -> Result<Self::Value, E> {
        Err(E::invalid_type("unit", &self))
    }
    /// Visits an absent optional.
    fn visit_none<E: Error>(self) -> Result<Self::Value, E> {
        Err(E::invalid_type("none", &self))
    }
    /// Visits a present optional.
    fn visit_some<D: Deserializer<'de>>(self, deserializer: D) -> Result<Self::Value, D::Error> {
        let _ = deserializer;
        Err(D::Error::invalid_type("some", &self))
    }
    /// Visits a newtype struct payload.
    fn visit_newtype_struct<D: Deserializer<'de>>(
        self,
        deserializer: D,
    ) -> Result<Self::Value, D::Error> {
        let _ = deserializer;
        Err(D::Error::invalid_type("newtype struct", &self))
    }
    /// Visits a sequence.
    fn visit_seq<A: SeqAccess<'de>>(self, seq: A) -> Result<Self::Value, A::Error> {
        let _ = seq;
        Err(A::Error::invalid_type("sequence", &self))
    }
    /// Visits a map.
    fn visit_map<A: MapAccess<'de>>(self, map: A) -> Result<Self::Value, A::Error> {
        let _ = map;
        Err(A::Error::invalid_type("map", &self))
    }
    /// Visits an enum.
    fn visit_enum<A: EnumAccess<'de>>(self, data: A) -> Result<Self::Value, A::Error> {
        let _ = data;
        Err(A::Error::invalid_type("enum", &self))
    }
}

/// Iterates the elements of a sequence.
pub trait SeqAccess<'de> {
    /// Error raised on failure.
    type Error: Error;

    /// Deserializes the next element with a seed.
    fn next_element_seed<T: DeserializeSeed<'de>>(
        &mut self,
        seed: T,
    ) -> Result<Option<T::Value>, Self::Error>;

    /// Deserializes the next element.
    fn next_element<T: Deserialize<'de>>(&mut self) -> Result<Option<T>, Self::Error> {
        self.next_element_seed(PhantomData)
    }

    /// Number of remaining elements, if known.
    fn size_hint(&self) -> Option<usize> {
        None
    }
}

/// Iterates the entries of a map.
pub trait MapAccess<'de> {
    /// Error raised on failure.
    type Error: Error;

    /// Deserializes the next key with a seed.
    fn next_key_seed<K: DeserializeSeed<'de>>(
        &mut self,
        seed: K,
    ) -> Result<Option<K::Value>, Self::Error>;

    /// Deserializes the value paired with the last key.
    fn next_value_seed<V: DeserializeSeed<'de>>(
        &mut self,
        seed: V,
    ) -> Result<V::Value, Self::Error>;

    /// Deserializes the next key.
    fn next_key<K: Deserialize<'de>>(&mut self) -> Result<Option<K>, Self::Error> {
        self.next_key_seed(PhantomData)
    }

    /// Deserializes the value paired with the last key.
    fn next_value<V: Deserialize<'de>>(&mut self) -> Result<V, Self::Error> {
        self.next_value_seed(PhantomData)
    }

    /// Number of remaining entries, if known.
    fn size_hint(&self) -> Option<usize> {
        None
    }
}

/// Gives access to exactly one enum variant.
pub trait EnumAccess<'de>: Sized {
    /// Error raised on failure.
    type Error: Error;
    /// Visitor over the variant's payload.
    type Variant: VariantAccess<'de, Error = Self::Error>;

    /// Deserializes the variant identifier with a seed.
    fn variant_seed<V: DeserializeSeed<'de>>(
        self,
        seed: V,
    ) -> Result<(V::Value, Self::Variant), Self::Error>;

    /// Deserializes the variant identifier.
    fn variant<V: Deserialize<'de>>(self) -> Result<(V, Self::Variant), Self::Error> {
        self.variant_seed(PhantomData)
    }
}

/// Gives access to the payload of one enum variant.
pub trait VariantAccess<'de>: Sized {
    /// Error raised on failure.
    type Error: Error;

    /// The variant has no payload.
    fn unit_variant(self) -> Result<(), Self::Error>;

    /// The variant has one unnamed payload field (seeded).
    fn newtype_variant_seed<T: DeserializeSeed<'de>>(
        self,
        seed: T,
    ) -> Result<T::Value, Self::Error>;

    /// The variant has one unnamed payload field.
    fn newtype_variant<T: Deserialize<'de>>(self) -> Result<T, Self::Error> {
        self.newtype_variant_seed(PhantomData)
    }

    /// The variant has several unnamed payload fields.
    fn tuple_variant<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;

    /// The variant has named payload fields.
    fn struct_variant<V: Visitor<'de>>(
        self,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
}

/// Turns a value into a deserializer over itself (used for unit enum
/// variants represented as bare strings).
pub trait IntoDeserializer<'de, E: Error> {
    /// The resulting deserializer.
    type Deserializer: Deserializer<'de, Error = E>;
    /// Performs the conversion.
    fn into_deserializer(self) -> Self::Deserializer;
}

/// A deserializer over one owned string.
pub struct StringDeserializer<E> {
    value: String,
    marker: PhantomData<E>,
}

impl<E> fmt::Debug for StringDeserializer<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StringDeserializer")
            .field("value", &self.value)
            .finish()
    }
}

impl<'de, E: Error> IntoDeserializer<'de, E> for String {
    type Deserializer = StringDeserializer<E>;
    fn into_deserializer(self) -> StringDeserializer<E> {
        StringDeserializer {
            value: self,
            marker: PhantomData,
        }
    }
}

macro_rules! string_forward_to_any {
    ($($method:ident)*) => {$(
        fn $method<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
            self.deserialize_any(visitor)
        }
    )*};
}

impl<'de, E: Error> Deserializer<'de> for StringDeserializer<E> {
    type Error = E;

    fn deserialize_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        visitor.visit_string(self.value)
    }

    string_forward_to_any! {
        deserialize_bool deserialize_i8 deserialize_i16 deserialize_i32 deserialize_i64
        deserialize_u8 deserialize_u16 deserialize_u32 deserialize_u64
        deserialize_f32 deserialize_f64 deserialize_char deserialize_str deserialize_string
        deserialize_bytes deserialize_byte_buf deserialize_option deserialize_unit
        deserialize_seq deserialize_map deserialize_identifier deserialize_ignored_any
    }

    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }

    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }

    fn deserialize_tuple<V: Visitor<'de>>(
        self,
        _len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }

    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }

    fn deserialize_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }

    fn deserialize_enum<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error> {
        visitor.visit_enum(self)
    }
}

impl<'de, E: Error> EnumAccess<'de> for StringDeserializer<E> {
    type Error = E;
    type Variant = UnitOnlyVariantAccess<E>;

    fn variant_seed<V: DeserializeSeed<'de>>(
        self,
        seed: V,
    ) -> Result<(V::Value, Self::Variant), Self::Error> {
        let variant = seed.deserialize(self)?;
        Ok((variant, UnitOnlyVariantAccess(PhantomData)))
    }
}

/// Variant access for enums represented as bare strings: only the unit
/// form is possible.
#[derive(Debug)]
pub struct UnitOnlyVariantAccess<E>(PhantomData<E>);

impl<'de, E: Error> VariantAccess<'de> for UnitOnlyVariantAccess<E> {
    type Error = E;

    fn unit_variant(self) -> Result<(), Self::Error> {
        Ok(())
    }

    fn newtype_variant_seed<T: DeserializeSeed<'de>>(
        self,
        _seed: T,
    ) -> Result<T::Value, Self::Error> {
        Err(E::custom("expected a payload for a newtype variant"))
    }

    fn tuple_variant<V: Visitor<'de>>(
        self,
        _len: usize,
        _visitor: V,
    ) -> Result<V::Value, Self::Error> {
        Err(E::custom("expected a payload for a tuple variant"))
    }

    fn struct_variant<V: Visitor<'de>>(
        self,
        _fields: &'static [&'static str],
        _visitor: V,
    ) -> Result<V::Value, Self::Error> {
        Err(E::custom("expected a payload for a struct variant"))
    }
}

/// Consumes and discards any single value (unknown struct fields).
#[derive(Debug, Clone, Copy, Default)]
pub struct IgnoredAny;

impl<'de> Deserialize<'de> for IgnoredAny {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct IgnoredAnyVisitor;
        macro_rules! ignore {
            ($($method:ident: $ty:ty;)*) => {$(
                fn $method<E: Error>(self, _v: $ty) -> Result<IgnoredAny, E> {
                    Ok(IgnoredAny)
                }
            )*};
        }
        impl<'de> Visitor<'de> for IgnoredAnyVisitor {
            type Value = IgnoredAny;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("anything")
            }
            ignore! {
                visit_bool: bool;
                visit_i64: i64;
                visit_u64: u64;
                visit_f64: f64;
                visit_str: &str;
                visit_bytes: &[u8];
            }
            fn visit_unit<E: Error>(self) -> Result<IgnoredAny, E> {
                Ok(IgnoredAny)
            }
            fn visit_none<E: Error>(self) -> Result<IgnoredAny, E> {
                Ok(IgnoredAny)
            }
            fn visit_some<D: Deserializer<'de>>(
                self,
                deserializer: D,
            ) -> Result<IgnoredAny, D::Error> {
                IgnoredAny::deserialize(deserializer)
            }
            fn visit_newtype_struct<D: Deserializer<'de>>(
                self,
                deserializer: D,
            ) -> Result<IgnoredAny, D::Error> {
                IgnoredAny::deserialize(deserializer)
            }
            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<IgnoredAny, A::Error> {
                while seq.next_element::<IgnoredAny>()?.is_some() {}
                Ok(IgnoredAny)
            }
            fn visit_map<A: MapAccess<'de>>(self, mut map: A) -> Result<IgnoredAny, A::Error> {
                while map.next_key::<IgnoredAny>()?.is_some() {
                    map.next_value::<IgnoredAny>()?;
                }
                Ok(IgnoredAny)
            }
        }
        deserializer.deserialize_ignored_any(IgnoredAnyVisitor)
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls for std types.

macro_rules! impl_deserialize_num {
    ($($ty:ty, $deserialize:ident, $visit:ident, $wide:ty, $expecting:literal;)*) => {$(
        impl<'de> Deserialize<'de> for $ty {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                struct NumVisitor;
                impl<'de> Visitor<'de> for NumVisitor {
                    type Value = $ty;
                    fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                        f.write_str($expecting)
                    }
                    fn $visit<E: Error>(self, v: $wide) -> Result<$ty, E> {
                        <$ty>::try_from(v)
                            .map_err(|_| E::custom(concat!("number does not fit in ", $expecting)))
                    }
                }
                deserializer.$deserialize(NumVisitor)
            }
        }
    )*};
}

impl_deserialize_num! {
    i8, deserialize_i8, visit_i8, i8, "i8";
    i16, deserialize_i16, visit_i16, i16, "i16";
    i32, deserialize_i32, visit_i32, i32, "i32";
    i64, deserialize_i64, visit_i64, i64, "i64";
    u8, deserialize_u8, visit_u8, u8, "u8";
    u16, deserialize_u16, visit_u16, u16, "u16";
    u32, deserialize_u32, visit_u32, u32, "u32";
    u64, deserialize_u64, visit_u64, u64, "u64";
}

impl<'de> Deserialize<'de> for usize {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct UsizeVisitor;
        impl<'de> Visitor<'de> for UsizeVisitor {
            type Value = usize;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("usize")
            }
            fn visit_u64<E: Error>(self, v: u64) -> Result<usize, E> {
                usize::try_from(v).map_err(|_| E::custom("number does not fit in usize"))
            }
        }
        deserializer.deserialize_u64(UsizeVisitor)
    }
}

impl<'de> Deserialize<'de> for isize {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct IsizeVisitor;
        impl<'de> Visitor<'de> for IsizeVisitor {
            type Value = isize;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("isize")
            }
            fn visit_i64<E: Error>(self, v: i64) -> Result<isize, E> {
                isize::try_from(v).map_err(|_| E::custom("number does not fit in isize"))
            }
        }
        deserializer.deserialize_i64(IsizeVisitor)
    }
}

macro_rules! impl_deserialize_float {
    ($($ty:ty, $deserialize:ident;)*) => {$(
        impl<'de> Deserialize<'de> for $ty {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                struct FloatVisitor;
                impl<'de> Visitor<'de> for FloatVisitor {
                    type Value = $ty;
                    fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                        f.write_str("a float")
                    }
                    fn visit_f64<E: Error>(self, v: f64) -> Result<$ty, E> {
                        Ok(v as $ty)
                    }
                    fn visit_u64<E: Error>(self, v: u64) -> Result<$ty, E> {
                        Ok(v as $ty)
                    }
                    fn visit_i64<E: Error>(self, v: i64) -> Result<$ty, E> {
                        Ok(v as $ty)
                    }
                }
                deserializer.$deserialize(FloatVisitor)
            }
        }
    )*};
}

impl_deserialize_float! {
    f32, deserialize_f32;
    f64, deserialize_f64;
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct BoolVisitor;
        impl<'de> Visitor<'de> for BoolVisitor {
            type Value = bool;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a boolean")
            }
            fn visit_bool<E: Error>(self, v: bool) -> Result<bool, E> {
                Ok(v)
            }
        }
        deserializer.deserialize_bool(BoolVisitor)
    }
}

impl<'de> Deserialize<'de> for char {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct CharVisitor;
        impl<'de> Visitor<'de> for CharVisitor {
            type Value = char;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a character")
            }
            fn visit_char<E: Error>(self, v: char) -> Result<char, E> {
                Ok(v)
            }
            fn visit_str<E: Error>(self, v: &str) -> Result<char, E> {
                let mut chars = v.chars();
                match (chars.next(), chars.next()) {
                    (Some(c), None) => Ok(c),
                    _ => Err(E::custom("expected a single-character string")),
                }
            }
        }
        deserializer.deserialize_char(CharVisitor)
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct StringVisitor;
        impl<'de> Visitor<'de> for StringVisitor {
            type Value = String;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a string")
            }
            fn visit_str<E: Error>(self, v: &str) -> Result<String, E> {
                Ok(v.to_owned())
            }
            fn visit_string<E: Error>(self, v: String) -> Result<String, E> {
                Ok(v)
            }
        }
        deserializer.deserialize_string(StringVisitor)
    }
}

impl<'de> Deserialize<'de> for () {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct UnitVisitor;
        impl<'de> Visitor<'de> for UnitVisitor {
            type Value = ();
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("unit")
            }
            fn visit_unit<E: Error>(self) -> Result<(), E> {
                Ok(())
            }
        }
        deserializer.deserialize_unit(UnitVisitor)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct OptionVisitor<T>(PhantomData<T>);
        impl<'de, T: Deserialize<'de>> Visitor<'de> for OptionVisitor<T> {
            type Value = Option<T>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("an optional value")
            }
            fn visit_none<E: Error>(self) -> Result<Option<T>, E> {
                Ok(None)
            }
            fn visit_unit<E: Error>(self) -> Result<Option<T>, E> {
                Ok(None)
            }
            fn visit_some<D: Deserializer<'de>>(
                self,
                deserializer: D,
            ) -> Result<Option<T>, D::Error> {
                T::deserialize(deserializer).map(Some)
            }
        }
        deserializer.deserialize_option(OptionVisitor(PhantomData))
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        T::deserialize(deserializer).map(Box::new)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct VecVisitor<T>(PhantomData<T>);
        impl<'de, T: Deserialize<'de>> Visitor<'de> for VecVisitor<T> {
            type Value = Vec<T>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a sequence")
            }
            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<Vec<T>, A::Error> {
                let mut items = Vec::with_capacity(seq.size_hint().unwrap_or(0).min(4096));
                while let Some(item) = seq.next_element()? {
                    items.push(item);
                }
                Ok(items)
            }
        }
        deserializer.deserialize_seq(VecVisitor(PhantomData))
    }
}

impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct ArrayVisitor<T, const N: usize>(PhantomData<T>);
        impl<'de, T: Deserialize<'de>, const N: usize> Visitor<'de> for ArrayVisitor<T, N> {
            type Value = [T; N];
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "an array of {N} elements")
            }
            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<[T; N], A::Error> {
                let mut items = Vec::with_capacity(N);
                while items.len() < N {
                    match seq.next_element()? {
                        Some(item) => items.push(item),
                        None => return Err(A::Error::invalid_length(items.len(), &self)),
                    }
                }
                items
                    .try_into()
                    .map_err(|_| A::Error::custom("array length mismatch"))
            }
        }
        deserializer.deserialize_seq(ArrayVisitor::<T, N>(PhantomData))
    }
}

impl<'de, K, V> Deserialize<'de> for std::collections::BTreeMap<K, V>
where
    K: Deserialize<'de> + Ord,
    V: Deserialize<'de>,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct BTreeMapVisitor<K, V>(PhantomData<(K, V)>);
        impl<'de, K, V> Visitor<'de> for BTreeMapVisitor<K, V>
        where
            K: Deserialize<'de> + Ord,
            V: Deserialize<'de>,
        {
            type Value = std::collections::BTreeMap<K, V>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a map")
            }
            fn visit_map<A: MapAccess<'de>>(self, mut map: A) -> Result<Self::Value, A::Error> {
                let mut out = std::collections::BTreeMap::new();
                while let Some(key) = map.next_key()? {
                    let value = map.next_value()?;
                    out.insert(key, value);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_map(BTreeMapVisitor(PhantomData))
    }
}

impl<'de, K, V, H> Deserialize<'de> for std::collections::HashMap<K, V, H>
where
    K: Deserialize<'de> + Eq + std::hash::Hash,
    V: Deserialize<'de>,
    H: std::hash::BuildHasher + Default,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct HashMapVisitor<K, V, H>(PhantomData<(K, V, H)>);
        impl<'de, K, V, H> Visitor<'de> for HashMapVisitor<K, V, H>
        where
            K: Deserialize<'de> + Eq + std::hash::Hash,
            V: Deserialize<'de>,
            H: std::hash::BuildHasher + Default,
        {
            type Value = std::collections::HashMap<K, V, H>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a map")
            }
            fn visit_map<A: MapAccess<'de>>(self, mut map: A) -> Result<Self::Value, A::Error> {
                let mut out = std::collections::HashMap::with_hasher(H::default());
                while let Some(key) = map.next_key()? {
                    let value = map.next_value()?;
                    out.insert(key, value);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_map(HashMapVisitor(PhantomData))
    }
}

macro_rules! impl_deserialize_tuple {
    ($($len:expr => ($($n:tt $ty:ident),+))+) => {$(
        impl<'de, $($ty: Deserialize<'de>),+> Deserialize<'de> for ($($ty,)+) {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                struct TupleVisitor<$($ty),+>(PhantomData<($($ty,)+)>);
                impl<'de, $($ty: Deserialize<'de>),+> Visitor<'de> for TupleVisitor<$($ty),+> {
                    type Value = ($($ty,)+);
                    fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                        write!(f, "a tuple of length {}", $len)
                    }
                    fn visit_seq<A: SeqAccess<'de>>(
                        self,
                        mut seq: A,
                    ) -> Result<Self::Value, A::Error> {
                        Ok(($(
                            match seq.next_element::<$ty>()? {
                                Some(value) => value,
                                None => return Err(A::Error::invalid_length($n, &self)),
                            },
                        )+))
                    }
                }
                deserializer.deserialize_tuple($len, TupleVisitor(PhantomData))
            }
        }
    )+};
}

impl_deserialize_tuple! {
    1 => (0 T0)
    2 => (0 T0, 1 T1)
    3 => (0 T0, 1 T1, 2 T2)
    4 => (0 T0, 1 T1, 2 T2, 3 T3)
    5 => (0 T0, 1 T1, 2 T2, 3 T3, 4 T4)
    6 => (0 T0, 1 T1, 2 T2, 3 T3, 4 T4, 5 T5)
    7 => (0 T0, 1 T1, 2 T2, 3 T3, 4 T4, 5 T5, 6 T6)
    8 => (0 T0, 1 T1, 2 T2, 3 T3, 4 T4, 5 T5, 6 T6, 7 T7)
}
