//! Offline stand-in for [serde](https://serde.rs).
//!
//! This workspace pins its dependency set and builds without network
//! access, so the real `serde` crate cannot be fetched. This crate
//! reimplements, from scratch, exactly the subset of the serde data model
//! the workspace uses: the `Serialize`/`Deserialize` traits, the
//! `Serializer`/`Deserializer` driver traits with the default
//! (externally-tagged) representations, visitor-based deserialization,
//! and derive macros for plain (non-generic) structs and enums.
//!
//! It is API-compatible with the real serde for every call site in this
//! repository; swapping the real crate back in requires only a Cargo.toml
//! change.

pub mod de;
pub mod ser;

pub use de::{Deserialize, Deserializer};
pub use ser::{Serialize, Serializer};

// Derive macros live in a separate proc-macro crate, re-exported here so
// `#[derive(serde::Serialize)]` and `use serde::{Serialize, Deserialize}`
// both work. Macro names share text with the traits but live in a
// different namespace.
pub use serde_derive::{Deserialize, Serialize};
