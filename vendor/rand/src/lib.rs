//! Offline stand-in for the `rand` crate.
//!
//! Provides the subset this workspace uses: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, and `Rng::gen_range` over integer
//! `Range`/`RangeInclusive` bounds. The generator is a SplitMix64 —
//! deterministic for a given seed, statistically solid for test-pattern
//! and synthetic-scene generation, but NOT the ChaCha12 generator the
//! real crate uses, so absolute sequences differ from upstream rand.
//! All in-repo consumers only rely on determinism per seed.

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: a 64-bit generator.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a small seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling adapter, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open or inclusive).
    ///
    /// Panics if the range is empty, matching the real crate.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }
}

impl<T: RngCore> Rng for T {}

/// Ranges that can be sampled: `a..b` and `a..=b` over integers.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: SplitMix64.
    ///
    /// Small state, passes BigCrush-level smoke tests for this use case
    /// (uniform draws for synthetic scenes and access patterns).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}
