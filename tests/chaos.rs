//! End-to-end chaos: the profile→adapt→serve→persist stack under
//! deterministic fault injection.
//!
//! The contract under test, per ISSUE acceptance criteria:
//!
//! - every preset × seed campaign completes without a panic or wedge;
//! - sustained counter loss drives the controller's confidence down
//!   until it retreats to standard copy (the safe fallback);
//! - same-seed campaigns produce byte-identical serialized reports;
//! - the TCP server survives garbage, oversized lines, and mid-request
//!   stalls with error responses or disconnects — never a hang;
//! - a corrupted registry snapshot is detected at load: the service
//!   counts it and rebuilds from scratch instead of trusting it.

use std::sync::Arc;
use std::time::Duration;

use icomm::adapt::{AdaptController, ControllerConfig};
use icomm::chaos::{chaos_matrix, run_chaos, torture_snapshot, ChaosReport, FaultPlan};
use icomm::microbench::quick_characterize_device;
use icomm::models::CommModelKind;
use icomm::serve::{Server, ServerConfig, ServiceConfig, TuneRequest, TuningService};
use icomm::soc::DeviceProfile;

fn setup() -> (
    DeviceProfile,
    icomm::microbench::DeviceCharacterization,
    icomm::models::PhasedWorkload,
) {
    let device = DeviceProfile::jetson_tx2();
    let characterization = quick_characterize_device(&device);
    let phased = icomm::apps::ShwfsApp::default().phased_workload(6);
    (device, characterization, phased)
}

#[test]
fn every_preset_survives_the_seed_matrix() {
    let (device, characterization, phased) = setup();
    let seeds = [1u64, 42, 1337];
    for preset in FaultPlan::PRESETS {
        let plan = FaultPlan::preset(preset).unwrap();
        let reports = chaos_matrix(&device, &characterization, &phased, &plan, &seeds);
        for report in &reports {
            assert!(report.passed(), "{preset} seed {}: {report}", report.seed);
            assert_eq!(report.windows, phased.total_windows());
        }
    }
}

#[test]
fn same_seed_campaigns_serialize_byte_identically() {
    let (device, characterization, phased) = setup();
    for preset in ["loss", "hostile", "full"] {
        let plan = FaultPlan::preset(preset).unwrap();
        let a = run_chaos(&device, &characterization, &phased, &plan, 99);
        let b = run_chaos(&device, &characterization, &phased, &plan, 99);
        assert_eq!(
            icomm::persist::to_string(&a).unwrap(),
            icomm::persist::to_string(&b).unwrap(),
            "{preset}: same-seed reports differ"
        );
    }
}

#[test]
fn sustained_counter_loss_forces_the_sc_fallback() {
    // Feed a controller one clean ZC window, then nothing but corrupt
    // samples: confidence must collapse below the fallback threshold and
    // the controller must retreat to (and hold) standard copy.
    let device = DeviceProfile::jetson_tx2();
    let characterization = quick_characterize_device(&device);
    let mut controller = AdaptController::new(
        device,
        characterization,
        ControllerConfig {
            initial_model: CommModelKind::ZeroCopy,
            ..ControllerConfig::default()
        },
    );
    let phased = icomm::apps::ShwfsApp::default().phased_workload(4);
    let mut injector = icomm::chaos::FaultInjector::new(
        FaultPlan {
            nan_prob: 1.0,
            ..FaultPlan::none()
        },
        3,
    );
    let run = icomm::chaos::run_faulted(
        &icomm::soc::DeviceProfile::jetson_tx2(),
        &phased,
        &mut controller,
        &mut injector,
    );
    assert!(
        run.stats.sc_fallbacks >= 1,
        "no SC fallback under total counter corruption: {:?}",
        run.stats
    );
    assert_eq!(
        *run.models.last().unwrap(),
        CommModelKind::StandardCopy,
        "controller did not end on the safe model"
    );
    assert!(run.final_confidence < 0.25, "{}", run.final_confidence);
}

#[test]
fn hostile_campaign_exercises_every_defense() {
    let (device, characterization, phased) = setup();
    let report = run_chaos(
        &device,
        &characterization,
        &phased,
        &FaultPlan::hostile(),
        1337,
    );
    assert!(report.passed(), "{report}");
    assert!(report.quarantined > 0, "{report}");
    assert!(report.lost_windows > 0, "{report}");
    assert!(report.injections.total() > 0, "{report}");
    assert!(report.snapshot_torture.rejected > 0, "{report}");
}

#[test]
fn chaos_report_json_round_trips() {
    let (device, characterization, phased) = setup();
    let report = run_chaos(&device, &characterization, &phased, &FaultPlan::full(), 7);
    let json = icomm::persist::to_string(&report).unwrap();
    let back: ChaosReport = icomm::persist::from_str(&json).unwrap();
    assert_eq!(back, report);
}

#[test]
fn characterization_snapshot_resists_torture() {
    let device = DeviceProfile::jetson_nano();
    let characterization = quick_characterize_device(&device);
    let json = icomm::persist::to_string(&characterization).unwrap();
    let frame = icomm::persist::snapshot::encode(&json);
    let report = torture_snapshot(&frame, 2024, 1000);
    assert!(report.survived(), "silent corruption: {report:?}");
    assert!(report.rejected > 900, "{report:?}");
}

#[test]
fn tcp_server_survives_hostile_clients() {
    let service = Arc::new(TuningService::start(ServiceConfig::quick().with_workers(2)));
    let server = Server::start_with(
        service,
        "127.0.0.1:0",
        ServerConfig {
            read_timeout: Some(Duration::from_millis(200)),
            max_line_bytes: 4096,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr();

    // Garbage lines: every one gets a malformed-request error response.
    let responses = icomm::chaos::tcp::send_garbage(addr, 5, 8).expect("garbage client");
    assert_eq!(responses, 8, "server stopped answering garbage");

    // An oversized line: rejected with an error naming the bound.
    let response = icomm::chaos::tcp::send_oversized(addr, 64 * 1024).expect("oversized client");
    assert!(response.contains("exceeds"), "{response}");

    // A mid-request stall: disconnected by the read deadline.
    let defended =
        icomm::chaos::tcp::stall_mid_request(addr, Duration::from_secs(5)).expect("stall client");
    assert!(defended, "server never dropped the stalled connection");

    // And the server still serves honest clients afterwards.
    let honest = server.service().handle(TuneRequest::new(1, "tx2", "shwfs"));
    assert!(honest.ok, "{:?}", honest.error);

    let snapshot = server.service().metrics();
    assert!(snapshot.malformed_requests >= 8, "{snapshot:?}");
    assert!(snapshot.oversized_lines >= 1, "{snapshot:?}");
    assert!(snapshot.read_timeouts >= 1, "{snapshot:?}");
    server.stop();
}

#[test]
fn corrupt_registry_snapshot_is_detected_and_rebuilt() {
    let dir = std::env::temp_dir().join(format!("icomm-chaos-reg-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("registry.snap");

    // A service persists its registry on shutdown...
    let service = TuningService::start(
        ServiceConfig::quick()
            .with_workers(2)
            .with_registry_path(path.clone()),
    );
    let warm = service.handle(TuneRequest::new(1, "tx2", "shwfs"));
    assert!(warm.ok);
    service.shutdown().unwrap();

    // ...the file tears on disk...
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&path, &bytes).unwrap();

    // ...and the next start detects it, counts it, and rebuilds.
    let service = TuningService::start(
        ServiceConfig::quick()
            .with_workers(2)
            .with_registry_path(path.clone()),
    );
    assert_eq!(service.metrics().snapshot_corruptions, 1);
    assert_eq!(service.registry().len(), 0, "corrupt snapshot was trusted");
    let rebuilt = service.handle(TuneRequest::new(2, "tx2", "shwfs"));
    assert!(rebuilt.ok);
    assert_eq!(
        rebuilt.cache_hit,
        Some(false),
        "rebuild did not re-characterize"
    );
    service.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}
