//! The headline reproduction: the full tuning loop — characterize,
//! profile, recommend, validate — produces the paper's verdicts on every
//! board for both case studies, and following the recommendation never
//! hurts.

mod common;

use icomm::apps::{OrbApp, ShwfsApp};
use icomm::core::{CacheZone, Tuner};
use icomm::models::CommModelKind;
use icomm::soc::{DeviceProfile, PageSize};

use common::quick_characterization;

fn tuner(device: DeviceProfile) -> Tuner {
    let c = quick_characterization(&device);
    Tuner::with_characterization(device, c)
}

fn shwfs() -> icomm::models::Workload {
    ShwfsApp {
        iterations: 2,
        ..ShwfsApp::default()
    }
    .workload()
}

fn orb() -> icomm::models::Workload {
    OrbApp {
        matching_reads: 300_000,
        iterations: 1,
        ..OrbApp::default()
    }
    .workload()
}

#[test]
fn shwfs_nano_keeps_standard_copy() {
    let t = tuner(DeviceProfile::jetson_nano());
    let v = t.validate(&shwfs(), CommModelKind::StandardCopy);
    assert_eq!(
        v.recommendation.recommended,
        CommModelKind::StandardCopy,
        "{}",
        v.recommendation.rationale
    );
    assert!(v.recommendation_sound(0.05));
}

#[test]
fn shwfs_tx2_keeps_standard_copy() {
    let t = tuner(DeviceProfile::jetson_tx2());
    let v = t.validate(&shwfs(), CommModelKind::StandardCopy);
    assert_eq!(
        v.recommendation.recommended,
        CommModelKind::StandardCopy,
        "{}",
        v.recommendation.rationale
    );
}

#[test]
fn shwfs_xavier_switches_to_zero_copy_and_wins() {
    // Paper Table III: +38 % measured on the AGX Xavier.
    let t = tuner(DeviceProfile::jetson_agx_xavier());
    let v = t.validate(&shwfs(), CommModelKind::StandardCopy);
    assert_eq!(
        v.recommendation.recommended,
        CommModelKind::ZeroCopy,
        "{}",
        v.recommendation.rationale
    );
    let gain_pct = (v.actual_speedup - 1.0) * 100.0;
    assert!(
        gain_pct > 10.0,
        "Xavier ZC should win clearly, got {gain_pct:+.0}%"
    );
}

#[test]
fn orb_tx2_sent_back_to_standard_copy_with_huge_recovery() {
    // Paper Table V: 521 ms (ZC) vs 70 ms (SC) on the TX2.
    let t = tuner(DeviceProfile::jetson_tx2());
    let v = t.validate(&orb(), CommModelKind::ZeroCopy);
    assert_eq!(
        v.recommendation.recommended,
        CommModelKind::StandardCopy,
        "{}",
        v.recommendation.rationale
    );
    assert!(
        v.actual_speedup > 3.0,
        "switching back to SC should recover several x, got {:.1}x",
        v.actual_speedup
    );
}

#[test]
fn orb_xavier_keeps_zero_copy_in_zone2() {
    // Paper Table V: 0 % difference on the Xavier; the profile lands in
    // zone 2 and ZC is kept.
    let t = tuner(DeviceProfile::jetson_agx_xavier());
    let v = t.validate(&orb(), CommModelKind::ZeroCopy);
    assert_eq!(v.recommendation.zone, CacheZone::Maybe);
    assert_eq!(
        v.recommendation.recommended,
        CommModelKind::ZeroCopy,
        "{}",
        v.recommendation.rationale
    );
}

#[test]
fn huge_pages_flip_um_to_upm_on_coherent_boards() {
    // The memory-topology headline: on the hardware-coherent boards the
    // ONLY thing that changes between the two runs is the page size the
    // shared allocation is mapped with. With 4K pages the shared
    // footprint overflows the TLB reach, the coherent fills pay the walk
    // penalty, and UM (which migrates pages next to the kernel) stays
    // the right call. With 2M pages the TLB covers the footprint and the
    // framework flips the same workload to coherent UPM — and the
    // ground-truth run confirms the flip wins.
    for make in [DeviceProfile::mi300a_like, DeviceProfile::gh_like] {
        let small = tuner(make().with_page_size(PageSize::Small4K));
        let huge = tuner(make().with_page_size(PageSize::Huge2M));
        for workload in [shwfs(), orb()] {
            let v4k = small.validate(&workload, CommModelKind::UnifiedMemory);
            assert_eq!(
                v4k.recommendation.recommended,
                CommModelKind::UnifiedMemory,
                "{} @4K {}: {}",
                make().name,
                workload.name,
                v4k.recommendation.rationale
            );
            let v2m = huge.validate(&workload, CommModelKind::UnifiedMemory);
            assert_eq!(
                v2m.recommendation.recommended,
                CommModelKind::CoherentUpm,
                "{} @2M {}: {}",
                make().name,
                workload.name,
                v2m.recommendation.rationale
            );
            assert!(
                v2m.recommendation_sound(0.05),
                "{} @2M {}: UPM flip should win in ground truth, got {:.2}x",
                make().name,
                workload.name,
                v2m.actual_speedup
            );
        }
    }
}

#[test]
fn upm_never_recommended_on_the_paper_boards() {
    // The Jetsons have no coherent fabric: the UPM refinement must be
    // inert there no matter the current model or page size.
    for device in DeviceProfile::all_boards() {
        let t = tuner(device.clone());
        for workload in [shwfs(), orb()] {
            for current in [
                CommModelKind::StandardCopy,
                CommModelKind::UnifiedMemory,
                CommModelKind::ZeroCopy,
            ] {
                let v = t.validate(&workload, current);
                assert_ne!(
                    v.recommendation.recommended,
                    CommModelKind::CoherentUpm,
                    "{}: {} from {}",
                    device.name,
                    workload.name,
                    current.abbrev()
                );
            }
        }
    }
}

#[test]
fn recommendations_never_hurt_across_the_matrix() {
    // Every board x both apps x both plausible current models.
    for device in DeviceProfile::all_boards() {
        let t = tuner(device.clone());
        for workload in [shwfs(), orb()] {
            for current in [CommModelKind::StandardCopy, CommModelKind::ZeroCopy] {
                let v = t.validate(&workload, current);
                assert!(
                    v.recommendation_sound(0.05),
                    "{}: {} from {} -> {} lost {:.2}x ({})",
                    device.name,
                    workload.name,
                    current.abbrev(),
                    v.recommendation.recommended.abbrev(),
                    v.actual_speedup,
                    v.recommendation.rationale
                );
            }
        }
    }
}

#[test]
fn predicted_speedup_sign_matches_reality_for_switches() {
    for device in DeviceProfile::all_boards() {
        let t = tuner(device.clone());
        for workload in [shwfs(), orb()] {
            for current in [CommModelKind::StandardCopy, CommModelKind::ZeroCopy] {
                let v = t.validate(&workload, current);
                if v.recommendation.suggests_switch() {
                    assert!(
                        v.actual_speedup >= 0.95,
                        "{}: switch {} -> {} should not lose, got {:.2}x",
                        device.name,
                        current.abbrev(),
                        v.recommendation.recommended.abbrev(),
                        v.actual_speedup
                    );
                }
            }
        }
    }
}
