//! End-to-end persistence: characterize a board once, serialize the
//! characterization to JSON, reload it, and verify the reloaded tuner
//! gives identical verdicts — the cache-to-disk workflow the CLI exposes
//! via `icomm characterize --save` / `icomm tune --characterization`.

mod common;

use icomm::apps::ShwfsApp;
use icomm::core::Tuner;
use icomm::models::{CommModelKind, RunReport, Workload};
use icomm::soc::DeviceProfile;
use icomm_persist::{from_str, to_string};

use common::quick_characterization;

#[test]
fn characterization_survives_disk_round_trip() {
    let device = DeviceProfile::jetson_agx_xavier();
    let original = quick_characterization(&device);

    let json = to_string(&original).expect("serialize characterization");
    let reloaded = from_str(&json).expect("reload characterization");
    assert_eq!(original, reloaded);

    // Both tuners must produce the same recommendation.
    let workload = ShwfsApp {
        iterations: 2,
        ..ShwfsApp::default()
    }
    .workload();
    let fresh = Tuner::with_characterization(device.clone(), original);
    let cached = Tuner::with_characterization(device, reloaded);
    let a = fresh.recommend(&workload, CommModelKind::StandardCopy);
    let b = cached.recommend(&workload, CommModelKind::StandardCopy);
    assert_eq!(a.recommendation, b.recommendation);
}

#[test]
fn workloads_and_reports_archive_round_trip() {
    let workload = ShwfsApp::default().workload();
    let json = to_string(&workload).expect("serialize workload");
    let reloaded: Workload = from_str(&json).expect("reload workload");
    assert_eq!(workload, reloaded);

    // A reloaded workload runs identically (full determinism through the
    // serialization boundary).
    let device = DeviceProfile::jetson_tx2();
    let a = icomm::models::run_model(CommModelKind::StandardCopy, &device, &workload);
    let b = icomm::models::run_model(CommModelKind::StandardCopy, &device, &reloaded);
    assert_eq!(a, b);

    // And the report itself archives.
    let json = to_string(&a).expect("serialize report");
    let back: RunReport = from_str(&json).expect("reload report");
    assert_eq!(a, back);
}

#[test]
fn file_round_trip_through_the_filesystem() {
    let device = DeviceProfile::jetson_tx2();
    let c = quick_characterization(&device);
    let path = std::env::temp_dir().join("icomm_test_characterization.json");
    std::fs::write(&path, to_string(&c).expect("serialize")).expect("write file");
    let text = std::fs::read_to_string(&path).expect("read file");
    let reloaded: icomm::microbench::DeviceCharacterization = from_str(&text).expect("parse file");
    assert_eq!(c, reloaded);
    let _ = std::fs::remove_file(&path);
}
