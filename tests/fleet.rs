//! Tier-1 acceptance tests for the fleet subsystem: a 1000-device
//! clustered population over the nano/tx2/xavier mix must replay
//! byte-identically per seed, warm-start at least 90 % of lookups
//! (cache + federated transfer), and keep the decision regret of
//! transferred characterizations within 10 % of full per-device
//! characterization.

use icomm::fleet::{run_fleet, ArrivalConfig, ArrivalProcess, FleetConfig};
use icomm::serve::AdmissionConfig;

fn thousand_device_config() -> FleetConfig {
    FleetConfig {
        boards: "nano,tx2,xavier".to_string(),
        devices: 1000,
        seed: 7,
        livefire: false,
        ..FleetConfig::default()
    }
}

#[test]
fn thousand_devices_warm_start_and_bounded_regret() {
    let out = run_fleet(&FleetConfig {
        livefire: true,
        ..thousand_device_config()
    })
    .unwrap();
    let r = &out.report;

    // Every request is accounted for, one way or another.
    assert_eq!(r.requests, 1000);
    assert_eq!(r.served + r.shed_queue + r.shed_rate, r.requests);

    // The clustered population warm-starts ≥ 90 % of lookups.
    assert!(
        r.warm_start_pct >= 90.0,
        "warm start {:.1}% (cache {}, transfer {}, full {})",
        r.warm_start_pct,
        r.cache_hits,
        r.transfer_hits,
        r.full_characterizations
    );
    assert!(r.transfer_hits > 0, "transfer path never exercised");

    // Latency percentiles are ordered and real.
    assert!(r.latency_p50_us > 0);
    assert!(r.latency_p50_us <= r.latency_p95_us);
    assert!(r.latency_p95_us <= r.latency_p99_us);
    assert!(r.throughput_rps > 0.0);

    // Transferred characterizations keep decision regret within 10 % of
    // full per-device characterization.
    assert!(r.regret_samples > 0, "no transferred devices spot-checked");
    assert!(
        r.mean_regret_pct <= 10.0,
        "mean transfer regret {:.2}% over {} samples ({} disagreements, worst {:.2}%)",
        r.mean_regret_pct,
        r.regret_samples,
        r.regret_disagreements,
        r.max_regret_pct
    );

    // The live-fire stage ran against a real in-process TCP server and
    // answered everything.
    assert!(r.livefire_sent > 0);
    assert_eq!(r.livefire_failed, 0, "live-fire requests failed");
    assert_eq!(r.livefire_ok, r.livefire_sent);
    let wall = out.livefire.expect("live-fire stats present");
    assert!(wall.wall_p50_us <= wall.wall_p99_us);

    assert!(r.passed(), "fleet acceptance gate failed:\n{r}");
}

#[test]
fn coherent_boards_mix_into_the_fleet_without_breaking_the_gates() {
    // The hardware-coherent presets ride the same registry, transfer,
    // and admission stack as the Jetsons: mixing them into the
    // population keeps every acceptance gate green, and the federated
    // transfer path never hands a coherent device a characterization
    // that silently disables (or invents) UPM support.
    let out = run_fleet(&FleetConfig {
        boards: "nano,tx2,xavier,mi300a-like,gh-like".to_string(),
        devices: 400,
        ..thousand_device_config()
    })
    .unwrap();
    let r = &out.report;
    assert_eq!(r.served + r.shed_queue + r.shed_rate, r.requests);
    assert!(
        r.warm_start_pct >= 90.0,
        "warm start {:.1}% with coherent boards mixed in",
        r.warm_start_pct
    );
    assert!(
        r.mean_regret_pct <= 10.0,
        "mean transfer regret {:.2}% with coherent boards mixed in (worst {:.2}%)",
        r.mean_regret_pct,
        r.max_regret_pct
    );
    assert!(r.passed(), "mixed-board fleet gate failed:\n{r}");
}

#[test]
fn same_seed_replays_byte_identically_different_seed_does_not() {
    let serialize = |seed: u64| {
        let out = run_fleet(&FleetConfig {
            seed,
            ..thousand_device_config()
        })
        .unwrap();
        icomm::persist::to_string(&out.report).unwrap()
    };
    let a = serialize(7);
    assert_eq!(a, serialize(7), "same-seed fleet report not byte-identical");
    assert_ne!(a, serialize(8), "different seed produced identical report");
}

#[test]
fn overdriven_burst_load_sheds_instead_of_collapsing() {
    let out = run_fleet(&FleetConfig {
        devices: 400,
        arrival: ArrivalConfig {
            process: ArrivalProcess::Burst,
            rate_per_sec: 5_000.0,
            bulk_fraction: 0.4,
        },
        admission: AdmissionConfig {
            rate_per_sec: 400.0,
            burst: 8.0,
            queue_bound: 6,
            bulk_queue_fraction: 0.25,
        },
        regret_samples: 0,
        ..thousand_device_config()
    })
    .unwrap();
    let r = &out.report;
    assert!(r.shed_queue + r.shed_rate > 0, "no load was shed:\n{r}");
    assert!(r.served > 0, "everything was shed:\n{r}");
    assert_eq!(r.served + r.shed_queue + r.shed_rate, r.requests);
    // Shedding keeps the served tail inside the SLO envelope instead of
    // letting the queue run away.
    assert!(
        r.slo_attainment_pct > 50.0,
        "served tail collapsed despite shedding:\n{r}"
    );
}
