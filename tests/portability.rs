//! Framework portability: the same micro-benchmarks and decision flow
//! work unchanged on boards the paper never saw (the hypothetical
//! Orin-class preset and the hardware-coherent MI300A/GH-class presets),
//! and the verdicts track each device's architecture.

mod common;

use icomm::apps::{LaneApp, OrbApp, ShwfsApp};
use icomm::core::Tuner;
use icomm::models::CommModelKind;
use icomm::soc::{DeviceProfile, PageSize};

use common::quick_characterization;

#[test]
fn orin_like_characterization_is_sane() {
    let c = quick_characterization(&DeviceProfile::orin_like());
    // An improved coherence fabric: the pinned path keeps a larger
    // fraction of the cached throughput than the Xavier's ~1/7.
    let gap = c.gpu_cache_max_throughput / c.gpu_zc_throughput;
    let xavier = quick_characterization(&DeviceProfile::jetson_agx_xavier());
    let xavier_gap = xavier.gpu_cache_max_throughput / xavier.gpu_zc_throughput;
    assert!(
        gap < xavier_gap,
        "orin gap {gap:.1}x < xavier gap {xavier_gap:.1}x"
    );
    // CPU cache survives zero copy (I/O coherent).
    assert_eq!(c.cpu_cache_threshold_pct, 100.0);
    // Zero copy is clearly viable for cache-independent work.
    assert!(c.zc_viable());
    assert!(c.sc_zc_max_speedup > 1.2);
}

#[test]
fn orin_like_threshold_higher_than_xavier() {
    // A faster pinned path tolerates more cache usage before ZC hurts.
    let orin = quick_characterization(&DeviceProfile::orin_like());
    let xavier = quick_characterization(&DeviceProfile::jetson_agx_xavier());
    assert!(
        orin.gpu_cache_threshold_pct > xavier.gpu_cache_threshold_pct,
        "orin {:.1}% vs xavier {:.1}%",
        orin.gpu_cache_threshold_pct,
        xavier.gpu_cache_threshold_pct
    );
}

#[test]
fn orin_like_verdicts_follow_its_architecture() {
    let device = DeviceProfile::orin_like();
    let tuner = Tuner::with_characterization(device.clone(), quick_characterization(&device));

    // Streaming apps: zero copy recommended and it pays off.
    for workload in [
        ShwfsApp {
            iterations: 2,
            ..ShwfsApp::default()
        }
        .workload(),
        LaneApp {
            iterations: 2,
            ..LaneApp::default()
        }
        .workload(),
    ] {
        let v = tuner.validate(&workload, CommModelKind::StandardCopy);
        assert_eq!(
            v.recommendation.recommended,
            CommModelKind::ZeroCopy,
            "{}: {}",
            workload.name,
            v.recommendation.rationale
        );
        assert!(
            v.actual_speedup > 1.0,
            "{}: {:.2}x",
            workload.name,
            v.actual_speedup
        );
    }
}

#[test]
fn orin_like_orb_keeps_zero_copy() {
    // The cache-hungry ORB kernel still fits the wider zone the improved
    // fabric affords.
    let device = DeviceProfile::orin_like();
    let tuner = Tuner::with_characterization(device.clone(), quick_characterization(&device));
    let w = OrbApp {
        matching_reads: 300_000,
        iterations: 1,
        ..OrbApp::default()
    }
    .workload();
    let v = tuner.validate(&w, CommModelKind::ZeroCopy);
    assert_eq!(
        v.recommendation.recommended,
        CommModelKind::ZeroCopy,
        "{}",
        v.recommendation.rationale
    );
    assert!(v.recommendation_sound(0.05));
}

#[test]
fn coherent_board_characterizations_are_sane() {
    for device in [DeviceProfile::mi300a_like(), DeviceProfile::gh_like()] {
        let c = quick_characterization(&device);
        assert!(c.upm_supported, "{}", device.name);
        assert!(c.gpu_upm_throughput > 0.0, "{}", device.name);
        // At the default 4K pages the probe footprint overflows the TLB
        // reach: the coherent path pays a real walk penalty and UM keeps
        // its migration advantage.
        assert!(
            c.upm_kernel_penalty > 1.0,
            "{}: penalty {:.3}",
            device.name,
            c.upm_kernel_penalty
        );
        assert!(
            c.um_upm_max_speedup < 1.0,
            "{}: bound {:.3}",
            device.name,
            c.um_upm_max_speedup
        );
        // Jetson-class boards never report the coherent extension.
        let nano = quick_characterization(&DeviceProfile::jetson_nano());
        assert!(!nano.upm_supported);
        assert_eq!(nano.upm_kernel_penalty, 1.0);
        assert_eq!(nano.um_upm_max_speedup, 1.0);
    }
}

#[test]
fn huge_pages_invert_the_um_upm_probe_verdict() {
    // The characterization itself — not just the decision flow — must
    // move with the page size: 2M pages collapse the TLB penalty and
    // push the UM/UPM bound past break-even on both coherent boards.
    for make in [DeviceProfile::mi300a_like, DeviceProfile::gh_like] {
        let small = quick_characterization(&make().with_page_size(PageSize::Small4K));
        let huge = quick_characterization(&make().with_page_size(PageSize::Huge2M));
        assert!(
            huge.upm_kernel_penalty < small.upm_kernel_penalty,
            "{}: 2M penalty {:.3} !< 4K penalty {:.3}",
            make().name,
            huge.upm_kernel_penalty,
            small.upm_kernel_penalty
        );
        assert!(
            small.um_upm_max_speedup < 1.0 && huge.um_upm_max_speedup > 1.0,
            "{}: bound 4K {:.3} -> 2M {:.3} should cross 1.0",
            make().name,
            small.um_upm_max_speedup,
            huge.um_upm_max_speedup
        );
    }
}

#[test]
fn coherent_board_verdicts_are_sound_across_the_matrix() {
    // The full decision flow stays truthful on the new boards: whatever
    // it recommends — including coherent UPM — never loses to the
    // current model in the ground-truth run.
    for device in [DeviceProfile::mi300a_like(), DeviceProfile::gh_like()] {
        let t = Tuner::with_characterization(device.clone(), quick_characterization(&device));
        for workload in [
            ShwfsApp {
                iterations: 2,
                ..ShwfsApp::default()
            }
            .workload(),
            OrbApp {
                matching_reads: 300_000,
                iterations: 1,
                ..OrbApp::default()
            }
            .workload(),
            LaneApp {
                iterations: 2,
                ..LaneApp::default()
            }
            .workload(),
        ] {
            for current in [
                CommModelKind::StandardCopy,
                CommModelKind::UnifiedMemory,
                CommModelKind::ZeroCopy,
                CommModelKind::CoherentUpm,
            ] {
                let v = t.validate(&workload, current);
                assert!(
                    v.recommendation_sound(0.05),
                    "{}: {} from {} -> {} lost {:.2}x ({})",
                    device.name,
                    workload.name,
                    current.abbrev(),
                    v.recommendation.recommended.abbrev(),
                    v.actual_speedup,
                    v.recommendation.rationale
                );
            }
        }
    }
}

#[test]
fn lane_app_verdicts_across_all_boards() {
    // The extension case study behaves like the paper's streaming apps:
    // keep SC on the slow-pinned-path boards, go ZC on coherent ones.
    let w = LaneApp {
        iterations: 2,
        ..LaneApp::default()
    }
    .workload();
    for (device, expect_zc) in [
        (DeviceProfile::jetson_nano(), false),
        (DeviceProfile::jetson_tx2(), false),
        (DeviceProfile::jetson_agx_xavier(), true),
        (DeviceProfile::orin_like(), true),
    ] {
        let tuner = Tuner::with_characterization(device.clone(), quick_characterization(&device));
        let v = tuner.validate(&w, CommModelKind::StandardCopy);
        let got_zc = v.recommendation.recommended == CommModelKind::ZeroCopy;
        assert_eq!(
            got_zc, expect_zc,
            "{}: {}",
            device.name, v.recommendation.rationale
        );
        assert!(v.recommendation_sound(0.05), "{}", device.name);
    }
}
