//! Tier-1 acceptance tests for the rule-synthesis subsystem: the
//! synthesized rule set must reproduce the brute-force co-run oracle
//! with zero in-scope disagreements on every stock board × named tenant
//! mix, compress the persisted sweep at least 5× in bytes, keep the
//! fleet's warm-start and regret gates when served rules-first, and
//! fall back to the sweep — without panicking — on out-of-scope
//! queries.

use std::sync::{Arc, OnceLock};

use icomm::apps::MIX_NAMES;
use icomm::core::oracle_assignment;
use icomm::fleet::{run_fleet, FleetConfig};
use icomm::soc::units::ByteSize;
use icomm::synth::{
    context_tenants, stock_board, synthesize, DecisionSource, RuleDecider, SynthConfig,
    SynthOutput, BOARD_NAMES,
};

/// One full-sweep synthesis shared by every test in this file — the
/// sweep labels every sample with an `M^N` oracle evaluation, so
/// re-running it per test would dominate the tier's wall time.
fn shared() -> &'static SynthOutput {
    static OUT: OnceLock<SynthOutput> = OnceLock::new();
    OUT.get_or_init(|| synthesize(&SynthConfig::default()).expect("default synthesis runs"))
}

#[test]
fn synthesized_rules_reproduce_the_oracle_on_every_board_and_mix() {
    let out = shared();
    assert_eq!(
        out.ruleset.disagreements, 0,
        "validation found disagreements"
    );
    assert_eq!(out.ruleset.uncovered, 0, "cover left samples unexplained");
    assert!(!out.ruleset.rules.is_empty());
    let decider = RuleDecider::new(out.ruleset.clone());
    for board in BOARD_NAMES {
        let device = stock_board(board).expect("stock board resolves");
        for mix in MIX_NAMES {
            assert!(
                decider.in_scope(board, mix, None),
                "{board}/{mix}: not in verified scope"
            );
            let decision = decider
                .decide(board, mix, None)
                .expect("in-scope decision succeeds");
            assert_eq!(
                decision.source,
                DecisionSource::Rules,
                "{board}/{mix}: in-scope query fell back to the sweep"
            );
            assert!(decision.rules_used > 0, "{board}/{mix}: no rule consulted");
            let tenants = context_tenants(mix).expect("named mix resolves");
            let oracle = oracle_assignment(&device, &tenants).expect("oracle succeeds");
            assert_eq!(
                decision.assignment, oracle,
                "{board}/{mix}: rules disagree with the brute-force oracle"
            );
        }
    }
}

#[test]
fn ruleset_compresses_the_persisted_sweep_at_least_five_fold() {
    let out = shared();
    let sweep_bytes = out.table.persisted_bytes().expect("sweep serializes");
    let ruleset_bytes = out.ruleset.persisted_bytes().expect("ruleset serializes");
    assert!(
        sweep_bytes >= 5 * ruleset_bytes,
        "compression only {:.2}x ({sweep_bytes} B sweep vs {ruleset_bytes} B rules)",
        sweep_bytes as f64 / ruleset_bytes as f64
    );
}

#[test]
fn rules_first_fleet_keeps_the_warm_start_and_regret_gates() {
    let out = shared();
    let fleet = run_fleet(&FleetConfig {
        devices: 150,
        seed: 7,
        livefire: false,
        regret_samples: 4,
        rules: Some(Arc::new(out.ruleset.clone())),
        ..FleetConfig::default()
    })
    .expect("rules-first fleet runs");
    let r = &fleet.report;
    assert!(r.rules_hits > 0, "rules never answered a registry miss");
    // Every default-fleet board is rules-warm-start eligible, so no
    // device ever pays for a full characterization sweep.
    assert_eq!(
        r.full_characterizations, 0,
        "a full sweep ran despite rules covering every board"
    );
    assert!(
        r.warm_start_pct >= 90.0,
        "warm start {:.1}%",
        r.warm_start_pct
    );
    assert!(
        r.mean_regret_pct <= 10.0,
        "regret {:.2}%",
        r.mean_regret_pct
    );
    assert!(r.passed(), "fleet gate failed:\n{r}");
}

#[test]
fn out_of_scope_queries_fall_back_to_the_sweep_without_panicking() {
    let out = shared();
    let decider = RuleDecider::new(out.ruleset.clone());
    // A cap the sweep never ran: feasible (looser than the swept
    // 6 MiB pressure cap) but absent from the verified scope.
    let cap = Some(ByteSize(7 << 20));
    assert!(!decider.in_scope("tx2", "pressure", cap));
    let decision = decider
        .decide("tx2", "pressure", cap)
        .expect("fallback decision succeeds");
    assert_eq!(decision.source, DecisionSource::SweepFallback);
    assert_eq!(decision.rules_used, 0);
    assert!(!decision.assignment.is_empty());
    // Unknown boards and mixes error cleanly instead of panicking.
    assert!(decider.decide("pi5", "duo", None).is_err());
    assert!(decider.decide("tx2", "solo:quake", None).is_err());
}
