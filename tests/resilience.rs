//! End-to-end tests of the self-healing serving plane.
//!
//! The contract under test, per ISSUE acceptance criteria:
//!
//! - an injected shard panic mid-traffic is caught by the supervisor,
//!   the shard restarts within its backoff budget, and a resilient
//!   client loses zero responses;
//! - connections parked on the dead shard see a clean EOF (not a
//!   hang) while the other shards keep serving untouched;
//! - the `Health` opcode reports per-shard liveness and restart
//!   counts over the wire;
//! - the circuit breaker trips on a dead endpoint and the retry
//!   deadline bounds the total time spent failing;
//! - exhausted restart budgets take a shard out of rotation and the
//!   acceptor routes new connections around it.

use std::sync::Arc;
use std::time::{Duration, Instant};

use icomm::net::{
    BinaryClient, BinaryServer, NetConfig, PanicPlan, ResilienceConfig, ResilientClient,
};
use icomm::resilience::{BreakerConfig, BreakerState, RestartPolicy, RetryPolicy};
use icomm::serve::{ServiceConfig, TuneRequest, TuningService};

fn quick_service(workers: usize) -> Arc<TuningService> {
    Arc::new(TuningService::start(
        ServiceConfig::quick().with_workers(workers),
    ))
}

fn resilient_config() -> ResilienceConfig {
    ResilienceConfig {
        retry: RetryPolicy {
            max_attempts: 6,
            base_delay: Duration::from_millis(5),
            max_delay: Duration::from_millis(100),
            deadline: Duration::from_secs(30),
            jitter_seed: 7,
        },
        breaker: BreakerConfig {
            failure_threshold: 32,
            cooldown: Duration::from_millis(100),
            half_open_probes: 2,
        },
        hedge_after: None,
        read_timeout: Duration::from_secs(30),
    }
}

#[test]
fn injected_shard_panics_are_survived_with_zero_lost_responses() {
    let service = quick_service(2);
    // Panic every 40 frames, three times, on a two-shard plane with a
    // fast restart schedule.
    let server = BinaryServer::start_with(
        Arc::clone(&service),
        "127.0.0.1:0",
        NetConfig::default()
            .with_shards(2)
            .with_restart(RestartPolicy {
                max_restarts: 8,
                base_backoff: Duration::from_millis(5),
                max_backoff: Duration::from_millis(50),
            })
            .with_panic_plan(PanicPlan {
                after_frames: 40,
                panics: 3,
            }),
    )
    .expect("bind");
    let addr = server.local_addr();

    let mut client = ResilientClient::with_config(addr, resilient_config());
    let total = 400u64;
    for i in 0..total {
        let board = ["nano", "tx2", "xavier"][i as usize % 3];
        let response = client
            .tune(&TuneRequest::new(i, board, "shwfs"))
            .unwrap_or_else(|e| panic!("request #{i} lost: {e}"));
        assert_eq!(response.id, i, "response routed to wrong request");
        assert!(response.ok, "#{i}: {response:?}");
    }

    // All three injected panics fired and every crash was recovered.
    assert_eq!(server.injected_panics(), 3);
    let health = server.health();
    assert_eq!(health.shards.len(), 2);
    assert_eq!(health.alive, 2, "{health:?}");
    assert_eq!(health.restarts_total, 3, "{health:?}");

    let metrics = service.metrics();
    assert_eq!(metrics.shard_panics, 3, "{metrics:?}");
    assert_eq!(metrics.shard_restarts, 3, "{metrics:?}");
    // The resilient client reconnected after each EOF; no request
    // needed more than the retry budget.
    assert!(client.counters().reconnects >= 3, "{:?}", client.counters());
    assert_eq!(client.breaker_state(), BreakerState::Closed);

    server.stop();
}

#[test]
fn dead_shard_connections_see_clean_eof_while_others_keep_serving() {
    let service = quick_service(2);
    let server = BinaryServer::start_with(
        Arc::clone(&service),
        "127.0.0.1:0",
        NetConfig::default()
            .with_shards(2)
            .with_restart(RestartPolicy {
                max_restarts: 4,
                base_backoff: Duration::from_millis(10),
                max_backoff: Duration::from_millis(50),
            })
            // One panic, far enough out that we control when it fires.
            .with_panic_plan(PanicPlan {
                after_frames: 10,
                panics: 1,
            }),
    )
    .expect("bind");
    let addr = server.local_addr();

    // The acceptor deals round-robin: even connections land on shard
    // 0, odd on shard 1. Open four and warm them all up.
    let mut clients: Vec<BinaryClient> = (0..4)
        .map(|i| {
            BinaryClient::connect_timeout(addr, Duration::from_secs(10))
                .unwrap_or_else(|e| panic!("connect #{i}: {e}"))
        })
        .collect();
    for (i, client) in clients.iter_mut().enumerate() {
        let response = client
            .tune(&TuneRequest::new(i as u64, "tx2", "orb"))
            .unwrap_or_else(|e| panic!("warmup #{i}: {e}"));
        assert!(response.ok);
    }

    // Drive frames until the injector fires (10 frames total across
    // the plane; the 4 warmups plus these hit it). Requests racing
    // the panic may error — that is the point.
    let mut eof_seen = false;
    for round in 0..20u64 {
        let idx = (round % 4) as usize;
        if clients[idx]
            .tune(&TuneRequest::new(100 + round, "nano", "shwfs"))
            .is_err()
        {
            eof_seen = true;
            break;
        }
        if server.injected_panics() > 0 {
            break;
        }
    }
    assert!(
        eof_seen || server.injected_panics() > 0,
        "panic never fired"
    );

    // Every connection parked on the crashed shard must resolve to a
    // clean EOF promptly — never a hang. Connections on the healthy
    // shard keep serving. We don't know which shard crashed, so
    // accept either outcome per connection but require both kinds of
    // evidence to be consistent: at least one connection still works
    // (the other shard was untouched).
    let mut survivors = 0usize;
    for (i, client) in clients.iter_mut().enumerate() {
        let started = Instant::now();
        match client.tune(&TuneRequest::new(200 + i as u64, "tx2", "orb")) {
            Ok(response) => {
                assert!(response.ok, "#{i}: {response:?}");
                survivors += 1;
            }
            Err(e) => {
                assert!(
                    started.elapsed() < Duration::from_secs(5),
                    "orphaned connection hung instead of clean EOF: {e}"
                );
            }
        }
    }
    assert!(survivors >= 1, "healthy shard stopped serving");

    // The supervisor restarted the crashed shard; new connections on
    // it serve again.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let health = server.health();
        if health.alive == 2 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "shard never restarted: {health:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    let mut fresh = BinaryClient::connect_timeout(addr, Duration::from_secs(10)).expect("connect");
    let response = fresh
        .tune(&TuneRequest::new(999, "xavier", "lane"))
        .expect("post-restart tune");
    assert!(response.ok);

    // Orphaned connections were reconciled out of the global gauge.
    let metrics = service.metrics();
    assert!(metrics.conns_orphaned >= 1, "{metrics:?}");

    server.stop();
}

#[test]
fn health_opcode_reports_liveness_over_the_wire() {
    let service = quick_service(1);
    let server = BinaryServer::start_with(
        Arc::clone(&service),
        "127.0.0.1:0",
        NetConfig::default().with_shards(3),
    )
    .expect("bind");

    let mut client = BinaryClient::connect_timeout(server.local_addr(), Duration::from_secs(10))
        .expect("connect");
    let health = client.health().expect("health");
    assert_eq!(health.shards.len(), 3);
    assert_eq!(health.alive, 3);
    assert_eq!(health.restarts_total, 0);
    assert!(health.shards.iter().all(|s| s.alive));
    // This very connection is counted by the shard that adopted it.
    let open: u64 = health.shards.iter().map(|s| s.open_conns).sum();
    assert_eq!(open, 1, "{health:?}");

    server.stop();
}

#[test]
fn breaker_trips_on_dead_endpoint_and_deadline_bounds_the_failure() {
    // Grab a port that is then closed again: connects will be refused.
    let addr = {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        listener.local_addr().expect("addr")
    };

    let config = ResilienceConfig {
        retry: RetryPolicy {
            max_attempts: 8,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(5),
            deadline: Duration::from_secs(2),
            jitter_seed: 11,
        },
        breaker: BreakerConfig {
            failure_threshold: 3,
            cooldown: Duration::from_secs(60),
            half_open_probes: 1,
        },
        hedge_after: None,
        read_timeout: Duration::from_millis(200),
    };
    let mut client = ResilientClient::with_config(addr, config);

    let started = Instant::now();
    let err = client
        .tune(&TuneRequest::new(1, "tx2", "orb"))
        .expect_err("dead endpoint must fail");
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "deadline ignored"
    );
    assert!(
        matches!(err, icomm::net::ClientError::Io(_)),
        "unexpected error shape: {err:?}"
    );
    // Three consecutive failures tripped the breaker; later attempts
    // were rejected without touching the network.
    assert_eq!(client.breaker_state(), BreakerState::Open);
    assert_eq!(client.breaker_trips(), 1);
    assert!(
        client.counters().breaker_rejections >= 1,
        "{:?}",
        client.counters()
    );

    // A second call fails fast on the open breaker.
    let started = Instant::now();
    let _ = client.tune(&TuneRequest::new(2, "tx2", "orb"));
    assert!(started.elapsed() < Duration::from_secs(5));

    // Once the endpoint comes back and the cooldown elapses, the
    // half-open probe re-closes the breaker. (Covered by unit tests
    // on CircuitBreaker; the wire-level path is exercised above.)
}

#[test]
fn exhausted_restart_budget_takes_the_shard_out_of_rotation() {
    let service = quick_service(1);
    // A single shard with zero allowed restarts and an endless supply
    // of injected panics: the first crash is final.
    let server = BinaryServer::start_with(
        Arc::clone(&service),
        "127.0.0.1:0",
        NetConfig::default()
            .with_shards(1)
            .with_restart(RestartPolicy {
                max_restarts: 0,
                base_backoff: Duration::from_millis(1),
                max_backoff: Duration::from_millis(1),
            })
            .with_panic_plan(PanicPlan {
                after_frames: 1,
                panics: 1000,
            }),
    )
    .expect("bind");
    let addr = server.local_addr();

    let mut client = BinaryClient::connect_timeout(addr, Duration::from_secs(10)).expect("connect");
    let _ = client.tune(&TuneRequest::new(1, "tx2", "orb"));

    // Wait for the supervisor to give up.
    let deadline = Instant::now() + Duration::from_secs(5);
    while server.health().alive > 0 {
        assert!(Instant::now() < deadline, "shard never went dark");
        std::thread::sleep(Duration::from_millis(10));
    }

    // With every shard dark, new connections are refused with an
    // explicit error, not a hang.
    let mut late = BinaryClient::connect_timeout(addr, Duration::from_secs(10)).expect("connect");
    let err = late
        .tune(&TuneRequest::new(2, "tx2", "orb"))
        .expect_err("dark plane must refuse");
    match err {
        icomm::net::ClientError::Server(message) => {
            assert!(message.contains("no shard"), "{message}");
        }
        icomm::net::ClientError::Io(_) => {} // refusal raced our write
        other => panic!("unexpected refusal shape: {other:?}"),
    }

    server.stop();
}
