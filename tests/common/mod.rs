//! Shared helpers for the integration tests.
#![allow(dead_code)] // each test binary uses a subset of the helpers

use icomm::microbench::mb2::{Mb2Config, ThresholdSweep};
use icomm::microbench::mb3::{Mb3Config, OverlapProbe};
use icomm::microbench::{DeviceCharacterization, PeakCacheThroughput, UpmProbe};
use icomm::soc::DeviceProfile;

/// A trimmed device characterization: same pipeline as
/// `characterize_device`, with a coarser (but still verdict-preserving)
/// MB2 sweep and a smaller MB3 array to keep test time reasonable.
pub fn quick_characterization(device: &DeviceProfile) -> DeviceCharacterization {
    let mb1 = PeakCacheThroughput::new().run(device);
    let mb2 = ThresholdSweep::with_config(Mb2Config {
        denominators: vec![4096, 512, 64, 32, 24, 16, 8, 2],
        ..Mb2Config::default()
    })
    .run(device);
    let mb3 = OverlapProbe::with_config(Mb3Config {
        array_bytes: 1 << 25,
        ..Mb3Config::default()
    })
    .run(device);
    let upm = UpmProbe::new().run(device);
    DeviceCharacterization::from_results(&mb1, &mb2, &mb3, &upm)
}
