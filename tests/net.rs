//! End-to-end tests of the binary serving plane.
//!
//! The contract under test, per ISSUE acceptance criteria:
//!
//! - every request opcode round-trips through a live server;
//! - a `Batch` frame returns one reply carrying every response, with
//!   client-chosen ids restored (including colliding ids);
//! - the same request yields a byte-identical decision payload on the
//!   JSON listener and the binary listener (protocol parity);
//! - 1 000 concurrently open connections each get their response —
//!   zero lost replies, zero refusals below the connection cap;
//! - hostile clients (garbage, hostile lengths, CRC flips, mid-frame
//!   stalls) are counted and refused without wedging a shard;
//! - the global connection cap turns extra clients away with an
//!   explicit error frame.

use std::sync::Arc;
use std::time::Duration;

use icomm::chaos::tcp::{
    binary_corrupt_crc, binary_garbage, binary_oversized, binary_truncated, BinaryDefense,
};
use icomm::net::{BinaryClient, BinaryServer, NetConfig, WireMode};
use icomm::serve::{Server, ServiceConfig, TuneRequest, TuningService};

fn quick_service(workers: usize) -> Arc<TuningService> {
    Arc::new(TuningService::start(
        ServiceConfig::quick().with_workers(workers),
    ))
}

#[test]
fn every_request_opcode_round_trips() {
    let service = quick_service(2);
    let server = BinaryServer::start(service, "127.0.0.1:0").expect("bind");
    let mut client = BinaryClient::connect_timeout(server.local_addr(), Duration::from_secs(30))
        .expect("connect");

    // Tune.
    let response = client
        .tune(&TuneRequest::new(7, "tx2", "orb"))
        .expect("tune");
    assert_eq!(response.id, 7);
    assert!(response.ok, "{response:?}");
    assert!(response.recommended.is_some());

    // Batch, with colliding client ids: the server must still route
    // every response to its slot and restore the original ids.
    let requests = vec![
        TuneRequest::new(42, "nano", "shwfs"),
        TuneRequest::new(42, "xavier", "lane"),
        TuneRequest::new(7, "tx2", "orb"),
    ];
    let responses = client.tune_batch(&requests).expect("batch");
    assert_eq!(responses.len(), 3);
    assert_eq!(responses[0].id, 42);
    assert_eq!(responses[1].id, 42);
    assert_eq!(responses[2].id, 7);
    assert_eq!(responses[0].board.as_deref(), Some("nano"));
    assert_eq!(responses[1].board.as_deref(), Some("xavier"));
    assert!(responses.iter().all(|r| r.ok), "{responses:?}");

    // Characterize.
    let characterization = client.characterize("tx2").expect("characterize");
    assert_eq!(characterization.device, "Jetson TX2");

    // Stats — served and consistent with what the transport did.
    let stats = client.stats().expect("stats");
    assert!(stats.requests >= 4, "{stats:?}");
    assert_eq!(stats.conn_accepted, 1);

    // Unknown board: an explicit server error, not a wedge.
    let err = client.characterize("pdp11").expect_err("unknown board");
    assert!(matches!(err, icomm::net::ClientError::Server(_)), "{err:?}");

    server.stop();
}

#[test]
fn json_and_binary_planes_agree_on_decisions() {
    let service = quick_service(2);
    let json = Server::start(Arc::clone(&service), "127.0.0.1:0").expect("json bind");
    let binary = BinaryServer::start(Arc::clone(&service), "127.0.0.1:0").expect("binary bind");

    let cases = [
        ("tx2", "orb", None),
        ("nano", "shwfs", Some("SC")),
        ("xavier", "lane", Some("ZC")),
        ("tx2", "shwfs", None),
        ("pdp11", "orb", None), // unknown board: same failure on both
    ];
    let mut client = BinaryClient::connect_timeout(binary.local_addr(), Duration::from_secs(30))
        .expect("connect");
    for (i, (board, app, current)) in cases.iter().enumerate() {
        let mut request = TuneRequest::new(1000 + i as u64, board, app);
        if let Some(current) = current {
            request = request.with_current(current);
        }

        let binary_response = client.tune(&request).expect("binary tune");

        let stream = std::net::TcpStream::connect(json.local_addr()).expect("json connect");
        let mut reader = std::io::BufReader::new(stream.try_clone().expect("clone"));
        let mut writer = stream;
        let line = icomm::persist::to_string(&request).expect("encode");
        std::io::Write::write_all(&mut writer, format!("{line}\n").as_bytes()).expect("write");
        let mut reply = String::new();
        std::io::BufRead::read_line(&mut reader, &mut reply).expect("read");
        let json_response: icomm::serve::TuneResponse =
            icomm::persist::from_str(reply.trim_end()).expect("decode");

        assert_eq!(
            json_response.decision_payload(),
            binary_response.decision_payload(),
            "plane divergence for {board}/{app}"
        );
    }

    json.stop();
    binary.stop();
}

#[test]
fn a_thousand_concurrent_connections_lose_nothing() {
    let service = quick_service(4);
    let server = BinaryServer::start_with(
        Arc::clone(&service),
        "127.0.0.1:0",
        NetConfig::default()
            .with_shards(2)
            .with_max_connections(4096),
    )
    .expect("bind");
    let addr = server.local_addr();

    // Open 1 000 connections and hold every one open.
    let mut clients: Vec<BinaryClient> = (0..1000)
        .map(|i| {
            BinaryClient::connect_timeout(addr, Duration::from_secs(60))
                .unwrap_or_else(|e| panic!("connect #{i}: {e}"))
        })
        .collect();

    // Every connection serves a request while all 1 000 stay open.
    for (i, client) in clients.iter_mut().enumerate() {
        let board = ["nano", "tx2", "xavier"][i % 3];
        let response = client
            .tune(&TuneRequest::new(i as u64, board, "shwfs"))
            .unwrap_or_else(|e| panic!("tune #{i}: {e}"));
        assert_eq!(response.id, i as u64, "response routed to wrong client");
        assert!(response.ok, "#{i}: {response:?}");
    }

    let stats = service.metrics();
    assert_eq!(stats.conn_accepted, 1000);
    assert_eq!(stats.conn_rejected, 0);
    assert!(server.open_connections() >= 1000);

    drop(clients);
    server.stop();
}

#[test]
fn hostile_binary_clients_are_counted_and_refused() {
    let service = quick_service(2);
    let server = BinaryServer::start_with(
        Arc::clone(&service),
        "127.0.0.1:0",
        NetConfig::default().with_read_deadline(Some(Duration::from_millis(300))),
    )
    .expect("bind");
    let addr = server.local_addr();
    let before = service.metrics();

    // Garbage that never frames: length bound or CRC refuses it.
    for seed in [1u64, 2, 3] {
        let defense = binary_garbage(addr, seed, 256).expect("garbage probe");
        assert!(
            matches!(
                defense,
                BinaryDefense::ErrorFrame | BinaryDefense::Disconnected
            ),
            "garbage seed {seed}: {defense:?}"
        );
    }

    // A 1 GiB advertised length: refused before any body is buffered.
    let defense = binary_oversized(addr, 1 << 30).expect("oversized probe");
    assert!(
        matches!(
            defense,
            BinaryDefense::ErrorFrame | BinaryDefense::Disconnected
        ),
        "oversized: {defense:?}"
    );

    // A CRC bit-flip on an otherwise valid frame.
    let defense = binary_corrupt_crc(addr, 99).expect("crc probe");
    assert!(
        matches!(
            defense,
            BinaryDefense::ErrorFrame | BinaryDefense::Disconnected
        ),
        "crc flip: {defense:?}"
    );

    // A mid-frame stall: the read deadline must cut us off.
    let disconnected = binary_truncated(addr, 5, Duration::from_secs(10)).expect("truncated probe");
    assert!(disconnected, "server never dropped a mid-frame staller");

    let after = service.metrics();
    assert!(
        after.frame_faults() > before.frame_faults(),
        "hostile frames not counted: {after:?}"
    );
    assert!(after.frame_oversized >= 1, "{after:?}");
    assert!(after.frame_crc_errors >= 1, "{after:?}");
    assert!(after.read_timeouts >= 1, "{after:?}");

    // The plane still serves a healthy client afterwards.
    let mut client = BinaryClient::connect_timeout(addr, Duration::from_secs(30)).expect("connect");
    let response = client
        .tune(&TuneRequest::new(1, "tx2", "orb"))
        .expect("tune");
    assert!(response.ok, "{response:?}");

    server.stop();
}

#[test]
fn connection_cap_refuses_with_an_error_frame() {
    let service = quick_service(1);
    let server = BinaryServer::start_with(
        Arc::clone(&service),
        "127.0.0.1:0",
        NetConfig::default().with_shards(1).with_max_connections(2),
    )
    .expect("bind");
    let addr = server.local_addr();

    let mut first = BinaryClient::connect_timeout(addr, Duration::from_secs(30)).expect("first");
    let mut second = BinaryClient::connect_timeout(addr, Duration::from_secs(30)).expect("second");
    // Prove both are actually registered before the cap check matters.
    assert!(
        first
            .tune(&TuneRequest::new(1, "tx2", "orb"))
            .expect("tune")
            .ok
    );
    assert!(
        second
            .tune(&TuneRequest::new(2, "nano", "shwfs"))
            .expect("tune")
            .ok
    );

    let mut third =
        BinaryClient::connect_timeout(addr, Duration::from_secs(10)).expect("third connects");
    let err = third
        .tune(&TuneRequest::new(3, "tx2", "orb"))
        .expect_err("third client must be refused");
    match err {
        icomm::net::ClientError::Server(message) => {
            assert!(message.contains("capacity"), "{message}");
        }
        // The refusal frame may race our write; a hangup is also a
        // refusal.
        icomm::net::ClientError::Io(_) => {}
        other => panic!("unexpected refusal shape: {other:?}"),
    }
    assert!(service.metrics().conn_rejected >= 1);

    server.stop();
}

#[test]
fn loadgen_drives_both_planes() {
    let service = quick_service(2);
    let json = Server::start(Arc::clone(&service), "127.0.0.1:0").expect("json bind");
    let binary = BinaryServer::start(Arc::clone(&service), "127.0.0.1:0").expect("binary bind");

    icomm::net::warmup(binary.local_addr(), WireMode::Binary).expect("warmup");

    let json_report = icomm::net::run_load(json.local_addr(), WireMode::Json, 2, 20, 1);
    assert_eq!(json_report.sent, 40);
    assert_eq!(json_report.ok, 40, "{json_report:?}");
    assert_eq!(json_report.failed, 0);

    let binary_report = icomm::net::run_load(binary.local_addr(), WireMode::Binary, 2, 20, 8);
    assert_eq!(binary_report.sent, 40);
    assert_eq!(binary_report.ok, 40, "{binary_report:?}");
    assert_eq!(binary_report.failed, 0);
    assert!(binary_report.rps > 0.0);

    json.stop();
    binary.stop();
}
