//! Integration tests for the serving layer: single-flight registry
//! semantics under contention, batch throughput through the worker pool,
//! graceful drain, warm starts from a persisted registry, and the TCP
//! front end.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use icomm::core::{recommend_for_device, Tuner};
use icomm::microbench::{quick_characterize_device, DeviceCharacterization};
use icomm::models::CommModelKind;
use icomm::serve::{Registry, Server, ServiceConfig, TuneRequest, TuneResponse, TuningService};
use icomm::soc::DeviceProfile;

const BOARD_NAMES: [&str; 6] = [
    "nano",
    "tx2",
    "xavier",
    "orin-like",
    "mi300a-like",
    "gh-like",
];
const APP_NAMES: [&str; 3] = ["shwfs", "orb", "lane"];

fn all_profiles() -> Vec<DeviceProfile> {
    DeviceProfile::extended_boards()
}

fn profile_by_cli_name(name: &str) -> DeviceProfile {
    match name {
        "nano" => DeviceProfile::jetson_nano(),
        "tx2" => DeviceProfile::jetson_tx2(),
        "xavier" => DeviceProfile::jetson_agx_xavier(),
        "orin-like" => DeviceProfile::orin_like(),
        "mi300a-like" => DeviceProfile::mi300a_like(),
        "gh-like" => DeviceProfile::gh_like(),
        other => unreachable!("not a test board: {other}"),
    }
}

fn app_workload(name: &str) -> icomm::models::Workload {
    match name {
        "shwfs" => icomm::apps::ShwfsApp::default().workload(),
        "orb" => icomm::apps::OrbApp::default().workload(),
        "lane" => icomm::apps::LaneApp::default().workload(),
        other => unreachable!("not a test app: {other}"),
    }
}

fn quick_service(workers: usize) -> TuningService {
    TuningService::start(ServiceConfig::quick().with_workers(workers))
}

/// A file path in the system temp dir unique to this test process.
fn scratch_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("icomm-serving-{tag}-{}.json", std::process::id()))
}

/// Satellite (c): many threads hammering every profile characterize each
/// device exactly once, observe identical results, and produce
/// recommendations bit-for-bit equal to the sequential tuner's.
#[test]
fn contended_registry_characterizes_each_device_exactly_once() {
    const THREADS: usize = 8;
    const ROUNDS: usize = 4;
    let registry = Registry::default();
    let profiles = all_profiles();
    let runs = AtomicUsize::new(0);

    let results: Vec<Vec<Arc<DeviceCharacterization>>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                scope.spawn(|| {
                    let mut seen = Vec::new();
                    for _ in 0..ROUNDS {
                        for device in &profiles {
                            let (characterization, _) = registry.get_or_characterize(device, |d| {
                                runs.fetch_add(1, Ordering::SeqCst);
                                quick_characterize_device(d)
                            });
                            seen.push(characterization);
                        }
                    }
                    seen
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Exactly one characterization run per device, no matter the
    // contention.
    assert_eq!(runs.load(Ordering::SeqCst), profiles.len());
    assert_eq!(registry.characterization_runs(), profiles.len() as u64);

    // Every thread observed the same characterization per device.
    for thread_results in &results {
        for (i, characterization) in thread_results.iter().enumerate() {
            let device = &profiles[i % profiles.len()];
            let canonical = registry.get(device).expect("cached after the hammering");
            assert_eq!(characterization.as_ref(), canonical.as_ref());
        }
    }

    // Recommendations built from the registry's entries are bit-for-bit
    // the sequential tuner's.
    for device in &profiles {
        let characterization = registry.get(device).unwrap();
        let tuner = Tuner::with_characterization(device.clone(), (*characterization).clone());
        for app in APP_NAMES {
            let workload = app_workload(app);
            let concurrent = recommend_for_device(
                device,
                &characterization,
                &workload,
                CommModelKind::StandardCopy,
            );
            let sequential = tuner.recommend(&workload, CommModelKind::StandardCopy);
            assert_eq!(concurrent, sequential, "{} / {app}", device.name);
        }
    }
}

/// Acceptance criterion: a batch of 200+ requests over every profile
/// (the Jetsons plus the hardware-coherent presets) completes with
/// exactly one characterization run per board, a >= 96 % cache hit
/// rate, and recommendations identical to the sequential tuner.
#[test]
fn large_batch_over_all_boards_characterizes_each_once() {
    const REQUESTS: u64 = 204;
    let service = quick_service(4);
    let requests: Vec<TuneRequest> = (0..REQUESTS)
        .map(|i| {
            TuneRequest::new(
                i,
                BOARD_NAMES[((i / APP_NAMES.len() as u64) % BOARD_NAMES.len() as u64) as usize],
                APP_NAMES[(i % APP_NAMES.len() as u64) as usize],
            )
        })
        .collect();
    let responses = service.submit_batch(requests.clone()).wait();

    assert_eq!(responses.len(), REQUESTS as usize);
    for (i, response) in responses.iter().enumerate() {
        assert_eq!(response.id, i as u64);
        assert!(response.ok, "request {i}: {:?}", response.error);
    }

    let snapshot = service.metrics();
    assert_eq!(
        snapshot.characterizations,
        BOARD_NAMES.len() as u64,
        "one characterization per device profile"
    );
    assert!(
        snapshot.hit_rate() >= 0.96,
        "hit rate {:.3} below 96%",
        snapshot.hit_rate()
    );
    assert_eq!(snapshot.completed, REQUESTS);
    assert_eq!(snapshot.failed, 0);
    assert_eq!(snapshot.queue_depth, 0);

    // Spot-check every (board, app) pair against the sequential tuner.
    for board in BOARD_NAMES {
        let device = profile_by_cli_name(board);
        let tuner =
            Tuner::with_characterization(device.clone(), quick_characterize_device(&device));
        for app in APP_NAMES {
            let outcome = tuner.recommend(&app_workload(app), CommModelKind::StandardCopy);
            let rec = &outcome.recommendation;
            let response = responses
                .iter()
                .zip(&requests)
                .find(|(_, req)| req.board == board && req.app == app)
                .map(|(resp, _)| resp)
                .expect("every pair appears in the round-robin requests");
            assert_eq!(
                response.recommended.as_deref(),
                Some(rec.recommended.abbrev()),
                "{board}/{app}"
            );
            assert_eq!(response.switch_suggested, Some(rec.suggests_switch()));
            assert_eq!(
                response.estimated_speedup,
                rec.estimated_speedup.as_ref().map(|s| s.estimated),
                "{board}/{app} speedup must be bit-identical"
            );
            assert_eq!(
                response.rationale.as_deref(),
                Some(rec.rationale.as_str()),
                "{board}/{app}"
            );
        }
    }

    service.shutdown().unwrap();
}

/// Acceptance criterion: graceful shutdown drains the queue — every
/// submitted request still gets a response.
#[test]
fn shutdown_drains_queued_requests() {
    let service = quick_service(4);
    let requests: Vec<TuneRequest> = (0..60)
        .map(|i| TuneRequest::new(i, BOARD_NAMES[(i % 4) as usize], "lane"))
        .collect();
    let handle = service.submit_batch(requests);
    // Shut down immediately: the drain must finish the whole batch first.
    service.shutdown().unwrap();
    let responses = handle.wait();
    assert_eq!(responses.len(), 60);
    assert!(responses.iter().all(|r| r.ok));
}

/// Acceptance criterion: a warm start from the persisted registry skips
/// re-characterization entirely.
#[test]
fn warm_start_skips_recharacterization() {
    let path = scratch_path("warm-start");
    let _ = std::fs::remove_file(&path);

    // Cold run: characterizes, then persists on shutdown.
    let cold = TuningService::start(
        ServiceConfig::quick()
            .with_workers(2)
            .with_registry_path(path.clone()),
    );
    let cold_responses = cold
        .submit_batch(vec![
            TuneRequest::new(0, "tx2", "orb"),
            TuneRequest::new(1, "xavier", "shwfs"),
        ])
        .wait();
    assert!(cold_responses.iter().all(|r| r.ok));
    assert_eq!(cold.metrics().characterizations, 2);
    cold.shutdown().unwrap();
    assert!(path.exists(), "shutdown persists the registry");

    // Warm run: same boards come straight from the snapshot.
    let warm = TuningService::start(
        ServiceConfig::quick()
            .with_workers(2)
            .with_registry_path(path.clone()),
    );
    assert_eq!(
        warm.registry().len(),
        2,
        "snapshot warm-starts the registry"
    );
    let warm_responses = warm
        .submit_batch(vec![
            TuneRequest::new(0, "tx2", "orb"),
            TuneRequest::new(1, "xavier", "shwfs"),
        ])
        .wait();
    assert!(warm_responses.iter().all(|r| r.ok));
    let snapshot = warm.metrics();
    assert_eq!(snapshot.characterizations, 0, "no re-characterization");
    assert_eq!(snapshot.cache_hits, 2);
    // The warm answers match the cold ones.
    for (cold_r, warm_r) in cold_responses.iter().zip(&warm_responses) {
        assert_eq!(cold_r.recommended, warm_r.recommended);
        assert_eq!(cold_r.estimated_speedup, warm_r.estimated_speedup);
        assert_eq!(cold_r.rationale, warm_r.rationale);
    }
    warm.shutdown().unwrap();
    let _ = std::fs::remove_file(&path);
}

/// The TCP front end round-trips line-JSON requests and shares the
/// service registry across connections.
#[test]
fn tcp_server_round_trips_and_shares_the_registry() {
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;

    let service = Arc::new(quick_service(2));
    let server = Server::start(service, "127.0.0.1:0").expect("bind ephemeral port");
    let addr = server.local_addr();

    let send = |requests: &[TuneRequest]| -> Vec<TuneResponse> {
        let mut stream = TcpStream::connect(addr).expect("connect");
        for request in requests {
            let line = icomm::persist::to_string(request).unwrap();
            writeln!(stream, "{line}").unwrap();
        }
        stream.flush().unwrap();
        BufReader::new(stream)
            .lines()
            .take(requests.len())
            .map(|line| icomm::persist::from_str(&line.unwrap()).unwrap())
            .collect()
    };

    // First connection characterizes; the second one only hits the cache.
    let first = send(&[
        TuneRequest::new(1, "xavier", "shwfs"),
        TuneRequest::new(2, "xavier", "orb").with_current("zc"),
    ]);
    assert!(first.iter().all(|r| r.ok));
    assert_eq!(first[0].recommended.as_deref(), Some("ZC"));

    let second = send(&[TuneRequest::new(3, "xavier", "lane")]);
    assert!(second[0].ok);
    assert_eq!(second[0].cache_hit, Some(true));

    let service = server.stop();
    assert_eq!(service.metrics().characterizations, 1);
    Arc::try_unwrap(service)
        .expect("server released its handle")
        .shutdown()
        .unwrap();
}
