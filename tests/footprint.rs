//! Tier-1 acceptance tests for the memory-footprint subsystem: a
//! memory cap — and nothing else — must be able to flip the joint
//! model assignment, the capped closed-form assignment must agree with
//! the capped brute-force oracle on every board × mix, and scheduler
//! admission must walk the demote → evict → refuse ladder
//! deterministically.

use icomm::apps::{mix_by_name, MIX_NAMES};
use icomm::core::{
    joint_assignment, joint_assignment_capped, oracle_assignment_capped, CorunTenant,
};
use icomm::footprint::{cheapest_model, model_footprint};
use icomm::microbench::quick_characterize_device;
use icomm::models::candidate_models;
use icomm::sched::{run_sched_with, PolicyKind, SchedConfig};
use icomm::serve::catalog::{board_by_name, BOARD_NAMES};
use icomm::soc::units::ByteSize;

fn tenants_of(mix: &str) -> Vec<CorunTenant> {
    mix_by_name(mix)
        .expect("named mix resolves")
        .into_iter()
        .map(|s| CorunTenant {
            name: s.name,
            workload: s.workload,
            current: s.current,
        })
        .collect()
}

#[test]
fn a_memory_cap_alone_flips_the_assignment() {
    // Identical board, mix, and characterization — the only thing that
    // changes between the two solves is the cap.
    let device = board_by_name("tx2").expect("tx2 resolves");
    let characterization = quick_characterize_device(&device);
    let tenants = tenants_of("pressure");

    let open = joint_assignment(&device, &characterization, &tenants)
        .expect("uncapped assignment succeeds");
    let cap = ByteSize(open.footprint.as_u64() - 1);
    let capped = joint_assignment_capped(&device, &characterization, &tenants, Some(cap))
        .expect("capped assignment succeeds");

    assert_ne!(
        open.models(),
        capped.models(),
        "shaving one byte off the uncapped footprint must force a cheaper model"
    );
    assert!(
        capped.footprint <= cap,
        "capped assignment footprint {} exceeds the cap {}",
        capped.footprint,
        cap
    );
    // Perf-under-a-cap: the constrained optimum can only be slower.
    assert!(
        capped.joint_total.as_picos() >= open.joint_total.as_picos(),
        "capped co-run wall beat the unconstrained optimum"
    );
}

#[test]
fn capped_joint_assignment_matches_the_capped_oracle_everywhere() {
    for board in BOARD_NAMES {
        let device = board_by_name(board).expect("catalog board resolves");
        let characterization = quick_characterize_device(&device);
        let models = candidate_models(&device);
        for mix in MIX_NAMES {
            let tenants = tenants_of(mix);
            let open = joint_assignment(&device, &characterization, &tenants)
                .expect("uncapped assignment succeeds");
            // The tightest cap that can still admit every tenant is the
            // sum of per-tenant cheapest footprints; when the uncapped
            // optimum already sits there, no cap can bind — skip.
            let floor: u64 = tenants
                .iter()
                .map(|t| {
                    cheapest_model(&models, &t.workload, &device)
                        .expect("non-empty candidate set")
                        .1
                        .as_u64()
                })
                .sum();
            if open.footprint.as_u64() <= floor {
                continue;
            }
            let cap = Some(ByteSize(open.footprint.as_u64() - 1));
            let joint = joint_assignment_capped(&device, &characterization, &tenants, cap)
                .expect("capped assignment succeeds");
            let oracle = oracle_assignment_capped(&device, &tenants, cap).expect("capped oracle");
            assert_eq!(
                joint.models(),
                oracle,
                "{board}/{mix}: capped joint assignment disagrees with the capped oracle"
            );
            assert!(
                joint.footprint.as_u64() < open.footprint.as_u64(),
                "{board}/{mix}: the binding cap did not shrink the footprint"
            );
        }
    }
}

#[test]
fn admission_demotes_then_evicts_then_refuses() {
    let device = board_by_name("tx2").expect("tx2 resolves");
    let characterization = quick_characterize_device(&device);
    let run = |cap: Option<u64>| {
        let mut config = SchedConfig::new(device.clone());
        config.mix = "pressure".to_string();
        config.policy = PolicyKind::DeadlineBudget;
        config.seed = 42;
        config.jobs_per_tenant = 4;
        config.mem_cap = cap.map(ByteSize);
        run_sched_with(&config, &characterization)
    };

    // Uncapped: the stock budget never binds at paper scale.
    let open = run(None).expect("uncapped run").report;
    assert_eq!(open.demotions, 0);
    assert_eq!(open.evictions, 0);

    // 6 MiB: the mix fits only after demoting HD tenants off their
    // double-buffered optima.
    let demoted = run(Some(6 << 20)).expect("demoted run").report;
    assert!(demoted.demotions > 0, "{demoted}");
    assert_eq!(demoted.evictions, 0);
    assert!(demoted.footprint_bytes <= 6 << 20);
    assert!(demoted.footprint_bytes < open.footprint_bytes);

    // 4 MiB: even full demotion cannot fit three tenants; the largest
    // cheapest-footprint tenant is turned away and its bytes reported.
    let evicted = run(Some(4 << 20)).expect("evicting run").report;
    assert_eq!(evicted.evictions, 1, "{evicted}");
    assert!(evicted.spilled_bytes > 0);
    assert_eq!(evicted.tenants.len(), 2);
    assert!(evicted.tenants.iter().all(|t| t.name != "orb-hd"));

    // 256 KiB: nothing fits; admission refuses with the budget named.
    let err = run(Some(256 << 10)).expect_err("refusal");
    assert!(err.contains("memory budget"), "{err}");

    // The whole ladder replays byte-identically per seed.
    let replay = run(Some(6 << 20)).expect("replay run").report;
    assert_eq!(
        icomm::persist::to_string(&demoted).unwrap(),
        icomm::persist::to_string(&replay).unwrap()
    );
}

#[test]
fn footprint_pricing_is_consistent_between_layers() {
    // The footprint the sched report carries per tenant must be exactly
    // what the closed-form model prices for the assigned kind — no
    // layer re-derives its own numbers.
    let device = board_by_name("tx2").expect("tx2 resolves");
    let characterization = quick_characterize_device(&device);
    let tenants = tenants_of("pressure");
    let open = joint_assignment(&device, &characterization, &tenants)
        .expect("uncapped assignment succeeds");
    let mut sum = 0u64;
    for (spec, verdict) in tenants.iter().zip(&open.tenants) {
        assert_eq!(spec.name, verdict.name, "tenant order preserved");
        let expected = model_footprint(verdict.joint, &spec.workload, &device);
        assert_eq!(verdict.footprint, expected, "{}", verdict.name);
        sum += expected.as_u64();
    }
    assert_eq!(open.footprint.as_u64(), sum);
}
