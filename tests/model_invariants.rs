//! Cross-crate invariants of the communication models.

mod common;

use icomm::models::{run_model, CommModelKind, CpuPhase, GpuPhase, Workload};
use icomm::soc::cache::AccessKind;
use icomm::soc::units::{ByteSize, Picos};
use icomm::soc::DeviceProfile;
use icomm::trace::Pattern;

fn sample_workload(bytes: u64, overlappable: bool) -> Workload {
    Workload::builder("invariant-sample")
        .bytes_to_gpu(ByteSize(bytes))
        .bytes_from_gpu(ByteSize(bytes / 8))
        .cpu(CpuPhase {
            ops: vec![],
            shared_accesses: Pattern::Linear {
                start: 0,
                bytes: bytes / 2,
                txn_bytes: 64,
                kind: AccessKind::Write,
            },
            private_accesses: None,
        })
        .gpu(GpuPhase {
            compute_work: 1 << 20,
            shared_accesses: Pattern::Linear {
                start: 0,
                bytes,
                txn_bytes: 64,
                kind: AccessKind::Read,
            },
            private_accesses: None,
        })
        .overlappable(overlappable)
        .iterations(3)
        .build()
}

#[test]
fn zero_copy_never_moves_copy_engine_bytes() {
    for device in DeviceProfile::all_boards() {
        let run = run_model(
            CommModelKind::ZeroCopy,
            &device,
            &sample_workload(1 << 20, false),
        );
        assert_eq!(run.copy_time, Picos::ZERO, "{}", device.name);
        assert_eq!(run.counters.copy_engine.mem_bytes, 0, "{}", device.name);
    }
}

#[test]
fn standard_copy_moves_payload_both_ways() {
    let bytes = 1u64 << 20;
    let w = sample_workload(bytes, false);
    let run = run_model(
        CommModelKind::StandardCopy,
        &DeviceProfile::jetson_tx2(),
        &w,
    );
    let expected = (bytes + bytes / 8) * w.iterations as u64;
    // Copy engine traffic counts both the read and the write of each byte.
    assert_eq!(run.counters.copy_engine.mem_bytes, 2 * expected);
}

#[test]
fn um_stays_within_the_paper_band_of_sc() {
    // Paper Section III-A: UM within +/-8 % of SC on all devices.
    for device in DeviceProfile::all_boards() {
        for bytes in [1u64 << 18, 1 << 21, 1 << 24] {
            let w = sample_workload(bytes, false);
            let sc = run_model(CommModelKind::StandardCopy, &device, &w);
            let um = run_model(CommModelKind::UnifiedMemory, &device, &w);
            let rel = (um.total_time.as_picos() as f64 - sc.total_time.as_picos() as f64).abs()
                / sc.total_time.as_picos() as f64;
            assert!(
                rel < 0.08,
                "{} @ {} bytes: UM deviates {:.1}%",
                device.name,
                bytes,
                rel * 100.0
            );
        }
    }
}

#[test]
fn runs_are_deterministic() {
    let w = sample_workload(1 << 20, true);
    for kind in CommModelKind::ALL {
        let a = run_model(kind, &DeviceProfile::jetson_agx_xavier(), &w);
        let b = run_model(kind, &DeviceProfile::jetson_agx_xavier(), &w);
        assert_eq!(a, b, "{kind} must be deterministic");
    }
}

#[test]
fn zc_saves_dram_traffic_everywhere_but_energy_only_where_it_wins() {
    for device in DeviceProfile::all_boards() {
        let w = sample_workload(1 << 22, false);
        let sc = run_model(CommModelKind::StandardCopy, &device, &w);
        let zc = run_model(CommModelKind::ZeroCopy, &device, &w);
        assert!(
            zc.counters.dram.bytes_total() < sc.counters.dram.bytes_total(),
            "{}: ZC must move fewer DRAM bytes",
            device.name
        );
        // Energy only improves where ZC does not lose badly on time: the
        // busy-power term dominates on Nano/TX2-class devices (the paper
        // explicitly skips the Nano energy comparison for this reason).
        if device.is_io_coherent() {
            assert!(
                zc.energy < sc.energy,
                "{}: copy elimination must save energy ({} vs {})",
                device.name,
                zc.energy,
                sc.energy
            );
        }
    }
}

#[test]
fn overlap_only_helps_when_allowed() {
    let device = DeviceProfile::jetson_agx_xavier();
    let serial = run_model(
        CommModelKind::ZeroCopy,
        &device,
        &sample_workload(1 << 22, false),
    );
    let overlapped = run_model(
        CommModelKind::ZeroCopy,
        &device,
        &sample_workload(1 << 22, true),
    );
    assert!(overlapped.total_time <= serial.total_time);
    assert_eq!(serial.overlap_saved, Picos::ZERO);
}

#[test]
fn kernel_times_scale_down_with_stronger_gpus() {
    let w = sample_workload(1 << 20, false);
    let kernel = |d: &DeviceProfile| {
        run_model(CommModelKind::StandardCopy, d, &w).kernel_time_per_iteration()
    };
    let nano = kernel(&DeviceProfile::jetson_nano());
    let tx2 = kernel(&DeviceProfile::jetson_tx2());
    let xavier = kernel(&DeviceProfile::jetson_agx_xavier());
    assert!(nano > tx2 && tx2 > xavier);
}

#[test]
fn per_iteration_costs_stabilize_after_warmup() {
    // Doubling the iteration count should roughly double total time (no
    // super-linear cache pathologies).
    let device = DeviceProfile::jetson_tx2();
    let mut w2 = sample_workload(1 << 20, false);
    w2.iterations = 2;
    let mut w4 = sample_workload(1 << 20, false);
    w4.iterations = 4;
    let r2 = run_model(CommModelKind::StandardCopy, &device, &w2);
    let r4 = run_model(CommModelKind::StandardCopy, &device, &w4);
    let ratio = r4.total_time.as_picos() as f64 / r2.total_time.as_picos() as f64;
    assert!((1.6..2.4).contains(&ratio), "scaling ratio {ratio:.2}");
}
