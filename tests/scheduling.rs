//! Tier-1 acceptance tests for the multi-tenant scheduling subsystem:
//! the closed-form joint model assignment must agree with the
//! brute-force co-run oracle on every board × mix, co-location must
//! demonstrably flip at least one tenant away from its solo-best model,
//! the deadline+budget policy must strictly beat the FIFO baseline on a
//! contended mix, reports must replay byte-identically per seed, and the
//! multi-tenant fleet mode must report per-tenant SLO attainment through
//! the real registry path.

use icomm::apps::{mix_by_name, MIX_NAMES};
use icomm::core::{joint_assignment, oracle_assignment, CorunTenant};
use icomm::fleet::{run_fleet, FleetConfig};
use icomm::microbench::quick_characterize_device;
use icomm::sched::{run_sched_with, PolicyKind, SchedConfig};
use icomm::serve::catalog::{board_by_name, BOARD_NAMES};

fn tenants_of(mix: &str) -> Vec<CorunTenant> {
    mix_by_name(mix)
        .expect("named mix resolves")
        .into_iter()
        .map(|s| CorunTenant {
            name: s.name,
            workload: s.workload,
            current: s.current,
        })
        .collect()
}

#[test]
fn joint_assignment_matches_the_brute_force_oracle_everywhere() {
    for board in BOARD_NAMES {
        let device = board_by_name(board).expect("catalog board resolves");
        let characterization = quick_characterize_device(&device);
        for mix in MIX_NAMES {
            let tenants = tenants_of(mix);
            let joint = joint_assignment(&device, &characterization, &tenants)
                .expect("joint assignment succeeds");
            let oracle = oracle_assignment(&device, &tenants).expect("oracle succeeds");
            assert_eq!(
                joint.models(),
                oracle,
                "{board}/{mix}: closed-form joint assignment disagrees with the oracle"
            );
            // Jointly optimizing can only match or beat per-app greedy.
            assert!(
                joint.joint_total.as_picos() <= joint.greedy_total.as_picos(),
                "{board}/{mix}: joint {} > greedy {}",
                joint.joint_total.as_picos(),
                joint.greedy_total.as_picos()
            );
        }
    }
}

#[test]
fn co_location_flips_a_model_choice_on_the_contended_tx2() {
    let device = board_by_name("tx2").expect("tx2 resolves");
    let characterization = quick_characterize_device(&device);
    let joint = joint_assignment(&device, &characterization, &tenants_of("contended"))
        .expect("joint assignment succeeds");
    assert!(
        joint.any_flip,
        "contended TX2 mix should flip at least one tenant: {joint:?}"
    );
    let lane = &joint.tenants[0];
    assert_ne!(
        lane.joint, lane.solo_best,
        "the deadline-tight lane tenant is the expected flip"
    );
    // The flip buys a strictly better predicted co-run total.
    assert!(joint.joint_total.as_picos() < joint.greedy_total.as_picos());
}

#[test]
fn deadline_budget_policy_strictly_beats_fifo_on_contended_mixes() {
    // Boards where the probe sweep shows FIFO taking deadline misses.
    for board in ["nano", "tx2", "orin-like"] {
        let device = board_by_name(board).expect("catalog board resolves");
        let characterization = quick_characterize_device(&device);
        let run = |policy| {
            let mut config = SchedConfig::new(device.clone());
            config.policy = policy;
            run_sched_with(&config, &characterization)
                .expect("contended mix schedules")
                .report
        };
        let fifo = run(PolicyKind::Fifo);
        let deadline = run(PolicyKind::DeadlineBudget);
        assert!(
            fifo.missed_jobs() > 0,
            "{board}: FIFO should miss deadlines on the contended mix"
        );
        assert!(
            deadline.missed_jobs() < fifo.missed_jobs(),
            "{board}: deadline+budget ({} misses) must strictly beat FIFO ({} misses)",
            deadline.missed_jobs(),
            fifo.missed_jobs()
        );
        assert!(
            !fifo.tenants.iter().any(|t| t.throttles > 0),
            "{board}: FIFO never throttles"
        );
    }
}

#[test]
fn sched_reports_replay_byte_identically_per_seed() {
    let device = board_by_name("tx2").expect("tx2 resolves");
    let characterization = quick_characterize_device(&device);
    let serialize = |seed: u64| {
        let mut config = SchedConfig::new(device.clone());
        config.seed = seed;
        let out = run_sched_with(&config, &characterization).expect("contended mix schedules");
        icomm::persist::to_string(&out.report).expect("report serializes")
    };
    let a = serialize(42);
    assert_eq!(
        a,
        serialize(42),
        "same-seed sched report not byte-identical"
    );
    assert_ne!(a, serialize(43), "different seed produced identical report");
}

#[test]
fn multi_tenant_fleet_reports_per_tenant_slo_through_the_registry() {
    let out = run_fleet(&FleetConfig {
        devices: 150,
        seed: 7,
        livefire: false,
        regret_samples: 4,
        tenants_per_device: 2,
        ..FleetConfig::default()
    })
    .expect("multi-tenant fleet runs");
    let r = &out.report;
    // The single-tenant acceptance gates still hold with tenants on.
    assert_eq!(r.served + r.shed_queue + r.shed_rate, r.requests);
    assert!(
        r.warm_start_pct >= 90.0,
        "warm start {:.1}%",
        r.warm_start_pct
    );
    assert!(
        r.mean_regret_pct <= 10.0,
        "regret {:.2}%",
        r.mean_regret_pct
    );
    assert!(r.passed(), "fleet gate failed:\n{r}");
    // Every served device hosts the duo mix, scheduled off the
    // characterization the registry resolved for it.
    assert_eq!(r.tenants_per_device, 2);
    assert_eq!(r.corun_tenants, r.served * 2);
    assert!(
        r.corun_slo_attainment_pct >= 90.0,
        "per-tenant SLO attainment {:.1}%",
        r.corun_slo_attainment_pct
    );
    assert!(r.corun_mean_slowdown >= 1.0);
    // The report line for operators names the stage.
    assert!(r.to_string().contains("co-run"), "display: {r}");
}
