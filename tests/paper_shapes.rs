//! Shape-level reproduction checks against the paper's published numbers:
//! who wins, by roughly what factor, and where the thresholds fall.

mod common;

use icomm::apps::{OrbApp, ShwfsApp};
use icomm::microbench::mb3::{Mb3Config, OverlapProbe};
use icomm::microbench::PeakCacheThroughput;
use icomm::models::{run_model, CommModelKind};
use icomm::soc::DeviceProfile;

use common::quick_characterization;

#[test]
fn table1_throughput_gaps() {
    // Paper: SC/ZC gap 76x on TX2, 6.6x on Xavier.
    let tx2 = PeakCacheThroughput::new().run(&DeviceProfile::jetson_tx2());
    let gap_tx2 = tx2.max_throughput() / tx2.model(CommModelKind::ZeroCopy).ll_throughput;
    assert!(
        (38.0..152.0).contains(&gap_tx2),
        "TX2 gap {gap_tx2:.0}x (paper 76x, accept 0.5-2x)"
    );
    let xavier = PeakCacheThroughput::new().run(&DeviceProfile::jetson_agx_xavier());
    let gap_xavier = xavier.max_throughput() / xavier.model(CommModelKind::ZeroCopy).ll_throughput;
    assert!(
        (3.3..13.2).contains(&gap_xavier),
        "Xavier gap {gap_xavier:.1}x (paper 6.6x, accept 0.5-2x)"
    );
}

#[test]
fn table1_absolute_throughputs_within_factor_two() {
    let checks = [
        (DeviceProfile::jetson_tx2(), 1.28e9, 97.34e9),
        (DeviceProfile::jetson_agx_xavier(), 32.29e9, 214.64e9),
    ];
    for (device, paper_zc, paper_sc) in checks {
        let r = PeakCacheThroughput::new().run(&device);
        let zc = r.model(CommModelKind::ZeroCopy).ll_throughput;
        let sc = r.max_throughput();
        assert!(
            (0.5..2.0).contains(&(zc / paper_zc)),
            "{}: ZC {zc:.2e} vs paper {paper_zc:.2e}",
            device.name
        );
        assert!(
            (0.5..2.0).contains(&(sc / paper_sc)),
            "{}: SC {sc:.2e} vs paper {paper_sc:.2e}",
            device.name
        );
    }
}

#[test]
fn thresholds_ordered_like_the_paper() {
    // Paper: TX2 threshold 2.7 % << Xavier threshold 16.2 %; Xavier CPU
    // threshold is 100 % (its CPU cache survives zero copy).
    let tx2 = quick_characterization(&DeviceProfile::jetson_tx2());
    let xavier = quick_characterization(&DeviceProfile::jetson_agx_xavier());
    assert!(xavier.gpu_cache_threshold_pct > 3.0 * tx2.gpu_cache_threshold_pct);
    assert_eq!(xavier.cpu_cache_threshold_pct, 100.0);
    assert!(tx2.cpu_cache_threshold_pct < 100.0);
    assert!(tx2.cpu_cache_threshold_pct > 1.0);
}

#[test]
fn fig7_zero_copy_wins_on_xavier_by_a_large_factor() {
    // Paper: up to +152 % vs SC and +164 % vs UM.
    let probe = OverlapProbe::with_config(Mb3Config {
        array_bytes: 1 << 26,
        ..Mb3Config::default()
    });
    let r = probe.run(&DeviceProfile::jetson_agx_xavier());
    let vs_sc = r.zc_advantage_pct(CommModelKind::StandardCopy);
    let vs_um = r.zc_advantage_pct(CommModelKind::UnifiedMemory);
    assert!(vs_sc > 50.0, "ZC vs SC {vs_sc:+.0}%");
    assert!(vs_um > vs_sc, "UM should be slightly behind SC here");
}

#[test]
fn table3_shwfs_speedup_signs() {
    // Paper: Nano -67 %, TX2 -5 %, Xavier +38 %.
    let w = ShwfsApp {
        iterations: 2,
        ..ShwfsApp::default()
    }
    .workload();
    let delta = |device: &DeviceProfile| {
        let sc = run_model(CommModelKind::StandardCopy, device, &w);
        let zc = run_model(CommModelKind::ZeroCopy, device, &w);
        zc.speedup_vs_percent(&sc)
    };
    let nano = delta(&DeviceProfile::jetson_nano());
    let tx2 = delta(&DeviceProfile::jetson_tx2());
    let xavier = delta(&DeviceProfile::jetson_agx_xavier());
    assert!(nano < -30.0, "Nano {nano:+.0}% (paper -67%)");
    assert!(tx2 < 0.0, "TX2 {tx2:+.0}% (paper -5%)");
    assert!(xavier > 15.0, "Xavier {xavier:+.0}% (paper +38%)");
    // And the ordering: Xavier > TX2 > Nano.
    assert!(xavier > tx2 && tx2 > nano);
}

#[test]
fn table5_orb_speedup_signs() {
    // Paper: TX2 -744 %, Xavier ~0 %.
    let w = OrbApp {
        matching_reads: 300_000,
        iterations: 1,
        ..OrbApp::default()
    }
    .workload();
    let tx2 = {
        let sc = run_model(
            CommModelKind::StandardCopy,
            &DeviceProfile::jetson_tx2(),
            &w,
        );
        let zc = run_model(CommModelKind::ZeroCopy, &DeviceProfile::jetson_tx2(), &w);
        zc.speedup_vs_percent(&sc)
    };
    let xavier = {
        let device = DeviceProfile::jetson_agx_xavier();
        let sc = run_model(CommModelKind::StandardCopy, &device, &w);
        let zc = run_model(CommModelKind::ZeroCopy, &device, &w);
        zc.speedup_vs_percent(&sc)
    };
    assert!(tx2 < -60.0, "TX2 {tx2:+.0}% (paper -744%)");
    assert!(xavier.abs() < 10.0, "Xavier {xavier:+.0}% (paper 0%)");
}

#[test]
fn table3_zc_kernel_penalties_ordered() {
    // Paper kernel penalties under ZC: Nano -3 %, TX2 -39 %, Xavier -14 %
    // — but the *totals* hurt most on Nano because of the CPU side. Here
    // we check the kernel-side ordering TX2 >> Xavier.
    let w = ShwfsApp {
        iterations: 2,
        ..ShwfsApp::default()
    }
    .workload();
    let penalty = |device: &DeviceProfile| {
        let sc = run_model(CommModelKind::StandardCopy, device, &w);
        let zc = run_model(CommModelKind::ZeroCopy, device, &w);
        zc.kernel_time_per_iteration().as_picos() as f64
            / sc.kernel_time_per_iteration().as_picos() as f64
    };
    let tx2 = penalty(&DeviceProfile::jetson_tx2());
    let xavier = penalty(&DeviceProfile::jetson_agx_xavier());
    assert!(
        xavier < 1.4,
        "Xavier kernel penalty {xavier:.2}x (paper 1.14x)"
    );
    assert!(
        tx2 > 2.0 * xavier,
        "TX2 penalty {tx2:.2}x must dwarf Xavier's"
    );
}

#[test]
fn energy_savings_on_xavier_zero_copy() {
    // Paper: 0.12 J/s saved on Xavier for SH-WFS.
    let w = ShwfsApp {
        iterations: 4,
        ..ShwfsApp::default()
    }
    .workload();
    let device = DeviceProfile::jetson_agx_xavier();
    let sc = run_model(CommModelKind::StandardCopy, &device, &w);
    let zc = run_model(CommModelKind::ZeroCopy, &device, &w);
    // The paper compares J/s at a fixed camera frame rate, i.e. energy
    // per frame: ZC eliminates the copy traffic and the copy-engine busy
    // time while the rest is unchanged on the I/O-coherent Xavier.
    assert!(
        zc.energy < sc.energy,
        "ZC must save energy per frame on Xavier ({} vs {})",
        zc.energy,
        sc.energy
    );
}
