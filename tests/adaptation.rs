//! Integration tests for the online adaptation layer (`icomm-adapt`):
//! the acceptance criteria of the subsystem.
//!
//! - On workloads whose phases flip the optimal communication model, the
//!   adaptive controller beats every static model and lands within 10%
//!   of the clairvoyant per-phase oracle.
//! - The switch count stays bounded by the phase count (no oscillation).
//! - On a model-indifferent workload the controller does *not* thrash.
//! - The whole pipeline is deterministic: the same trace and
//!   configuration replay to an identical switch sequence.

use icomm::adapt::{evaluate, AdaptController, AdaptationReport, ControllerConfig};
use icomm::apps::{LaneApp, OrbApp, ShwfsApp};
use icomm::microbench::quick_characterize_device;
use icomm::models::{run_phased, PhasedWorkload};
use icomm::soc::DeviceProfile;

const WINDOWS_PER_PHASE: u32 = 12;

fn config_for(phased: &PhasedWorkload) -> ControllerConfig {
    ControllerConfig {
        payload_hint: phased.phases[0].workload.bytes_exchanged(),
        ..ControllerConfig::default()
    }
}

fn evaluate_on_xavier(phased: &PhasedWorkload) -> AdaptationReport {
    let device = DeviceProfile::jetson_agx_xavier();
    let characterization = quick_characterize_device(&device);
    evaluate(&device, &characterization, phased, config_for(phased))
}

/// The headline acceptance criterion, on both workloads whose phases
/// genuinely flip the optimal model.
#[test]
fn adaptive_beats_statics_within_ten_percent_of_oracle() {
    for phased in [
        ShwfsApp::default().phased_workload(WINDOWS_PER_PHASE),
        LaneApp::default().phased_workload(WINDOWS_PER_PHASE),
    ] {
        let report = evaluate_on_xavier(&phased);
        assert!(
            report.beats_best_static(),
            "{}: adaptive {} vs best static {} ({})",
            report.workload,
            report.adaptive.total_time,
            report.best_static().total_time,
            report.best_static().policy,
        );
        assert!(
            report.regret_pct <= 10.0,
            "{}: regret {:.2}% vs oracle",
            report.workload,
            report.regret_pct
        );
        // Oracle needs one switch per boundary; the controller gets one
        // more for the initial decision out of warmup.
        let bound = report.boundaries.len() + 1;
        assert!(
            (report.stats.switches as usize) <= bound,
            "{}: {} switches exceed bound {bound}",
            report.workload,
            report.stats.switches
        );
        // Every phase boundary is seen, promptly.
        assert!(
            report.detection_latency_windows.iter().all(Option::is_some),
            "{}: missed a boundary: {:?}",
            report.workload,
            report.detection_latency_windows
        );
    }
}

/// The ORB front-end is CPU-bound: no model choice moves its bottom line
/// more than a fraction of a percent. The right behaviour is to sit
/// still — the guards must prevent chasing sub-percent margins.
#[test]
fn model_indifferent_workload_does_not_thrash() {
    let phased = OrbApp::default().phased_workload(WINDOWS_PER_PHASE);
    let report = evaluate_on_xavier(&phased);
    assert!(
        (report.stats.switches as usize) <= report.boundaries.len(),
        "orb switched {} times",
        report.stats.switches
    );
    assert!(
        report.regret_pct <= 1.0,
        "orb regret {:.2}%",
        report.regret_pct
    );
}

/// Same trace + same configuration ⇒ identical switch sequence and
/// counters, run-to-run.
#[test]
fn adaptation_replays_deterministically() {
    let device = DeviceProfile::jetson_agx_xavier();
    let characterization = quick_characterize_device(&device);
    let phased = LaneApp::default().phased_workload(WINDOWS_PER_PHASE);
    let run = || {
        let mut controller = AdaptController::new(
            device.clone(),
            characterization.clone(),
            config_for(&phased),
        );
        let report = run_phased(&device, &phased, &mut controller);
        (
            report.switch_sequence(),
            controller.switch_log().to_vec(),
            controller.stats().clone(),
        )
    };
    let (seq_a, log_a, stats_a) = run();
    let (seq_b, log_b, stats_b) = run();
    assert_eq!(seq_a, seq_b);
    assert_eq!(log_a, log_b);
    assert_eq!(stats_a, stats_b);
}

/// The evaluation the `icomm adapt` subcommand prints round-trips
/// through the JSON layer unchanged.
#[test]
fn adaptation_report_round_trips_through_persist() {
    let phased = ShwfsApp::default().phased_workload(4);
    let report = evaluate_on_xavier(&phased);
    let json = icomm::persist::to_string(&report).unwrap();
    let back: AdaptationReport = icomm::persist::from_str(&json).unwrap();
    assert_eq!(report, back);
}
